"""The Hall-matching step of Lemma 3 (paper, Section 7.2, Figure 8).

For the base graph restricted to one encoder side (``G'_1``): build the
bipartite graph ``H = (X, Y)`` where ``X`` is the set of base-level
guaranteed dependencies ``(e_in, e_out)`` (entry indices with matching
row for side A / matching column for side B) and ``Y`` the ``b``
middle-rank vertices (one per multiplication); ``x ~ y_m`` iff a chain
through multiplication ``m`` exists, i.e. the encoder coefficient at
``(m, e_in)`` and the decoder coefficient at ``(e_out, m)`` are both
nonzero.

Lemma 5 guarantees Hall's condition ``|N(D)| >= |D| / n0`` for every
``D ⊆ X`` — via Winograd's matrix-vector bound — so the many-to-one
matching of Theorem 3 (capacity ``n0``) always exists for a *correct*
algorithm.  :func:`base_matching` computes it;
:func:`check_hall_condition` verifies the condition exhaustively (per row
class, as in the paper's proof of Lemma 5) for experiment E7.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.bilinear.algorithm import BilinearAlgorithm
from repro.errors import HallConditionError
from repro.telemetry.spans import span
from repro.utils.flow import capacitated_matching, hall_violator
from repro.utils.indexing import pair_index, pair_unindex

__all__ = [
    "base_dependencies",
    "hall_graph",
    "base_matching",
    "check_hall_condition",
]


def base_dependencies(alg: BilinearAlgorithm, side: str) -> list[tuple[int, int]]:
    """Base-level guaranteed dependencies as entry-index pairs.

    Side A: ``(idx(i,j), idx(i,j'))`` for all i, j, j' — row classes.
    Side B: ``(idx(i,j), idx(i',j))`` for all i, j, i' — column classes.
    Ordered deterministically.
    """
    n0 = alg.n0
    out: list[tuple[int, int]] = []
    if side == "A":
        for i in range(n0):
            for j in range(n0):
                for j2 in range(n0):
                    out.append((pair_index(i, j, n0), pair_index(i, j2, n0)))
    elif side == "B":
        for i in range(n0):
            for j in range(n0):
                for i2 in range(n0):
                    out.append((pair_index(i, j, n0), pair_index(i2, j, n0)))
    else:
        raise ValueError(f"side must be 'A' or 'B', got {side!r}")
    return out


def hall_graph(
    alg: BilinearAlgorithm, side: str
) -> tuple[list[tuple[int, int]], list[list[int]]]:
    """The bipartite graph ``H``: dependencies and their adjacency to
    multiplications.

    Returns ``(dependencies, adjacency)`` where ``adjacency[x]`` lists
    the multiplications ``m`` through which a chain for dependency ``x``
    may pass.
    """
    E = alg.U if side == "A" else alg.V
    deps = base_dependencies(alg, side)
    adjacency = [
        sorted(
            int(m)
            for m in range(alg.b)
            if E[m, e_in] != 0 and alg.W[e_out, m] != 0
        )
        for e_in, e_out in deps
    ]
    return deps, adjacency


def base_matching(alg: BilinearAlgorithm, side: str) -> dict[tuple[int, int], int]:
    """The many-to-one matching of Theorem 3 with capacity ``n0``.

    Maps each base dependency ``(e_in, e_out)`` to the multiplication its
    chain is routed through; every multiplication receives at most ``n0``
    dependencies.

    Raises
    ------
    HallConditionError
        If no matching exists.  By Lemma 5 this certifies the input is
        *not* a correct single-use matrix-multiplication algorithm.
    """
    with span("routing.hall.base_matching", alg=alg.name, side=side) as sp:
        deps, adjacency = hall_graph(alg, side)
        sp.add("dependencies", len(deps))
        sp.add("multiplications", alg.b)
        assignment = capacitated_matching(adjacency, alg.b, alg.n0)
    if assignment is None:
        violator = hall_violator(adjacency, alg.b, alg.n0)
        D = [deps[x] for x in violator[0]] if violator else None
        raise HallConditionError(
            f"Hall condition fails for {alg.name!r} side {side}: some "
            f"dependency set has too small a neighborhood (Lemma 5 "
            "implies the algorithm is not a correct single-use matrix "
            "multiplication)",
            violating_set=D,
            neighborhood=violator[1] if violator else None,
        )
    return {dep: m for dep, m in zip(deps, assignment)}


def check_hall_condition(
    alg: BilinearAlgorithm, side: str, exhaustive_limit: int = 20
) -> dict:
    """Verify Hall's condition ``|N(D)| >= |D| / n0``.

    Follows the paper's proof structure: it suffices to check subsets of
    each row class ``D_i`` (dependencies sharing the input row ``i``) —
    ``|D_i| = n0^2`` — because a global violator yields a per-class one.
    All ``2^(n0^2)`` subsets of every class are enumerated when that is
    at most ``2^exhaustive_limit``; the matching feasibility (Theorem 3)
    is checked regardless and doubles as the global certificate.

    Returns a report with ``holds``, the minimum observed ratio
    ``|N(D)| * n0 / |D|`` (>= 1 iff the condition holds with the paper's
    capacity), and the matching's load histogram.
    """
    n0 = alg.n0
    deps, adjacency = hall_graph(alg, side)
    matching_ok = capacitated_matching(adjacency, alg.b, n0) is not None

    min_ratio = float("inf")
    worst = None
    class_size = n0 * n0
    if class_size <= exhaustive_limit:
        # Row classes: dependencies grouped by input row (side A) /
        # input column (side B).
        for cls in range(n0):
            members = [
                x
                for x, (e_in, _) in enumerate(deps)
                if (pair_unindex(e_in, n0)[0] if side == "A" else pair_unindex(e_in, n0)[1])
                == cls
            ]
            for size in range(1, len(members) + 1):
                for D in combinations(members, size):
                    neighborhood = set()
                    for x in D:
                        neighborhood.update(adjacency[x])
                    ratio = len(neighborhood) * n0 / size
                    if ratio < min_ratio:
                        min_ratio = ratio
                        worst = D
    return {
        "holds": matching_ok,
        "min_ratio": min_ratio,
        "worst_set_size": len(worst) if worst else 0,
        "exhaustive": class_size <= exhaustive_limit,
    }
