"""Numeric and structural verification helpers for bilinear algorithms.

The Brent equations (:meth:`BilinearAlgorithm.validate`) are the exact
algebraic correctness criterion; this module supplies the complementary
*numeric* cross-checks used in tests and examples (random-matrix
evaluation, recursive evaluation agreement) and structural statistics
(operation counts, support summaries) used by the experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bilinear.algorithm import BilinearAlgorithm
from repro.utils.rngs import make_rng

__all__ = [
    "numeric_check",
    "AlgorithmStats",
    "algorithm_stats",
]


def numeric_check(
    alg: BilinearAlgorithm,
    trials: int = 10,
    seed=None,
    atol: float = 1e-8,
) -> float:
    """Evaluate the base case on random matrices and compare with numpy.

    Returns the maximum absolute deviation across trials; raises nothing
    (callers assert on the returned value so failures localise in tests).
    """
    rng = make_rng(seed)
    worst = 0.0
    for _ in range(trials):
        A = rng.standard_normal((alg.n0, alg.n0))
        B = rng.standard_normal((alg.n0, alg.n0))
        got = alg.apply_base(A, B)
        worst = max(worst, float(np.max(np.abs(got - A @ B))))
    return worst


@dataclass(frozen=True)
class AlgorithmStats:
    """Structural summary of a base graph, reported by experiment E1."""

    name: str
    n0: int
    a: int
    b: int
    omega0: float
    is_strassen_like: bool
    #: scalar additions per base step (nnz(U) - b) + (nnz(V) - b) + (nnz(W) - a)
    additions: int
    encoder_a_components: int
    encoder_b_components: int
    decoder_components: int
    satisfies_single_use: bool
    has_multiple_copying: bool

    def row(self) -> list:
        """Row for the E1 report table."""
        return [
            self.name,
            self.n0,
            self.b,
            round(self.omega0, 4),
            "yes" if self.is_strassen_like else "no",
            self.additions,
            self.encoder_a_components,
            self.encoder_b_components,
            self.decoder_components,
            "yes" if self.satisfies_single_use else "no",
            "yes" if self.has_multiple_copying else "no",
        ]


def algorithm_stats(alg: BilinearAlgorithm) -> AlgorithmStats:
    """Compute the structural summary used in experiment E1 (Figure 1)."""
    additions = int(
        (np.count_nonzero(alg.U) - alg.b)
        + (np.count_nonzero(alg.V) - alg.b)
        + (np.count_nonzero(alg.W) - alg.a)
    )
    return AlgorithmStats(
        name=alg.name,
        n0=alg.n0,
        a=alg.a,
        b=alg.b,
        omega0=alg.omega0,
        is_strassen_like=alg.is_strassen_like,
        additions=additions,
        encoder_a_components=len(alg.encoder_components("A")),
        encoder_b_components=len(alg.encoder_components("B")),
        decoder_components=len(alg.decoder_components()),
        satisfies_single_use=alg.satisfies_single_use(),
        has_multiple_copying=alg.has_multiple_copying(),
    )
