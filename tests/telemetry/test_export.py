"""Exporters: Chrome trace_event, Prometheus text, combined JSON —
including the CLI ``route --trace-out`` acceptance path."""

import json

from repro import telemetry
from repro.cli import main as cli_main
from repro.telemetry.export import (
    metrics_to_prometheus,
    spans_to_chrome_trace,
    telemetry_to_json,
    write_chrome_trace,
)
from repro.telemetry.metrics import MetricsRegistry


def _synthetic_spans():
    return [
        {
            "name": "outer", "span_id": "1.1", "parent_id": None,
            "pid": 1, "tid": 10, "ts": 100.0, "dur": 0.5,
            "rss_peak_delta_kib": 0, "counters": {"items": 3},
            "attrs": {"alg": "strassen"}, "error": None,
        },
        {
            "name": "inner", "span_id": "1.2", "parent_id": "1.1",
            "pid": 1, "tid": 10, "ts": 100.1, "dur": 0.2,
            "rss_peak_delta_kib": 16, "counters": {},
            "attrs": {}, "error": "ValueError",
        },
    ]


def test_chrome_trace_structure():
    doc = spans_to_chrome_trace(_synthetic_spans(), metadata={"cmd": "t"})
    assert doc["otherData"] == {"cmd": "t"}
    events = doc["traceEvents"]
    assert len(events) == 2
    outer, inner = events
    assert outer["ph"] == inner["ph"] == "X"
    assert outer["ts"] == 0.0  # rebased to the earliest span
    assert inner["ts"] == 100000.0  # 0.1 s later, in microseconds
    assert outer["dur"] == 500000.0
    assert outer["args"]["items"] == 3
    assert outer["args"]["attr.alg"] == "strassen"
    assert inner["args"]["parent_id"] == "1.1"
    assert inner["args"]["rss_peak_delta_kib"] == 16
    assert inner["args"]["error"] == "ValueError"
    json.dumps(doc)  # must be JSON-serialisable as-is


def test_write_chrome_trace_round_trips(tmp_path):
    path = write_chrome_trace(tmp_path / "t.json", _synthetic_spans())
    loaded = json.loads(path.read_text())
    assert len(loaded["traceEvents"]) == 2
    assert loaded["displayTimeUnit"] == "ms"


def test_prometheus_text_format():
    reg = MetricsRegistry()
    reg.counter("cdag.build.vertices").inc(123)
    reg.gauge("peak_cache").set(8)
    for v in (0.5, 1.5, 3.0):
        reg.histogram("run.duration_s").observe(v)
    text = metrics_to_prometheus(reg, prefix="repro")
    lines = text.splitlines()
    assert "# TYPE repro_cdag_build_vertices counter" in lines
    assert "repro_cdag_build_vertices 123" in lines
    assert "# TYPE repro_peak_cache gauge" in lines
    assert "repro_peak_cache 8" in lines
    assert "# TYPE repro_run_duration_s histogram" in lines
    assert 'repro_run_duration_s_bucket{le="+Inf"} 3' in lines
    assert "repro_run_duration_s_count 3" in lines
    # Cumulative bucket counts are non-decreasing.
    counts = [
        int(ln.rsplit(" ", 1)[1])
        for ln in lines
        if ln.startswith("repro_run_duration_s_bucket")
    ]
    assert counts == sorted(counts)


def test_telemetry_to_json_combined():
    reg = MetricsRegistry()
    reg.counter("c").inc(1)
    doc = telemetry_to_json(
        spans=_synthetic_spans(), registry=reg, metadata={"k": 1}
    )
    assert doc["schema"] == 1
    assert len(doc["spans"]) == 2
    assert doc["metrics"]["c"]["value"] == 1
    json.dumps(doc)


def test_cli_route_trace_out_produces_loadable_trace(tmp_path):
    """Acceptance: a Theorem-2 routing run with --trace-out yields a
    Chrome trace with nonzero spans."""
    out = tmp_path / "route_trace.json"
    rc = cli_main(
        ["route", "--alg", "strassen", "--k", "1", "--trace-out", str(out)]
    )
    assert rc == 0
    doc = json.loads(out.read_text())
    events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert len(events) > 0
    names = {e["name"] for e in events}
    assert "routing.certificate" in names
    assert "cdag.build" in names
    assert any(e["dur"] > 0 for e in events)
    # Telemetry was flag-scoped: the CLI enabled it for this run only.
    counters = events[-1]["args"]
    assert "span_id" in counters
