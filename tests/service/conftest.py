import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def fresh_metrics():
    """Counters (service.*, graphcache.*) live in the process-global
    registry; every test asserts against a clean slate."""
    telemetry.reset()
    yield
    telemetry.reset()
