"""E14 — The three proof techniques side by side (paper Section 2).

The paper situates its contribution against two predecessors:
Hong-Kung's S-partitions/dominators [10] and BDHS's edge expansion [6].
This experiment runs all three on the same executions:

1. **Hong-Kung**: cut real executions every 2M I/Os; measure exact
   minimum-dominator and minimum-set sizes of each phase (min vertex
   cuts via max-flow) — the HK lemma's induced 2M-partition — and the
   lower bound the witnessed partition certifies.
2. **Edge expansion**: applicability verdicts per algorithm (from E12's
   machinery).
3. **Path routing**: the segment-argument certified bound on the same
   executions (from E8's machinery).

The qualitative reproduction target: HK certifies real bounds on
*classical* CDAGs; edge expansion works only for connected base graphs;
the path-routing segment argument certifies bounds for *every*
Strassen-like CDAG, including the disconnected ones.
"""

from __future__ import annotations

from repro.bilinear import classical, strassen
from repro.bounds import (
    expansion_technique_applicable,
    hong_kung_bound_from_partition,
    partition_by_io,
    verify_hk_partition,
)
from repro.cdag import build_cdag, compute_metavertices
from repro.experiments.harness import ExperimentResult, register
from repro.pebbling import SegmentAnalysis, simulate_io
from repro.schedules import loop_order_schedule, recursive_schedule
from repro.utils.tables import TextTable

__all__ = ["run"]


@register("E14")
def run(M: int = 8) -> ExperimentResult:
    checks: dict[str, bool] = {}

    hk_table = TextTable(
        ["CDAG", "schedule", "measured I/O", "2M-phases",
         "max dominator", "max min-set", "HK certified"],
        title="E14.1: Hong-Kung induced 2M-partitions on real executions",
    )
    cases = [
        ("classical G_3", build_cdag(classical(2), 3), "ijk"),
        ("strassen G_2", build_cdag(strassen(), 2), "recursive"),
        ("strassen G_3", build_cdag(strassen(), 3), "recursive"),
    ]
    for name, g, sched_kind in cases:
        sched = (
            loop_order_schedule(g, "ijk")
            if sched_kind == "ijk"
            else recursive_schedule(g)
        )
        measured = simulate_io(g, sched, M).total
        parts = partition_by_io(g, sched, M)
        report = verify_hk_partition(g, parts, M)
        certified = hong_kung_bound_from_partition(report["n_parts"], M)
        hk_table.add_row(
            [name, sched_kind, measured, report["n_parts"],
             report["max_dominator"], report["max_minimum_set"],
             certified]
        )
        checks[f"{name}: dominators within HK's 3M envelope"] = report[
            "dominator_ok"
        ]
        checks[f"{name}: minimum sets within HK's 3M envelope"] = report[
            "minimum_set_ok"
        ]
        # The witnessed-partition bound is sound (it never exceeds the
        # actual I/O that generated it).
        checks[f"{name}: HK witnessed bound <= measured I/O"] = (
            certified <= measured
        )

    technique_table = TextTable(
        ["technique", "classical", "strassen", "strassen(x)classical+su"],
        title="E14.2: which technique certifies which algorithm",
    )
    from repro.bilinear import strassen_x_classical_su

    exp_s = expansion_technique_applicable(strassen())["applicable"]
    exp_c = expansion_technique_applicable(classical(2))["applicable"]
    exp_x = expansion_technique_applicable(strassen_x_classical_su())[
        "applicable"
    ]
    technique_table.add_row(
        ["S-partitions (HK 1981)", "yes (tight)", "no (no cancellation)",
         "no"]
    )
    technique_table.add_row(
        ["edge expansion (BDHS 2012)", "no" if not exp_c else "yes",
         "yes" if exp_s else "no", "yes" if exp_x else "no"]
    )
    technique_table.add_row(
        ["path routing (this paper)", "n/a (w0=3)", "yes", "yes"]
    )
    checks["expansion applies to strassen only"] = exp_s and not exp_c and not exp_x

    # 3. Path-routing segment bound on the same strassen execution.
    g3 = build_cdag(strassen(), 3)
    meta = compute_metavertices(g3)
    sched = recursive_schedule(g3)
    analysis = SegmentAnalysis(g3, meta, cache_size=2, k=1, threshold=24)
    routing_certified = analysis.implied_lower_bound(sched)
    measured = simulate_io(g3, sched, max(M, 6)).total
    compare_table = TextTable(
        ["certifier", "certified I/O lower bound", "measured I/O"],
        title="E14.3: certified bounds on strassen G_3 (recursive schedule)",
    )
    parts = partition_by_io(g3, sched, M)
    compare_table.add_row(
        ["Hong-Kung witnessed partition",
         hong_kung_bound_from_partition(len(parts), M), measured]
    )
    compare_table.add_row(
        ["path-routing segment argument", routing_certified, measured]
    )
    checks["both certified bounds are sound"] = (
        routing_certified <= measured
        and hong_kung_bound_from_partition(len(parts), M) <= measured
    )
    checks["routing segment argument certifies a positive bound"] = (
        routing_certified > 0
    )

    return ExperimentResult(
        experiment_id="E14",
        title="Three techniques: S-partitions, edge expansion, path routing",
        tables=[hk_table, technique_table, compare_table],
        checks=checks,
    )
