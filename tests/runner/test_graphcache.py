"""GraphCache behaviour: hits, misses, corruption, warming, sweeps.

Complements ``tests/cdag/test_artifact.py`` (pure serialisation): here
the cache *layer* is under test — counter accounting, process-local vs
on-disk hits, quarantine-and-rebuild on corruption, environment-variable
activation, and the scheduler integration (`run_sweep(graph_cache=...)`)
where real worker processes share one bundle store.
"""

import os

import numpy as np
import pytest

from repro.bilinear import strassen
from repro.cdag import artifact, build_cdag
from repro.pebbling import CacheExecutor
from repro.runner.events import EventLog
from repro.runner.graphcache import (
    GraphCache,
    activate,
    counter_snapshot,
    deactivate,
)
from repro.runner.jobs import JobSpec, graph_affinity
from repro.runner.pool import run_sweep
from repro.runner.store import ResultStore
from repro.schedules import recursive_schedule

HELPERS = "tests.runner.helpers"


@pytest.fixture(autouse=True)
def _isolated_cache_state():
    """No cross-test leakage of the process-global cache hook."""
    prev = artifact.set_active_cache(None)
    yield
    artifact.set_active_cache(prev)
    artifact.reset_active_cache()


def _delta(before, after) -> dict:
    return {
        name: after[name] - before.get(name, 0)
        for name in after
        if after[name] - before.get(name, 0)
    }


class TestHitMissAccounting:
    def test_miss_then_local_hit_then_disk_hit(self, tmp_path):
        alg = strassen()
        cache = GraphCache(tmp_path)

        before = counter_snapshot()
        g1 = cache.get_graph(alg, 2)
        d = _delta(before, counter_snapshot())
        assert d["graphcache.miss"] == 1 and d["graphcache.miss.graph"] == 1

        before = counter_snapshot()
        g2 = cache.get_graph(alg, 2)
        d = _delta(before, counter_snapshot())
        assert d == {"graphcache.hit": 1, "graphcache.hit.graph": 1}
        assert g2 is g1  # process-local map, not a reload

        # A fresh instance is what a new worker process sees: empty
        # local maps, so the hit must come off disk (memmapped).
        before = counter_snapshot()
        g3 = GraphCache(tmp_path).get_graph(alg, 2)
        d = _delta(before, counter_snapshot())
        assert d == {"graphcache.hit": 1, "graphcache.hit.graph": 1}
        assert g3 is not g1
        assert isinstance(g3.pred_indptr, np.memmap)
        np.testing.assert_array_equal(g3.pred_indices, g1.pred_indices)

    def test_schedule_and_plan_bundles_hit_across_instances(self, tmp_path):
        alg = strassen()
        artifact.set_active_cache(GraphCache(tmp_path))
        g = build_cdag(alg, 2)
        CacheExecutor(g).compile(recursive_schedule(g))

        artifact.set_active_cache(GraphCache(tmp_path))
        before = counter_snapshot()
        g2 = build_cdag(alg, 2)
        CacheExecutor(g2).compile(recursive_schedule(g2))
        d = _delta(before, counter_snapshot())
        assert d["graphcache.hit"] == 3  # graph + schedule + plan
        assert "graphcache.miss" not in d
        assert d["graphcache.hit.schedule"] == 1
        assert d["graphcache.hit.plan"] == 1

    def test_results_identical_between_cold_and_warm(self, tmp_path):
        alg = strassen()

        def simulate():
            g = build_cdag(alg, 3)
            return CacheExecutor(g).run(recursive_schedule(g), 48, "belady")

        cold = simulate()  # no cache active
        artifact.set_active_cache(GraphCache(tmp_path))
        first = simulate()  # populates the store
        artifact.set_active_cache(GraphCache(tmp_path))
        warm = simulate()  # everything served from disk
        assert cold == first == warm


class TestCorruption:
    def _corrupt_one(self, root, mutate):
        bundles = [
            p for p in root.iterdir()
            if p.is_dir() and p.name not in ("schedules", "plans", "corrupt")
        ]
        assert bundles
        target = bundles[0] / "pred_indices.npy"
        mutate(target)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.write_bytes(
                bytes(b ^ 0x01 for b in p.read_bytes()[:-1]) + b"\x00"
            ),
            lambda p: p.write_bytes(p.read_bytes()[: p.stat().st_size // 2]),
        ],
        ids=["bitflip", "truncated"],
    )
    def test_corrupt_bundle_is_quarantined_and_rebuilt(self, tmp_path, mutate):
        alg = strassen()
        GraphCache(tmp_path).get_graph(alg, 2)
        self._corrupt_one(tmp_path, mutate)

        before = counter_snapshot()
        g = GraphCache(tmp_path).get_graph(alg, 2)  # fresh = new process
        d = _delta(before, counter_snapshot())
        assert d["graphcache.quarantined"] == 1
        assert d["graphcache.miss"] == 1  # corruption is a miss, not an error
        assert g.n_vertices == build_cdag(alg, 2).n_vertices
        quarantined = list((tmp_path / "corrupt").iterdir())
        assert len(quarantined) == 1
        # The rebuild republished a clean bundle under the same key.
        assert (tmp_path / quarantined[0].name / "meta.json").exists()


class TestWarmEntriesGC:
    def test_warm_populates_every_bundle_kind(self, tmp_path):
        cache = GraphCache(tmp_path)
        stats = cache.warm(strassen(), (2,))
        assert stats["graphcache.miss"] == 5  # graph + 2 schedules + 2 plans
        kinds = sorted(e["kind"] for e in cache.entries())
        assert kinds == ["graph", "plan", "plan", "schedule", "schedule"]
        restats = GraphCache(tmp_path).warm(strassen(), (2,))
        assert restats["graphcache.miss"] == 0
        assert restats["graphcache.hit"] == 5

    def test_warm_rejects_unknown_family(self, tmp_path):
        with pytest.raises(ValueError, match="unknown schedule"):
            GraphCache(tmp_path).warm(strassen(), (2,), schedules=("bogus",))

    def test_gc_reaps_staging_dirs_and_clears(self, tmp_path):
        cache = GraphCache(tmp_path)
        cache.warm(strassen(), (2,))
        (tmp_path / ".tmp-dead").mkdir()
        removed = cache.gc()
        assert [p.name for p in removed] == [".tmp-dead"]
        assert len(cache.entries()) == 5
        cache.gc(clear=True)
        assert cache.entries() == []

    def test_gc_by_age(self, tmp_path):
        cache = GraphCache(tmp_path)
        cache.warm(strassen(), (2,))
        assert cache.gc(max_age_s=3600.0) == []
        old = [e["path"] for e in cache.entries()][0]
        os.utime(old, (1.0, 1.0))
        removed = cache.gc(max_age_s=3600.0)
        assert [str(p) for p in removed] == [old]


class TestActivation:
    def test_env_var_bootstraps_lazily(self, tmp_path, monkeypatch):
        artifact.reset_active_cache()
        monkeypatch.setenv(artifact.ENV_VAR, str(tmp_path / "envcache"))
        cache = artifact.active_cache()
        assert isinstance(cache, GraphCache)
        assert cache.root == tmp_path / "envcache"

    def test_activate_reuses_same_root(self, tmp_path):
        a = activate(tmp_path)
        assert activate(tmp_path) is a
        b = activate(tmp_path / "other")
        assert b is not a
        deactivate()
        assert artifact.active_cache() is None


class TestSweepIntegration:
    def _specs(self):
        return [
            JobSpec(
                "T-GRAPH", {"r": 2, "M": M}, entrypoint=f"{HELPERS}:graph_job"
            )
            for M in (16, 24, 32, 48)
        ]

    def test_sweep_shares_bundles_and_reports_counters(self, tmp_path):
        events = EventLog()
        outcomes = run_sweep(
            self._specs(),
            ResultStore(tmp_path / "results"),
            workers=2,
            backoff=0.01,
            progress=False,
            events=events,
            graph_cache=tmp_path / "graphs",
        )
        assert all(o.status == "ok" for o in outcomes)
        finish = [r for r in events.records if r["event"] == "sweep_finish"]
        gc_stats = finish[0]["graphcache"]
        # 4 jobs × (graph + schedule + plan) = 12 acquisitions; the
        # first job on each worker pays at most 3 misses building the
        # store, everyone else hits.
        assert gc_stats["hit"] + gc_stats.get("miss", 0) == 12
        assert gc_stats["hit"] >= 6
        assert (tmp_path / "graphs" / "schedules").is_dir()
        # Affinity hints ride in the job docs, not the cache keys.
        affinities = {graph_affinity(s) for s in self._specs()}
        assert len(affinities) == 4

    def test_second_sweep_is_all_hits(self, tmp_path):
        kwargs = dict(workers=2, backoff=0.01, progress=False)
        run_sweep(
            self._specs(), None, graph_cache=tmp_path / "graphs", **kwargs
        )
        events = EventLog()
        outcomes = run_sweep(
            self._specs(), None,
            events=events, graph_cache=tmp_path / "graphs", **kwargs,
        )
        assert all(o.ok for o in outcomes)
        gc_stats = [
            r for r in events.records if r["event"] == "sweep_finish"
        ][0]["graphcache"]
        assert gc_stats["hit"] == 12
        assert "miss" not in gc_stats

    def test_seed_fanout_shares_one_affinity_group(self):
        specs = [
            JobSpec("T-GRAPH", {"r": 2}, seed=s, entrypoint="x:y")
            for s in range(3)
        ]
        assert len({graph_affinity(s) for s in specs}) == 1
        assert len({s.cache_key for s in specs}) == 3
