"""Tests for CDAG inspection and rendering."""

import pytest

from repro.bilinear import classical, strassen, strassen_x_classical
from repro.cdag import (
    Region,
    ascii_ranks,
    build_base_graph,
    build_cdag,
    connected_components,
    describe_vertex,
    is_connected,
    region_components,
    summarize,
    to_dot,
)


class TestConnectivity:
    def test_whole_cdag_connected(self):
        """The paper: G_r of a correct MM algorithm is always connected,
        even when encoders/decoder are not individually."""
        for alg in (strassen(), classical(2), strassen_x_classical()):
            g = build_cdag(alg, 2)
            assert is_connected(g)

    def test_strassen_regions_connected(self):
        g = build_base_graph(strassen())
        assert region_components(g, Region.ENC_A) == 1
        assert region_components(g, Region.ENC_B) == 1
        assert region_components(g, Region.DEC) == 1

    def test_classical_regions_disconnected(self):
        g = build_base_graph(classical(2))
        assert region_components(g, Region.DEC) == 4
        assert region_components(g, Region.ENC_A) == 4

    def test_strassen_x_classical_decoder_disconnected(self):
        """The E12 scenario: fast algorithm, disconnected decoder."""
        g = build_base_graph(strassen_x_classical())
        assert region_components(g, Region.DEC) > 1
        assert is_connected(g)

    def test_components_of_subset(self):
        g = build_base_graph(strassen())
        # Two isolated inputs form two components.
        comps = connected_components(g, g.inputs()[:2])
        assert comps == 2


class TestSummary:
    def test_summary_fields(self):
        s = summarize(build_cdag(strassen(), 2))
        assert s.name == "strassen"
        assert s.n_inputs == 32
        assert s.n_outputs == 16
        assert s.n_products == 49
        assert s.connected


class TestRender:
    def test_dot_contains_all_vertices(self):
        g = build_base_graph(strassen())
        dot = to_dot(g)
        assert dot.count("->") == g.n_edges
        assert "rankdir=BT" in dot

    def test_dot_size_limit(self):
        g = build_cdag(strassen(), 4)
        with pytest.raises(ValueError):
            to_dot(g, max_vertices=100)

    def test_ascii_ranks_lines(self):
        g = build_base_graph(strassen())
        text = ascii_ranks(g)
        assert len(text.splitlines()) == 2 * g.r + 2

    def test_describe_vertex(self):
        g = build_base_graph(strassen())
        label = describe_vertex(g, int(g.products()[3]))
        assert label == "dec[r0](m=3|e=-)"

    def test_describe_input(self):
        g = build_base_graph(strassen())
        label = describe_vertex(g, int(g.inputs("A")[2]))
        assert label == "enc_A[r0](m=-|e=2)"
