"""Structured JSONL event log and live progress line.

Every scheduler decision is recorded as one JSON object per line:
job start/finish/retry/failure, cache hits, and sweep begin/end, each
with a wall-clock timestamp and (where known) the worker pid and
duration.  The log is the sweep's flight recorder — retry histories and
cache-hit rates in tests and post-mortems come from here, never from
parsing human-readable output.  Timestamps live only in the event log,
never in stored artifacts, which keeps artifacts byte-reproducible.

The log is also the sweep's *journal*: a process killed mid-write
leaves a torn final line, which :meth:`EventLog.recover` truncates in
place before the log is reopened for append, :func:`read_events`
tolerates via ``strict=False``, and :func:`replay_journal` summarises
so a resumed sweep knows which jobs already reached a terminal state.
"""

from __future__ import annotations

import json
import sys
import time
from collections import Counter
from pathlib import Path
from typing import IO, Iterable, Mapping

from repro.chaos import hooks as _chaos_hooks

__all__ = [
    "EVENT_SCHEMA",
    "EventLog",
    "ProgressLine",
    "read_events",
    "replay_journal",
    "validate_event",
    "tally",
]

#: Required fields per event type (beyond the envelope ``ts``/``event``).
EVENT_SCHEMA: dict[str, frozenset] = {
    "sweep_start": frozenset({"jobs", "workers"}),
    "sweep_resume": frozenset({"jobs", "complete", "failed"}),
    "sweep_finish": frozenset({"ok", "failed", "cached", "duration"}),
    "sweep_deadline": frozenset({"cancelled"}),
    "store_gc": frozenset({"orphans"}),
    "graphcache_gc": frozenset({"orphans"}),
    "cache_hit": frozenset({"job", "experiment", "key"}),
    "job_start": frozenset({"job", "experiment", "key", "attempt"}),
    "job_finish": frozenset(
        {"job", "experiment", "key", "attempt", "duration", "worker"}
    ),
    "job_retry": frozenset({"job", "experiment", "key", "attempt", "kind", "reason"}),
    "job_failed": frozenset({"job", "experiment", "key", "attempts", "reason"}),
    # Sweep-service (daemon) lifecycle — see repro.service.server.
    "service_start": frozenset({"socket", "workers", "pid"}),
    "service_submit": frozenset({"client", "jobs"}),
    "service_reject": frozenset({"client", "reason", "key"}),
    "service_drain": frozenset({"queued", "inflight"}),
    "service_stop": frozenset({"duration"}),
}

#: Events that mark a job's terminal state in the journal.
_TERMINAL_EVENTS = frozenset({"job_finish", "cache_hit", "job_failed"})


class EventLog:
    """Appends JSONL records to ``path`` (or any writable stream) and
    keeps in-memory per-type counters either way."""

    def __init__(
        self,
        path: str | Path | None = None,
        stream: IO[str] | None = None,
        clock=time.time,
    ):
        self.path = Path(path) if path is not None else None
        self._stream = stream
        self._clock = clock
        self._owned = False
        self.counts: Counter = Counter()
        self.records: list[dict] = []
        self._bound: dict = {}
        if self.path is not None and self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("a", encoding="utf-8")
            self._owned = True

    def bind(self, **fields) -> None:
        """Merge ``fields`` into every subsequent record (drop a field
        by binding it to ``None``) — used to stamp all of a sweep's
        events with its telemetry span id."""
        for name, value in fields.items():
            if value is None:
                self._bound.pop(name, None)
            else:
                self._bound[name] = value

    def emit(self, event: str, **fields) -> dict:
        record = {"ts": round(float(self._clock()), 6), "event": event}
        record.update(self._bound)
        record.update(fields)
        mk = _chaos_hooks.active
        if mk is not None:
            # May raise SweepKilled (simulated mid-write death) — in
            # that case neither the file nor the in-memory log sees the
            # record, exactly like a real SIGKILL.
            mk.on_event(self, record)
        self.counts[event] += 1
        self.records.append(record)
        if self._stream is not None:
            self._stream.write(json.dumps(record, sort_keys=True) + "\n")
            self._stream.flush()
        return record

    def close(self) -> None:
        if self._owned and self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def recover(path: str | Path) -> dict:
        """Repair a journal after an unclean death, in place.

        Truncates a torn final line (no trailing newline) so the file
        can be reopened for append, and counts undecodable interior
        lines.  Returns ``{"existed", "records", "dropped_bytes",
        "bad_lines"}``; safe to call on a missing or healthy file.
        """
        p = Path(path)
        if not p.exists():
            return {"existed": False, "records": 0, "dropped_bytes": 0, "bad_lines": 0}
        data = p.read_bytes()
        dropped = 0
        if data and not data.endswith(b"\n"):
            cut = data.rfind(b"\n") + 1
            dropped = len(data) - cut
            with p.open("r+b") as fh:
                fh.truncate(cut)
        records, bad_lines = read_events(p, strict=False)
        if dropped or bad_lines:
            from repro import telemetry

            registry = telemetry.metrics()
            registry.inc("chaos.detected")
            registry.inc("chaos.detected.torn_log")
            if dropped:
                registry.inc("chaos.recovered")
                registry.inc("chaos.recovered.log_truncated")
        return {
            "existed": True,
            "records": len(records),
            "dropped_bytes": dropped,
            "bad_lines": bad_lines,
        }


def read_events(path: str | Path, *, strict: bool = True):
    """Parse a JSONL event log back into records (skipping blank lines).

    With ``strict=True`` (the default) a malformed line raises
    ``json.JSONDecodeError`` and the return value is the record list.
    With ``strict=False`` malformed lines — e.g. the torn tail a
    SIGKILL leaves behind — are skipped and counted, and the return
    value is ``(records, n_bad)``.
    """
    records = []
    n_bad = 0
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if strict:
                    raise
                n_bad += 1
    if strict:
        return records
    return records, n_bad


def replay_journal(path: str | Path) -> dict:
    """Recover ``path`` and summarise which jobs already terminated.

    Returns ``{"complete": {keys}, "failed": {keys}, "existed",
    "records", "dropped_bytes", "bad_lines"}`` where ``complete`` holds
    cache keys that reached ``job_finish``/``cache_hit`` and ``failed``
    holds keys whose *latest* terminal event was ``job_failed``.  Used
    at sweep startup so ``--resume`` after a SIGKILL can report what
    the journal already accounts for.
    """
    info = EventLog.recover(path)
    complete: set[str] = set()
    failed: set[str] = set()
    if info["existed"]:
        records, _ = read_events(path, strict=False)
        for record in records:
            key = record.get("key")
            event = record.get("event")
            if key is None or event not in _TERMINAL_EVENTS:
                continue
            if event == "job_failed":
                failed.add(key)
                complete.discard(key)
            else:
                complete.add(key)
                failed.discard(key)
    return {"complete": complete, "failed": failed, **info}


def validate_event(record: Mapping) -> list[str]:
    """Schema check of one event record; returns a list of problems
    (empty when the record is well-formed)."""
    problems = []
    if "ts" not in record:
        problems.append("missing 'ts'")
    elif not isinstance(record["ts"], (int, float)):
        problems.append("'ts' is not numeric")
    event = record.get("event")
    if event is None:
        problems.append("missing 'event'")
        return problems
    required = EVENT_SCHEMA.get(event)
    if required is None:
        problems.append(f"unknown event type {event!r}")
        return problems
    for name in sorted(required):
        if name not in record:
            problems.append(f"{event}: missing field {name!r}")
    return problems


class ProgressLine:
    """Single overwriting status line on a terminal (no-op elsewhere).

    The scheduler calls :meth:`update` after every state change; the
    line shows completed/total plus cached, failed and in-flight
    counts, so a long sweep is observable without tailing the JSONL
    log.
    """

    def __init__(
        self,
        total: int,
        stream: IO[str] | None = None,
        enabled: bool | None = None,
    ):
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            enabled = bool(getattr(self.stream, "isatty", lambda: False)())
        self.enabled = enabled
        self._last_len = 0

    def update(self, done: int, cached: int, failed: int, running: int) -> None:
        if not self.enabled:
            return
        line = (
            f"sweep: {done}/{self.total} done"
            f" ({cached} cached, {failed} failed, {running} running)"
        )
        pad = " " * max(0, self._last_len - len(line))
        self.stream.write("\r" + line + pad)
        self.stream.flush()
        self._last_len = len(line)

    def finish(self) -> None:
        if self.enabled and self._last_len:
            self.stream.write("\n")
            self.stream.flush()
            self._last_len = 0


def tally(records: Iterable[Mapping]) -> Counter:
    """Per-type counts over an iterable of event records."""
    return Counter(r.get("event") for r in records)
