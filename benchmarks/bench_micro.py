"""Micro-benchmarks of the library's hot paths.

Not tied to a paper figure; these keep the substrate's performance
honest (CDAG construction, pebble-game execution, routing construction,
the kernels) so the experiment benches stay fast as the code evolves.

Two entry points over the same workloads:

- ``pytest benchmarks/bench_micro.py`` — pytest-benchmark statistics for
  interactive tuning;
- ``python benchmarks/bench_micro.py [--json-out PATH]`` — standalone
  run that emits one machine-readable JSON document (median-of-k wall
  times per case plus the telemetry counters collected while running)
  via :mod:`repro.telemetry.export`, for dashboards and CI artifacts.
"""

import argparse
import atexit
import json
import shutil
import statistics
import sys
import tempfile
import time

import numpy as np

from repro.bilinear import strassen
from repro.cdag import artifact, build_cdag, compute_metavertices
from repro.linalg import strassen_matmul
from repro.pebbling import CacheExecutor
from repro.routing import lemma3_routing, theorem2_routing
from repro.schedules import rank_order_schedule, recursive_schedule
from repro.tracesim import FullyAssociativeLRU, trace_blocked


def test_build_cdag_r4(benchmark):
    benchmark(build_cdag, strassen(), 4)


def test_metavertices_r4(benchmark):
    g = build_cdag(strassen(), 4)
    benchmark(compute_metavertices, g)


def test_recursive_schedule_r4(benchmark):
    g = build_cdag(strassen(), 4)
    benchmark(recursive_schedule, g)


def test_executor_lru_r4(benchmark):
    g = build_cdag(strassen(), 4)
    executor = CacheExecutor(g)
    sched = executor.validate_schedule(recursive_schedule(g))
    benchmark(executor.run, sched, 64, "lru", False)


def test_executor_belady_r3(benchmark):
    g = build_cdag(strassen(), 3)
    executor = CacheExecutor(g)
    sched = executor.validate_schedule(recursive_schedule(g))
    benchmark(executor.run, sched, 64, "belady", False)


def test_executor_run_many_r4(benchmark):
    g = build_cdag(strassen(), 4)
    executor = CacheExecutor(g)
    sched = recursive_schedule(g)
    benchmark(executor.run_many, sched, (12, 48, 96), ("lru", "belady"))


def test_lemma3_routing_k3(benchmark):
    g = build_cdag(strassen(), 3)
    benchmark(lemma3_routing, g)


def test_theorem2_routing_k2(benchmark):
    g = build_cdag(strassen(), 2)
    benchmark(theorem2_routing, g)


def test_strassen_matmul_64(benchmark):
    rng = np.random.default_rng(0)
    A = rng.standard_normal((64, 64))
    B = rng.standard_normal((64, 64))
    benchmark(strassen_matmul, A, B, None, 8)


def test_trace_sim_blocked_32(benchmark):
    def run():
        return FullyAssociativeLRU(192).run(trace_blocked(32, 8))

    benchmark(run)


# ---------------------------------------------------------------------------
# Standalone machine-readable mode.


def _reference_run():
    """The pre-vectorisation executor kept under ``tests/`` as the
    golden reference; benchmarked against the array core so the JSON
    artifact records the measured speedup."""
    import pathlib

    repo_root = str(pathlib.Path(__file__).resolve().parent.parent)
    if repo_root not in sys.path:
        sys.path.insert(0, repo_root)
    from tests.pebbling._reference import reference_run

    return reference_run


def make_cases() -> dict:
    """The same workloads as the pytest benches, with setup hoisted out
    of the timed bodies; name -> zero-arg callable."""
    g2 = build_cdag(strassen(), 2)
    g3 = build_cdag(strassen(), 3)
    g4 = build_cdag(strassen(), 4)
    g5 = build_cdag(strassen(), 5)
    ex4 = CacheExecutor(g4)
    sched4 = ex4.validate_schedule(recursive_schedule(g4))
    ex3 = CacheExecutor(g3)
    sched3 = ex3.validate_schedule(recursive_schedule(g3))
    ex5 = CacheExecutor(g5)
    sched5 = ex5.validate_schedule(recursive_schedule(g5))
    rank5 = rank_order_schedule(g5)
    reference_run = _reference_run()
    e9_grid = [(sched5, "belady"), (sched5, "lru"), (rank5, "lru")]
    e9_Ms = (12, 24, 48, 96)

    def e9_n32_core():
        ex = CacheExecutor(g5)
        ex.run_many(sched5, e9_Ms, ("belady", "lru"))
        ex.run_many(rank5, e9_Ms, ("lru",))

    def e9_n32_reference():
        for M in e9_Ms:
            for sched, pol in e9_grid:
                reference_run(g5, sched, M, pol)

    # Paired kernel cases: the same E9 n=32 grid with the compiled
    # kernels pinned off vs compiled.  run_benchmarks derives their
    # ratio into "kernel_speedup".  The njit case only exists when
    # numba is importable — without it the kernel algorithm would run
    # under the plain interpreter (the equivalence-test mode, ~an order
    # of magnitude *slower* than the fallback loops), and a pair that
    # labels that "njit" would be noise, so the pair (and the derived
    # ratio) is emitted on compiled installs only.
    from repro.pebbling import kernels

    def kernel_e09_python():
        with kernels.forced_mode("off"):
            e9_n32_core()

    def kernel_e09_njit():
        with kernels.forced_mode("jit"):
            e9_n32_core()

    # Paired lockstep cases: one E9-shaped configuration grid (cache
    # sizes x policies over the n=32 recursive schedule) run as a single
    # lockstep run_grid call vs one compiled per-config pass per cell.
    # Both legs are jit; the ratio ("grid_lockstep_speedup") isolates
    # what the (config, slot) batching + chunk threading buy over the
    # PR-8 style per-configuration kernel loop.
    from repro.simcore import SchedulePlan

    plan5 = SchedulePlan(g5, sched5, validated=False)
    arrays5 = plan5.kernel_arrays()
    is_input5 = g5.in_degree() == 0
    is_output5 = np.zeros(g5.n_vertices, dtype=bool)
    is_output5[g5.outputs()] = True
    iu8_5 = np.ascontiguousarray(is_input5).view(np.uint8)
    ou8_5 = np.ascontiguousarray(is_output5).view(np.uint8)
    lock_Ms = np.array(
        [M for M in (8, 12, 16, 24, 32, 48, 64, 96) for _ in range(3)],
        dtype=np.int64,
    )
    lock_codes = np.array([0, 1, 2] * 8, dtype=np.int64)

    def grid_lockstep_batched():
        with kernels.forced_mode("jit"):
            kernels.run_grid(arrays5, iu8_5, ou8_5, lock_Ms, lock_codes)

    def grid_lockstep_per_config():
        with kernels.forced_mode("jit"):
            for M, code in zip(lock_Ms, lock_codes):
                kernels.simulate_plan(arrays5, iu8_5, ou8_5, int(M),
                                      int(code))
    # Paired graph-cache cases: the warm path loads every graph,
    # schedule and executor plan for the E9 depth ladder from a
    # pre-warmed bundle store through a *fresh* GraphCache instance per
    # call (a new instance has empty process-local maps — exactly what a
    # just-spawned sweep worker sees), while the cold path compiles
    # everything in-process with no cache active.  run_benchmarks
    # derives their ratio into "graphcache_warm_speedup".
    from repro.runner.graphcache import GraphCache

    gc_root = tempfile.mkdtemp(prefix="repro-bench-graphcache-")
    atexit.register(shutil.rmtree, gc_root, ignore_errors=True)
    GraphCache(gc_root).warm(strassen(), (2, 3, 4, 5))
    gc_rs = (2, 3, 4, 5)

    def _compile_ladder():
        for r in gc_rs:
            g = build_cdag(strassen(), r)
            ex = CacheExecutor(g)
            ex.compile(recursive_schedule(g))
            ex.compile(rank_order_schedule(g))

    def graphcache_cold():
        prev = artifact.set_active_cache(None)
        try:
            _compile_ladder()
        finally:
            artifact.set_active_cache(prev)

    def graphcache_warm():
        prev = artifact.set_active_cache(GraphCache(gc_root))
        try:
            _compile_ladder()
        finally:
            artifact.set_active_cache(prev)

    rng = np.random.default_rng(0)
    A = rng.standard_normal((64, 64))
    B = rng.standard_normal((64, 64))
    return {
        "build_cdag_r4": lambda: build_cdag(strassen(), 4),
        "metavertices_r4": lambda: compute_metavertices(g4),
        "recursive_schedule_r4": lambda: recursive_schedule(g4),
        "executor_lru_r4": lambda: ex4.run(sched4, 64, "lru", False),
        "executor_belady_r3": lambda: ex3.run(sched3, 64, "belady", False),
        # Paired sweep cases: the batched API on one executor vs the
        # pre-run_many idiom (a fresh executor per configuration, so
        # validation and use-list precompute repeat).  run_benchmarks
        # derives their ratio into "executor_sweep_speedup".
        "executor_sweep_run_many": (
            lambda: ex4.run_many(sched4, (12, 48, 96), ("lru", "belady"))
        ),
        "executor_sweep_repeated_run": lambda: [
            CacheExecutor(g4).run(sched4, M, pol)
            for M in (12, 48, 96)
            for pol in ("lru", "belady")
        ],
        # The full E9 n=32 measurement grid (12 configurations) on the
        # array core + run_many vs the pre-vectorisation reference
        # simulator; their ratio lands in "executor_e9_n32_speedup".
        "executor_e9_n32_grid_core": e9_n32_core,
        "executor_e9_n32_grid_reference": e9_n32_reference,
        **(
            {
                "kernel_e09_python": kernel_e09_python,
                "kernel_e09_njit": kernel_e09_njit,
                "grid_lockstep_batched": grid_lockstep_batched,
                "grid_lockstep_per_config": grid_lockstep_per_config,
            }
            if kernels.HAVE_NUMBA
            else {}
        ),
        "graphcache_e9_cold_compile": graphcache_cold,
        "graphcache_e9_warm_compile": graphcache_warm,
        "lemma3_routing_k3": lambda: lemma3_routing(g3),
        "theorem2_routing_k2": lambda: theorem2_routing(g2),
        "strassen_matmul_64": lambda: strassen_matmul(A, B, None, 8),
        "trace_sim_blocked_32": (
            lambda: FullyAssociativeLRU(192).run(trace_blocked(32, 8))
        ),
    }


def run_benchmarks(repeats: int = 3, select: str | None = None) -> dict:
    """Run the micro-benchmarks and return the machine-readable doc."""
    from repro import telemetry
    from repro.telemetry.export import telemetry_to_json

    was_enabled = telemetry.enabled()
    telemetry.enable()
    telemetry.reset()
    results: dict[str, dict] = {}
    try:
        for name, fn in make_cases().items():
            if select and select not in name:
                continue
            times = []
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            results[name] = {
                "median_s": statistics.median(times),
                "min_s": min(times),
                "repeats": len(times),
            }
    finally:
        if not was_enabled:
            telemetry.disable()
    doc = telemetry_to_json(
        registry=telemetry.metrics(),
        metadata={"tool": "bench_micro", "repeats": repeats},
    )
    doc["benchmarks"] = results
    derived = {}
    for label, fast, slow in (
        ("executor_sweep_speedup",
         "executor_sweep_run_many", "executor_sweep_repeated_run"),
        ("executor_e9_n32_speedup",
         "executor_e9_n32_grid_core", "executor_e9_n32_grid_reference"),
        ("kernel_speedup", "kernel_e09_njit", "kernel_e09_python"),
        ("grid_lockstep_speedup",
         "grid_lockstep_batched", "grid_lockstep_per_config"),
        ("graphcache_warm_speedup",
         "graphcache_e9_warm_compile", "graphcache_e9_cold_compile"),
    ):
        a, b = results.get(fast), results.get(slow)
        if a and b and a["median_s"] > 0:
            derived[label] = round(b["median_s"] / a["median_s"], 2)
    if derived:
        doc["derived"] = derived
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Micro-benchmarks with machine-readable JSON output."
    )
    parser.add_argument(
        "--repeats", type=int, default=3, metavar="K",
        help="timed runs per case; the median is reported (default 3)",
    )
    parser.add_argument(
        "--select", default=None, metavar="SUBSTR",
        help="run only cases whose name contains SUBSTR",
    )
    parser.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the JSON document here (default: stdout)",
    )
    args = parser.parse_args(argv)
    doc = run_benchmarks(repeats=args.repeats, select=args.select)
    if not doc["benchmarks"]:
        print(f"no case matches --select {args.select!r}", file=sys.stderr)
        return 2
    if args.json_out:
        from repro.telemetry.export import write_json

        write_json(args.json_out, doc)
        print(f"wrote {args.json_out} ({len(doc['benchmarks'])} cases)")
    else:
        print(json.dumps(doc, sort_keys=True, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
