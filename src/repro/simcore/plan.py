"""Schedule plans: the policy-independent precompute every simulator
shares.

A *plan* compiles one ``(graph, schedule)`` pair into flat int64
arrays — operand occurrences in CSR form, per-occurrence next-use
times, per-vertex first-use times and initial use counts.  Built once,
a plan serves every ``(cache_size, policy)`` configuration of a sweep:
the lockstep grid kernel (:mod:`repro.simcore.grid`), the pure-Python
fallback loops (:mod:`repro.simcore.pyloops`) and the pebble-game
trace replay all read the same arrays.

The class lived inside :mod:`repro.pebbling.executor` (as
``_SchedulePlan``) before the simulation core was unified; the
executor re-exports it under the old name for its consumers (the graph
cache's plan bundles, the artifact layer).
"""

from __future__ import annotations

import numpy as np

from repro.cdag import artifact as _artifact
from repro.cdag.graph import CDAG

__all__ = ["SchedulePlan", "gather_operands"]


class SchedulePlan:
    """Policy-independent precompute for one schedule (built once,
    reused across every ``(cache_size, policy)`` configuration).

    All arrays are flat and vectorised off the CDAG's predecessor CSR:

    - ``step_indptr`` / ``step_ops``: operand occurrences in schedule
      order (``step_ops[step_indptr[t]:step_indptr[t+1]]`` are the
      predecessors of the vertex computed at step ``t``);
    - ``occ_next``: for each occurrence, the next step at which the same
      vertex is used again (``T`` = never) — the backward-scan next-use
      linked list Belady keys evictions on (computed in one vectorised
      pass, shared by every cache size and policy of a batch);
    - ``first_use``: per vertex, the first step using it (``T`` = never);
    - ``uses_left0``: per vertex, total number of uses.

    The compiled kernels consume these arrays directly via
    :meth:`kernel_arrays` — for a plan loaded from a bundle they stay
    read-only memmaps end to end.  The pure-Python fallback loops index
    them as Python lists (cheaper per element than numpy scalars),
    materialised lazily on first fallback simulate by
    :meth:`ensure_lists`; a plan that only ever runs on the kernel path
    (or is loaded but never run) never pays that materialisation.
    """

    __slots__ = (
        "schedule", "step_indptr", "step_ops", "occ_next", "first_use",
        "uses_left0", "n_steps", "validated",
        "_sched_l", "_indptr_l", "_ops_l", "_occ_next_l", "_first_use_l",
        "_uses_l", "_kernel_arrays",
    )

    def __init__(self, cdag: CDAG, schedule: np.ndarray, validated: bool):
        n = cdag.n_vertices
        self.schedule = schedule
        self.validated = validated
        T = self.n_steps = len(schedule)
        step_indptr, step_ops, occ_time = gather_operands(cdag, schedule)
        total = len(step_ops)

        # Backward-scan next-use list, vectorised: stable-sort the
        # occurrences by vertex (they are already time-ordered, so each
        # vertex's group stays time-ordered) and link neighbours.
        order = np.argsort(step_ops, kind="stable")
        sv = step_ops[order]
        st = occ_time[order]
        nxt = np.full(total, T, dtype=np.int64)
        if total > 1:
            same = sv[:-1] == sv[1:]
            nxt[:-1][same] = st[1:][same]
        occ_next = np.empty(total, dtype=np.int64)
        occ_next[order] = nxt

        first_use = np.full(n, T, dtype=np.int64)
        if total:
            first_use[sv[::-1]] = st[::-1]

        self.step_indptr = step_indptr
        self.step_ops = step_ops
        self.occ_next = occ_next
        self.first_use = first_use
        self.uses_left0 = np.bincount(step_ops, minlength=n).astype(np.int64)
        self._sched_l = None
        self._kernel_arrays = None

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The plan's serialisable arrays (bundle format; names match
        :data:`repro.cdag.artifact.PLAN_ARRAY_NAMES`)."""
        return {
            "schedule": np.ascontiguousarray(self.schedule, dtype=np.int64),
            "step_indptr": np.ascontiguousarray(self.step_indptr, dtype=np.int64),
            "step_ops": np.ascontiguousarray(self.step_ops, dtype=np.int64),
            "occ_next": np.ascontiguousarray(self.occ_next, dtype=np.int64),
            "first_use": np.ascontiguousarray(self.first_use, dtype=np.int64),
            "uses_left0": np.ascontiguousarray(self.uses_left0, dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, arrays, validated: bool) -> "SchedulePlan":
        """Rebuild a plan from bundle arrays without recompiling (the
        arrays may be read-only memmaps; the simulators only read
        them)."""
        self = cls.__new__(cls)
        self.schedule = arrays["schedule"]
        self.step_indptr = arrays["step_indptr"]
        self.step_ops = arrays["step_ops"]
        self.occ_next = arrays["occ_next"]
        self.first_use = arrays["first_use"]
        self.uses_left0 = arrays["uses_left0"]
        self.n_steps = len(self.schedule)
        self.validated = validated
        self._sched_l = None
        self._kernel_arrays = None
        return self

    def ensure_lists(self) -> None:
        """Materialise the fallback loops' Python lists (idempotent;
        the kernel path never calls this)."""
        if self._sched_l is None:
            self._sched_l = self.schedule.tolist()
            self._indptr_l = self.step_indptr.tolist()
            self._ops_l = self.step_ops.tolist()
            self._occ_next_l = self.occ_next.tolist()
            self._first_use_l = self.first_use.tolist()
            self._uses_l = self.uses_left0.tolist()

    def kernel_arrays(self) -> tuple[np.ndarray, ...]:
        """The plan's arrays as the compiled kernels consume them:
        C-contiguous int64, in :data:`~repro.cdag.artifact.
        PLAN_ARRAY_NAMES` order.  For bundle-loaded plans these are the
        memmaps themselves (zero-copy — the kernels only read them)."""
        ka = self._kernel_arrays
        if ka is None:
            ka = self._kernel_arrays = _artifact.plan_kernel_arrays({
                "schedule": self.schedule,
                "step_indptr": self.step_indptr,
                "step_ops": self.step_ops,
                "occ_next": self.occ_next,
                "first_use": self.first_use,
                "uses_left0": self.uses_left0,
            })
        return ka


def gather_operands(
    cdag: CDAG, schedule: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten the predecessor lists of a schedule into occurrence
    arrays: ``(step_indptr, step_ops, occ_time)``."""
    indptr, indices = cdag.pred_csr()
    T = len(schedule)
    starts = indptr[schedule]
    counts = indptr[schedule + 1] - starts
    step_indptr = np.zeros(T + 1, dtype=np.int64)
    np.cumsum(counts, out=step_indptr[1:])
    total = int(step_indptr[-1])
    gather = np.repeat(starts - step_indptr[:-1], counts)
    gather += np.arange(total, dtype=np.int64)
    step_ops = indices[gather]
    occ_time = np.repeat(np.arange(T, dtype=np.int64), counts)
    return step_indptr, step_ops, occ_time
