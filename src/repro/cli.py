"""Command-line interface: ``python -m repro <command>``.

Subcommands:

- ``catalog``               — list the algorithm catalog with parameters;
- ``bounds``                — evaluate Theorem 1 (and baselines) at (n, M, P);
- ``simulate``              — pebble-game I/O of a schedule on G_r;
- ``route``                 — build and verify a Theorem-2 certificate;
- ``caps``                  — simulate parallel bandwidth for (n, P, M);
- ``experiments``           — run the reproduction experiments;
- ``render``                — DOT/ASCII rendering of a base graph.

Everything the CLI prints is computed by the same public API the tests
exercise; the CLI adds no logic of its own.
"""

from __future__ import annotations

import argparse
import sys

from repro.bilinear import by_name, list_catalog
from repro.bilinear.compose import named_compositions
from repro.utils.tables import TextTable

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction toolkit for 'Matrix Multiplication "
            "I/O-Complexity by Path Routing' (SPAA 2015)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("catalog", help="list available algorithms")

    p_bounds = sub.add_parser("bounds", help="evaluate Theorem 1 bounds")
    p_bounds.add_argument("--alg", default="strassen")
    p_bounds.add_argument("--n", type=int, required=True)
    p_bounds.add_argument("--M", type=int, required=True)
    p_bounds.add_argument("--P", type=int, default=1)

    p_sim = sub.add_parser("simulate", help="pebble-game I/O of G_r")
    p_sim.add_argument("--alg", default="strassen")
    p_sim.add_argument("--r", type=int, required=True)
    p_sim.add_argument("--M", type=int, required=True)
    p_sim.add_argument(
        "--schedule", default="recursive",
        choices=["recursive", "rank", "random"],
    )
    p_sim.add_argument(
        "--policy", default="lru", choices=["lru", "fifo", "belady"]
    )
    p_sim.add_argument("--seed", type=int, default=0)

    p_route = sub.add_parser("route", help="Theorem-2 routing certificate")
    p_route.add_argument("--alg", default="strassen")
    p_route.add_argument("--k", type=int, default=1)

    p_caps = sub.add_parser("caps", help="parallel bandwidth simulation")
    p_caps.add_argument("--alg", default="strassen")
    p_caps.add_argument("--n", type=int, required=True)
    p_caps.add_argument("--P", type=int, required=True)
    p_caps.add_argument("--M", type=int, required=True)
    p_caps.add_argument(
        "--strategy", default="auto",
        choices=["auto", "bfs-first", "dfs-first"],
    )

    p_exp = sub.add_parser("experiments", help="run reproduction experiments")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (default all)")

    p_render = sub.add_parser("render", help="render a base graph")
    p_render.add_argument("--alg", default="strassen")
    p_render.add_argument("--r", type=int, default=1)
    p_render.add_argument(
        "--format", default="ascii", choices=["ascii", "dot"]
    )
    return parser


def _cmd_catalog() -> int:
    table = TextTable(
        ["name", "n0", "b", "omega0", "fast", "single-use", "dec comps"],
        title="Algorithm catalog",
    )
    for alg in list_catalog() + named_compositions():
        table.add_row(
            [alg.name, alg.n0, alg.b, round(alg.omega0, 4),
             "yes" if alg.is_strassen_like else "no",
             "yes" if alg.satisfies_single_use() else "no",
             len(alg.decoder_components())]
        )
    print(table.render())
    return 0


def _cmd_bounds(args) -> int:
    from repro.bounds import (
        classical_io_lower_bound,
        io_lower_bound,
        memory_independent_lower_bound,
        parallel_bandwidth_lower_bound,
        recursive_io_upper_bound,
    )

    alg = by_name(args.alg)
    print(f"{alg.name}: omega0 = {alg.omega0:.4f}")
    print(f"n = {args.n}, M = {args.M}, P = {args.P}")
    print(f"  Theorem 1 sequential I/O >= "
          f"{io_lower_bound(alg, args.n, args.M):.4e}")
    print(f"  recursive upper bound     ~ "
          f"{recursive_io_upper_bound(alg, args.n, args.M):.4e}")
    print(f"  Hong-Kung (classical)    >= "
          f"{classical_io_lower_bound(args.n, args.M):.4e}")
    if args.P > 1:
        print(f"  parallel bandwidth       >= "
              f"{parallel_bandwidth_lower_bound(alg, args.n, args.M, args.P):.4e}")
        print(f"  memory-independent       >= "
              f"{memory_independent_lower_bound(alg, args.n, args.P):.4e}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.bounds import io_lower_bound
    from repro.cdag import build_cdag
    from repro.pebbling import simulate_io
    from repro.schedules import (
        random_topological_schedule,
        rank_order_schedule,
        recursive_schedule,
    )

    alg = by_name(args.alg)
    g = build_cdag(alg, args.r)
    sched = {
        "recursive": lambda: recursive_schedule(g),
        "rank": lambda: rank_order_schedule(g),
        "random": lambda: random_topological_schedule(g, seed=args.seed),
    }[args.schedule]()
    res = simulate_io(g, sched, args.M, policy=args.policy)
    n = alg.n0**args.r
    print(f"{g} with {args.schedule} schedule, M={args.M}, {args.policy}:")
    print(f"  reads={res.reads} writes={res.writes} total={res.total}")
    print(f"  (input reads {res.input_reads}, spills "
          f"{res.spill_reads}r/{res.spill_writes}w, outputs "
          f"{res.output_writes})")
    print(f"  Theorem 1 lower bound: {io_lower_bound(alg, n, args.M):.1f}")
    return 0


def _cmd_route(args) -> int:
    from repro.routing import theorem2_certificate

    alg = by_name(args.alg)
    cert = theorem2_certificate(alg, args.k)
    print(f"Theorem 2 certificate for {alg.name}, k={args.k}:")
    print(f"  paths: {cert.report.n_paths}")
    print(f"  claimed m = 6a^k = {cert.claimed_m}")
    print(f"  measured max vertex hits: {cert.report.max_vertex_hits}")
    print(f"  measured max meta hits:   {cert.report.max_meta_hits}")
    print(f"  lemma 3 max hits (<= {2 * alg.n0 ** args.k}): "
          f"{cert.lemma3_max_hits}")
    print(f"  single-use assumption: {cert.single_use}")
    print(f"  VERIFIED: {cert.report.within_bound}")
    return 0 if cert.report.within_bound else 1


def _cmd_caps(args) -> int:
    from repro.parallel import DistributedMachine, simulate_caps

    alg = by_name(args.alg)
    run = simulate_caps(
        alg, args.n, DistributedMachine(args.P, args.M), args.strategy
    )
    print(f"CAPS simulation: {alg.name}, n={args.n}, P={args.P}, "
          f"M={args.M}, strategy={args.strategy}")
    print(f"  schedule: {run.schedule_string}")
    print(f"  bandwidth cost: {run.bandwidth_cost} words")
    print(f"  peak memory/processor: {run.peak_memory_per_processor:.0f}")
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments.__main__ import main as experiments_main

    return experiments_main(args.ids)


def _cmd_render(args) -> int:
    from repro.cdag import ascii_ranks, build_cdag, to_dot

    alg = by_name(args.alg)
    g = build_cdag(alg, args.r)
    print(to_dot(g) if args.format == "dot" else ascii_ranks(g))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "catalog":
        return _cmd_catalog()
    if args.command == "bounds":
        return _cmd_bounds(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "route":
        return _cmd_route(args)
    if args.command == "caps":
        return _cmd_caps(args)
    if args.command == "experiments":
        return _cmd_experiments(args)
    if args.command == "render":
        return _cmd_render(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
