"""Seeded random-number-generator helpers.

All stochastic code in the library (random topological schedules, random
test matrices, synthetic workloads) takes either a seed or a
``numpy.random.Generator``; this helper normalises the two so results are
reproducible by default and callers can share generator state when they
want correlated streams.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "DEFAULT_SEED"]

#: Seed used when the caller passes ``None`` explicitly asking for the
#: library default.  Fixed so examples/benchmarks are reproducible.
DEFAULT_SEED = 20150613  # SPAA'15 started June 13, 2015.


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    - ``None``: a generator seeded with :data:`DEFAULT_SEED`;
    - an int: a fresh generator with that seed;
    - a ``Generator``: returned unchanged (shared state).
    """
    if seed is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(int(seed))
