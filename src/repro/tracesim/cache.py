"""Address-trace cache simulators.

Complementing the CDAG pebble-game executor (which is exact but bounded
by explicit graph sizes), these simulators consume *address traces* of
loop-nest kernels (:mod:`repro.tracesim.kernels`) and so reach the
large-``n`` regime of experiment E10 with realistic cache organisations:

- :class:`FullyAssociativeLRU` — the theory-side model (matches the
  machine model up to the write policy);
- :class:`SetAssociativeLRU` — hardware-shaped (sets + ways + lines),
  for the ablation of how much the idealised model under-counts.

Counters distinguish hits, misses, and dirty evictions (write-backs), so
``misses + writebacks`` mirrors the paper's read+write I/O measure.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.telemetry.spans import span
from repro.utils.validation import check_positive_int

__all__ = ["CacheStats", "FullyAssociativeLRU", "SetAssociativeLRU"]


@dataclass
class CacheStats:
    """Access counters for one simulated run.

    Counters form a commutative monoid under ``+`` (identity
    ``CacheStats()``), so per-shard counters collected from parallel
    runner workers aggregate losslessly — including write-backs, which
    derived measures like :attr:`io` depend on.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def io(self) -> int:
        """Reads from + writes to slow memory (the paper's measure, at
        line granularity)."""
        return self.misses + self.writebacks

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            writebacks=self.writebacks + other.writebacks,
        )

    def __radd__(self, other) -> "CacheStats":
        if other == 0:  # supports sum(stats_list)
            return CacheStats(self.accesses, self.hits, self.misses,
                              self.writebacks)
        return self.__add__(other)

    @classmethod
    def merge(cls, shards) -> "CacheStats":
        """Sum an iterable of per-shard counters into one total."""
        total = cls()
        for shard in shards:
            total = total + shard
        return total

    def as_dict(self) -> dict:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
        }

    @classmethod
    def from_dict(cls, counters) -> "CacheStats":
        return cls(
            accesses=int(counters["accesses"]),
            hits=int(counters["hits"]),
            misses=int(counters["misses"]),
            writebacks=int(counters["writebacks"]),
        )


class FullyAssociativeLRU:
    """Fully associative, write-back, write-allocate LRU cache.

    Parameters
    ----------
    capacity_lines:
        Number of cache lines.
    line_size:
        Words per line; ``1`` reproduces the theoretical machine model
        (every word its own transfer unit).
    """

    def __init__(self, capacity_lines: int, line_size: int = 1):
        self.capacity = check_positive_int(capacity_lines, "capacity_lines")
        self.line_size = check_positive_int(line_size, "line_size")
        self._lines: OrderedDict[int, bool] = OrderedDict()  # line -> dirty
        self.stats = CacheStats()

    def access(self, address: int, is_write: bool = False) -> bool:
        """Touch ``address``; returns True on hit."""
        line = address // self.line_size
        stats = self.stats
        stats.accesses += 1
        if line in self._lines:
            stats.hits += 1
            self._lines.move_to_end(line)
            if is_write:
                self._lines[line] = True
            return True
        stats.misses += 1
        if len(self._lines) >= self.capacity:
            _, dirty = self._lines.popitem(last=False)
            if dirty:
                stats.writebacks += 1
        self._lines[line] = is_write
        return False

    def flush(self) -> None:
        """Write back all dirty lines (end of run)."""
        for _, dirty in self._lines.items():
            if dirty:
                self.stats.writebacks += 1
        self._lines.clear()

    def run(self, trace) -> CacheStats:
        """Consume an iterable of ``(address, is_write)`` pairs and
        flush; returns the statistics.

        The loop is the :meth:`access` logic inlined with locally bound
        state and counters committed once at the end — identical
        semantics, but no per-access attribute lookups (the E10 traces
        run to 10^7 accesses).
        """
        with span(
            "tracesim.run", organisation="fully-associative",
            capacity_lines=self.capacity, line_size=self.line_size,
        ) as sp:
            lines = self._lines
            move_to_end = lines.move_to_end
            popitem = lines.popitem
            line_size = self.line_size
            capacity = self.capacity
            accesses = hits = misses = writebacks = 0
            for address, is_write in trace:
                line = address // line_size if line_size > 1 else address
                accesses += 1
                if line in lines:
                    hits += 1
                    move_to_end(line)
                    if is_write:
                        lines[line] = True
                    continue
                misses += 1
                if len(lines) >= capacity:
                    _, dirty = popitem(last=False)
                    if dirty:
                        writebacks += 1
                lines[line] = is_write
            stats = self.stats
            stats.accesses += accesses
            stats.hits += hits
            stats.misses += misses
            stats.writebacks += writebacks
            self.flush()
            _record_cache_counters(sp, stats)
            return stats


class SetAssociativeLRU:
    """Set-associative, write-back, write-allocate LRU cache."""

    def __init__(self, n_sets: int, ways: int, line_size: int = 1):
        self.n_sets = check_positive_int(n_sets, "n_sets")
        self.ways = check_positive_int(ways, "ways")
        self.line_size = check_positive_int(line_size, "line_size")
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()

    @property
    def capacity_lines(self) -> int:
        return self.n_sets * self.ways

    def access(self, address: int, is_write: bool = False) -> bool:
        line = address // self.line_size
        bucket = self._sets[line % self.n_sets]
        stats = self.stats
        stats.accesses += 1
        if line in bucket:
            stats.hits += 1
            bucket.move_to_end(line)
            if is_write:
                bucket[line] = True
            return True
        stats.misses += 1
        if len(bucket) >= self.ways:
            _, dirty = bucket.popitem(last=False)
            if dirty:
                stats.writebacks += 1
        bucket[line] = is_write
        return False

    def flush(self) -> None:
        for bucket in self._sets:
            for _, dirty in bucket.items():
                if dirty:
                    self.stats.writebacks += 1
            bucket.clear()

    def run(self, trace) -> CacheStats:
        """Same inlined hot loop as the fully-associative simulator,
        with the set lookup (``line % n_sets``) resolved on locally
        bound state."""
        with span(
            "tracesim.run", organisation="set-associative",
            capacity_lines=self.capacity_lines, line_size=self.line_size,
        ) as sp:
            sets = self._sets
            n_sets = self.n_sets
            ways = self.ways
            line_size = self.line_size
            accesses = hits = misses = writebacks = 0
            for address, is_write in trace:
                line = address // line_size if line_size > 1 else address
                bucket = sets[line % n_sets]
                accesses += 1
                if line in bucket:
                    hits += 1
                    bucket.move_to_end(line)
                    if is_write:
                        bucket[line] = True
                    continue
                misses += 1
                if len(bucket) >= ways:
                    _, dirty = bucket.popitem(last=False)
                    if dirty:
                        writebacks += 1
                bucket[line] = is_write
            stats = self.stats
            stats.accesses += accesses
            stats.hits += hits
            stats.misses += misses
            stats.writebacks += writebacks
            self.flush()
            _record_cache_counters(sp, stats)
            return stats


def _record_cache_counters(sp, stats: CacheStats) -> None:
    """Per-policy hit/miss/eviction counters onto the run's span."""
    sp.add("accesses", stats.accesses)
    sp.add("hits", stats.hits)
    sp.add("misses", stats.misses)
    sp.add("writebacks", stats.writebacks)
