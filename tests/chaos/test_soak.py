"""Soak suite: the sweep's fault-tolerance claims under seeded chaos.

The invariant under test, for each of three fixed fault-plan seeds:

1. the sweep *terminates* (restarting after simulated SIGKILLs),
2. every job ends in a terminal state (ok / cached / failed) with an
   attributable attempt history, and
3. after the fault-free verification pass, the surviving artifacts are
   byte-identical to a run that never saw a fault.

The three seeds are chosen to stress different sites: 101 is
worker-heavy (exceptions, exits, OOMs, hangs), 202 is store-heavy with
a guaranteed mid-sweep kill, 303 mixes everything with the heartbeat
watchdog armed.
"""

import pytest

from repro.chaos import FaultPlan, run_chaos_sweep
from repro.chaos.soak import TERMINAL_STATUSES
from repro.runner.jobs import JobSpec
from repro.runner.pool import run_sweep
from repro.runner.store import QUARANTINE_DIR, ResultStore

HELPERS = "tests.runner.helpers"

#: The three fixed fault plans CI soaks on (see .github/workflows).
PLANS = {
    101: FaultPlan(
        seed=101, worker_rate=0.7, store_rate=0.15, log_rate=0.0,
        hang_seconds=0.4, slow_seconds=0.05,
    ),
    202: FaultPlan(
        seed=202, worker_rate=0.0, store_rate=0.9, log_rate=1.0, max_kills=1,
    ),
    303: FaultPlan(
        seed=303, worker_rate=0.5, store_rate=0.5, log_rate=0.25,
        hang_seconds=5.0, slow_seconds=0.05, max_kills=1,
    ),
}

#: run_sweep keywords per seed; 303 arms the heartbeat watchdog so its
#: (long) hangs are reaped instead of slept through.
RUN_KW = {
    101: {},
    202: {},
    303: {"timeout": 1.0, "heartbeat": 0.2},
}


def _specs(n=5):
    return [
        JobSpec("T-OK", {"x": x}, entrypoint=f"{HELPERS}:ok_job")
        for x in range(n)
    ]


def _artifact_map(root):
    """Relative path -> bytes for every real artifact under ``root``."""
    return {
        p.relative_to(root): p.read_bytes()
        for p in sorted(root.glob("*/*.json"))
        if p.parent.name != QUARANTINE_DIR and not p.name.startswith(".")
    }


@pytest.mark.parametrize("seed", sorted(PLANS))
def test_soak_invariant(seed, tmp_path):
    specs = _specs()

    ref_store = ResultStore(tmp_path / "ref")
    run_sweep(specs, ref_store, workers=2, progress=False)

    store = ResultStore(tmp_path / "chaos")
    report = run_chaos_sweep(
        specs,
        store,
        PLANS[seed],
        events_path=tmp_path / "events.jsonl",
        workers=2,
        retries=2,
        backoff=0.01,
        **RUN_KW[seed],
    )

    # 1. terminated, 2. every job terminal with attributable history
    assert report.all_terminal
    assert len(report.chaos_outcomes) == len(specs)
    for outcome in report.chaos_outcomes:
        assert outcome.status in TERMINAL_STATUSES
        if outcome.status == "failed":
            assert outcome.attempts
            assert all(a.kind for a in outcome.attempts)

    # the plan actually exercised something (fixed seeds are chosen so)
    assert report.chaos["injected_total"] >= 1

    # 3. verification pass healed the store byte-for-byte
    assert _artifact_map(store.root) == _artifact_map(ref_store.root)
    assert all(o.ok for o in report.outcomes)


def test_store_heavy_seed_really_kills_and_resumes(tmp_path):
    """Seed 202 has log_rate=1.0: the first job_finish emit must die,
    forcing at least one journal recovery and sweep restart."""
    store = ResultStore(tmp_path / "chaos")
    report = run_chaos_sweep(
        _specs(),
        store,
        PLANS[202],
        events_path=tmp_path / "events.jsonl",
        workers=2,
        retries=2,
        backoff=0.01,
    )
    assert report.chaos["kills"] == 1
    assert report.rounds >= 2
    assert report.all_terminal


def test_chaos_run_is_reproducible(tmp_path):
    """Same plan, same specs -> same injection schedule."""
    plan = FaultPlan(seed=77, worker_rate=0.6, store_rate=0.4, log_rate=0.0)
    reports = []
    for run in ("a", "b"):
        store = ResultStore(tmp_path / run)
        reports.append(
            run_chaos_sweep(
                _specs(), store, plan,
                events_path=tmp_path / f"events-{run}.jsonl",
                workers=2, retries=2, backoff=0.01,
            )
        )
    assert reports[0].chaos["injected"] == reports[1].chaos["injected"]


def test_failed_jobs_stay_attributable_when_retries_exhaust(tmp_path):
    """With a zero retry budget, an injected worker fault is terminal —
    and the failure record says exactly what happened."""
    plan = FaultPlan(
        seed=11, worker_rate=1.0, store_rate=0.0, log_rate=0.0,
        worker_kinds=("exception",),
    )
    store = ResultStore(tmp_path)
    report = run_chaos_sweep(
        _specs(2), store, plan,
        workers=2, retries=0, backoff=0.01, verify=False,
    )
    assert report.all_terminal
    for outcome in report.chaos_outcomes:
        assert outcome.status == "failed"
        assert "chaos" in (outcome.error or "")
        assert [a.kind for a in outcome.attempts] == ["error"]
