"""Parallel bandwidth: CAPS simulation vs Theorem 1's two regimes.

Sweeps processor counts and local-memory sizes for Strassen's algorithm
on the simulated distributed machine, showing

- perfect strong scaling (BW ~ 1/P) while memory is plentiful, down to
  the memory-independent floor n^2 / P^(2/omega0);
- the (n/sqrt(M))^omega0 * M/P regime when memory is scarce (each lost
  memory level costs a factor b/a = 7/4);
- classical 2D / 2.5D / 3D baselines for contrast.

Run:  python examples/parallel_scaling.py
"""

from repro.bilinear import strassen
from repro.bounds import (
    memory_independent_lower_bound,
    parallel_bandwidth_lower_bound,
)
from repro.parallel import (
    DistributedMachine,
    classical_25d_bandwidth,
    classical_3d_bandwidth,
    minimum_memory,
    simulate_caps,
)
from repro.utils.tables import TextTable


def main() -> None:
    alg = strassen()
    n = 2**10

    print("Strong scaling with plentiful memory:")
    table = TextTable(
        ["P", "schedule", "BW (CAPS)", "n^2/P^(2/w) bound", "ratio",
         "classical 3D"]
    )
    for t in range(1, 6):
        P = 7**t
        run = simulate_caps(alg, n, DistributedMachine(P, 10**12))
        bound = memory_independent_lower_bound(alg, n, P)
        table.add_row(
            [P, run.schedule_string, run.bandwidth_cost, round(bound),
             round(run.bandwidth_cost / bound, 2),
             round(classical_3d_bandwidth(n, P))]
        )
    print(table.render())

    print("\nMemory-constrained regime (P = 7^3):")
    P = 7**3
    base = minimum_memory(alg, n, P)
    table2 = TextTable(
        ["M / (3n^2/P)", "schedule", "BW (CAPS)",
         "(n/sqrt(M))^w M/P bound", "2.5D classical (c fit)"]
    )
    for mult in (1.5, 2, 4, 8, 32, 128):
        M = int(base * mult)
        run = simulate_caps(alg, n, DistributedMachine(P, M))
        bound = parallel_bandwidth_lower_bound(alg, n, M, P)
        from repro.parallel import replication_for_memory

        c = replication_for_memory(n, P, M)
        table2.add_row(
            [mult, run.schedule_string, run.bandwidth_cost, round(bound),
             round(classical_25d_bandwidth(n, P, c))]
        )
    print(table2.render())
    print("\nEach DFS step in the schedule (a 'D') marks a lost memory "
          "level and costs a\nfactor b/a = 7/4 in bandwidth — the "
          "signature of Theorem 1's memory-bound term.")


if __name__ == "__main__":
    main()
