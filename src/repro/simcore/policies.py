"""The columnar core's single policy implementation.

LRU, FIFO and Belady eviction as lazy int64-encoded min-heaps over flat
arrays — lifted from the PR-8 pebbling kernels and shared, through
:mod:`repro.simcore.grid`, by every consumer (the pebble-game executor,
and indirectly the trace engine, whose stamp-heap recency rule is the
same decision procedure at line granularity).

Bit-for-bit identity with the golden reference
----------------------------------------------
The kernels must be indistinguishable from the retained reference
simulator (``tests/pebbling/_reference.py``) on every ``IOResult``
field, the eviction count and the cumulative ``io_trace``.  The
pure-Python loops achieve this with lazy min-heaps of tuples; here each
heap entry is encoded into a single ``int64``:

- recency: ``stamp * n + v`` — orders exactly like the tuple
  ``(stamp, v)`` because ``v < n``;
- belady: ``(T - next_use) * n + v`` — ``T`` is the "never used again"
  sentinel, so ``T - next_use`` ascends as ``-next_use`` does and the
  encoding orders exactly like ``(-next_use, v)``.

A binary min-heap over a total order pops the same value sequence
regardless of its internal layout, so the victim choices (and hence
every downstream count) match the Python loops exactly; the golden
equivalence and hypothesis suites assert this across schedules x
policies x cache sizes.

Layout
------
Every simulation's mutable state is *rows*: one slot axis per state kind
(``cached``/``dirty``/… over vertices, the heap, the scalar vector
``sc``).  A single configuration owns one row of each;
:mod:`repro.simcore.grid` stacks the rows into ``(config, slot)``
matrices and steps thousands of configurations in lockstep through the
per-step bodies below (``_recency_step`` / ``_belady_step``), which are
the *only* implementation of the eviction rules on the kernel path.
"""

from __future__ import annotations

import numpy as np

from repro.simcore.dispatch import njit

__all__ = [
    "READS", "WRITES", "INPUT_READS", "SPILL_READS", "SPILL_WRITES",
    "OUTPUT_WRITES", "PEAK", "EVICTIONS", "NCACHED", "HEAPN", "STATUS",
    "ERR_A", "ERR_B", "SC_LEN",
    "STATUS_OK", "STATUS_OPERAND_MISSING", "STATUS_NO_VICTIM",
]

# ----------------------------------------------------------------------
# Scalar-state layout (one int64 vector per simulation, stacked as one
# matrix row per configuration by the batched grid kernel).  The first
# eight slots match the count tuple the Python loops return.
# ----------------------------------------------------------------------

READS = 0
WRITES = 1
INPUT_READS = 2
SPILL_READS = 3
SPILL_WRITES = 4
OUTPUT_WRITES = 5
PEAK = 6
EVICTIONS = 7
NCACHED = 8
HEAPN = 9
STATUS = 10
ERR_A = 11
ERR_B = 12
SC_LEN = 13

STATUS_OK = 0
#: ``ERR_A`` = the operand, ``ERR_B`` = the vertex using it.
STATUS_OPERAND_MISSING = 1
STATUS_NO_VICTIM = 2


# ----------------------------------------------------------------------
# Flat binary min-heap (int64 keys, capacity preallocated by callers).
# ----------------------------------------------------------------------


@njit(cache=True, nogil=True)
def _heap_push(heap, size, val):
    heap[size] = val
    i = size
    while i > 0:
        parent = (i - 1) >> 1
        if heap[i] < heap[parent]:
            tmp = heap[i]
            heap[i] = heap[parent]
            heap[parent] = tmp
        else:
            break
        i = parent
    return size + 1


@njit(cache=True, nogil=True)
def _heap_pop(heap, size):
    """Remove the root; returns the new size."""
    size -= 1
    heap[0] = heap[size]
    i = 0
    while True:
        left = 2 * i + 1
        if left >= size:
            break
        child = left
        right = left + 1
        if right < size and heap[right] < heap[left]:
            child = right
        if heap[child] < heap[i]:
            tmp = heap[i]
            heap[i] = heap[child]
            heap[child] = tmp
            i = child
        else:
            break
    return size


# ----------------------------------------------------------------------
# Eviction helpers.  These are line-for-line transcriptions of
# ``evict_one`` in the Python loops; state travels in the arrays plus
# the ``sc`` scalar vector (numba cannot pass scalars by reference).
# ----------------------------------------------------------------------


@njit(cache=True, nogil=True)
def _recency_evict(heap, sc, cached, dirty, in_slow, output_written,
                   uses_left, is_output, stamp, pinned, aside, t, n):
    """One recency-policy eviction; returns 0, or -1 with ``sc[STATUS]``
    set.  Fresh entries of pinned vertices are set aside and re-pushed,
    exactly like the Python loop's ``aside`` list."""
    n_aside = 0
    u = np.int64(-1)
    while True:
        if sc[HEAPN] == 0:
            sc[STATUS] = STATUS_NO_VICTIM
            return -1
        e = heap[0]
        tm = e // n
        u = e % n
        if cached[u] == 0 or stamp[u] != tm:
            sc[HEAPN] = _heap_pop(heap, sc[HEAPN])  # stale entry
            continue
        if pinned[u] == t:
            aside[n_aside] = e
            n_aside += 1
            sc[HEAPN] = _heap_pop(heap, sc[HEAPN])
            continue
        break
    for i in range(n_aside):
        sc[HEAPN] = _heap_push(heap, sc[HEAPN], aside[i])
    sc[EVICTIONS] += 1
    cached[u] = 0
    sc[NCACHED] -= 1
    if dirty[u] == 1:
        if uses_left[u] > 0 or (is_output[u] == 1 and output_written[u] == 0):
            sc[WRITES] += 1
            in_slow[u] = 1
            if is_output[u] == 1:
                sc[OUTPUT_WRITES] += 1
                output_written[u] = 1
            else:
                sc[SPILL_WRITES] += 1
        dirty[u] = 0
    return 0


@njit(cache=True, nogil=True)
def _belady_evict(heap, sc, cached, dirty, in_slow, output_written,
                  uses_left, is_output, key, pinned, t, n, T):
    """One Belady eviction (max next-use first, ties on smaller vertex
    id); destructive pops for non-candidates and re-keyed pushes for
    stale entries match the reference policy's lazy invalidation."""
    u = np.int64(-1)
    found = False
    while sc[HEAPN] > 0:
        e = heap[0]
        u = e % n
        nxt = T - e // n
        if cached[u] == 0 or pinned[u] == t:
            sc[HEAPN] = _heap_pop(heap, sc[HEAPN])
            continue
        cur = key[u]
        if nxt != cur:
            sc[HEAPN] = _heap_pop(heap, sc[HEAPN])
            sc[HEAPN] = _heap_push(heap, sc[HEAPN], (T - cur) * n + u)
            continue
        found = True
        break
    if not found:
        # Heap exhausted (candidate entries were destructively popped
        # while pinned): deterministic fallback, smallest cached
        # unpinned vertex id.
        u = np.int64(-1)
        for w in range(n):
            if cached[w] == 1 and pinned[w] != t:
                u = w
                break
        if u < 0:
            sc[STATUS] = STATUS_NO_VICTIM
            return -1
    sc[EVICTIONS] += 1
    cached[u] = 0
    sc[NCACHED] -= 1
    if dirty[u] == 1:
        if uses_left[u] > 0 or (is_output[u] == 1 and output_written[u] == 0):
            sc[WRITES] += 1
            in_slow[u] = 1
            if is_output[u] == 1:
                sc[OUTPUT_WRITES] += 1
                output_written[u] = 1
            else:
                sc[SPILL_WRITES] += 1
        dirty[u] = 0
    return 0


# ----------------------------------------------------------------------
# Per-step bodies: one scheduled computation of one configuration.
# These are the shared core — the per-config kernels and the lockstep
# grid kernel both step through them, so there is exactly one
# implementation of each policy's simulation rule on the kernel path.
# All state arguments are 1-D rows (a single config's slice of the
# grid's (config, slot) matrices).
# ----------------------------------------------------------------------


@njit(cache=True, nogil=True)
def _recency_step(v, t, start, end, ops, n, cache_size, refresh_on_use,
                  is_input, is_output, cached, dirty, in_slow,
                  output_written, uses_left, stamp, pinned, heap, aside, sc):
    """One LRU/FIFO step; returns 0, or -1 with ``sc[STATUS]`` set."""
    pinned[v] = t
    for i in range(start, end):
        pinned[ops[i]] = t
    # Load missing operands.
    for i in range(start, end):
        p = ops[i]
        if cached[p] == 1:
            if refresh_on_use and stamp[p] != t:
                stamp[p] = t
                sc[HEAPN] = _heap_push(heap, sc[HEAPN], t * n + p)
        else:
            if in_slow[p] == 0:
                sc[STATUS] = STATUS_OPERAND_MISSING
                sc[ERR_A] = p
                sc[ERR_B] = v
                return -1
            while sc[NCACHED] >= cache_size:
                if _recency_evict(heap, sc, cached, dirty, in_slow,
                                  output_written, uses_left, is_output,
                                  stamp, pinned, aside, t, n) < 0:
                    return -1
            cached[p] = 1
            sc[NCACHED] += 1
            stamp[p] = t
            sc[HEAPN] = _heap_push(heap, sc[HEAPN], t * n + p)
            sc[READS] += 1
            if is_input[p] == 1:
                sc[INPUT_READS] += 1
            else:
                sc[SPILL_READS] += 1
    # Make room for the result and compute.
    while sc[NCACHED] >= cache_size:
        if _recency_evict(heap, sc, cached, dirty, in_slow,
                          output_written, uses_left, is_output,
                          stamp, pinned, aside, t, n) < 0:
            return -1
    if cached[v] == 0:
        cached[v] = 1
        sc[NCACHED] += 1
    dirty[v] = 1
    stamp[v] = t
    sc[HEAPN] = _heap_push(heap, sc[HEAPN], t * n + v)
    if sc[NCACHED] > sc[PEAK]:
        sc[PEAK] = sc[NCACHED]
    for i in range(start, end):
        uses_left[ops[i]] -= 1
    return 0


@njit(cache=True, nogil=True)
def _belady_step(v, t, start, end, ops, occ_next, first_use, n, T,
                 cache_size, is_input, is_output, cached, dirty, in_slow,
                 output_written, uses_left, key, pinned, heap, sc):
    """One Belady step; returns 0, or -1 with ``sc[STATUS]`` set."""
    pinned[v] = t
    for i in range(start, end):
        pinned[ops[i]] = t
    for i in range(start, end):
        p = ops[i]
        if cached[p] == 0:
            if in_slow[p] == 0:
                sc[STATUS] = STATUS_OPERAND_MISSING
                sc[ERR_A] = p
                sc[ERR_B] = v
                return -1
            while sc[NCACHED] >= cache_size:
                if _belady_evict(heap, sc, cached, dirty, in_slow,
                                 output_written, uses_left, is_output,
                                 key, pinned, t, n, T) < 0:
                    return -1
            cached[p] = 1
            sc[NCACHED] += 1
            sc[READS] += 1
            if is_input[p] == 1:
                sc[INPUT_READS] += 1
            else:
                sc[SPILL_READS] += 1
    while sc[NCACHED] >= cache_size:
        if _belady_evict(heap, sc, cached, dirty, in_slow,
                         output_written, uses_left, is_output,
                         key, pinned, t, n, T) < 0:
            return -1
    if cached[v] == 0:
        cached[v] = 1
        sc[NCACHED] += 1
    dirty[v] = 1
    nxt = first_use[v]
    key[v] = nxt
    sc[HEAPN] = _heap_push(heap, sc[HEAPN], (T - nxt) * n + v)
    if sc[NCACHED] > sc[PEAK]:
        sc[PEAK] = sc[NCACHED]
    # Refresh: exactly one heap entry per operand use, pushed after
    # the compute so it survives this step's evictions.
    for i in range(start, end):
        p = ops[i]
        nxt = occ_next[i]
        key[p] = nxt
        sc[HEAPN] = _heap_push(heap, sc[HEAPN], (T - nxt) * n + p)
        uses_left[p] -= 1
    return 0


@njit(cache=True, nogil=True)
def _drain_outputs(n, is_output, dirty, output_written, sc):
    """Post-schedule drain: outputs still dirty must reach slow memory."""
    for u in range(n):
        if dirty[u] == 1 and is_output[u] == 1 and output_written[u] == 0:
            sc[WRITES] += 1
            sc[OUTPUT_WRITES] += 1
            output_written[u] = 1
