"""Tests for Dinic max-flow and the Hong-Kung dominator machinery."""

import numpy as np
import pytest

from repro.bilinear import classical, strassen
from repro.bounds import (
    hong_kung_bound_from_partition,
    minimum_dominator_size,
    minimum_set,
    partition_by_io,
    verify_hk_partition,
)
from repro.cdag import Region, build_base_graph, build_cdag
from repro.schedules import loop_order_schedule, recursive_schedule
from repro.utils.flow import Dinic


class TestDinic:
    def test_simple_network(self):
        d = Dinic(4)
        d.add_edge(0, 1, 2)
        d.add_edge(0, 2, 2)
        d.add_edge(1, 3, 1)
        d.add_edge(2, 3, 3)
        assert d.max_flow(0, 3) == 3

    def test_disconnected(self):
        d = Dinic(3)
        d.add_edge(0, 1, 5)
        assert d.max_flow(0, 2) == 0

    def test_bottleneck(self):
        d = Dinic(5)
        d.add_edge(0, 1, 10)
        d.add_edge(1, 2, 1)
        d.add_edge(2, 3, 10)
        d.add_edge(0, 4, 10)
        d.add_edge(4, 2, 10)
        assert d.max_flow(0, 3) == 10  # capped by edge 2->3

    def test_min_cut_source_side(self):
        d = Dinic(4)
        d.add_edge(0, 1, 1)
        d.add_edge(1, 2, 5)
        d.add_edge(2, 3, 5)
        d.max_flow(0, 3)
        assert d.min_cut_source_side(0) == [0]

    def test_same_source_sink_raises(self):
        with pytest.raises(ValueError):
            Dinic(2).max_flow(0, 0)

    def test_bad_edge_raises(self):
        d = Dinic(2)
        with pytest.raises(ValueError):
            d.add_edge(0, 5, 1)
        with pytest.raises(ValueError):
            d.add_edge(0, 1, -1)

    def test_matches_networkx_on_random_graphs(self):
        import networkx as nx

        rng = np.random.default_rng(7)
        for _ in range(10):
            n = int(rng.integers(4, 10))
            g = nx.gnp_random_graph(n, 0.5, seed=int(rng.integers(1e6)),
                                    directed=True)
            d = Dinic(n)
            for u, v in g.edges:
                cap = int(rng.integers(1, 6))
                g[u][v]["capacity"] = cap
                d.add_edge(u, v, cap)
            expected = nx.maximum_flow_value(g, 0, n - 1)
            assert d.max_flow(0, n - 1) == expected


class TestDominators:
    def test_single_input_dominates_itself(self):
        g = build_base_graph(strassen())
        v = int(g.inputs()[0])
        assert minimum_dominator_size(g, [v]) == 1

    def test_product_dominated_by_one_vertex(self):
        # One product can be dominated by itself.
        g = build_base_graph(strassen())
        assert minimum_dominator_size(g, [int(g.products()[0])]) == 1

    def test_all_outputs_dominator(self):
        """The outputs of G_r can be dominated by the a^r outputs
        themselves (or anything smaller the cut finds)."""
        g = build_cdag(strassen(), 2)
        dom = minimum_dominator_size(g, g.outputs())
        assert 0 < dom <= len(g.outputs())

    def test_empty_targets(self):
        g = build_base_graph(strassen())
        assert minimum_dominator_size(g, []) == 0

    def test_dominator_monotone(self):
        g = build_cdag(strassen(), 2)
        few = minimum_dominator_size(g, g.outputs()[:2])
        more = minimum_dominator_size(g, g.outputs())
        assert few <= more


class TestMinimumSet:
    def test_outputs_are_their_own_minimum_set(self):
        g = build_base_graph(strassen())
        ms = minimum_set(g, g.outputs())
        np.testing.assert_array_equal(ms, g.outputs())

    def test_chain_minimum_set_is_top(self):
        g = build_cdag(strassen(), 2)
        # A product plus its decoder parent: only the parent survives.
        v = int(g.products()[0])
        parent = int(g.successors(v)[0])
        ms = minimum_set(g, [v, parent])
        assert parent in ms.tolist()


class TestHKPartition:
    def test_partition_covers_schedule(self):
        g = build_cdag(strassen(), 2)
        sched = recursive_schedule(g)
        parts = partition_by_io(g, sched, 8)
        recombined = np.concatenate(parts)
        np.testing.assert_array_equal(recombined, sched)

    def test_hk_envelope_on_classical(self):
        g = build_cdag(classical(2), 2)
        sched = loop_order_schedule(g, "ijk")
        M = 8
        parts = partition_by_io(g, sched, M)
        report = verify_hk_partition(g, parts, M)
        assert report["dominator_ok"]
        assert report["minimum_set_ok"]

    def test_certified_bound_sound(self):
        from repro.pebbling import simulate_io

        g = build_cdag(strassen(), 2)
        sched = recursive_schedule(g)
        M = 8
        parts = partition_by_io(g, sched, M)
        certified = hong_kung_bound_from_partition(len(parts), M)
        assert certified <= simulate_io(g, sched, M).total

    def test_bound_formula(self):
        assert hong_kung_bound_from_partition(10, 4) == 36
        assert hong_kung_bound_from_partition(0, 4) == 0

    def test_more_io_more_parts(self):
        """A worse schedule induces more 2M-phases (HK's counting)."""
        from repro.schedules import rank_order_schedule

        g = build_cdag(strassen(), 2)
        M = 8
        good = partition_by_io(g, recursive_schedule(g), M)
        bad = partition_by_io(g, rank_order_schedule(g), M)
        assert len(bad) >= len(good)
