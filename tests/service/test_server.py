"""Daemon behaviour: store fast path, admission control, retries, drain.

Every test runs a real daemon (``ServiceThread``) with real fork-started
workers over a real unix socket; job bodies come from
``tests.runner.helpers`` and are trivial, so the module stays fast.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import chaos
from repro.chaos.plan import FaultPlan
from repro.errors import ServiceError
from repro.runner.jobs import JobSpec
from repro.runner.store import ResultStore
from repro.service import ServiceClient, ServiceConfig, ServiceThread

HELPERS = "tests.runner.helpers"


def wait_for_inflight(client, n, deadline=10.0):
    """Poll until the daemon reports ``n`` in-flight jobs."""
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline:
        if client.status()["inflight"] >= n:
            return
        time.sleep(0.02)
    raise AssertionError(f"daemon never reached {n} in-flight jobs")


def spec(name, params=None, seed=None, fn=None):
    return JobSpec(
        name, params or {}, seed=seed,
        entrypoint=f"{HELPERS}:{fn or 'ok_job'}",
    )


@pytest.fixture
def make_config(tmp_path):
    def make(**kw):
        kw.setdefault("socket_path", str(tmp_path / "svc.sock"))
        kw.setdefault("cache_dir", str(tmp_path / "cache"))
        kw.setdefault("workers", 1)
        kw.setdefault("shm_root", None)
        kw.setdefault("backoff", 0.01)
        return ServiceConfig(**kw)

    return make


def journal_records(config) -> list[dict]:
    path = config.resolved_events_path()
    out = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


class TestStoreFastPath:
    def test_second_submission_skips_workers(self, make_config):
        config = make_config()
        job = spec("T-OK", {"x": 3})
        with ServiceThread(config):
            with ServiceClient(config.socket_path) as client:
                first = client.submit([job])
                assert first["dispatched"] == 1
                assert first["hits"] == 0
                assert first["ok"] == 1
                second = client.submit([job])
                assert second["hits"] == 1
                assert second["dispatched"] == 0
                assert second["ok"] == 1
                (msg,) = second["results"]
                assert msg["status"] == "cached"
                assert msg["source"] == "store"
                assert msg["payload"]["data"]["squared"] == 9
                status = client.status()
                # The hit was served by the event loop alone: exactly one
                # worker dispatch ever happened.
                assert status["hit_no_worker"] == 1
                assert status["counters"]["service.dispatched"] == 1
                assert status["jobs_done"] == 1

    def test_fresh_bypasses_the_store(self, make_config):
        config = make_config()
        job = spec("T-OK", {"x": 5})
        with ServiceThread(config):
            with ServiceClient(config.socket_path) as client:
                client.submit([job])
                again = client.submit([job], fresh=True)
                assert again["hits"] == 0
                assert again["dispatched"] == 1

    def test_result_lands_in_the_shared_store(self, make_config):
        config = make_config()
        job = spec("T-OK", {"x": 7})
        with ServiceThread(config):
            with ServiceClient(config.socket_path) as client:
                client.submit([job])
        artifact = ResultStore(config.cache_dir).get(job)
        assert artifact is not None
        assert artifact["result"]["data"]["squared"] == 49


class TestAdmission:
    def test_queue_full_rejection(self, make_config):
        config = make_config(queue_limit=1)
        jobs = [spec("T-SLEEPY", {"duration": d}, fn="sleepy_job")
                for d in (1.0, 1.01)]
        with ServiceThread(config):
            with ServiceClient(config.socket_path) as client:
                summary = client.submit(jobs, wait=False)
                assert summary["dispatched"] == 1
                assert summary["rejected"] == 1
                (msg,) = summary["results"]
                assert msg["op"] == "rejected"
                assert msg["reason"] == "queue_full"
                assert client.status()["counters"][
                    "service.rejected.queue_full"] == 1

    def test_client_quota_rejection(self, make_config):
        config = make_config(client_quota=1, queue_limit=64)
        jobs = [spec("T-SLEEPY", {"duration": d}, fn="sleepy_job")
                for d in (0.5, 0.51)]
        with ServiceThread(config):
            with ServiceClient(config.socket_path) as client:
                summary = client.submit(jobs, wait=False)
                assert summary["dispatched"] == 1
                assert summary["rejected"] == 1
                assert summary["results"][0]["reason"] == "quota"

    def test_identical_inflight_submission_coalesces(self, make_config):
        config = make_config(workers=1)
        job = spec("T-SLEEPY", {"duration": 1.0}, fn="sleepy_job")
        with ServiceThread(config):
            with ServiceClient(config.socket_path) as starter:
                started = starter.submit([job], wait=False)
                assert started["dispatched"] == 1
                with ServiceClient(config.socket_path) as rider:
                    summary = rider.submit([job])
                    assert summary["coalesced"] == 1
                    assert summary["dispatched"] == 0
                    assert summary["ok"] == 1
                    assert summary["results"][0]["status"] == "ok"
                    assert rider.status()["counters"]["service.coalesced"] == 1
        # One worker dispatch total: exactly one job_start in the journal.
        starts = [r for r in journal_records(config)
                  if r.get("event") == "job_start"]
        assert len(starts) == 1


class TestFailures:
    def test_error_job_fails_after_retries(self, make_config):
        config = make_config(retries=0)
        with ServiceThread(config):
            with ServiceClient(config.socket_path) as client:
                summary = client.submit([spec("T-ERR", fn="error_job")])
                assert summary["failed"] == 1
                assert summary["ok"] == 0
                (msg,) = summary["results"]
                assert msg["status"] == "failed"
                assert "RuntimeError" in msg["error"]
                assert len(msg["attempts"]) == 1

    def test_flaky_job_retries_to_success(self, make_config, tmp_path):
        config = make_config(retries=1)
        job = spec("T-FLAKY",
                   {"marker_dir": str(tmp_path / "marks"), "fail_times": 1},
                   fn="flaky_job")
        with ServiceThread(config):
            with ServiceClient(config.socket_path) as client:
                summary = client.submit([job])
                assert summary["ok"] == 1
                assert summary["failed"] == 0
        events = [r.get("event") for r in journal_records(config)]
        assert "job_retry" in events
        assert "job_finish" in events


class TestDrain:
    def test_drain_finishes_the_inflight_job(self, make_config):
        config = make_config()
        job = spec("T-SLEEPY", {"duration": 0.8}, fn="sleepy_job")
        handle = ServiceThread(config).start()
        with ServiceClient(config.socket_path) as client:
            client.submit([job], wait=False)
            wait_for_inflight(client, 1)
            client.drain()
        handle.drain()
        # The in-flight job was allowed to finish and publish.
        assert ResultStore(config.cache_dir).get(job) is not None
        events = [r.get("event") for r in journal_records(config)]
        assert "job_finish" in events
        assert "service_drain" in events
        assert events[-1] == "service_stop"

    def test_drain_fails_queued_jobs_fast(self, make_config):
        config = make_config(workers=1)
        inflight = spec("T-SLEEPY", {"duration": 1.0}, fn="sleepy_job")
        queued = spec("T-SLEEPY", {"duration": 1.02}, fn="sleepy_job")
        handle = ServiceThread(config).start()
        with ServiceClient(config.socket_path) as client:
            client.submit([inflight, queued], wait=False)
            wait_for_inflight(client, 1)
            client.drain()
        handle.drain()
        store = ResultStore(config.cache_dir)
        assert store.get(inflight) is not None  # ran to completion
        assert store.get(queued) is None  # failed fast, never dispatched
        failed = [r for r in journal_records(config)
                  if r.get("event") == "job_failed"]
        assert [r["key"] for r in failed] == [queued.cache_key]

    def test_socket_removed_after_drain(self, make_config, tmp_path):
        config = make_config()
        with ServiceThread(config):
            assert ServiceClient(config.socket_path).ping()
        assert not os.path.exists(config.socket_path)


class TestSocketLifecycle:
    def test_stale_socket_file_is_replaced(self, make_config, tmp_path):
        config = make_config()
        # A dead daemon's leftover socket path must not block startup.
        with open(config.socket_path, "w", encoding="utf-8") as fh:
            fh.write("stale")
        with ServiceThread(config):
            with ServiceClient(config.socket_path) as client:
                assert client.ping()

    def test_live_socket_refuses_second_daemon(self, make_config):
        config = make_config()
        with ServiceThread(config):
            with pytest.raises(ServiceError):
                ServiceThread(config).start()


class TestChaosRestart:
    def test_corrupted_store_heals_across_restart(self, make_config):
        config = make_config()
        job = spec("T-OK", {"x": 11})
        plan = FaultPlan(seed=7, worker_rate=0.0, store_rate=1.0,
                         log_rate=0.0, store_kinds=("bitflip",))
        with chaos.monkey(plan):
            with ServiceThread(config):
                with ServiceClient(config.socket_path) as client:
                    summary = client.submit([job])
                    assert summary["ok"] == 1
        # The artifact was corrupted right after publication; a clean
        # restart must treat it as a miss, re-dispatch, and re-publish.
        with ServiceThread(config):
            with ServiceClient(config.socket_path) as client:
                summary = client.submit([job])
                assert summary["hits"] == 0
                assert summary["dispatched"] == 1
                status = client.status()
                assert status["hit_no_worker"] == 0
                # ...and now the store is healthy again.
                third = client.submit([job])
                assert third["hits"] == 1
        artifact = ResultStore(config.cache_dir).get(job)
        assert artifact is not None
