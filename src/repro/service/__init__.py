"""Long-lived sweep service: daemon, warm worker pool, shared-memory tier.

``repro serve`` turns the batch sweep runner into a resident service:

- an **asyncio front end** over a local unix socket speaking
  newline-delimited JSON (:mod:`repro.service.protocol`,
  :mod:`repro.service.server`) — clients submit sweep job specs and
  stream structured events back;
- **store fast path** — a job whose artifact is already in the
  content-addressed :class:`~repro.runner.store.ResultStore` is answered
  *without touching a worker* (counted as ``service.hit_no_worker``);
- a **resident warm worker pool** (:mod:`repro.service.workers`) whose
  processes pre-import the experiment registry and pre-attach the graph
  bundle cache, with the affinity-aware dispatch of the batch scheduler;
- a **shared-memory hot tier** (:mod:`repro.service.shm`) in front of
  the graph-bundle cache, so every resident worker maps one physical
  copy of each CDAG / schedule / executor plan;
- **admission control** — a bounded queue plus per-client in-flight
  quotas; overload is answered with a backpressure response, never with
  an unbounded queue;
- **graceful drain** — SIGTERM finishes in-flight jobs, journals the
  final state, unlinks every shared-memory segment, and exits 0.

The thin synchronous client (:class:`~repro.service.client.ServiceClient`,
``repro submit``) is what the CLI, tests and CI use.
"""

from repro.service.client import ServiceClient
from repro.service.protocol import (
    PROTOCOL_VERSION,
    decode_line,
    doc_to_spec,
    encode,
    spec_to_doc,
)
from repro.service.server import ServiceConfig, ServiceThread, SweepService, serve
from repro.service.shm import ShmTier
from repro.service.workers import WarmPool

__all__ = [
    "PROTOCOL_VERSION",
    "ServiceClient",
    "ServiceConfig",
    "ServiceThread",
    "ShmTier",
    "SweepService",
    "WarmPool",
    "decode_line",
    "doc_to_spec",
    "encode",
    "serve",
    "spec_to_doc",
]
