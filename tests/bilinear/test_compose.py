"""Tests for tensor products and tensor-symmetry transforms."""

import numpy as np
import pytest

from repro.bilinear import (
    classical,
    laderman,
    numeric_check,
    strassen,
    strassen_squared,
    strassen_x_classical,
    tensor_product,
    winograd,
)
from repro.bilinear.compose import cyclic_rotation, tensor_power, transpose_dual


class TestTensorProduct:
    def test_parameters(self):
        comp = tensor_product(strassen(), classical(2))
        assert comp.n0 == 4
        assert comp.b == 7 * 8

    def test_valid(self):
        assert tensor_product(strassen(), classical(2)).is_valid()

    def test_numeric(self):
        comp = tensor_product(strassen(), strassen())
        assert numeric_check(comp, trials=3, seed=3) < 1e-9

    def test_exponent_mixing(self):
        comp = tensor_product(strassen(), classical(2))
        # (n1*n2)^w = b1*b2
        assert comp.omega0 == pytest.approx(np.log(56) / np.log(4))
        assert comp.is_strassen_like

    def test_asymmetric_orders_both_valid(self):
        assert tensor_product(classical(2), strassen()).is_valid()

    def test_different_sizes(self):
        comp = tensor_product(strassen(), classical(3))
        assert comp.n0 == 6
        assert comp.b == 7 * 27
        assert comp.is_valid()

    def test_custom_name(self):
        comp = tensor_product(strassen(), strassen(), name="foo")
        assert comp.name == "foo"


class TestTensorPower:
    def test_power_one_is_same_maps(self):
        alg = tensor_power(strassen(), 1)
        np.testing.assert_array_equal(alg.U, strassen().U)

    def test_power_two(self):
        alg = tensor_power(strassen(), 2)
        assert alg.n0 == 4
        assert alg.b == 49
        assert alg.omega0 == pytest.approx(strassen().omega0)

    def test_power_zero_raises(self):
        with pytest.raises(ValueError):
            tensor_power(strassen(), 0)


class TestNamedCompositions:
    def test_strassen_x_classical_disconnected_decoder(self):
        comp = strassen_x_classical()
        assert comp.is_strassen_like
        assert len(comp.decoder_components()) > 1

    def test_strassen_x_classical_multiple_copying(self):
        assert strassen_x_classical().has_multiple_copying()

    def test_strassen_squared_connected(self):
        comp = strassen_squared()
        assert len(comp.decoder_components()) == 1
        assert comp.omega0 == pytest.approx(np.log2(7))

    def test_cached(self):
        assert strassen_x_classical() is strassen_x_classical()


class TestSymmetries:
    @pytest.mark.parametrize(
        "maker",
        [strassen, winograd, lambda: classical(2), laderman],
        ids=["strassen", "winograd", "classical2", "laderman"],
    )
    def test_cyclic_rotation_valid(self, maker):
        assert cyclic_rotation(maker()).is_valid()

    @pytest.mark.parametrize(
        "maker",
        [strassen, winograd, lambda: classical(2), laderman],
        ids=["strassen", "winograd", "classical2", "laderman"],
    )
    def test_transpose_dual_valid(self, maker):
        assert transpose_dual(maker()).is_valid()

    def test_rotation_preserves_parameters(self):
        rot = cyclic_rotation(strassen())
        assert (rot.n0, rot.b) == (2, 7)

    def test_rotation_changes_support(self):
        rot = cyclic_rotation(strassen())
        assert not np.array_equal(rot.U, strassen().U)

    def test_triple_rotation_is_identity_algorithm(self):
        """Rotating three times returns to an algorithm computing the
        same function (coefficients may be permuted among products)."""
        alg = strassen()
        rot3 = cyclic_rotation(cyclic_rotation(cyclic_rotation(alg)))
        assert rot3.is_valid()
        np.testing.assert_allclose(rot3.U, alg.U)
        np.testing.assert_allclose(rot3.V, alg.V)
        np.testing.assert_allclose(rot3.W, alg.W)

    def test_double_dual_is_identity(self):
        alg = winograd()
        dd = transpose_dual(transpose_dual(alg))
        np.testing.assert_allclose(dd.U, alg.U)
        np.testing.assert_allclose(dd.V, alg.V)
        np.testing.assert_allclose(dd.W, alg.W)
