"""Shared low-level utilities: mixed-radix indexing, union-find, bipartite
matching, argument validation, text tables, and seeded RNG helpers.

These are internal building blocks; they carry no matrix-multiplication
semantics of their own but are exported for reuse in downstream code and
tests.
"""

from repro.utils.indexing import (
    MixedRadix,
    pack_tuple,
    unpack_tuple,
    pair_index,
    pair_unindex,
    digits_to_int,
    int_to_digits,
)
from repro.utils.unionfind import UnionFind
from repro.utils.flow import (
    hopcroft_karp,
    capacitated_matching,
    hall_violator,
)
from repro.utils.validation import (
    check_positive_int,
    check_nonnegative_int,
    check_in_range,
    check_power,
)
from repro.utils.tables import TextTable, format_count, format_ratio
from repro.utils.rngs import make_rng

__all__ = [
    "MixedRadix",
    "pack_tuple",
    "unpack_tuple",
    "pair_index",
    "pair_unindex",
    "digits_to_int",
    "int_to_digits",
    "UnionFind",
    "hopcroft_karp",
    "capacitated_matching",
    "hall_violator",
    "check_positive_int",
    "check_nonnegative_int",
    "check_in_range",
    "check_power",
    "TextTable",
    "format_count",
    "format_ratio",
    "make_rng",
]
