"""Deterministic pseudo-random functions for reproducible scheduling.

Shared by the retry-backoff jitter in :mod:`repro.runner.pool` and the
fault schedule in :mod:`repro.chaos.plan`.  A PRF (hash of the inputs)
rather than a stateful RNG keeps every decision **order-independent**:
the same (seed, site, key) always draws the same value no matter how
the scheduler interleaved the other jobs, which is what makes chaos
runs and jittered retries replayable from a single seed.
"""

from __future__ import annotations

import hashlib

__all__ = ["prf01", "prf_choice"]


def prf01(*parts) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed by ``parts``.

    Parts are joined by their ``str()`` forms, so any mix of ints,
    strings and floats works; the draw is stable across processes,
    platforms and Python versions (SHA-256 of the key material).
    """
    blob = "\x1f".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def prf_choice(options, *parts):
    """Deterministically pick one of ``options`` keyed by ``parts``."""
    seq = list(options)
    if not seq:
        raise ValueError("prf_choice needs at least one option")
    return seq[int(prf01(*parts) * len(seq)) % len(seq)]
