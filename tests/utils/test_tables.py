"""Tests for the text-table renderer."""

import pytest

from repro.utils.tables import TextTable, format_count, format_ratio


class TestTextTable:
    def test_basic_render(self):
        t = TextTable(["k", "bound"])
        t.add_row([1, 77])
        out = t.render()
        lines = out.splitlines()
        assert lines[0].split("|")[0].strip() == "k"
        assert "77" in lines[2]

    def test_title(self):
        t = TextTable(["a"], title="E3")
        t.add_row([1])
        assert t.render().startswith("E3")

    def test_alignment_numeric_right(self):
        t = TextTable(["name", "value"])
        t.add_row(["x", 1])
        t.add_row(["longer", 100])
        lines = t.render().splitlines()
        # numeric column is right-aligned: shorter number padded on left
        assert lines[-2].endswith("    1")

    def test_wrong_cell_count_raises(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        t = TextTable(["v"])
        t.add_row([3.14159])
        assert "3.142" in t.render()

    def test_large_float_scientific(self):
        t = TextTable(["v"])
        t.add_row([1.5e9])
        assert "e+09" in t.render()

    def test_str_dunder(self):
        t = TextTable(["a"])
        t.add_row([1])
        assert str(t) == t.render()


class TestFormatters:
    def test_format_count_int(self):
        assert format_count(1234567) == "1,234,567"

    def test_format_count_integral_float(self):
        assert format_count(12.0) == "12"

    def test_format_count_fractional(self):
        assert format_count(12.345) == "12.35"

    def test_format_ratio(self):
        assert format_ratio(1, 2) == "0.500"

    def test_format_ratio_zero_denominator(self):
        assert format_ratio(1, 0) == "-"
