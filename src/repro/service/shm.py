"""Shared-memory hot tier over the graph-bundle cache.

The graph-bundle cache (:mod:`repro.runner.graphcache`) already shares
compiled arrays across processes through the page cache: every worker
``np.memmap``-s the same ``.npy`` files.  The hot tier goes one step
further for a *resident* service: arrays are published once into named
``multiprocessing.shared_memory`` segments, and every warm worker
attaches the same segment — one physical copy per machine, attach cost
independent of array size, no per-request checksum pass.

Layout of one segment::

    [0:8]                uint64 LE header length H
    [8:8+H]              JSON header {"kind", "key", "arrays": {name:
                         {"dtype", "shape", "offset", "nbytes"}}}
    [align64(8+H):]      raw array bytes (offsets relative to here)

Lifecycle discipline (the part ``SharedMemory`` does not give you):

- **deterministic names** — a segment is named by a digest of
  ``(ledger root, kind, content key)``, so concurrent publishers
  converge on one segment and losing the create race is an attach;
- **ledger** — every created segment is recorded as a JSON file under
  the ledger directory *before* the segment exists.  Cleanup never
  depends on the creating process surviving: :meth:`drain` (and the
  startup :meth:`gc`) unlink every ledger-recorded segment, which also
  heals segments leaked by a crashed worker (the ``shm_leak`` chaos
  fault exercises exactly that path);
- **refcounted handles** — arrays handed out keep their segment mapped
  via weakref finalizers; an LRU-evicted or drained segment is unlinked
  immediately (readers keep their mapping — POSIX semantics) but its
  local mapping is closed only once the last array view dies;
- **no resource-tracker noise** — segments are unregistered from the
  ``multiprocessing`` resource tracker on open and re-registered just
  before unlink, so neither workers nor the daemon emit "leaked
  shared_memory" warnings; the ledger, not the tracker, owns cleanup.

The tier is deliberately write-through-less: evicting a segment spills
nothing, because the bundle on disk (memmap tier) is always the durable
copy — a subsequent miss simply falls back to the graph cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import weakref
from collections import OrderedDict
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.errors import ServiceError

__all__ = ["ShmTier", "segment_name"]

#: Environment variable naming a ledger directory; workers spawned by a
#: sweep or the service attach the tier lazily through
#: :func:`repro.cdag.artifact.active_cache`.
ENV_VAR = "REPRO_SHM_LEDGER"

#: Default budget of live segments per tier before LRU eviction.
DEFAULT_MAX_BYTES = 256 << 20

_HEADER_STRUCT = struct.Struct("<Q")
_ALIGN = 64


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def segment_name(root: str | os.PathLike, kind: str, key: str) -> str:
    """Deterministic segment name for ``(kind, key)`` under ``root``.

    The root is folded in so two tiers with different ledgers (say, two
    test sandboxes on one machine) can never collide in ``/dev/shm``.
    """
    h = hashlib.sha256(f"{Path(root).resolve()}:{kind}:{key}".encode())
    return f"repro-{h.hexdigest()[:24]}"


def _untrack(name: str) -> None:
    """Remove ``name`` from the multiprocessing resource tracker (the
    ledger owns cleanup; the tracker would double-unlink and warn)."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


def _track(name: str) -> None:
    """Re-register ``name`` so the ``unlink()`` that follows balances
    the tracker's books (register/unregister always pair up)."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register(f"/{name}", "shared_memory")
    except Exception:
        pass


class _Segment:
    """One mapped segment plus its local refcount."""

    __slots__ = ("name", "shm", "nbytes", "refs", "retired")

    def __init__(self, name: str, shm, nbytes: int):
        self.name = name
        self.shm = shm
        self.nbytes = nbytes
        self.refs = 0  # live array views handed out by this process
        self.retired = False  # unlinked (or drained): close at refs==0

    def close(self) -> bool:
        try:
            self.shm.close()
            return True
        except BufferError:
            # An array view still points into the buffer; the finalizer
            # that drops the last view retries.
            return False


class ShmTier:
    """Named-segment hot tier with a ledger rooted at ``root``."""

    def __init__(self, root: str | os.PathLike, max_bytes: int = DEFAULT_MAX_BYTES):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = int(max_bytes)
        #: segments this process created, oldest first (the LRU axis).
        self._created: OrderedDict[str, int] = OrderedDict()
        #: every segment this process has mapped, by name.
        self._segments: dict[str, _Segment] = {}

    # ------------------------------------------------------------------
    # Ledger
    # ------------------------------------------------------------------

    def _ledger_path(self, name: str) -> Path:
        return self.root / f"{name}.seg"

    def _ledger_write(self, name: str, kind: str, key: str, nbytes: int) -> None:
        doc = {"name": name, "kind": kind, "key": key, "nbytes": int(nbytes)}
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-", suffix=".seg")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, sort_keys=True) + "\n")
        os.replace(tmp, self._ledger_path(name))

    def ledger(self) -> list[dict]:
        """Every recorded segment (sorted by name, for stable output)."""
        out = []
        for path in sorted(self.root.glob("*.seg")):
            try:
                out.append(json.loads(path.read_text(encoding="utf-8")))
            except (OSError, json.JSONDecodeError):
                continue
        return out

    # ------------------------------------------------------------------
    # Publish / attach
    # ------------------------------------------------------------------

    def put(self, kind: str, key: str, arrays: Mapping[str, np.ndarray]) -> bool:
        """Publish ``arrays`` as one shared segment; True when the
        segment exists afterwards (created here or by a racing peer).
        Oversized payloads are declined — the memmap tier handles them.
        """
        from multiprocessing import shared_memory

        name = segment_name(self.root, kind, key)
        seg = self._segments.get(name)
        if seg is not None and not seg.retired:
            return True
        entries: dict[str, dict] = {}
        blobs: list[tuple[str, np.ndarray]] = []
        offset = 0
        for arr_name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            entries[arr_name] = {
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": int(arr.nbytes),
            }
            blobs.append((arr_name, arr))
            offset = _align(offset + arr.nbytes)
        header = json.dumps(
            {"kind": kind, "key": key, "arrays": entries}, sort_keys=True
        ).encode("utf-8")
        data_start = _align(_HEADER_STRUCT.size + len(header))
        total = max(1, data_start + offset)
        if total > self.max_bytes:
            return False
        self._make_room(total)
        # Ledger first: if this process dies between the record and the
        # create (or right after the create), drain/gc can still unlink.
        self._ledger_write(name, kind, key, total)
        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        except FileExistsError:
            # Lost the publish race; the peer's content-identical
            # segment wins and this attach is a hit.
            return self._attach(name) is not None
        except OSError as exc:
            try:
                self._ledger_path(name).unlink()
            except OSError:
                pass
            raise ServiceError(f"cannot create shm segment {name}: {exc}") from exc
        _untrack(name)
        buf = shm.buf
        buf[: _HEADER_STRUCT.size] = _HEADER_STRUCT.pack(len(header))
        buf[_HEADER_STRUCT.size : _HEADER_STRUCT.size + len(header)] = header
        for arr_name, arr in blobs:
            entry = entries[arr_name]
            start = data_start + entry["offset"]
            buf[start : start + arr.nbytes] = arr.tobytes()
        self._segments[name] = _Segment(name, shm, total)
        self._created[name] = total
        return True

    def _attach(self, name: str) -> _Segment | None:
        from multiprocessing import shared_memory

        seg = self._segments.get(name)
        if seg is not None and not seg.retired:
            return seg
        try:
            shm = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            return None
        _untrack(name)
        seg = _Segment(name, shm, shm.size)
        self._segments[name] = seg
        return seg

    def get(self, kind: str, key: str) -> dict[str, np.ndarray] | None:
        """Attach the segment for ``(kind, key)`` and view its arrays,
        or None when no peer has published it (fall back to the graph
        cache).  Views are read-only and keep the mapping alive."""
        name = segment_name(self.root, kind, key)
        seg = self._attach(name)
        if seg is None:
            return None
        try:
            return self._arrays_of(seg, kind, key)
        except (ValueError, KeyError, json.JSONDecodeError, struct.error):
            # A torn or foreign segment reads as a miss, mirroring the
            # store/bundle corruption discipline; unlink so nobody else
            # trips over it and the memmap tier repopulates.
            self._retire(name)
            return None

    def _arrays_of(self, seg: _Segment, kind: str, key: str) -> dict[str, np.ndarray]:
        buf = seg.shm.buf
        (header_len,) = _HEADER_STRUCT.unpack_from(buf, 0)
        if header_len <= 0 or _HEADER_STRUCT.size + header_len > len(buf):
            raise ValueError("shm header length out of range")
        header = json.loads(
            bytes(buf[_HEADER_STRUCT.size : _HEADER_STRUCT.size + header_len])
        )
        if header.get("kind") != kind or header.get("key") != key:
            raise ValueError("shm segment identity mismatch")
        data_start = _align(_HEADER_STRUCT.size + header_len)
        arrays: dict[str, np.ndarray] = {}
        for arr_name, entry in header["arrays"].items():
            arr = np.ndarray(
                tuple(entry["shape"]),
                dtype=np.dtype(entry["dtype"]),
                buffer=buf,
                offset=data_start + int(entry["offset"]),
            )
            arr.flags.writeable = False
            weakref.finalize(arr, self._deref, seg.name)
            seg.refs += 1
            arrays[arr_name] = arr
        return arrays

    # ------------------------------------------------------------------
    # Eviction / cleanup
    # ------------------------------------------------------------------

    def _deref(self, name: str) -> None:
        seg = self._segments.get(name)
        if seg is None:
            return
        seg.refs -= 1
        if seg.retired and seg.refs <= 0 and seg.close():
            self._segments.pop(name, None)

    def _retire(self, name: str) -> None:
        """Unlink ``name`` (readers keep their mappings) and schedule
        the local close for when the last array view dies."""
        seg = self._segments.get(name) or self._attach(name)
        if seg is not None and not seg.retired:
            seg.retired = True
            _track(name)
            try:
                seg.shm.unlink()
            except (FileNotFoundError, OSError):
                _untrack(name)
            if seg.refs <= 0 and seg.close():
                self._segments.pop(name, None)
        self._created.pop(name, None)
        try:
            self._ledger_path(name).unlink()
        except OSError:
            pass

    def _make_room(self, incoming: int) -> None:
        used = sum(self._created.values())
        while self._created and used + incoming > self.max_bytes:
            oldest, nbytes = next(iter(self._created.items()))
            self._retire(oldest)
            used -= nbytes

    def drain(self) -> list[str]:
        """Unlink every ledger-recorded segment (ours or a dead peer's)
        and every locally mapped one; returns the unlinked names.  Safe
        to call repeatedly; the ledger directory itself is kept."""
        names = {doc["name"] for doc in self.ledger() if "name" in doc}
        names.update(self._segments)
        removed = sorted(names)
        for name in removed:
            self._retire(name)
        # Stale ledger files whose segment never materialised.
        for path in self.root.glob("*.seg"):
            try:
                path.unlink()
            except OSError:
                pass
        for path in self.root.glob(".tmp-*.seg"):
            try:
                path.unlink()
            except OSError:
                pass
        return removed

    def gc(self) -> list[str]:
        """Startup hygiene: unlink segments a dead service left behind.
        Identical to :meth:`drain` — run it only when no peer is live,
        the same contract as :meth:`ResultStore.gc_orphans`."""
        return self.drain()

    def stats(self) -> dict:
        """Local view of the tier (for ``status`` responses and tests)."""
        return {
            "segments": len(self._segments),
            "created": len(self._created),
            "created_bytes": sum(self._created.values()),
            "ledger": len(list(self.root.glob("*.seg"))),
            "max_bytes": self.max_bytes,
        }
