"""Computation DAGs of recursive Strassen-like algorithms.

- :class:`CDAG` / :func:`build_cdag`: the ranked recursive graph ``G_r``;
- :mod:`repro.cdag.metavertex`: copy chains/trees (paper Figure 2);
- :mod:`repro.cdag.decompose`: Fact 1 (``G_{r,k}`` copies) and Lemma 1
  (input-disjoint families);
- :mod:`repro.cdag.inspect` / :mod:`repro.cdag.render`: structure reports
  and DOT/ASCII rendering.
"""

from repro.cdag.graph import CDAG, Region, Slab
from repro.cdag.builder import build_cdag, build_base_graph, MAX_VERTICES
from repro.cdag.metavertex import (
    MetaVertexPartition,
    compute_metavertices,
    compute_value_classes,
)
from repro.cdag.decompose import (
    Subcomputation,
    subcomputation,
    subcomputation_count,
    subcomputation_of_vertex,
    middle_ranks_vertices,
    input_disjoint_family,
    verify_fact1,
)
from repro.cdag.inspect import (
    rank_sizes,
    expected_rank_sizes,
    connected_components,
    is_connected,
    region_components,
    CDAGSummary,
    summarize,
)
from repro.cdag.render import to_dot, ascii_ranks, describe_vertex

__all__ = [
    "CDAG",
    "Region",
    "Slab",
    "build_cdag",
    "build_base_graph",
    "MAX_VERTICES",
    "MetaVertexPartition",
    "compute_metavertices",
    "compute_value_classes",
    "Subcomputation",
    "subcomputation",
    "subcomputation_count",
    "subcomputation_of_vertex",
    "middle_ranks_vertices",
    "input_disjoint_family",
    "verify_fact1",
    "rank_sizes",
    "expected_rank_sizes",
    "connected_components",
    "is_connected",
    "region_components",
    "CDAGSummary",
    "summarize",
    "to_dot",
    "ascii_ranks",
    "describe_vertex",
]
