"""Local search over schedules: probing the lower bound from above.

The I/O-complexity is a minimum over *all* schedules; any fixed family
(even the recursive one) only brackets it from above.  This module runs
a budgeted hill-climb over demand-driven product orders — neighbourhood:
swap two contiguous blocks of the product sequence — to search for
schedules better than the recursive one.  Its empirical finding (used as
a check in the E13 ablations and the test suite) is that the search
never improves on the recursive order by more than a few percent, while
random orders are far worse: evidence the recursive schedule is a
near-optimal representative, which is what makes the E9 sandwich
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdag.graph import CDAG
from repro.pebbling.executor import CacheExecutor
from repro.schedules.base import demand_driven_schedule
from repro.utils.rngs import make_rng
from repro.utils.validation import check_positive_int

__all__ = ["SearchResult", "search_schedule"]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a schedule search."""

    best_io: int
    start_io: int
    evaluations: int
    improved: bool
    best_product_order: np.ndarray

    @property
    def improvement(self) -> float:
        """Relative I/O reduction found (0 when none)."""
        return 1.0 - self.best_io / self.start_io if self.start_io else 0.0


def search_schedule(
    cdag: CDAG,
    cache_size: int,
    start_order: np.ndarray | None = None,
    budget: int = 50,
    policy: str = "belady",
    seed=None,
) -> SearchResult:
    """Hill-climb over product orders to minimise measured I/O.

    Parameters
    ----------
    start_order:
        Initial product permutation (default: the recursive order
        ``0..b^r-1``).
    budget:
        Number of candidate evaluations (each one full simulation).
    policy:
        Eviction policy used for the objective (``belady`` evaluates the
        order itself, independent of online-policy noise).
    """
    check_positive_int(budget, "budget")
    rng = make_rng(seed)
    executor = CacheExecutor(cdag)
    n_products = len(cdag.products())
    order = (
        np.arange(n_products)
        if start_order is None
        else np.asarray(start_order, dtype=np.int64).copy()
    )

    def io_of(candidate: np.ndarray) -> int:
        sched = demand_driven_schedule(cdag, candidate)
        return executor.run(sched, cache_size, policy, validate=False).total

    best = order
    best_io = io_of(order)
    start_io = best_io
    evaluations = 1
    attempts = 0
    while evaluations < budget and attempts < 20 * budget:
        attempts += 1
        # Neighbour: swap two random contiguous blocks of equal length.
        length = int(rng.integers(1, max(2, n_products // 8)))
        i, j = sorted(rng.integers(0, n_products - length, size=2).tolist())
        if i + length > j:
            continue  # overlapping draw; retry (bounded by attempts)
        candidate = best.copy()
        candidate[i : i + length], candidate[j : j + length] = (
            best[j : j + length].copy(),
            best[i : i + length].copy(),
        )
        candidate_io = io_of(candidate)
        evaluations += 1
        if candidate_io < best_io:
            best, best_io = candidate, candidate_io
    return SearchResult(
        best_io=best_io,
        start_io=start_io,
        evaluations=evaluations,
        improved=best_io < start_io,
        best_product_order=best,
    )
