"""The pre-vectorisation executor, kept verbatim as the golden
reference for equivalence tests.

This is the set/dict-based simulator the array-backed core in
:mod:`repro.pebbling.executor` replaced; the golden tests run both over
schedules x policies x cache sizes and assert identical ``IOResult``
fields, eviction counts and ``io_trace`` prefixes.  Do not optimise
this file — its value is that it stays a line-by-line transcription of
the original semantics (including the original policy objects inlined
below, so changes to ``repro.pebbling.cache`` cannot mask an executor
regression).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import CacheError, ScheduleError
from repro.pebbling.executor import IOResult
from repro.pebbling.machine import MachineModel

_INF = float("inf")


class _RefLRU:
    def __init__(self):
        self.last_touch: dict[int, int] = {}

    def on_insert(self, v, time):
        self.last_touch[v] = time

    def on_use(self, v, time):
        self.last_touch[v] = time

    def on_evict(self, v):
        self.last_touch.pop(v, None)

    def choose_victim(self, candidates):
        return min(candidates, key=lambda v: (self.last_touch[v], v))


class _RefFIFO:
    def __init__(self):
        self.inserted_at: dict[int, int] = {}

    def on_insert(self, v, time):
        self.inserted_at[v] = time

    def on_use(self, v, time):
        pass

    def on_evict(self, v):
        self.inserted_at.pop(v, None)

    def choose_victim(self, candidates):
        return min(candidates, key=lambda v: (self.inserted_at[v], v))


class _RefBelady:
    def __init__(self, use_times):
        self.use_times = use_times
        self.cursor: dict[int, int] = {}
        self.heap: list[tuple[float, int]] = []
        self.cached: set[int] = set()

    def _next_use(self, v, after):
        times = self.use_times.get(v, [])
        i = self.cursor.get(v, 0)
        while i < len(times) and times[i] <= after:
            i += 1
        self.cursor[v] = i
        return times[i] if i < len(times) else _INF

    def on_insert(self, v, time):
        self.cached.add(v)
        nxt = self._next_use(v, time)
        heapq.heappush(self.heap, (-nxt, v))

    def on_use(self, v, time):
        nxt = self._next_use(v, time)
        heapq.heappush(self.heap, (-nxt, v))

    def on_evict(self, v):
        self.cached.discard(v)

    def choose_victim(self, candidates):
        while self.heap:
            neg_next, v = self.heap[0]
            if v not in candidates:
                heapq.heappop(self.heap)
                continue
            times = self.use_times.get(v, [])
            i = self.cursor.get(v, 0)
            current = times[i] if i < len(times) else _INF
            if -neg_next != current:
                heapq.heappop(self.heap)
                heapq.heappush(self.heap, (-current, v))
                continue
            return v
        if candidates:
            return min(candidates)
        raise CacheError("no eviction candidate available")


def _ref_make_policy(name, use_times=None):
    if name == "lru":
        return _RefLRU()
    if name == "fifo":
        return _RefFIFO()
    if name == "belady":
        return _RefBelady(use_times)
    raise CacheError(f"unknown eviction policy {name!r}")


def reference_run(
    cdag,
    schedule,
    cache_size: int,
    policy: str = "lru",
    machine: MachineModel | None = None,
    io_trace: list[int] | None = None,
) -> tuple[IOResult, int]:
    """The original ``CacheExecutor._run`` (sets, dicts, per-step
    ``predecessors(v).tolist()`` and the duplicated ``on_use`` per
    cached operand), returning ``(IOResult, evictions)``."""
    machine = machine or MachineModel(cache_size=cache_size)
    machine.check_executable(cdag)
    schedule = np.asarray(schedule, dtype=np.int64)

    is_output = np.zeros(cdag.n_vertices, dtype=bool)
    is_output[cdag.outputs()] = True
    is_input = cdag.in_degree() == 0

    uses_left = np.zeros(cdag.n_vertices, dtype=np.int64)
    use_times: dict[int, list[int]] = {}
    for t, v in enumerate(schedule.tolist()):
        for p in cdag.predecessors(v).tolist():
            uses_left[p] += 1
            use_times.setdefault(p, []).append(t)

    pol = _ref_make_policy(policy, use_times=use_times)

    cached: set[int] = set()
    dirty: set[int] = set()
    in_slow: set[int] = set(np.nonzero(is_input)[0].tolist())
    output_written: set[int] = set()

    reads = writes = input_reads = spill_reads = spill_writes = 0
    output_writes = 0
    peak = 0
    evictions = 0

    def evict(candidates: set[int]) -> None:
        nonlocal writes, spill_writes, output_writes, evictions
        evictions += 1
        victim = pol.choose_victim(candidates)
        cached.discard(victim)
        pol.on_evict(victim)
        if victim in dirty:
            live = uses_left[victim] > 0
            is_out = bool(is_output[victim])
            if live or (is_out and victim not in output_written):
                writes += 1
                in_slow.add(victim)
                if is_out:
                    output_writes += 1
                    output_written.add(victim)
                else:
                    spill_writes += 1
            dirty.discard(victim)

    for t, v in enumerate(schedule.tolist()):
        preds = cdag.predecessors(v).tolist()
        pinned = set(preds) | {v}
        for p in preds:
            if p not in cached:
                if p not in in_slow:
                    raise ScheduleError(
                        f"operand {p} of {v} is neither cached nor in "
                        "slow memory"
                    )
                while len(cached) >= cache_size:
                    evict(cached - pinned)
                cached.add(p)
                pol.on_insert(p, t)
                reads += 1
                if is_input[p]:
                    input_reads += 1
                else:
                    spill_reads += 1
            else:
                pol.on_use(p, t)
        while len(cached) >= cache_size:
            evict(cached - pinned)
        cached.add(v)
        dirty.add(v)
        pol.on_insert(v, t)
        peak = max(peak, len(cached))
        for p in preds:
            pol.on_use(p, t)
        for p in preds:
            uses_left[p] -= 1
        if io_trace is not None:
            io_trace.append(reads + writes)

    for v in sorted(dirty):
        if is_output[v] and v not in output_written:
            writes += 1
            output_writes += 1
            output_written.add(v)

    if not machine.count_input_reads:
        reads -= input_reads
    if not machine.count_output_writes:
        writes -= output_writes

    result = IOResult(
        cache_size=cache_size,
        policy=policy,
        reads=reads,
        writes=writes,
        input_reads=input_reads if machine.count_input_reads else 0,
        spill_reads=spill_reads,
        spill_writes=spill_writes,
        output_writes=output_writes if machine.count_output_writes else 0,
        peak_cache=peak,
    )
    return result, evictions
