"""Rank-order (breadth-first) schedule.

Computes every vertex of rank 1, then every vertex of rank 2, and so on —
the "compute all encodings, then all products, then all decodings" order.
Its working set at the multiplication layer is the full ``b^r`` products,
so for ``M`` much smaller than ``b^r`` it spills nearly everything: the
natural *bad* baseline against which blocking (the recursive schedule)
shows its factor (experiment E9).
"""

from __future__ import annotations

import numpy as np

from repro.cdag import artifact as _artifact
from repro.cdag.graph import CDAG
from repro.telemetry.spans import traced

__all__ = ["rank_order_schedule"]

#: Folded into the schedule bundle key; bump if the generated order
#: ever changes meaning.
_SCHEDULE_VERSION = "1"


@traced("schedules.rank_order")
def rank_order_schedule(cdag: CDAG) -> np.ndarray:
    """All computable vertices sorted by (rank, vertex id).

    Pure function of the CDAG, so an active graph cache serves it from
    a content-keyed bundle.
    """
    cache = _artifact.active_cache()
    if cache is not None:
        return cache.get_schedule(
            cdag, "rank_order", _SCHEDULE_VERSION, lambda: _generate(cdag)
        )
    return _generate(cdag)


def _generate(cdag: CDAG) -> np.ndarray:
    computable = np.nonzero(cdag.in_degree() > 0)[0]
    order = np.lexsort((computable, cdag.rank[computable]))
    return computable[order]
