"""Kernel dispatch for the columnar simulation core.

One gating decision serves every simulator built on
:mod:`repro.simcore` — the pebble-game executor, the trace-driven cache
simulators and the parallel machine model all consult the same mode, so
"the kernels are on" means the same thing everywhere.

numba is an *optional* dependency (the ``speed`` extra).  Three modes:

- ``jit`` — numba present, kernels compiled with ``cache=True`` (the
  compilation is paid once per machine, then loaded from the on-disk
  cache);
- ``off`` — numba absent, or ``REPRO_NO_JIT=1``: callers fall back to
  the pure-Python loops (:mod:`repro.simcore.pyloops` and the
  dict-based trace engine);
- ``interp`` — test-only (``REPRO_FORCE_KERNELS=1`` or
  ``set_mode("interp")``): run the kernel *code* under the plain
  interpreter even without numba, so the equivalence suites exercise
  the kernel algorithm everywhere.

Callers count the path taken per simulation
(``simcore.kernel.{jit,interp,fallback}``, mirrored as
``pebbling.kernel.*`` by the executor for dashboard continuity) and the
wall time of the first kernel invocation per process
(``simcore.kernel.compile_s`` / legacy ``pebbling.kernel.compile_s`` —
on a cold numba cache this is dominated by JIT compilation).
"""

from __future__ import annotations

import os

from repro.telemetry.metrics import metrics
from repro.telemetry.spans import enabled as _telemetry_enabled

__all__ = [
    "HAVE_NUMBA",
    "njit",
    "active_mode",
    "available",
    "set_mode",
    "forced_mode",
    "note_first_call",
    "count_path",
]

try:  # pragma: no cover - exercised only when numba is installed
    from numba import njit

    HAVE_NUMBA = True
except Exception:  # ImportError, or a broken numba install
    HAVE_NUMBA = False

    def njit(*args, **kwargs):
        """Identity decorator: the kernels are valid plain Python over
        numpy arrays, so without numba they stay importable and runnable
        (the ``interp`` test mode and the hypothesis suites rely on
        this)."""
        if args and callable(args[0]):
            return args[0]

        def deco(fn):
            return fn

        return deco


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0")


#: ``set_mode`` override; None means "decide from numba + environment".
_MODE_OVERRIDE: str | None = None


def active_mode() -> str:
    """The simulation path core consumers will take: ``"jit"``,
    ``"interp"`` or ``"off"`` (= pure-Python fallback loops)."""
    mode = _MODE_OVERRIDE
    if mode is None:
        if _env_flag("REPRO_NO_JIT"):
            return "off"
        if HAVE_NUMBA:
            return "jit"
        return "interp" if _env_flag("REPRO_FORCE_KERNELS") else "off"
    return mode


def available() -> bool:
    """Whether the kernel path (compiled or interpreted) is active."""
    return active_mode() != "off"


def set_mode(mode: str | None) -> None:
    """Override the dispatch mode: ``"off"``, ``"interp"``, ``"jit"``,
    ``"auto"``/None (= re-derive from numba + environment).  Used by
    ``--no-jit`` CLI flags, benchmarks and tests."""
    global _MODE_OVERRIDE
    if mode in ("auto", None):
        _MODE_OVERRIDE = None
        return
    if mode not in ("off", "interp", "jit"):
        raise ValueError(f"unknown kernel mode {mode!r}")
    if mode == "jit" and not HAVE_NUMBA:
        raise RuntimeError("kernel mode 'jit' requires numba (pip install repro[speed])")
    _MODE_OVERRIDE = mode


class forced_mode:
    """Context manager: force a dispatch mode, restore the previous
    override on exit (benchmark pairing and tests)."""

    def __init__(self, mode: str | None):
        self.mode = mode
        self._prev: str | None = None

    def __enter__(self):
        self._prev = _MODE_OVERRIDE
        set_mode(self.mode)
        return self

    def __exit__(self, *exc):
        global _MODE_OVERRIDE
        _MODE_OVERRIDE = self._prev
        return False


# ----------------------------------------------------------------------
# First-call bookkeeping and path counters.
# ----------------------------------------------------------------------

_compile_s: float | None = None


def note_first_call(elapsed: float) -> None:
    """Remember the first kernel invocation's wall time (on a cold numba
    cache this is dominated by JIT compilation) and publish it as the
    ``simcore.kernel.compile_s`` gauge — plus the legacy
    ``pebbling.kernel.compile_s`` name — once per registry life."""
    global _compile_s
    if _compile_s is None:
        _compile_s = elapsed
    if _telemetry_enabled():
        for name in ("simcore.kernel.compile_s", "pebbling.kernel.compile_s"):
            gauge = metrics().gauge(name)
            if gauge.count == 0:
                gauge.set(_compile_s)


def count_path(mode: str, n: int = 1) -> None:
    """Increment the core's per-simulation path counter
    (``simcore.kernel.{jit,interp,fallback}``); ``n`` simulations at
    once for batched grids.  No-op while telemetry is disabled."""
    if n and _telemetry_enabled():
        name = mode if mode != "off" else "fallback"
        metrics().inc(f"simcore.kernel.{name}", n)
