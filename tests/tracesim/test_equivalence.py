"""Equivalence of the tracesim thin views and the columnar lockstep
trace kernel against the frozen golden reference
(``tests/tracesim/_reference.py``)."""

import numpy as np
import pytest

from repro.simcore import dispatch
from repro.simcore.trace import run_trace_grid
from repro.tracesim import FullyAssociativeLRU, SetAssociativeLRU, trace_blocked

from tests.tracesim._reference import (
    ReferenceFullyAssociativeLRU,
    ReferenceSetAssociativeLRU,
)


def random_trace(seed, n_accesses=2000, n_addresses=120):
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, n_addresses, size=n_accesses)
    writes = rng.random(n_accesses) < 0.3
    return list(zip(addrs.tolist(), writes.tolist()))


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("capacity,line_size", [(8, 1), (17, 1), (8, 4)])
def test_fa_matches_reference(seed, capacity, line_size):
    trace = random_trace(seed)
    got = FullyAssociativeLRU(capacity, line_size).run(iter(trace))
    want = ReferenceFullyAssociativeLRU(capacity, line_size).run(iter(trace))
    assert got.as_dict() == want.as_dict()


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("n_sets,ways,line_size", [(4, 2, 1), (1, 8, 1), (8, 3, 2)])
def test_sa_matches_reference(seed, n_sets, ways, line_size):
    trace = random_trace(seed)
    got = SetAssociativeLRU(n_sets, ways, line_size).run(iter(trace))
    want = ReferenceSetAssociativeLRU(n_sets, ways, line_size).run(iter(trace))
    assert got.as_dict() == want.as_dict()


def test_incremental_access_matches_reference():
    trace = random_trace(99, n_accesses=800, n_addresses=40)
    fa, ref = FullyAssociativeLRU(12), ReferenceFullyAssociativeLRU(12)
    for addr, w in trace:
        assert fa.access(addr, w) == ref.access(addr, w)
    fa.flush()
    ref.flush()
    assert fa.stats.as_dict() == ref.stats.as_dict()


@pytest.mark.parametrize("mode", ["off", "interp"])
@pytest.mark.parametrize("seed", range(3))
def test_trace_grid_matches_reference(mode, seed):
    """One lockstep pass over many capacities == one reference run per
    capacity, on both the fallback and the interpreted kernel path."""
    trace = random_trace(seed, n_accesses=3000, n_addresses=200)
    addrs = np.array([a for a, _ in trace], dtype=np.int64)
    writes = np.array([w for _, w in trace], dtype=np.uint8)
    capacities = [1, 3, 8, 33, 100, 400]
    with dispatch.forced_mode(mode):
        grid = run_trace_grid(addrs, writes, capacities)
    for cap, got in zip(capacities, grid):
        want = ReferenceFullyAssociativeLRU(cap).run(iter(trace))
        assert got.as_dict() == want.as_dict(), f"capacity {cap}"


def test_trace_grid_line_size():
    trace = random_trace(7, n_accesses=1500, n_addresses=300)
    addrs = np.array([a for a, _ in trace], dtype=np.int64)
    writes = np.array([w for _, w in trace], dtype=np.uint8)
    with dispatch.forced_mode("interp"):
        grid = run_trace_grid(addrs, writes, [16], line_size=4)
    want = ReferenceFullyAssociativeLRU(16, line_size=4).run(iter(trace))
    assert grid[0].as_dict() == want.as_dict()


def test_trace_grid_empty_trace():
    with dispatch.forced_mode("interp"):
        grid = run_trace_grid(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint8), [4, 8]
        )
    assert [s.as_dict() for s in grid] == [
        {"accesses": 0, "hits": 0, "misses": 0, "writebacks": 0}
    ] * 2


def test_trace_grid_on_real_kernel_trace():
    """Blocked-matmul trace: the lockstep grid agrees with the
    production fully-associative simulator at every capacity."""
    trace = list(trace_blocked(12, 4))
    addrs = np.array([a for a, _ in trace], dtype=np.int64)
    writes = np.array([w for _, w in trace], dtype=np.uint8)
    capacities = [8, 64, 512]
    with dispatch.forced_mode("interp"):
        grid = run_trace_grid(addrs, writes, capacities)
    for cap, got in zip(capacities, grid):
        want = FullyAssociativeLRU(cap).run(iter(trace))
        assert got.as_dict() == want.as_dict()
