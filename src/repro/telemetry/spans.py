"""Nestable timing spans with a no-op fast path.

A *span* measures one region of work: wall time, peak-RSS delta, and
arbitrary named counters.  Spans nest — each thread keeps its own stack,
so the parent/child structure is correct under threading — and every
finished span is appended to a process-local collector from which
exporters (:mod:`repro.telemetry.export`) read.

Telemetry is **disabled by default**.  While disabled, :func:`span`
returns a shared singleton whose ``__enter__``/``__exit__``/``add`` are
empty one-liners, so instrumented code pays only one module-level bool
check per region — measured well under the 5% overhead budget even on
the tightest instrumented layers (the pebble-game executor records its
counters once per *run*, never per step).

Process safety: each worker process keeps its own collector and span-id
namespace (ids are ``"<pid>.<n>"``); finished spans are plain dicts, so
they pickle across the pool boundary, and :func:`ingest_spans` merges
worker snapshots into the parent's collector.  Cross-process parentage
is explicit: pass ``parent=<span id>`` when opening a worker's root
span (the sweep scheduler does this, so Chrome traces show worker jobs
nested under the sweep).
"""

from __future__ import annotations

import functools
import itertools
import os
import resource
import threading
import time

__all__ = [
    "enable",
    "disable",
    "enabled",
    "reset_spans",
    "span",
    "traced",
    "current_span",
    "add_counter",
    "collected_spans",
    "drain_spans",
    "ingest_spans",
]

_ENABLED = False
_ENV_FLAG = "REPRO_TELEMETRY"

_IDS = itertools.count(1)
_LOCK = threading.Lock()
_FINISHED: list[dict] = []


class _Stack(threading.local):
    def __init__(self):
        self.spans: list["Span"] = []


_STACK = _Stack()


def enabled() -> bool:
    """Whether telemetry collection is on."""
    return _ENABLED


def enable() -> None:
    """Turn telemetry collection on (process-wide)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn telemetry collection off; already-collected spans remain
    until :func:`reset_spans`."""
    global _ENABLED
    _ENABLED = False


def reset_spans() -> None:
    """Drop every collected span (does not touch the enabled flag)."""
    with _LOCK:
        _FINISHED.clear()


def _peak_rss_kib() -> int:
    """Process peak RSS in KiB (Linux ``ru_maxrss`` unit)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


class _NoopSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def add(self, name, value=1):
        pass

    def set(self, name, value):
        pass

    @property
    def span_id(self):
        return None


NOOP_SPAN = _NoopSpan()


class Span:
    """One live measured region.  Use via :func:`span`, not directly."""

    __slots__ = (
        "name", "attrs", "counters", "span_id", "parent_id",
        "_explicit_parent", "_t0", "_ts", "_rss0",
    )

    def __init__(self, name: str, parent: str | None, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.counters: dict[str, float] = {}
        self.span_id = f"{os.getpid()}.{next(_IDS)}"
        self._explicit_parent = parent
        self.parent_id: str | None = None

    def add(self, name: str, value=1) -> None:
        """Accumulate into a per-span counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def set(self, name: str, value) -> None:
        """Set a per-span counter to an absolute value."""
        self.counters[name] = value

    def __enter__(self) -> "Span":
        stack = _STACK.spans
        if self._explicit_parent is not None:
            self.parent_id = self._explicit_parent
        elif stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self._ts = time.time()
        self._rss0 = _peak_rss_kib()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        rss_delta = max(0, _peak_rss_kib() - self._rss0)
        stack = _STACK.spans
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - mis-nested exit; stay safe
            try:
                stack.remove(self)
            except ValueError:
                pass
        record = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "ts": self._ts,
            "dur": dur,
            "rss_peak_delta_kib": rss_delta,
            "counters": dict(self.counters),
            "attrs": dict(self.attrs),
            "error": exc_type.__name__ if exc_type is not None else None,
        }
        with _LOCK:
            _FINISHED.append(record)
        # Fold span counters and duration into the global metrics
        # registry so the sweep/perf aggregation sees them without a
        # second instrumentation pass.
        from repro.telemetry.metrics import metrics

        reg = metrics()
        reg.histogram(f"{self.name}.duration_s").observe(dur)
        for cname, cvalue in self.counters.items():
            if isinstance(cvalue, bool) or not isinstance(cvalue, (int, float)):
                continue
            reg.counter(f"{self.name}.{cname}").inc(cvalue)
        return False


def span(name: str, parent: str | None = None, **attrs):
    """Open a measured region.

    Returns a context manager; while telemetry is disabled this is the
    shared :data:`NOOP_SPAN` (one bool check, zero allocation).

    >>> with span("cdag.build", alg="strassen") as sp:   # doctest: +SKIP
    ...     sp.add("vertices", 123)
    """
    if not _ENABLED:
        return NOOP_SPAN
    return Span(name, parent, attrs)


def traced(name: str | None = None, **attrs):
    """Decorator form of :func:`span`; the span is named after the
    function (``module.function``) unless ``name`` is given."""

    def deco(fn):
        label = name or f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__name__}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _ENABLED:
                return fn(*args, **kwargs)
            with Span(label, None, dict(attrs)):
                return fn(*args, **kwargs)

        return wrapper

    return deco


def current_span():
    """The innermost live span of this thread (or None)."""
    stack = _STACK.spans
    return stack[-1] if stack else None


def add_counter(name: str, value=1) -> None:
    """Accumulate into the innermost live span's counter (no-op when
    disabled or when no span is open)."""
    if not _ENABLED:
        return
    stack = _STACK.spans
    if stack:
        stack[-1].add(name, value)


def collected_spans() -> list[dict]:
    """Snapshot of every finished span so far (records are copies of
    the collector's references; treat them as read-only)."""
    with _LOCK:
        return list(_FINISHED)


def drain_spans() -> list[dict]:
    """Return and clear the finished spans (used to ship a worker's
    spans across the process boundary)."""
    with _LOCK:
        out = list(_FINISHED)
        _FINISHED.clear()
    return out


def ingest_spans(records) -> int:
    """Merge span records collected elsewhere (another process) into
    this process's collector; returns how many were added."""
    records = list(records)
    with _LOCK:
        _FINISHED.extend(records)
    return len(records)


if os.environ.get(_ENV_FLAG, "") not in ("", "0", "false", "no"):
    enable()
