"""CAPS-style parallel Strassen-like execution, cost-simulated.

The communication-optimal parallel algorithm of [3]
(Communication-Avoiding Parallel Strassen) runs the recursion with two
step types:

- **BFS step** (breadth-first): form the ``b`` encoded subproblems with
  local additions, split the processor group into ``b`` subgroups, and
  *redistribute* so each subgroup owns one subproblem.  Communication:
  every processor ships ``Θ(b (n/n0)^2 / P)`` words (scatter) and later
  the same order again (gather of results); per-processor memory grows by
  the factor ``b/a`` (``b`` subproblems, each ``1/a``-th the elements,
  on ``1/b``-th the processors).
- **DFS step** (depth-first): the whole group handles the ``b``
  subproblems one after another.  Additions are local (every block has
  the same distribution), so a DFS step moves no words and keeps the
  per-processor memory of the same order — but the entire remaining
  recursion repeats ``b`` times.

Exactly ``log_b P`` BFS steps are needed before groups reach size one
and multiply locally; the *placement* of those steps is the
memory/communication tradeoff.  Taking DFS steps first until the
remaining all-BFS phase fits in memory (the CAPS policy, ``"auto"``)
attains the paper's Theorem-1 bound

    BW(n, P, M) = Θ( max( (n/√M)^ω0 · M/P ,  n^2 / P^(2/ω0) ) ),

the left term binding when memory is scarce, the right (perfect strong
scaling, [2]) when plentiful.  The simulator tracks words and
per-processor memory explicitly — the paper's bandwidth cost is a
deterministic function of the recursion shape, so no real network is
needed (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bilinear.algorithm import BilinearAlgorithm
from repro.errors import PartitionError
from repro.parallel.machine import CommunicationLog, DistributedMachine
from repro.utils.validation import check_positive_int, check_power

__all__ = ["CapsRun", "simulate_caps", "minimum_memory"]


@dataclass(frozen=True)
class CapsRun:
    """Outcome of one simulated CAPS execution."""

    algorithm: str
    n: int
    P: int
    local_memory: int
    steps: tuple[str, ...]          # outermost-in: "bfs" / "dfs" / "local"
    bandwidth_cost: int
    peak_memory_per_processor: float
    n_supersteps: int

    @property
    def schedule_string(self) -> str:
        return "".join(s[0].upper() for s in self.steps)


def minimum_memory(alg: BilinearAlgorithm, n: int, P: int) -> float:
    """Memory floor: each processor must at least hold its share of the
    three matrices, ``3 n^2 / P`` words."""
    return 3.0 * n * n / P


def simulate_caps(
    alg: BilinearAlgorithm,
    n: int,
    machine: DistributedMachine,
    strategy: str = "auto",
) -> CapsRun:
    """Simulate the CAPS recursion and return its bandwidth cost.

    Requirements: ``n = n0^r`` and ``P = b^t`` with ``t <= r`` (exact
    divisibility keeps the simulation faithful to [3]'s analysis).

    Strategies
    ----------
    ``"auto"``
        DFS until the remaining all-BFS phase fits in ``M`` (CAPS).
    ``"bfs-first"``
        All BFS steps first (minimum communication; raises
        :class:`PartitionError` if memory is insufficient).
    ``"dfs-first"``
        All DFS steps first, BFS only at the bottom of the recursion
        (minimum memory, maximum communication).
    """
    check_positive_int(n, "n")
    r = check_power(n, alg.n0, "n")
    P, M = machine.n_processors, machine.local_memory
    t = check_power(P, alg.b, "P") if P > 1 else 0
    if t > r:
        raise PartitionError(f"P = b^{t} needs recursion depth >= {t}, got {r}")
    if minimum_memory(alg, n, P) > M:
        raise PartitionError(
            f"local memory {M} cannot hold 3 n^2 / P = "
            f"{minimum_memory(alg, n, P):.0f} words"
        )
    if strategy not in ("auto", "bfs-first", "dfs-first"):
        raise PartitionError(f"unknown strategy {strategy!r}")

    ratio = alg.b / alg.a  # per-BFS-step footprint growth factor
    floor = minimum_memory(alg, n, P)  # the original data never leaves

    def footprint(cur_n: int, cur_p: int) -> float:
        """Per-processor words of the current subproblem's live data.
        A BFS step multiplies this by b/a; a DFS step divides it by a —
        both fall out of the (cur_n, cur_p) update."""
        return 3.0 * cur_n * cur_n / cur_p

    def bfs_phase_fits(cur_n: int, cur_p: int, bfs_left: int) -> bool:
        """Would running all remaining BFS steps from here stay in M?"""
        return footprint(cur_n, cur_p) * ratio**bfs_left + floor <= M

    log = CommunicationLog(P)
    steps: list[str] = []
    peak = 0.0

    def rec(cur_n: int, cur_p: int, bfs_left: int) -> None:
        nonlocal peak
        # At the root the working set *is* the original data (the floor);
        # below it, encoded subproblem blocks coexist with that data.
        here = floor if cur_n == n else footprint(cur_n, cur_p) + floor
        peak = max(peak, here)
        if cur_p == 1:
            steps.append("local")
            return
        if strategy == "bfs-first":
            do_bfs = True
            if footprint(cur_n, cur_p) * ratio + floor > M:
                raise PartitionError(
                    f"forced BFS exceeds local memory at n={cur_n}, "
                    f"P={cur_p}"
                )
        elif strategy == "dfs-first":
            # Postpone BFS until forced: only bfs_left levels remain.
            levels_left = round(math.log(cur_n, alg.n0))
            do_bfs = levels_left <= bfs_left
        else:  # auto
            do_bfs = bfs_phase_fits(cur_n, cur_p, bfs_left)

        block_words = (cur_n // alg.n0) ** 2
        if do_bfs:
            steps.append("bfs")
            # Scatter the 2b encoded operand blocks, gather b results.
            log.uniform_superstep(2.0 * alg.b * block_words / cur_p)
            rec(cur_n // alg.n0, cur_p // alg.b, bfs_left - 1)
            log.uniform_superstep(1.0 * alg.b * block_words / cur_p)
        else:
            steps.append("dfs")
            # b sequential subproblems on the full group; local adds
            # only — the subtree's communication repeats b - 1 times.
            before = log.n_supersteps
            rec(cur_n // alg.n0, cur_p, bfs_left)
            log.replay(before, log.n_supersteps, alg.b - 1)

    rec(n, P, t)
    return CapsRun(
        algorithm=alg.name,
        n=n,
        P=P,
        local_memory=M,
        steps=tuple(steps),
        bandwidth_cost=log.bandwidth_cost(),
        peak_memory_per_processor=peak,
        n_supersteps=log.n_supersteps,
    )
