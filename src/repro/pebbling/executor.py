"""Schedule executor: counts I/Os of a compute order under the paper's
two-level machine model.

Given a CDAG, a *schedule* (the computed vertices in execution order) and
a cache size ``M``, the executor simulates the machine:

- computing vertex ``v`` first loads any predecessor not in cache (one
  read I/O each — values already stored to slow memory are re-read, input
  values are read for the first time);
- evictions happen on demand, chosen by an eviction policy (LRU, FIFO or
  offline-MIN/Belady); evicting a *dirty* value (computed but never
  stored) that is still live — it has remaining uses or is an unfinished
  output — costs one write I/O; evicting a clean or dead value is free;
- at the end every output must reside in slow memory (final writes).

The predecessors of the current computation plus its result are pinned
and never evicted mid-step (hence ``M >= max_indegree + 1``).

The I/O-complexity of the *algorithm* is the minimum over schedules and
I/O placements; the executor provides the measurable upper side: the
paper's Theorem 1 lower bound must sit below every
``(schedule, policy)`` measurement, and the recursive schedule's
measurement should track the matching upper bound (experiment E9).

Implementation notes (the hot path)
-----------------------------------
The simulator is a thin view over the unified columnar core
(:mod:`repro.simcore`): a schedule is compiled once into a
:class:`~repro.simcore.plan.SchedulePlan` — flat CSR-style operand
arrays gathered from the CDAG's predecessor CSR, per-occurrence
*next-use* times (a backward-scan linked list, so Belady needs no
per-vertex Python lists or cursor dicts), per-vertex first-use times
and initial use counts.

Two simulation paths run over a plan:

- **compiled kernels** (:mod:`repro.simcore.grid`): numba ``@njit``
  step loops over flat int64 arrays, taken whenever numba is importable
  and ``REPRO_NO_JIT`` is unset.  Batched sweeps go through the
  *lockstep* grid kernel — ``(config, slot)`` 2-D state advanced
  through each schedule step for every configuration at once.  Plans
  loaded from graph-cache bundles feed the kernels straight from their
  read-only memmaps — no ``ensure_lists`` materialisation on this path;
- **pure-Python loops** (:mod:`repro.simcore.pyloops`, the fallback,
  kept bit-identical): dense flat structures indexed by vertex id (flat
  bitmaps for cached/dirty/in-slow, per-vertex stamp/key lists) with a
  lazy min-heap replacing the reference implementation's
  O(|candidates|) scans.

Both paths make the exact victim choices of the golden reference
simulator retained under ``tests/pebbling/_reference.py`` — the
golden-equivalence tests enforce bit-identity across schedules x
policies x cache sizes, and the
``pebbling.kernel.{jit,interp,fallback}`` counters record which path
each run took (mirroring the core's ``simcore.kernel.*`` counters).

Plans are cached on the executor and shared across cache sizes and
policies; :meth:`CacheExecutor.run_many` exposes that reuse as a batched
sweep API (validate once, precompute once, run every ``(M, policy)``
configuration — in one lockstep ``run_grid`` call on the kernel path,
and optionally partitioned across a ``ProcessPoolExecutor`` via
``workers=`` for multi-core scaling).
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

import repro.pebbling.kernels as kernels
from repro.cdag import artifact as _artifact
from repro.cdag.graph import CDAG
from repro.errors import CacheError, ScheduleError
from repro.pebbling.machine import MachineModel
from repro.simcore import dispatch as _dispatch
from repro.simcore.plan import SchedulePlan, gather_operands
from repro.simcore.pyloops import simulate_py
from repro.telemetry.metrics import metrics
from repro.telemetry.spans import enabled as _telemetry_enabled
from repro.telemetry.spans import span

__all__ = ["EXECUTOR_VERSION", "IOResult", "CacheExecutor", "simulate_io"]

#: Version of the compiled-plan format; folded into plan bundle keys so
#: any change to :class:`_SchedulePlan`'s arrays (meaning, dtype, order)
#: re-keys every on-disk plan instead of mis-decoding it.
EXECUTOR_VERSION = "1"

#: Environment variable: default worker count for
#: :meth:`CacheExecutor.run_many` grid partitioning (0/unset = serial).
ENV_RUN_MANY_WORKERS = "REPRO_RUN_MANY_WORKERS"

_POLICY_CODES = {"lru": 0, "fifo": 1, "belady": 2}


@dataclass(frozen=True)
class IOResult:
    """Outcome of one simulated execution.

    Attributes
    ----------
    reads / writes:
        Load and store I/O counts (``total = reads + writes``).
    input_reads:
        Subset of ``reads`` that loaded original inputs.
    spill_writes / spill_reads:
        Writes of intermediate values forced out of cache, and the reads
        that brought them back — the communication the blocking structure
        of a schedule controls.
    output_writes:
        Final stores of output values.
    peak_cache:
        Maximum number of cached values observed.
    """

    cache_size: int
    policy: str
    reads: int
    writes: int
    input_reads: int
    spill_reads: int
    spill_writes: int
    output_writes: int
    peak_cache: int

    @property
    def total(self) -> int:
        """Total I/O (reads + writes) — the paper's cost measure."""
        return self.reads + self.writes


# The plan precompute moved to the unified core; the executor keeps the
# pre-unification names bound for its consumers (the graph cache's plan
# bundles, the artifact layer, tests).
_SchedulePlan = SchedulePlan
_gather_operands = gather_operands


# ----------------------------------------------------------------------
# Simulation core (module-level so pool workers can run configurations
# without shipping a CDAG or CacheExecutor across the process boundary).
# ----------------------------------------------------------------------


def _counts_to_result(
    counts, cache_size: int, policy: str, machine: MachineModel
) -> tuple[IOResult, int]:
    """Fold a raw count tuple into an :class:`IOResult` under the
    machine's I/O accounting switches; returns ``(result, evictions)``."""
    (reads, writes, input_reads, spill_reads, spill_writes,
     output_writes, peak, evictions) = counts
    if not machine.count_input_reads:
        reads -= input_reads
    if not machine.count_output_writes:
        writes -= output_writes
    result = IOResult(
        cache_size=cache_size,
        policy=policy,
        reads=reads,
        writes=writes,
        input_reads=input_reads if machine.count_input_reads else 0,
        spill_reads=spill_reads,
        spill_writes=spill_writes,
        output_writes=output_writes if machine.count_output_writes else 0,
        peak_cache=peak,
    )
    return result, evictions


def _raise_kernel_status(sc) -> None:
    """Map a kernel status code onto the executor's exception contract."""
    status = int(sc[kernels.STATUS])
    if status == kernels.STATUS_OPERAND_MISSING:
        raise ScheduleError(
            f"operand {int(sc[kernels.ERR_A])} of {int(sc[kernels.ERR_B])} "
            "is neither cached nor in slow memory"
        )
    if status == kernels.STATUS_NO_VICTIM:
        raise CacheError("no eviction candidate available")


def _simulate(plan, is_input, is_output, cache_size, policy, io_trace):
    """Run one configuration over a compiled plan, dispatching to the
    compiled kernels when active and to the pure-Python loops otherwise
    (``REPRO_NO_JIT=1`` or numba absent).  Returns the raw count tuple
    ``(reads, writes, input_reads, spill_reads, spill_writes,
    output_writes, peak, evictions)``."""
    code = _POLICY_CODES.get(policy)
    if code is None:
        raise CacheError(f"unknown eviction policy {policy!r}")
    mode = kernels.active_mode()
    if mode != "off":
        trace_arr = (
            np.zeros(plan.n_steps, dtype=np.int64)
            if io_trace is not None else None
        )
        sc = kernels.simulate_plan(
            plan.kernel_arrays(),
            np.ascontiguousarray(is_input).view(np.uint8),
            np.ascontiguousarray(is_output).view(np.uint8),
            cache_size, code, trace_arr,
        )
        _raise_kernel_status(sc)
        if io_trace is not None:
            io_trace.extend(trace_arr.tolist())
        if _telemetry_enabled():
            metrics().inc(f"pebbling.kernel.{mode}")
        return tuple(int(x) for x in sc[:8])
    if _telemetry_enabled():
        metrics().inc("pebbling.kernel.fallback")
    return simulate_py(plan, is_input, is_output, cache_size, code, io_trace)


def _partition_worker(arrays, is_input, is_output, configs):
    """Pool-worker entry for :meth:`CacheExecutor.run_many` grid
    partitioning: rebuild the plan from its (validated) arrays and run
    this partition's ``(M, policy)`` configurations.

    Telemetry is disabled in the worker — the parent re-emits the
    per-configuration spans and counters from the returned raw counts,
    so the batched sweep stays counter-identical to its serial
    equivalent.  Returns ``(wall_s, kernel_mode, [counts, ...])``.
    """
    from repro.telemetry import spans as _spans

    _spans.disable()
    t0 = time.perf_counter()
    plan = _SchedulePlan.from_arrays(arrays, validated=True)
    out = []
    for cache_size, policy in configs:
        out.append(
            _simulate(plan, is_input, is_output, cache_size, policy, None)
        )
    return time.perf_counter() - t0, kernels.active_mode(), out


class CacheExecutor:
    """Reusable executor for one CDAG (precomputes use lists once)."""

    _MAX_CACHED_PLANS = 8

    def __init__(self, cdag: CDAG):
        self.cdag = cdag
        self.is_output = np.zeros(cdag.n_vertices, dtype=bool)
        self.is_output[cdag.outputs()] = True
        self.is_input = cdag.in_degree() == 0
        self._plans: dict[bytes, _SchedulePlan] = {}

    # ------------------------------------------------------------------

    def validate_schedule(self, schedule: np.ndarray) -> np.ndarray:
        """Check the schedule is a topological permutation of the
        non-input vertices; returns it as an int64 array."""
        schedule = np.ascontiguousarray(schedule, dtype=np.int64)
        n = self.cdag.n_vertices
        n_computable = int((~self.is_input).sum())
        if len(schedule) != n_computable:
            raise ScheduleError(
                f"schedule has {len(schedule)} entries; CDAG has "
                f"{n_computable} computable vertices"
            )
        out_of_range = (schedule < 0) | (schedule >= n)
        if out_of_range.any():
            v = int(schedule[int(np.argmax(out_of_range))])
            raise ScheduleError(f"vertex {v} out of range")
        T = len(schedule)
        # First occurrence of each vertex (reverse assignment: the
        # earliest index wins); an occurrence that is not the first, or
        # that names an input, is rejected exactly as the reference
        # per-step scan did.
        first_occ = np.full(n, -1, dtype=np.int64)
        first_occ[schedule[::-1]] = np.arange(T - 1, -1, -1, dtype=np.int64)
        bad = self.is_input[schedule]
        bad |= first_occ[schedule] != np.arange(T, dtype=np.int64)
        if bad.any():
            v = int(schedule[int(np.argmax(bad))])
            raise ScheduleError(f"vertex {v} scheduled twice (or is an input)")
        # Topological: every non-input operand must be scheduled
        # strictly before its use.
        _, step_ops, occ_time = _gather_operands(self.cdag, schedule)
        viol = ~self.is_input[step_ops]
        viol &= first_occ[step_ops] >= occ_time
        if viol.any():
            i = int(np.argmax(viol))
            raise ScheduleError(
                f"vertex {int(schedule[occ_time[i]])} scheduled before "
                f"its predecessor {int(step_ops[i])}"
            )
        return schedule

    # ------------------------------------------------------------------

    def _plan(self, schedule, validate: bool) -> _SchedulePlan:
        """Fetch or build the :class:`_SchedulePlan` for ``schedule``
        (small content-keyed cache, so repeated ``run`` calls on the
        same schedule reuse the precompute like ``run_many`` does).

        When a graph cache is active, a miss here consults the on-disk
        plan bundle store before compiling — a warm process maps the
        occurrence arrays instead of re-deriving them.
        """
        schedule = np.ascontiguousarray(schedule, dtype=np.int64)
        key = hashlib.blake2b(schedule.tobytes(), digest_size=16).digest()
        plan = self._plans.get(key)
        if plan is None:
            metrics().inc("pebbling.plan.miss")
            cache = _artifact.active_cache()
            if cache is not None:
                plan = cache.get_plan(self, schedule, key.hex(), validate)
            if plan is None:
                if validate:
                    schedule = self.validate_schedule(schedule)
                plan = _SchedulePlan(self.cdag, schedule, validated=validate)
            if len(self._plans) >= self._MAX_CACHED_PLANS:
                self._plans.pop(next(iter(self._plans)))
            self._plans[key] = plan
        else:
            # LRU touch: re-insert so neighbourhood searches that cycle
            # through more than _MAX_CACHED_PLANS candidates keep their
            # frequently re-evaluated incumbents compiled.
            metrics().inc("pebbling.plan.hit")
            self._plans.pop(key)
            self._plans[key] = plan
            if validate and not plan.validated:
                self.validate_schedule(schedule)
                plan.validated = True
        return plan

    def compile(self, schedule, validate: bool = True) -> _SchedulePlan:
        """Public access to the compiled plan for ``schedule``.

        Used by cache warming and the cold/warm benchmarks to pay the
        acquisition cost (validate + occurrence precompute, or a bundle
        load) without running a simulation.
        """
        return self._plan(schedule, validate)

    def run(
        self,
        schedule,
        cache_size: int,
        policy: str = "lru",
        validate: bool = True,
        machine: MachineModel | None = None,
        io_trace: list[int] | None = None,
    ) -> IOResult:
        """Execute ``schedule`` with the given cache size and policy.

        When ``io_trace`` is a list, the cumulative I/O count after each
        scheduled computation is appended to it (one entry per schedule
        step) — used by the Hong-Kung partition machinery to cut
        executions every ``2M`` I/Os.
        """
        with span(
            "pebbling.run", policy=policy, cache_size=cache_size
        ) as sp:
            result, evictions = self._run(
                schedule, cache_size, policy, validate, machine, io_trace
            )
            # One enabled-check for the whole telemetry block: while
            # disabled, a run pays nothing beyond this bool (no span
            # counters, no belady-gap gauge / lower-bound evaluation).
            if _telemetry_enabled():
                self._record_run_counters(sp, result, evictions)
            return result

    def run_many(
        self,
        schedule,
        cache_sizes,
        policies=("lru",),
        validate: bool = True,
        workers: int | None = None,
    ) -> dict[tuple[int, str], IOResult]:
        """Batched sweep: run every ``(cache_size, policy)``
        configuration over one schedule, validating it and building the
        use-list precompute exactly once.

        On the compiled path the whole grid is stepped by one
        ``run_grid`` kernel call.  With ``workers > 1`` (or
        ``REPRO_RUN_MANY_WORKERS`` set) the grid is partitioned
        round-robin across a ``ProcessPoolExecutor`` — one
        ``pebbling.run_many.partition`` span per partition records the
        worker wall time and path taken.

        Returns ``{(cache_size, policy): IOResult}``.  Telemetry is
        identical to the equivalent sequence of :meth:`run` calls (one
        ``pebbling.run`` span per configuration, counters included —
        the parent re-emits them for partitioned runs).
        """
        plan = self._plan(schedule, validate)
        configs = [(int(M), str(p)) for M in cache_sizes for p in policies]
        machines: dict[int, MachineModel] = {}
        for M, _ in configs:
            if M not in machines:
                machines[M] = MachineModel(cache_size=M)
                machines[M].check_executable(self.cdag)
        if workers is None:
            workers = int(os.environ.get(ENV_RUN_MANY_WORKERS, "0") or 0)
        record = _telemetry_enabled()
        results: dict[tuple[int, str], IOResult] = {}

        if workers and workers > 1 and len(configs) > 1:
            raw = self._run_partitions(plan, configs, workers, record)
            for M, policy in configs:
                with span("pebbling.run", policy=policy, cache_size=M) as sp:
                    result, evictions = _counts_to_result(
                        raw[(M, policy)], M, policy, machines[M]
                    )
                    if record:
                        self._record_run_counters(sp, result, evictions)
                results[(M, policy)] = result
            return results

        mode = kernels.active_mode()
        if mode != "off":
            # One compiled call for the entire grid.
            grid = kernels.run_grid(
                plan.kernel_arrays(),
                np.ascontiguousarray(self.is_input).view(np.uint8),
                np.ascontiguousarray(self.is_output).view(np.uint8),
                [M for M, _ in configs],
                [_POLICY_CODES[p] for _, p in configs],
            )
            for j, (M, policy) in enumerate(configs):
                sc = grid[j]
                _raise_kernel_status(sc)
                with span("pebbling.run", policy=policy, cache_size=M) as sp:
                    result, evictions = _counts_to_result(
                        tuple(int(x) for x in sc[:8]), M, policy, machines[M]
                    )
                    if record:
                        metrics().inc(f"pebbling.kernel.{mode}")
                        self._record_run_counters(sp, result, evictions)
                results[(M, policy)] = result
            return results

        for M, policy in configs:
            with span("pebbling.run", policy=policy, cache_size=M) as sp:
                result, evictions = self._execute(
                    plan, M, policy, machines[M], None
                )
                if record:
                    self._record_run_counters(sp, result, evictions)
            results[(M, policy)] = result
        return results

    def _run_partitions(self, plan, configs, workers: int, record: bool):
        """Fan a config grid out over a process pool; returns the raw
        count tuples ``{(M, policy): counts}``."""
        from concurrent.futures import ProcessPoolExecutor

        n_parts = min(int(workers), len(configs))
        parts = [configs[i::n_parts] for i in range(n_parts)]
        # Plans may wrap read-only memmaps; to_arrays() yields plain
        # contiguous arrays that pickle by value.
        arrays = plan.to_arrays()
        raw: dict[tuple[int, str], tuple] = {}
        with span(
            "pebbling.run_many", partitions=n_parts, configs=len(configs)
        ):
            with ProcessPoolExecutor(max_workers=n_parts) as pool:
                futures = [
                    pool.submit(
                        _partition_worker, arrays, self.is_input,
                        self.is_output, part,
                    )
                    for part in parts
                ]
                for i, (future, part) in enumerate(zip(futures, parts)):
                    wall, mode, counts_list = future.result()
                    # Throughput, not just raw counts: the partition's
                    # configs-per-second is the quantity worker-count
                    # tuning actually optimises, so each partition span
                    # carries it and the registry keeps the last value
                    # as a gauge.
                    configs_per_s = len(part) / wall if wall > 0 else 0.0
                    with span(
                        "pebbling.run_many.partition", partition=i
                    ) as sp:
                        sp.set("configs", len(part))
                        sp.set("worker_wall_s", round(wall, 6))
                        sp.set("configs_per_s", round(configs_per_s, 3))
                        sp.set("path", mode)
                    if record:
                        name = (
                            f"pebbling.kernel.{mode}" if mode != "off"
                            else "pebbling.kernel.fallback"
                        )
                        metrics().inc(name, len(part))
                        # Workers run with telemetry disabled, so the
                        # parent re-emits the core's path counters too.
                        _dispatch.count_path(mode, len(part))
                        metrics().gauge(
                            "pebbling.run_many.configs_per_s"
                        ).set(configs_per_s)
                    for cfg, counts in zip(part, counts_list):
                        raw[cfg] = counts
        return raw

    def _record_run_counters(self, sp, result: IOResult, evictions: int) -> None:
        sp.add("scheduled", self.cdag.n_vertices - int(self.is_input.sum()))
        sp.add("reads", result.reads)
        sp.add("writes", result.writes)
        sp.add("evictions", evictions)
        sp.add("spill_reads", result.spill_reads)
        sp.add("spill_writes", result.spill_writes)
        sp.set("peak_cache", result.peak_cache)
        # Belady-gap gauge (measured total minus the Theorem-1 Ω-form
        # bound) on every run — the autotuner's objective, and the ad
        # hoc quantity the experiments used to derive locally.  It is a
        # registry gauge, not a span counter: the span counter set is an
        # exact observable contract (see the counter-identity suite).
        alg = getattr(self.cdag, "alg", None)
        if alg is not None:
            from repro.bounds.theorem1 import io_lower_bound

            lower = io_lower_bound(
                alg, alg.n0**self.cdag.r, result.cache_size
            )
            metrics().gauge("pebbling.belady_gap").set(
                result.total - lower
            )

    # ------------------------------------------------------------------

    def _run(
        self, schedule, cache_size, policy, validate, machine, io_trace
    ) -> tuple[IOResult, int]:
        machine = machine or MachineModel(cache_size=cache_size)
        if machine.cache_size != cache_size:
            raise CacheError("machine.cache_size disagrees with cache_size")
        plan = self._plan(schedule, validate)
        return self._execute(plan, cache_size, policy, machine, io_trace)

    def _execute(
        self, plan, cache_size, policy, machine, io_trace
    ) -> tuple[IOResult, int]:
        machine.check_executable(self.cdag)
        counts = _simulate(
            plan, self.is_input, self.is_output, cache_size, policy, io_trace
        )
        return _counts_to_result(counts, cache_size, policy, machine)


# ----------------------------------------------------------------------
# Shared executors for the one-shot convenience path.
# ----------------------------------------------------------------------

_MAX_SHARED_EXECUTORS = 4
_shared_executors: "OrderedDict[str, CacheExecutor]" = OrderedDict()


def _shared_executor(cdag: CDAG) -> CacheExecutor:
    """A content-keyed process-local :class:`CacheExecutor` for
    ``cdag`` — so repeated :func:`simulate_io` calls (tests, notebooks)
    reuse compiled plans instead of recompiling per call, graph cache or
    not.  Graphs without an algorithm identity get a fresh executor."""
    if getattr(cdag, "alg", None) is None:
        return CacheExecutor(cdag)
    key = _artifact.cdag_graph_key(cdag)
    executor = _shared_executors.get(key)
    if executor is None:
        executor = CacheExecutor(cdag)
        while len(_shared_executors) >= _MAX_SHARED_EXECUTORS:
            _shared_executors.popitem(last=False)
        _shared_executors[key] = executor
    else:
        _shared_executors.move_to_end(key)
    return executor


def simulate_io(
    cdag: CDAG,
    schedule,
    cache_size: int,
    policy: str = "lru",
    validate: bool = True,
) -> IOResult:
    """One-shot convenience wrapper around :class:`CacheExecutor`.

    Executors are shared per graph content key, so back-to-back calls
    on the same (graph, schedule) hit the in-process plan cache — the
    ``pebbling.plan.{hit,miss}`` counters make the reuse observable."""
    return _shared_executor(cdag).run(
        schedule, cache_size=cache_size, policy=policy, validate=validate
    )
