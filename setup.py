"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists only so that
``pip install -e .`` works on environments without the ``wheel`` package
(pip falls back to the legacy editable install when a setup.py is present
and no [build-system] table is declared).
"""

from setuptools import setup

setup()
