"""E7 — Lemma 5 / Lemma 6 / Figure 9: the Hall condition and Winograd's
matrix-vector bound.

Exhaustively verify ``|N(D)| >= |D| / n0`` over all dependency subsets
(per row class, as the paper's proof partitions) for the 2x2 and 3x3
catalog algorithms; exercise Lemma 6 on the classical matrix-vector
computation (the tight case) and on reduced computations with removed
products (Figure 9's G_1°); and confirm a broken algorithm *fails* the
condition with an explicit certificate.
"""

from __future__ import annotations

import numpy as np

from repro.bilinear import classical, laderman, strassen, winograd
from repro.bilinear.algorithm import BilinearAlgorithm
from repro.bilinear.winograd_bound import (
    ProductFormComputation,
    check_lemma6,
    classical_matvec,
    count_correct_coefficients,
)
from repro.errors import HallConditionError
from repro.experiments.harness import ExperimentResult, register
from repro.routing import base_matching, check_hall_condition
from repro.utils.tables import TextTable

__all__ = ["run"]


@register("E7")
def run() -> ExperimentResult:
    hall_table = TextTable(
        ["algorithm", "side", "exhaustive", "min |N(D)| n0 / |D|", "holds"],
        title="E7: Lemma 5 Hall condition (per-row-class subsets)",
    )
    checks: dict[str, bool] = {}
    for alg in (strassen(), winograd(), laderman(), classical(2)):
        for side in ("A", "B"):
            report = check_hall_condition(alg, side)
            hall_table.add_row(
                [alg.name, side, "yes" if report["exhaustive"] else "no",
                 round(report["min_ratio"], 3)
                 if report["min_ratio"] != float("inf") else "-",
                 "yes" if report["holds"] else "no"]
            )
            checks[f"{alg.name}/{side}: Hall condition holds"] = report["holds"]
            if report["exhaustive"]:
                checks[f"{alg.name}/{side}: min ratio >= 1"] = (
                    report["min_ratio"] >= 1.0
                )

    # Lemma 6 instances.
    lemma6_table = TextTable(
        ["computation", "n0", "d (correct coeffs)", "multiplications",
         "holds"],
        title="E7: Lemma 6 instances (Winograd bound, Figure 9)",
    )
    for n0 in (2, 3):
        comp = classical_matvec(n0)
        rep = check_lemma6(comp)
        lemma6_table.add_row(
            [f"classical matvec", n0, rep["d"], rep["n_mults"],
             "yes" if rep["holds"] else "no"]
        )
        checks[f"matvec n0={n0}: tight (d = mults = n0^2)"] = (
            rep["d"] == rep["n_mults"] == n0 * n0
        )

    # Figure 9's reduction: remove products, count surviving coefficients.
    comp = classical_matvec(3)
    for removed in (1, 3, 5):
        Z = comp.Z.copy()
        Z[:, :removed] = 0
        reduced = ProductFormComputation(n0=3, UA=comp.UA, VB=comp.VB, Z=Z)
        rep = check_lemma6(reduced)
        lemma6_table.add_row(
            [f"matvec minus {removed} products", 3, rep["d"],
             rep["n_mults"], "yes" if rep["holds"] else "no"]
        )
        checks[f"reduced matvec (-{removed}): lemma 6 holds"] = rep["holds"]

    # Negative control: erase an input from every product of Strassen —
    # the Hall condition must fail with a certificate.
    alg = strassen()
    U = alg.U.copy()
    U[:, 1] = 0.0
    broken = BilinearAlgorithm(n0=2, U=U, V=alg.V, W=alg.W, name="no-a12")
    try:
        base_matching(broken, "A")
        checks["broken algorithm rejected with certificate"] = False
    except HallConditionError as exc:
        checks["broken algorithm rejected with certificate"] = (
            exc.violating_set is not None
        )

    return ExperimentResult(
        experiment_id="E7",
        title="Lemma 5 & Lemma 6: Hall condition via Winograd's bound",
        tables=[hall_table, lemma6_table],
        checks=checks,
    )
