"""Bilinear matrix-multiplication algorithms: representation, catalog,
compositions, and correctness machinery.

Entry points:

- :class:`BilinearAlgorithm` — the ``<U, V, W>`` triple with Brent-equation
  validation and the structural predicates the paper's assumptions refer to;
- :mod:`repro.bilinear.catalog` — Strassen, Winograd, classical, Laderman;
- :mod:`repro.bilinear.compose` — tensor products and tensor symmetries
  (including the fast disconnected-decoder example Strassen ⊗ classical);
- :mod:`repro.bilinear.synthetic` — assumption-violating fixtures;
- :mod:`repro.bilinear.winograd_bound` — Lemma 6 in checkable form.
"""

from repro.bilinear.algorithm import (
    BilinearAlgorithm,
    matmul_tensor,
    solve_decoder,
)
from repro.bilinear.catalog import (
    strassen,
    winograd,
    classical,
    laderman,
    strassen_peeled,
    list_catalog,
    by_name,
)
from repro.bilinear.compose import (
    tensor_product,
    tensor_power,
    cyclic_rotation,
    transpose_dual,
    strassen_x_classical,
    strassen_x_classical_su,
    strassen_squared,
    sandwich_transform,
    random_equivalent,
)
from repro.bilinear.verify import numeric_check, algorithm_stats, AlgorithmStats

__all__ = [
    "BilinearAlgorithm",
    "matmul_tensor",
    "solve_decoder",
    "strassen",
    "winograd",
    "classical",
    "laderman",
    "strassen_peeled",
    "list_catalog",
    "by_name",
    "tensor_product",
    "tensor_power",
    "cyclic_rotation",
    "transpose_dual",
    "strassen_x_classical",
    "strassen_x_classical_su",
    "strassen_squared",
    "sandwich_transform",
    "random_equivalent",
    "numeric_check",
    "algorithm_stats",
    "AlgorithmStats",
]
