"""Benchmark E2: Meta-vertex census (paper Figure 2, Lemma 2).

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md)
and asserts every paper-claim check; pytest-benchmark tracks the
regeneration cost.
"""


def test_e2_metavertices(run_experiment):
    run_experiment("E2")
