"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "strassen" in out
        assert "laderman" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "--n", "256", "--M", "64"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out

    def test_bounds_parallel(self, capsys):
        assert main(
            ["bounds", "--n", "256", "--M", "64", "--P", "7"]
        ) == 0
        assert "memory-independent" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(
            ["simulate", "--r", "2", "--M", "16", "--schedule", "recursive"]
        ) == 0
        out = capsys.readouterr().out
        assert "total=" in out

    def test_simulate_random_schedule(self, capsys):
        assert main(
            ["simulate", "--r", "2", "--M", "16", "--schedule", "random",
             "--seed", "4"]
        ) == 0

    def test_route_verified(self, capsys):
        assert main(["route", "--alg", "strassen", "--k", "1"]) == 0
        assert "VERIFIED: True" in capsys.readouterr().out

    def test_caps(self, capsys):
        assert main(
            ["caps", "--n", "64", "--P", "7", "--M", "100000"]
        ) == 0
        assert "bandwidth cost" in capsys.readouterr().out

    def test_render_ascii(self, capsys):
        assert main(["render", "--alg", "strassen"]) == 0
        assert "rank" in capsys.readouterr().out

    def test_render_dot(self, capsys):
        assert main(["render", "--alg", "strassen", "--format", "dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_experiments_selected(self, capsys):
        assert main(["experiments", "E1"]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_experiments_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("E1", "E9", "E14"):
            assert experiment_id in out
        assert "reproduced" not in out  # nothing was run

    def test_experiments_exit_nonzero_on_failed_check(self, capsys):
        from repro.experiments.harness import ExperimentResult, _REGISTRY

        def failing_run() -> ExperimentResult:
            return ExperimentResult(
                "E98", "always fails", checks={"claim": False}
            )

        _REGISTRY["E98"] = failing_run
        try:
            assert main(["experiments", "E98"]) == 1
            assert "FAILED experiments" in capsys.readouterr().out
        finally:
            del _REGISTRY["E98"]


class TestSweepCommand:
    def test_sweep_runs_and_caches(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        argv = ["sweep", "E1", "--jobs", "2", "--cache-dir", str(cache)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 computed, 0 from cache" in out
        assert (cache / "events.jsonl").is_file()
        # identical rerun: served from cache
        assert main(argv + ["--resume"]) == 0
        assert "0 computed, 1 from cache" in capsys.readouterr().out

    def test_sweep_param_grid(self, capsys, tmp_path):
        assert main(
            ["sweep", "E2", "--jobs", "2",
             "--cache-dir", str(tmp_path / "c"),
             "--param", "E2:r=2,3", "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "E2[r=2]" in out and "E2[r=3]" in out

    def test_sweep_seeds_fan_out(self, capsys, tmp_path):
        assert main(
            ["sweep", "E8", "--jobs", "2",
             "--cache-dir", str(tmp_path / "c"),
             "--param", "E8:r=2", "--seeds", "1,2", "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "seed=1" in out and "seed=2" in out

    def test_sweep_resume_heals_a_torn_event_log(self, capsys, tmp_path):
        """A killed sweep leaves a torn journal tail; --resume repairs
        it, reports the replay, and serves the finished job from cache."""
        cache = tmp_path / "cache"
        argv = ["sweep", "E1", "--jobs", "2", "--cache-dir", str(cache)]
        assert main(argv) == 0
        capsys.readouterr()
        events = cache / "events.jsonl"
        with events.open("a", encoding="utf-8") as fh:
            fh.write('{"ts": 1.0, "event": "job_fin')  # simulated SIGKILL
        assert main(argv + ["--resume", "--quiet"]) == 0
        assert "1 from cache" in capsys.readouterr().out
        from repro.runner.events import read_events, tally

        records = read_events(events)  # strict parse: tail was truncated
        assert tally(records)["sweep_resume"] == 1

    def test_sweep_chaos_soak_mode(self, capsys, tmp_path):
        assert main(
            ["sweep", "E1", "--jobs", "2", "--quiet",
             "--cache-dir", str(tmp_path / "c"),
             "--chaos", "7", "--timeout", "3", "--heartbeat", "0.2"]
        ) == 0
        out = capsys.readouterr().out
        assert "chaos: seed=7" in out

    def test_sweep_generous_deadline_is_inert(self, capsys, tmp_path):
        assert main(
            ["sweep", "E1", "--quiet", "--deadline", "300",
             "--cache-dir", str(tmp_path / "c")]
        ) == 0
        assert "1 computed" in capsys.readouterr().out

    def test_sweep_rejects_bad_param(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "E1", "--param", "nonsense",
                  "--cache-dir", str(tmp_path)])

    def test_sweep_rejects_param_for_unselected_experiment(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "E1", "--param", "E9:r_max=3",
                  "--cache-dir", str(tmp_path)])

    def test_fresh_and_resume_conflict(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--fresh", "--resume"])


class TestTuneCommand:
    def _argv(self, tmp_path, *extra):
        return [
            "tune", "--alg", "strassen", "--r", "2", "--M", "12",
            "--budget", "10", "--generation", "4", "--seed", "3",
            "--local", "--cache-dir", str(tmp_path), *extra,
        ]

    def test_tune_runs_and_reports(self, capsys, tmp_path):
        assert main(self._argv(tmp_path, "--strategy", "anneal")) == 0
        out = capsys.readouterr().out
        assert "best I/O" in out
        assert "Belady gap" in out
        assert "journal:" in out

    def test_tune_json_line(self, capsys, tmp_path):
        import json

        assert main(
            self._argv(tmp_path, "--strategy", "portfolio", "--json")
        ) == 0
        line = capsys.readouterr().out.strip().splitlines()[-1]
        doc = json.loads(line)
        assert doc["command"] == "tune"
        assert doc["exit_code"] == 0
        assert doc["best_io"] <= doc["start_io"]
        assert doc["evaluations"] <= 10

    def test_tune_resume_after_finish_is_idempotent(self, capsys, tmp_path):
        journal = tmp_path / "t.jsonl"
        argv = self._argv(tmp_path, "--journal", str(journal))
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "resumed" in second
        # Identical best line either way.
        pick = [ln for ln in first.splitlines() if "best I/O" in ln]
        assert pick == [ln for ln in second.splitlines() if "best I/O" in ln]

    def test_tune_resume_config_mismatch_exits_1(self, capsys, tmp_path):
        journal = tmp_path / "t.jsonl"
        assert main(self._argv(tmp_path, "--journal", str(journal))) == 0
        capsys.readouterr()
        argv = [
            "tune", "--alg", "strassen", "--r", "2", "--M", "12",
            "--budget", "11", "--generation", "4", "--seed", "3",
            "--local", "--cache-dir", str(tmp_path),
            "--journal", str(journal), "--resume",
        ]
        assert main(argv) == 1
        assert "config mismatch" in capsys.readouterr().err

    def test_tune_unreachable_daemon_exits_2(self, tmp_path):
        argv = [
            "tune", "--r", "2", "--M", "12", "--budget", "4",
            "--cache-dir", str(tmp_path),
            "--socket", str(tmp_path / "absent.sock"),
        ]
        assert main(argv) == 2

    def test_tune_fresh_and_resume_conflict(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--fresh", "--resume"])

    def test_tune_profile_trace_out(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert main(
            self._argv(tmp_path, "--trace-out", str(trace))
        ) == 0
        assert trace.exists()
        assert "trace:" in capsys.readouterr().out
