"""Wire-protocol unit tests: framing, validation, spec round-trips."""

from __future__ import annotations

import json

import pytest

from repro.errors import ProtocolError
from repro.runner.jobs import JobSpec
from repro.service import protocol


class TestEncode:
    def test_one_newline_terminated_line(self):
        raw = protocol.encode({"op": "ping"})
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1
        assert json.loads(raw) == {"op": "ping"}

    def test_canonical_key_order(self):
        a = protocol.encode({"op": "x", "b": 1, "a": 2})
        b = protocol.encode({"a": 2, "op": "x", "b": 1})
        assert a == b

    def test_requires_op(self):
        with pytest.raises(ProtocolError):
            protocol.encode({"jobs": []})

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            protocol.encode({"op": "x", "v": float("nan")})


class TestDecodeLine:
    def test_round_trip(self):
        msg = {"op": "submit", "jobs": [{"experiment": "E1"}]}
        assert protocol.decode_line(protocol.encode(msg)) == msg

    def test_accepts_str_and_bytes(self):
        assert protocol.decode_line('{"op": "ping"}\n') == {"op": "ping"}
        assert protocol.decode_line(b'{"op": "ping"}\n') == {"op": "ping"}

    @pytest.mark.parametrize(
        "line",
        [b"", b"\n", b"not json\n", b"[1, 2]\n", b'{"no_op": 1}\n',
         b'{"op": 42}\n'],
    )
    def test_rejects_malformed(self, line):
        with pytest.raises(ProtocolError):
            protocol.decode_line(line)


class TestSpecDocs:
    def test_round_trip_preserves_cache_key(self):
        spec = JobSpec("E9", {"r_max": 3}, seed=7,
                       entrypoint="tests.runner.helpers:ok_job")
        doc = protocol.spec_to_doc(spec)
        json.dumps(doc)  # wire-safe
        back = protocol.doc_to_spec(doc)
        assert back.cache_key == spec.cache_key
        assert back == spec

    def test_accepts_experiment_id_alias(self):
        spec = protocol.doc_to_spec({"experiment_id": "E1"})
        assert spec.experiment_id == "E1"

    @pytest.mark.parametrize(
        "doc",
        [
            "not a mapping",
            {},
            {"experiment": 42},
            {"experiment": ""},
            {"experiment": "E1", "params": [1, 2]},
            {"experiment": "E1", "seed": "seven"},
            {"experiment": "E1", "entrypoint": 3},
        ],
    )
    def test_rejects_bad_docs(self, doc):
        with pytest.raises(ProtocolError):
            protocol.doc_to_spec(doc)
