"""End-to-end integration tests crossing all subsystem boundaries.

Each test walks a complete pipeline the way a downstream user would:
algorithm -> CDAG -> schedule -> simulated I/O -> bound comparison, or
algorithm -> routing -> segment argument -> certified bound.
"""

import numpy as np
import pytest

import repro
from repro.bilinear import laderman, random_equivalent, strassen_peeled
from repro.cdag import compute_metavertices
from repro.pebbling import SegmentAnalysis
from repro.routing import theorem2_certificate
from repro.utils.rngs import make_rng


class TestSequentialPipeline:
    @pytest.mark.parametrize(
        "alg_name,r",
        [("strassen", 3), ("winograd", 3), ("laderman", 2),
         ("classical-2", 3), ("strassen-peeled-3", 2)],
    )
    def test_full_io_pipeline(self, alg_name, r):
        """Build, schedule, simulate, and sandwich-check any catalog
        algorithm end to end."""
        alg = repro.by_name(alg_name)
        g = repro.build_cdag(alg, r)

        # The graph computes the right function.
        n = alg.n0**r
        rng = make_rng(1)
        A, B = rng.standard_normal((n, n)), rng.standard_normal((n, n))
        np.testing.assert_allclose(g.evaluate(A, B)["C"], A @ B, atol=1e-8)

        # Simulated I/O respects the Theorem 1 bound (when applicable).
        sched = repro.recursive_schedule(g)
        M = max(8, alg.b + 2)
        measured = repro.simulate_io(g, sched, M, policy="belady").total
        assert measured >= repro.io_lower_bound(alg, n, M) or not alg.is_strassen_like

    def test_bound_pipeline_matches_direct_formula(self):
        alg = repro.strassen()
        lb = repro.io_lower_bound(alg, 1024, 64)
        assert lb == pytest.approx((1024 / 8) ** alg.omega0 * 64)


class TestRoutingToSegmentPipeline:
    def test_routing_feeds_segment_argument(self):
        """The two halves of the paper's proof glue together: the
        Theorem-2 routing exists AND the segment argument certifies
        positive I/O on a real run, never exceeding the measured cost."""
        alg = repro.strassen()
        g = repro.build_cdag(alg, 3)
        meta = compute_metavertices(g)

        cert = theorem2_certificate(alg, 1, )
        assert cert.report.within_bound

        analysis = SegmentAnalysis(g, meta, cache_size=2, k=1, threshold=24)
        sched = repro.recursive_schedule(g)
        certified = analysis.implied_lower_bound(sched)
        measured = repro.simulate_io(g, sched, 8, policy="belady").total
        assert 0 < certified <= measured

    def test_equivalence_class_member_full_pipeline(self):
        """A freshly generated de Groote equivalent goes through the
        whole machinery like a first-class citizen."""
        alg = random_equivalent(repro.strassen(), seed=123)
        g = repro.build_cdag(alg, 2)
        rng = make_rng(2)
        A, B = rng.standard_normal((4, 4)), rng.standard_normal((4, 4))
        np.testing.assert_allclose(g.evaluate(A, B)["C"], A @ B, atol=1e-7)
        if alg.satisfies_single_use():
            assert theorem2_certificate(alg, 1).report.within_bound


class TestParallelPipeline:
    def test_caps_respects_sequential_consistency(self):
        """Total communicated volume across all processors is at least
        the single-processor spill the sequential bound prices (shape
        check linking the two models)."""
        from repro.parallel import DistributedMachine, simulate_caps

        alg = repro.strassen()
        n, P = 2**8, 49
        M = 10**9
        run = simulate_caps(alg, n, DistributedMachine(P, M))
        assert run.bandwidth_cost >= repro.memory_independent_lower_bound(
            alg, n, P
        )


class TestNumericConsistencyAcrossLayers:
    @pytest.mark.parametrize("maker", [laderman, strassen_peeled])
    def test_three_evaluation_paths_agree(self, maker):
        """apply_base tensor form, CDAG evaluation, and the recursive
        numeric kernel all compute the same function."""
        from repro.linalg import recursive_matmul

        alg = maker()
        rng = make_rng(3)
        A = rng.standard_normal((alg.n0, alg.n0))
        B = rng.standard_normal((alg.n0, alg.n0))
        base = alg.apply_base(A, B)
        g = repro.build_cdag(alg, 1)
        via_cdag = g.evaluate(A, B)["C"]
        via_kernel = recursive_matmul(alg, A, B)
        np.testing.assert_allclose(base, via_cdag, atol=1e-10)
        np.testing.assert_allclose(base, via_kernel, atol=1e-10)
        np.testing.assert_allclose(base, A @ B, atol=1e-10)
