"""Lemma 6 / Winograd's matrix-vector multiplication bound, checkable form.

The keystone of the paper's Lemma 5 is Winograd's classical result [15]:
computing the product of an ``n0 x n0`` matrix with a length-``n0`` vector
requires at least ``n0^2`` multiplications.  The paper packages the
reduction as Lemma 6:

    Let ``G1°`` be a CDAG with inputs ``a_ij`` and ``b_ij`` and outputs
    ``c_ij`` where each ``c_ij`` is computed as a sum of products of
    linear combinations.  If for ``d`` pairs ``(j, j')`` the coefficient
    of ``a_ij'`` in ``c_ij`` equals ``b_j'j``, then ``G1°`` uses at least
    ``d`` multiplications.

This module implements the *coefficient extraction* exactly: the
coefficient of ``a_ij'`` in output ``c_ij`` of a product-form computation
is a linear form in the ``b`` entries, computable from the coefficient
matrices.  :func:`count_correct_coefficients` counts the pairs whose form
is exactly the required ``b_j'j``, and :func:`check_lemma6` asserts the
lemma's inequality for a concrete computation.  Lemma 5's proof is then
exercised end-to-end by :mod:`repro.routing.hall` (experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.indexing import pair_index

__all__ = [
    "ProductFormComputation",
    "count_correct_coefficients",
    "check_lemma6",
    "classical_matvec",
]


@dataclass(frozen=True)
class ProductFormComputation:
    """A computation of ``n0`` outputs ``c_i0 .. c_i(n0-1)`` (one fixed row
    ``i`` of C) as linear combinations of products
    ``(u_m · a-row) * (v_m · b-entries)``.

    This is the shape of the reduced CDAG ``G1°`` in the paper's
    Section 7.3 after restricting to one row class ``D_i``: the relevant
    ``A`` inputs are the single row ``a_i*`` (length ``n0``), ``B`` is the
    full ``n0 x n0`` matrix.

    Attributes
    ----------
    n0:
        Base dimension.
    UA:
        Shape ``(n_mults, n0)``: A-side coefficients over ``a_i0..a_i(n0-1)``.
    VB:
        Shape ``(n_mults, n0*n0)``: B-side coefficients over all ``b_kl``.
    Z:
        Shape ``(n0, n_mults)``: decoder; row ``j`` gives output ``c_ij``.
    """

    n0: int
    UA: np.ndarray
    VB: np.ndarray
    Z: np.ndarray

    def __post_init__(self):
        UA = np.asarray(self.UA, dtype=np.float64)
        VB = np.asarray(self.VB, dtype=np.float64)
        Z = np.asarray(self.Z, dtype=np.float64)
        n0 = self.n0
        if UA.ndim != 2 or UA.shape[1] != n0:
            raise ValueError(f"UA must have shape (m, {n0})")
        if VB.shape != (UA.shape[0], n0 * n0):
            raise ValueError(f"VB must have shape ({UA.shape[0]}, {n0 * n0})")
        if Z.shape != (n0, UA.shape[0]):
            raise ValueError(f"Z must have shape ({n0}, {UA.shape[0]})")
        object.__setattr__(self, "UA", UA)
        object.__setattr__(self, "VB", VB)
        object.__setattr__(self, "Z", Z)

    @property
    def n_mults(self) -> int:
        """Number of multiplication vertices actually used: products with a
        nonzero A-side, nonzero B-side, and a nonzero decoder coefficient
        somewhere (dead products do not count as multiplications)."""
        used = (
            np.any(self.UA != 0, axis=1)
            & np.any(self.VB != 0, axis=1)
            & np.any(self.Z != 0, axis=0)
        )
        return int(np.count_nonzero(used))

    def coefficient_form(self, j: int, j_prime: int) -> np.ndarray:
        """The coefficient of ``a_ij'`` in ``c_ij`` as a vector over the
        ``b`` entries (length ``n0*n0``).

        ``c_ij = Σ_m Z[j, m] (UA[m] · a) (VB[m] · b)``; the coefficient of
        ``a_ij'`` is ``Σ_m Z[j, m] UA[m, j'] VB[m, :] · b``.
        """
        return np.einsum(
            "m,m,mx->x", self.Z[j], self.UA[:, j_prime], self.VB
        )


def count_correct_coefficients(
    comp: ProductFormComputation, atol: float = 1e-9
) -> int:
    """Number of pairs ``(j, j')`` whose coefficient of ``a_ij'`` in
    ``c_ij`` is exactly the matrix-multiplication value ``b_j'j``."""
    n0 = comp.n0
    count = 0
    for j in range(n0):
        for j_prime in range(n0):
            form = comp.coefficient_form(j, j_prime)
            target = np.zeros(n0 * n0)
            target[pair_index(j_prime, j, n0)] = 1.0
            if np.max(np.abs(form - target)) <= atol:
                count += 1
    return count


def check_lemma6(comp: ProductFormComputation, atol: float = 1e-9) -> dict:
    """Evaluate Lemma 6 on a concrete computation.

    Returns a report dict with ``d`` (correct coefficient pairs),
    ``n_mults``, and ``holds`` (``n_mults >= d``).  By the lemma,
    ``holds`` is always ``True``; a ``False`` would disprove Winograd's
    bound and indicates a bug in the caller's construction.
    """
    d = count_correct_coefficients(comp, atol=atol)
    n_mults = comp.n_mults
    return {"d": d, "n_mults": n_mults, "holds": n_mults >= d}


def classical_matvec(n0: int) -> ProductFormComputation:
    """The classical row-times-matrix computation: ``n0^2``
    multiplications, all ``n0^2`` coefficients correct — the tight case of
    Winograd's bound."""
    n_mults = n0 * n0
    UA = np.zeros((n_mults, n0))
    VB = np.zeros((n_mults, n0 * n0))
    Z = np.zeros((n0, n_mults))
    m = 0
    for j_prime in range(n0):  # a_ij'
        for j in range(n0):  # contributes to c_ij via b_j'j
            UA[m, j_prime] = 1.0
            VB[m, pair_index(j_prime, j, n0)] = 1.0
            Z[j, m] = 1.0
            m += 1
    return ProductFormComputation(n0=n0, UA=UA, VB=VB, Z=Z)
