"""Quickstart: from an algorithm to an I/O measurement and its bound.

Builds Strassen's CDAG for 16x16 inputs, checks it computes matrix
multiplication, runs the recursive schedule through the pebble-game
cache simulator at several cache sizes, and compares the measured I/O
against Theorem 1's lower bound and the recursive upper bound.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.bounds import recursive_io_recurrence
from repro.utils.tables import TextTable


def main() -> None:
    alg = repro.strassen()
    print(f"Algorithm: {alg}")
    print(f"  arithmetic exponent omega0 = {alg.omega0:.4f} (= log2 7)")
    print(f"  single-use assumption satisfied: {alg.satisfies_single_use()}")

    r = 4
    g = repro.build_cdag(alg, r)
    n = alg.n0**r
    print(f"\nCDAG G_{r}: {g.n_vertices} vertices, {g.n_edges} edges "
          f"(for {n}x{n} matrices)")

    # The CDAG really computes matrix multiplication.
    rng = np.random.default_rng(0)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    error = np.max(np.abs(g.evaluate(A, B)["C"] - A @ B))
    print(f"CDAG evaluation vs numpy: max abs error = {error:.2e}")

    # Measure I/O of the communication-efficient schedule.
    sched = repro.recursive_schedule(g)
    table = TextTable(
        ["M", "lower bound (Thm 1)", "measured I/O (belady)",
         "upper model"],
        title=f"\nI/O of the recursive schedule, n={n}",
    )
    for M in (12, 24, 48, 96, 192):
        measured = repro.simulate_io(g, sched, M, policy="belady").total
        table.add_row(
            [M, round(repro.io_lower_bound(alg, n, M)), measured,
             recursive_io_recurrence(alg, n, M)]
        )
    print(table.render())
    print("\nThe measured I/O always sits between the Theorem 1 lower "
          "bound and the\nrecursive upper-bound model, and falls as the "
          "cache grows — the (n/sqrt(M))^omega0 * M law.")


if __name__ == "__main__":
    main()
