"""E5 — Lemma 4 (Figure 6): chain concatenation and exact usage counts.

Verify that routing *all* input-output pairs through the
``a_ij -> c_ij' <- b_jj' -> c_i'j'`` pattern uses every
guaranteed-dependence chain exactly ``3 n0^k`` times, and that the
junction bookkeeping (reversed middle chains) produces genuine paths.
"""

from __future__ import annotations

import numpy as np

from repro.bilinear import laderman, strassen
from repro.cdag import build_cdag
from repro.experiments.harness import ExperimentResult, register
from repro.routing import (
    chain_usage_counts,
    lemma3_routing,
    lemma4_routing,
    verify_path,
)
from repro.utils.tables import TextTable

__all__ = ["run"]


@register("E5")
def run(k: int = 2, sample_paths: int = 200) -> ExperimentResult:
    table = TextTable(
        ["algorithm", "k", "chains", "paths", "usage min", "usage max",
         "expected 3n0^k"],
        title="E5: Lemma 4 chain-usage counts (Figure 6)",
    )
    checks: dict[str, bool] = {}
    for alg, depth in ((strassen(), k), (laderman(), 1)):
        g = build_cdag(alg, depth)
        chains = lemma3_routing(g)
        usage = chain_usage_counts(g, chains)
        expected = 3 * alg.n0**depth
        table.add_row(
            [alg.name, depth, len(chains),
             2 * alg.a**depth * alg.a**depth,
             min(usage.values()), max(usage.values()), expected]
        )
        checks[f"{alg.name}: every chain used exactly 3n0^k times"] = set(
            usage.values()
        ) == {expected}

        routing = lemma4_routing(g, chains)
        rng = np.random.default_rng(0)
        idx = rng.choice(len(routing), size=min(sample_paths, len(routing)),
                         replace=False)
        ok = True
        for i in idx.tolist():
            try:
                verify_path(g, routing.paths[i])
            except Exception:
                ok = False
                break
        checks[f"{alg.name}: sampled concatenated paths are valid walks"] = ok
        checks[f"{alg.name}: endpoints cover In x Out exactly"] = (
            set(routing.endpoints)
            == {(int(v), int(w)) for v in g.inputs() for w in g.outputs()}
        )
    return ExperimentResult(
        experiment_id="E5",
        title="Lemma 4: concatenation routing",
        tables=[table],
        checks=checks,
    )
