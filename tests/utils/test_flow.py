"""Tests for Hopcroft-Karp matching and the capacitated (Theorem 3) form."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.flow import (
    capacitated_matching,
    degree_histogram,
    hall_violator,
    hopcroft_karp,
)


def _matching_size(adjacency, n_right):
    match_left, match_right = hopcroft_karp(adjacency, n_right)
    size = sum(1 for m in match_left if m != -1)
    # Internal consistency: match_right must mirror match_left.
    for x, y in enumerate(match_left):
        if y != -1:
            assert match_right[y] == x
    return size


class TestHopcroftKarp:
    def test_perfect_matching_complete_graph(self):
        adj = [[0, 1, 2], [0, 1, 2], [0, 1, 2]]
        assert _matching_size(adj, 3) == 3

    def test_no_edges(self):
        assert _matching_size([[], []], 3) == 0

    def test_single_edge(self):
        assert _matching_size([[1]], 2) == 1

    def test_bottleneck(self):
        # Three left vertices all adjacent only to right vertex 0.
        adj = [[0], [0], [0]]
        assert _matching_size(adj, 1) == 1

    def test_augmenting_path_needed(self):
        # Greedy could match x0-y0 and block x1; HK must find size 2.
        adj = [[0, 1], [0]]
        assert _matching_size(adj, 2) == 2

    def test_empty_left(self):
        assert _matching_size([], 4) == 0

    @settings(max_examples=60)
    @given(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.data(),
    )
    def test_matches_networkx(self, n_left, n_right, data):
        """Maximum matching size must equal networkx's on random graphs."""
        adj = [
            sorted(
                data.draw(
                    st.sets(
                        st.integers(min_value=0, max_value=n_right - 1),
                        max_size=n_right,
                    )
                )
            )
            for _ in range(n_left)
        ]
        size = _matching_size(adj, n_right)

        g = nx.Graph()
        g.add_nodes_from(f"L{x}" for x in range(n_left))
        g.add_nodes_from(f"R{y}" for y in range(n_right))
        for x, row in enumerate(adj):
            for y in row:
                g.add_edge(f"L{x}", f"R{y}")
        nx_size = len(
            nx.bipartite.maximum_matching(
                g, top_nodes=[f"L{x}" for x in range(n_left)]
            )
        ) // 2
        assert size == nx_size


class TestCapacitatedMatching:
    def test_capacity_one_is_plain_matching(self):
        adj = [[0], [1]]
        assignment = capacitated_matching(adj, 2, 1)
        assert assignment == [0, 1]

    def test_many_to_one(self):
        # 4 left vertices, 2 right, capacity 2: feasible.
        adj = [[0, 1]] * 4
        assignment = capacitated_matching(adj, 2, 2)
        assert assignment is not None
        hist = degree_histogram(assignment)
        assert all(count <= 2 for count in hist.values())

    def test_infeasible_returns_none(self):
        # 3 left vertices only adjacent to right 0, capacity 2.
        adj = [[0], [0], [0]]
        assert capacitated_matching(adj, 1, 2) is None

    def test_respects_adjacency(self):
        adj = [[1], [0]]
        assignment = capacitated_matching(adj, 2, 3)
        assert assignment == [1, 0]

    def test_zero_capacity_raises(self):
        with pytest.raises(ValueError):
            capacitated_matching([[0]], 1, 0)

    @settings(max_examples=40)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=3),
        st.data(),
    )
    def test_feasibility_matches_hall_condition(
        self, n_left, n_right, capacity, data
    ):
        """capacitated_matching succeeds iff every subset D of the left
        side satisfies |N(D)| >= |D| / capacity (Hall, Theorem 3)."""
        from itertools import combinations

        adj = [
            sorted(
                data.draw(
                    st.sets(
                        st.integers(min_value=0, max_value=n_right - 1),
                        max_size=n_right,
                    )
                )
            )
            for _ in range(n_left)
        ]
        assignment = capacitated_matching(adj, n_right, capacity)

        hall_ok = True
        for size in range(1, n_left + 1):
            for D in combinations(range(n_left), size):
                neighborhood = set().union(*(set(adj[x]) for x in D))
                if len(neighborhood) * capacity < len(D):
                    hall_ok = False
        assert (assignment is not None) == hall_ok
        if assignment is not None:
            for x, y in enumerate(assignment):
                assert y in adj[x]
            assert all(
                c <= capacity for c in degree_histogram(assignment).values()
            )


class TestHallViolator:
    def test_none_when_feasible(self):
        assert hall_violator([[0], [1]], 2, 1) is None

    def test_certificate_when_infeasible(self):
        adj = [[0], [0], [0]]
        result = hall_violator(adj, 1, 2)
        assert result is not None
        D, N = result
        assert len(N) * 2 < len(D)
        # N must be the true neighborhood of D.
        assert set(N) == set().union(*(set(adj[x]) for x in D))

    def test_zero_capacity_raises(self):
        with pytest.raises(ValueError):
            hall_violator([[0]], 1, 0)

    @settings(max_examples=40)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=3),
        st.data(),
    )
    def test_violator_is_valid_certificate(self, n_left, n_right, capacity, data):
        adj = [
            sorted(
                data.draw(
                    st.sets(
                        st.integers(min_value=0, max_value=n_right - 1),
                        max_size=n_right,
                    )
                )
            )
            for _ in range(n_left)
        ]
        result = hall_violator(adj, n_right, capacity)
        if result is None:
            assert capacitated_matching(adj, n_right, capacity) is not None
        else:
            D, N = result
            assert set(N) == set().union(*(set(adj[x]) for x in D))
            assert len(N) * capacity < len(D)
