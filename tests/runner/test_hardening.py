"""Crash-safety hardening: torn logs, checksums, watchdog, deadline.

These tests target the failure modes the chaos subsystem injects —
each one exercised here directly and deterministically, without a
monkey, so a regression points at the hardened component rather than
at a fault plan.
"""

import json
import math

import pytest

from repro.chaos import FaultPlan, monkey
from repro.runner.events import EventLog, read_events, replay_journal
from repro.runner.jobs import JobSpec
from repro.runner.pool import _retry_delay, run_sweep
from repro.runner.report import fault_summary
from repro.runner.store import ResultStore, payload_checksum

HELPERS = "tests.runner.helpers"


def spec(name, params=None, fn=None):
    return JobSpec(
        name, params or {}, entrypoint=f"{HELPERS}:{fn or 'ok_job'}"
    )


def sweep(specs, store=None, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("backoff", 0.01)
    kw.setdefault("progress", False)
    return run_sweep(specs, store, **kw)


class TestTornLogRecovery:
    def _write_log(self, path, torn=True):
        lines = [
            json.dumps({"ts": 1.0, "event": "sweep_start", "jobs": 2, "workers": 1}),
            json.dumps({"ts": 2.0, "event": "job_finish", "key": "K1",
                        "job": "a", "experiment": "a", "attempt": 1,
                        "duration": 0.1, "worker": 1}),
        ]
        blob = "\n".join(lines) + "\n"
        if torn:
            blob += '{"ts": 3.0, "event": "job_fin'  # no trailing newline
        path.write_text(blob, encoding="utf-8")

    def test_strict_read_raises_on_torn_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_log(path)
        with pytest.raises(json.JSONDecodeError):
            read_events(path)

    def test_lenient_read_skips_and_counts(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_log(path)
        records, n_bad = read_events(path, strict=False)
        assert len(records) == 2
        assert n_bad == 1

    def test_lenient_read_of_healthy_log_reports_zero_bad(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_log(path, torn=False)
        records, n_bad = read_events(path, strict=False)
        assert len(records) == 2 and n_bad == 0

    def test_recover_truncates_in_place(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_log(path)
        info = EventLog.recover(path)
        assert info["existed"] and info["records"] == 2
        assert info["dropped_bytes"] > 0
        assert path.read_bytes().endswith(b"\n")
        # idempotent: a second recovery finds nothing to fix
        again = EventLog.recover(path)
        assert again["dropped_bytes"] == 0 and again["records"] == 2

    def test_recover_missing_file_is_safe(self, tmp_path):
        info = EventLog.recover(tmp_path / "absent.jsonl")
        assert info == {
            "existed": False, "records": 0, "dropped_bytes": 0, "bad_lines": 0
        }

    def test_recovered_log_can_be_reopened_for_append(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_log(path)
        EventLog.recover(path)
        with EventLog(path) as log:
            log.emit("sweep_finish", ok=1, failed=0, cached=0, duration=0.2)
        assert len(read_events(path)) == 3  # strict parse succeeds

    def test_replay_journal_classifies_terminal_jobs(self, tmp_path):
        path = tmp_path / "events.jsonl"
        records = [
            {"ts": 1.0, "event": "job_finish", "key": "K1"},
            {"ts": 2.0, "event": "cache_hit", "key": "K2"},
            {"ts": 3.0, "event": "job_failed", "key": "K3"},
            {"ts": 4.0, "event": "job_start", "key": "K4"},  # not terminal
            {"ts": 5.0, "event": "job_finish", "key": "K3"},  # K3 retried OK
        ]
        blob = "\n".join(json.dumps(r) for r in records) + "\n"
        path.write_text(blob + '{"torn', encoding="utf-8")
        replay = replay_journal(path)
        assert replay["complete"] == {"K1", "K2", "K3"}
        assert replay["failed"] == set()
        assert replay["dropped_bytes"] > 0


class TestStoreChecksum:
    def test_bitflip_is_a_miss_and_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        s = spec("T-OK", {"x": 3})
        (first,) = sweep([s], store)
        path = store.path_for(s)
        doc = json.loads(path.read_text())
        doc["result"]["data"]["squared"] = 999  # silent corruption
        path.write_text(json.dumps(doc), encoding="utf-8")

        assert store.get(s) is None  # never served as a hit
        assert not path.exists()
        assert len(list(store.quarantine_root.glob("*.json"))) == 1

        # acceptance: the next sweep recomputes, and the healed artifact
        # is byte-identical to the original
        original = first.payload
        (second,) = sweep([s], store)
        assert second.status == "ok" and second.payload == original
        assert json.loads(path.read_text())["result"]["data"]["squared"] == 9

    def test_undecodable_artifact_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        s = spec("T-OK", {"x": 4})
        sweep([s], store)
        path = store.path_for(s)
        path.write_text('{"schema": 2, "key', encoding="utf-8")
        assert store.get(s) is None
        assert len(list(store.quarantine_root.glob("*.json"))) == 1

    def test_quarantined_files_are_not_artifacts(self, tmp_path):
        store = ResultStore(tmp_path)
        s = spec("T-OK", {"x": 5})
        sweep([s], store)
        store.quarantine(store.path_for(s), "checksum")
        assert len(store) == 0
        assert list(store.iter_artifacts()) == []

    def test_checksum_is_format_independent(self):
        payload = {"b": [1, 2], "a": {"x": 1.5}}
        assert payload_checksum(payload) == payload_checksum(
            json.loads(json.dumps(payload, indent=4))
        )

    def test_non_finite_floats_round_trip_as_sentinels(self, tmp_path):
        """Regression: allow_nan=False must not make a NaN-producing
        job un-storable; non-finite floats become sentinel strings."""
        store = ResultStore(tmp_path)
        s = spec("T-NAN", {"x": 1})
        payload = {
            "experiment_id": "T-NAN", "title": "t", "tables": [],
            "checks": {}, "data": {
                "nan": float("nan"), "inf": float("inf"),
                "ninf": -math.inf, "fine": 2.5,
            },
        }
        path = store.put(s, payload)
        # strict parsers accept the file (json.loads with no NaN leeway)
        doc = json.loads(path.read_text(), parse_constant=lambda c: pytest.fail(c))
        data = doc["result"]["data"]
        assert data == {
            "nan": "NaN", "inf": "Infinity", "ninf": "-Infinity", "fine": 2.5
        }
        assert store.get(s) is not None  # checksum covers the sentinels


class TestOrphanGC:
    def _orphan(self, store, name=".tmp-dead1234.json"):
        d = store.root / "T-OK"
        d.mkdir(parents=True, exist_ok=True)
        stray = d / name
        stray.write_text('{"half": tru', encoding="utf-8")
        return stray

    def test_orphans_are_not_counted_or_iterated(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep([spec("T-OK", {"x": 1})], store)
        self._orphan(store)
        assert len(store) == 1
        assert len(list(store.iter_artifacts())) == 1

    def test_gc_removes_only_orphans(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep([spec("T-OK", {"x": 1})], store)
        stray = self._orphan(store)
        removed = store.gc_orphans()
        assert removed == [stray]
        assert not stray.exists()
        assert len(store) == 1  # the real artifact survived

    def test_sweep_startup_garbage_collects(self, tmp_path):
        store = ResultStore(tmp_path)
        stray = self._orphan(store)
        log = EventLog()
        sweep([spec("T-OK", {"x": 1})], store, events=log)
        assert not stray.exists()
        assert log.counts["store_gc"] == 1


class TestJitteredBackoff:
    def test_deterministic_per_job_key(self):
        assert _retry_delay("K1", 1, 0.25, True) == _retry_delay("K1", 1, 0.25, True)

    def test_spread_across_keys(self):
        delays = {_retry_delay(f"K{i}", 1, 0.25, True) for i in range(20)}
        assert len(delays) == 20

    def test_full_jitter_stays_below_the_exponential_cap(self):
        for n in (1, 2, 3, 8):
            cap = min(0.25 * 2 ** (n - 1), 30.0)
            delay = _retry_delay("K", n, 0.25, True)
            assert 0.0 <= delay < cap

    def test_unjittered_is_the_cap_itself(self):
        assert _retry_delay("K", 3, 0.25, False) == 1.0
        assert _retry_delay("K", 50, 0.25, False) == 30.0


class TestWatchdog:
    def test_slow_but_alive_job_is_spared(self, tmp_path):
        """Past the timeout with a live heartbeat: not hung, keep going."""
        s = spec("T-SLEEPY", {"duration": 0.8}, fn="sleepy_job")
        (o,) = sweep([s], ResultStore(tmp_path),
                     workers=1, timeout=0.3, heartbeat=0.1)
        assert o.status == "ok"
        assert [a.kind for a in o.attempts] == ["ok"]

    def test_true_hang_is_killed(self, tmp_path):
        """A worker whose heartbeat stops (chaos 'hang' skips starting
        it) is reaped shortly after the timeout, and the retry — fault
        budget spent — completes."""
        plan = FaultPlan(
            seed=1, worker_rate=1.0, worker_kinds=("hang",),
            hang_seconds=20.0, store_rate=0.0, log_rate=0.0,
        )
        log = EventLog()
        with monkey(plan):
            (o,) = sweep([spec("T-OK", {"x": 1})], ResultStore(tmp_path),
                         workers=1, timeout=0.3, heartbeat=0.1,
                         retries=1, events=log)
        assert o.status == "ok"
        assert [a.kind for a in o.attempts] == ["timeout", "ok"]
        assert "heartbeat stale" in o.attempts[0].error

    def test_without_heartbeat_timeout_still_kills(self, tmp_path):
        """heartbeat=None keeps the original hard-timeout behaviour."""
        s = spec("T-SLEEPY", {"duration": 30.0}, fn="sleepy_job")
        (o,) = sweep([s], None, workers=1, timeout=0.2, retries=0)
        assert o.status == "failed"
        assert o.attempts[0].kind == "timeout"


class TestSweepDeadline:
    def test_deadline_fails_unfinished_jobs_with_a_full_report(self, tmp_path):
        log = EventLog()
        specs = [
            spec("T-OK", {"x": 1}),
            spec("T-SLEEPY", {"duration": 30.0}, fn="sleepy_job"),
            spec("T-SLEEPY", {"duration": 31.0}, fn="sleepy_job"),
            spec("T-SLEEPY", {"duration": 32.0}, fn="sleepy_job"),
        ]
        outcomes = sweep(specs, ResultStore(tmp_path),
                         workers=2, deadline=0.6, events=log)
        assert len(outcomes) == len(specs)  # complete report regardless
        assert outcomes[0].status == "ok"
        for o in outcomes[1:]:
            assert o.status == "failed"
            assert o.attempts[-1].kind == "deadline"
            assert "deadline" in o.error
        assert log.counts["sweep_deadline"] == 1
        assert log.counts["sweep_finish"] == 1

    def test_deadline_cancels_jobs_never_started(self, tmp_path):
        """workers=1 keeps two jobs pending; both still reach a
        terminal state when the deadline cuts the sweep."""
        specs = [spec("T-SLEEPY", {"duration": 30.0 + i}, fn="sleepy_job")
                 for i in range(3)]
        outcomes = sweep(specs, None, workers=1, deadline=0.4)
        assert [o.status for o in outcomes] == ["failed"] * 3

    def test_generous_deadline_changes_nothing(self, tmp_path):
        outcomes = sweep([spec("T-OK", {"x": x}) for x in range(3)],
                         ResultStore(tmp_path), deadline=300.0)
        assert all(o.status == "ok" for o in outcomes)


class TestFaultSummary:
    def test_quiet_on_a_clean_sweep(self, tmp_path):
        outcomes = sweep([spec("T-OK")], ResultStore(tmp_path))
        assert fault_summary(outcomes) is None

    def test_tabulates_non_clean_attempts(self, tmp_path):
        specs = [
            spec("T-OK", {"x": 1}),
            spec("T-ERR", {"message": "boom"}, fn="error_job"),
        ]
        outcomes = sweep(specs, None, retries=1)
        table = fault_summary(outcomes)
        rows = [r for r in table.rows if r[0].startswith("T-ERR")]
        assert len(rows) == 1 and len(table.rows) == 1  # T-OK ran clean
        assert rows[0][1] == "2"  # two charged error attempts
        assert rows[0][-1] == "failed"
