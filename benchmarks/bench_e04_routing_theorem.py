"""Benchmark E4: Theorem 2 routing certificates (Figure 5).

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md)
and asserts every paper-claim check; pytest-benchmark tracks the
regeneration cost.
"""


def test_e4_routing_theorem(run_experiment):
    run_experiment("E4")
