"""E10 — Strassen vs classical: who wins, where (crossovers).

Three comparisons reproduce the "fast beats classical" picture the
paper's introduction assumes:

1. **Flops**: operation counts of the recursive vs classical algorithms
   (measured by the counting kernels) and the crossover size.
2. **I/O bounds**: Theorem 1's ``(n/√M)^ω0 M`` vs Hong-Kung's
   ``n³/√M`` — ratio grows like ``n^(3-ω0) / M^((3-ω0)/2)``.
3. **Trace-simulated I/O**: blocked classical vs recursive Strassen
   traces through the same LRU cache — the measured counterpart.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bilinear import strassen
from repro.bounds import (
    classical_io_lower_bound,
    flop_crossover_n,
    flops,
    io_lower_bound,
    io_ratio,
)
from repro.experiments.harness import ExperimentResult, register
from repro.linalg import OpCounter, strassen_matmul
from repro.tracesim import FullyAssociativeLRU, trace_blocked, trace_strassen_recursive
from repro.utils.tables import TextTable

__all__ = ["run"]


@register("E10")
def run(trace_n: int = 64, trace_m: int = 1536) -> ExperimentResult:
    alg = strassen()
    checks: dict[str, bool] = {}

    flop_table = TextTable(
        ["n", "strassen flops", "classical flops (2n^3 - n^2)", "ratio"],
        title="E10: arithmetic counts",
    )
    for r in range(2, 8):
        n = 2**r
        fast = flops(alg, n)
        classical_ops = 2 * n**3 - n * n
        flop_table.add_row(
            [n, int(fast), classical_ops, round(fast / classical_ops, 3)]
        )
    n_star = flop_crossover_n(alg)
    checks["flop crossover is finite"] = math.isfinite(n_star)
    checks["past crossover, fast wins flops"] = flops(
        alg, 2 ** math.ceil(math.log2(n_star) + 1)
    ) < 2 * (2 ** math.ceil(math.log2(n_star) + 1)) ** 3

    # Measured flops agree with the model.
    counter = OpCounter()
    strassen_matmul(np.eye(16), np.eye(16), counter=counter)
    checks["measured flops match model"] = counter.total == flops(alg, 16)

    bound_table = TextTable(
        ["n", "M", "classical n^3/sqrt(M)", "strassen-like bound",
         "classical / fast"],
        title="E10: I/O bound comparison (who wins)",
    )
    for n_exp in (8, 12, 16, 20):
        n = 2**n_exp
        M = 2**14
        bound_table.add_row(
            [n, M, f"{classical_io_lower_bound(n, M):.3e}",
             f"{io_lower_bound(alg, n, M):.3e}",
             round(io_ratio(alg, n, M), 2)]
        )
    checks["I/O advantage grows with n"] = io_ratio(alg, 2**20, 2**14) > io_ratio(
        alg, 2**8, 2**14
    )
    checks["fast loses below sqrt(M) scale, wins above"] = (
        io_ratio(alg, 2**20, 2**14) > 1.0
    )

    trace_table = TextTable(
        ["kernel", "n", "M", "accesses", "I/O (misses+writebacks)"],
        title="E10: trace-simulated I/O (LRU, line=1)",
    )
    block = max(2, int(math.sqrt(trace_m / 3)))
    io_classical = FullyAssociativeLRU(trace_m).run(
        trace_blocked(trace_n, block)
    )
    io_fast = FullyAssociativeLRU(trace_m).run(
        trace_strassen_recursive(alg, trace_n, cutoff=8)
    )
    trace_table.add_row(
        ["blocked classical", trace_n, trace_m, io_classical.accesses,
         io_classical.io]
    )
    trace_table.add_row(
        ["recursive strassen", trace_n, trace_m, io_fast.accesses,
         io_fast.io]
    )
    checks["trace I/O within 10x of Hong-Kung shape (classical)"] = (
        io_classical.io
        <= 10 * classical_io_lower_bound(trace_n, trace_m)
        + 4 * trace_n**2
    )

    return ExperimentResult(
        experiment_id="E10",
        title="Strassen vs classical crossovers",
        tables=[flop_table, bound_table, trace_table],
        checks=checks,
        data={
            "flop_crossover": n_star,
            # Per-shard counters; the sweep runner merges these across
            # workers via CacheStats.__add__ (repro.runner.report).
            "cache_stats": {
                "blocked-classical": io_classical.as_dict(),
                "recursive-strassen": io_fast.as_dict(),
            },
        },
    )
