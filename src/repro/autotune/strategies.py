"""Search strategies over the schedule genome.

A strategy is the *proposal* half of the tuner: the driver owns the
budget, the ledger, the journal and the evaluator; the strategy owns a
JSON-serialisable ``state`` dict and decides what to try next.  The
split is what makes resume exact — after a kill, the driver restores
``state`` and the RNG from the journal and the strategy replays the
same proposals without knowing it was ever interrupted.

Contract (all methods deterministic given ``(state, rng)``):

- ``initial_state(ctx)``          → fresh state dict;
- ``seed_orders(ctx, state, rng)``→ generation-0 candidates;
- ``propose(ctx, state, rng)``    → next candidates (``[]`` = converged);
- ``observe(ctx, state, proposals, records, rng)`` → fold evaluated
  results into ``state`` (in place).

Built-ins: ``hillclimb`` (the original ``schedules/search.py`` loop,
draw-for-draw), ``anneal`` (simulated annealing over the mixed move
set), ``genetic`` (small elitist population), ``portfolio`` (one-shot
sweep of the blocked/recursive hybrid family), and ``external`` — an
escape hatch that shells out to a user-supplied solver following the
subprocess-solver pattern of SNIPPETS.md Snippet 1: the problem is
written to a content-hashed file in a cache directory (rewrites are
skipped), the solver runs under a timeout, and its answer is parsed
back as a proposal.
"""

from __future__ import annotations

import hashlib
import json
import math
import subprocess
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.autotune.genome import (
    GenomeContext,
    genome_key,
    hybrid_order,
    move_block_swap,
    random_move,
)
from repro.errors import ReproError

__all__ = [
    "TuneContext",
    "Strategy",
    "HillClimbStrategy",
    "AnnealStrategy",
    "GeneticStrategy",
    "PortfolioStrategy",
    "ExternalSolverStrategy",
    "STRATEGIES",
    "make_strategy",
]


@dataclass(frozen=True)
class TuneContext:
    """Static search context shared by driver and strategy."""

    genome: GenomeContext
    start_order: np.ndarray
    budget: int
    generation: int


def _orders(state_orders) -> list[np.ndarray]:
    return [np.asarray(o, dtype=np.int64) for o in state_orders]


class Strategy:
    """Base class; subclasses override the four hooks."""

    name = "base"

    def initial_state(self, ctx: TuneContext) -> dict:
        return {}

    def seed_orders(self, ctx: TuneContext, state: dict, rng) -> list:
        return [ctx.start_order]

    def propose(self, ctx: TuneContext, state: dict, rng) -> list:
        raise NotImplementedError

    def observe(self, ctx, state, proposals, records, rng) -> None:
        raise NotImplementedError


class HillClimbStrategy(Strategy):
    """First-improvement hill-climb over block swaps.

    Reproduces the pre-autotuner ``schedules/search.py`` loop exactly:
    one candidate per generation, the same two RNG draws per attempt,
    overlapping block draws retried under the same ``20 * budget``
    attempts cap, greedy acceptance.  Fixed-seed trajectories (and the
    E13 ablation findings built on them) are unchanged.
    """

    name = "hillclimb"

    def initial_state(self, ctx):
        return {"best_order": None, "best_io": None, "attempts": 0}

    def propose(self, ctx, state, rng):
        best = np.asarray(state["best_order"], dtype=np.int64)
        while state["attempts"] < 20 * ctx.budget:
            state["attempts"] += 1
            candidate = move_block_swap(best, rng, ctx.genome)
            if candidate is None:
                continue  # overlapping draw; retry (bounded by attempts)
            return [candidate]
        return []

    def observe(self, ctx, state, proposals, records, rng):
        for order, rec in zip(proposals, records):
            if not rec.ok:
                continue
            if state["best_io"] is None or rec.io < state["best_io"]:
                state["best_io"] = rec.io
                state["best_order"] = np.asarray(
                    order, dtype=np.int64
                ).tolist()


class AnnealStrategy(Strategy):
    """Simulated annealing over the full move set.

    Proposes ``ctx.generation`` neighbours of the current incumbent per
    generation; acceptance (Metropolis, geometric cooling from 5% of
    the start I/O down to ~0.1%) is applied sequentially in
    ``observe`` so the rng stream stays journal-replayable.
    """

    name = "anneal"

    def initial_state(self, ctx):
        return {
            "current_order": None,
            "current_io": None,
            "t0": None,
            "evals": 0,
        }

    def propose(self, ctx, state, rng):
        current = np.asarray(state["current_order"], dtype=np.int64)
        out = []
        for _ in range(max(1, ctx.generation)):
            _, cand = random_move(current, rng, ctx.genome)
            out.append(cand)
        return out

    def observe(self, ctx, state, proposals, records, rng):
        for order, rec in zip(proposals, records):
            if not rec.ok:
                continue
            if state["current_io"] is None:
                state["current_io"] = rec.io
                state["current_order"] = np.asarray(
                    order, dtype=np.int64
                ).tolist()
                state["t0"] = max(1.0, 0.05 * rec.io)
                continue
            state["evals"] += 1
            frac = min(1.0, state["evals"] / max(1, ctx.budget))
            temp = state["t0"] * (0.02**frac)
            delta = rec.io - state["current_io"]
            if delta <= 0 or float(rng.random()) < math.exp(-delta / temp):
                state["current_io"] = rec.io
                state["current_order"] = np.asarray(
                    order, dtype=np.int64
                ).tolist()


class GeneticStrategy(Strategy):
    """Small elitist population with tournament parents and mixed
    mutation moves; seeded with the blocked/recursive hybrid family so
    the hybridisation axis is explored from generation 0."""

    name = "genetic"

    def initial_state(self, ctx):
        return {"population": []}  # [[order, io], ...] sorted by io

    def seed_orders(self, ctx, state, rng):
        seeds = [ctx.start_order]
        for d in range(1, ctx.genome.r):  # d = r degenerates to d = 0
            if len(seeds) >= max(2, ctx.generation):
                break
            seeds.append(hybrid_order(ctx.genome, d))
        return seeds

    def propose(self, ctx, state, rng):
        population = state["population"]
        if not population:
            return []
        out = []
        for _ in range(max(1, ctx.generation)):
            i = int(rng.integers(0, len(population)))
            j = int(rng.integers(0, len(population)))
            parent = population[min(i, j)]  # sorted: lower index = fitter
            _, cand = random_move(
                np.asarray(parent[0], dtype=np.int64), rng, ctx.genome
            )
            out.append(cand)
        return out

    def observe(self, ctx, state, proposals, records, rng):
        population = state["population"]
        seen = {genome_key(np.asarray(o, dtype=np.int64))
                for o, _ in population}
        for order, rec in zip(proposals, records):
            if not rec.ok or rec.key in seen:
                continue
            seen.add(rec.key)
            population.append(
                [np.asarray(order, dtype=np.int64).tolist(), rec.io]
            )
        population.sort(key=lambda e: (e[1], e[0]))
        del population[max(4, ctx.generation):]


class PortfolioStrategy(Strategy):
    """One-shot portfolio: the recursive order, every blocked/recursive
    hybrid depth, and two seeded random permutations.  No local moves —
    a cheap baseline sweep (and the fixed-family comparison point)."""

    name = "portfolio"

    def initial_state(self, ctx):
        return {"done": False}

    def seed_orders(self, ctx, state, rng):
        seeds = [ctx.start_order]
        seeds.extend(
            hybrid_order(ctx.genome, d) for d in range(1, ctx.genome.r)
        )
        for _ in range(2):
            seeds.append(
                rng.permutation(ctx.genome.n_products).astype(np.int64)
            )
        return seeds

    def propose(self, ctx, state, rng):
        return []

    def observe(self, ctx, state, proposals, records, rng):
        state["done"] = True


class ExternalSolverStrategy(Strategy):
    """Escape hatch: delegate proposal generation to an external solver
    binary (the SCIP-Jack-style subprocess pattern).

    Per generation the incumbent problem is serialised to
    ``<cache_dir>/problem-<sha256[:16]>.json`` (content-addressed; an
    existing file is reused, mirroring the cached problem files of the
    snippet), then ``solver_cmd + [problem_path]`` runs under
    ``timeout`` seconds and must print a JSON object with an ``order``
    list on stdout.  A missing binary, a timeout, or malformed output
    raises :class:`~repro.errors.ReproError`; a solver that re-proposes
    its previous answer ends the search (converged).
    """

    name = "external"

    def __init__(self, solver_cmd=None, cache_dir=None, timeout: float = 60.0):
        if not solver_cmd:
            raise ReproError(
                "external strategy needs --solver-cmd (the solver "
                "executable and its fixed arguments)"
            )
        self.solver_cmd = list(solver_cmd)
        self.cache_dir = Path(cache_dir or ".repro-cache/tune-problems")
        self.timeout = timeout

    def initial_state(self, ctx):
        return {"best_order": None, "best_io": None, "last_key": None}

    def _problem_path(self, problem: dict) -> Path:
        blob = json.dumps(problem, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(blob.encode()).hexdigest()[:16]
        path = self.cache_dir / f"problem-{digest}.json"
        if not path.exists():
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(blob)
            tmp.replace(path)
        return path

    def propose(self, ctx, state, rng):
        problem = {
            "n_products": ctx.genome.n_products,
            "b": ctx.genome.b,
            "r": ctx.genome.r,
            "budget": ctx.budget,
            "incumbent": state["best_order"],
            "incumbent_io": state["best_io"],
        }
        path = self._problem_path(problem)
        try:
            out = subprocess.check_output(
                self.solver_cmd + [str(path)],
                timeout=self.timeout,
                text=True,
            )
        except (OSError, subprocess.SubprocessError) as exc:
            raise ReproError(f"external solver failed: {exc}") from exc
        try:
            answer = json.loads(out.strip().splitlines()[-1])
            order = np.asarray(answer["order"], dtype=np.int64)
        except (ValueError, KeyError, IndexError) as exc:
            raise ReproError(
                f"external solver output is not a JSON order: {exc}"
            ) from exc
        key = genome_key(order)
        if key == state["last_key"]:
            return []  # solver has converged on its own answer
        state["last_key"] = key
        return [order]

    def observe(self, ctx, state, proposals, records, rng):
        for order, rec in zip(proposals, records):
            if not rec.ok:
                continue
            if state["best_io"] is None or rec.io < state["best_io"]:
                state["best_io"] = rec.io
                state["best_order"] = np.asarray(
                    order, dtype=np.int64
                ).tolist()


STRATEGIES = {
    "hillclimb": HillClimbStrategy,
    "anneal": AnnealStrategy,
    "genetic": GeneticStrategy,
    "portfolio": PortfolioStrategy,
    "external": ExternalSolverStrategy,
}


def make_strategy(name: str, **options) -> Strategy:
    """Instantiate a registered strategy (options only reach strategies
    that take them, i.e. ``external``)."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ReproError(
            f"unknown strategy {name!r}; known: {sorted(STRATEGIES)}"
        ) from None
    if cls is ExternalSolverStrategy:
        return cls(**options)
    return cls()
