"""Eviction policies for the cache executor.

A policy chooses which cached value to evict when room is needed.  The
executor supplies the candidate set (cached values minus the pinned
working set) and bookkeeping hooks; policies are small stateful objects.

Provided policies:

- :class:`LRUPolicy` — least recently used (the practical default);
- :class:`FIFOPolicy` — first in, first out (a weaker baseline);
- :class:`BeladyPolicy` — evict the value whose next use is furthest in
  the future (offline MIN; optimal for read misses, the standard proxy
  for the model's "minimum over I/O placements given the compute order").

All policies are deterministic so experiment runs are reproducible, and
all three select victims through lazy min-heaps (stale entries are
invalidated on pop), so ``choose_victim`` costs O(log) amortised instead
of a scan over the candidate set.  These objects are the *reference*
semantics: the array-backed loops in
:mod:`repro.pebbling.executor` inline the same decision rules and are
held bit-identical to them by the golden-equivalence tests.
"""

from __future__ import annotations

import heapq

from repro.errors import CacheError

__all__ = ["EvictionPolicy", "LRUPolicy", "FIFOPolicy", "BeladyPolicy", "make_policy"]

_INF = float("inf")


class EvictionPolicy:
    """Interface: the executor calls the hooks in schedule order."""

    def on_insert(self, v: int, time: int) -> None:
        """Value ``v`` entered the cache at logical time ``time``."""
        raise NotImplementedError

    def on_use(self, v: int, time: int) -> None:
        """Value ``v`` was used (read as an operand) at ``time``."""
        raise NotImplementedError

    def on_evict(self, v: int) -> None:
        """Value ``v`` left the cache."""

    def choose_victim(self, candidates: set[int]) -> int:
        """Pick one of ``candidates`` to evict (all currently cached)."""
        raise NotImplementedError


class _StampHeapPolicy(EvictionPolicy):
    """Shared lazy min-heap machinery for the stamp-ordered policies.

    ``choose_victim`` pops the heap until the top entry is *fresh* (its
    stamp matches the current one — an evicted or re-stamped vertex
    leaves stale entries behind) and a member of the candidate set.
    Fresh entries of non-candidates (the executor's pinned working set)
    are set aside and re-pushed so they stay eligible later.  The
    selected victim is ``min(candidates, key=(stamp, v))`` — the same
    value, with the same deterministic vertex-id tie-break, as the
    former O(|candidates|) scan, at O(log) amortised cost.
    """

    def __init__(self):
        self.stamp: dict[int, int] = {}
        self.heap: list[tuple[int, int]] = []

    def _touch(self, v: int, time: int) -> None:
        self.stamp[v] = time
        heapq.heappush(self.heap, (time, v))

    def on_evict(self, v: int) -> None:
        self.stamp.pop(v, None)

    def choose_victim(self, candidates: set[int]) -> int:
        heap = self.heap
        stamp = self.stamp
        aside: list[tuple[int, int]] = []
        victim = -1
        while heap:
            time, v = heap[0]
            if stamp.get(v) != time:
                heapq.heappop(heap)     # stale: evicted or re-stamped
                continue
            if v not in candidates:
                aside.append(heapq.heappop(heap))
                continue
            victim = v
            break
        for entry in aside:
            heapq.heappush(heap, entry)
        if victim < 0:
            raise CacheError("no eviction candidate available")
        return victim


class LRUPolicy(_StampHeapPolicy):
    """Evict the candidate least recently inserted-or-used."""

    def __init__(self):
        super().__init__()
        self.last_touch = self.stamp    # back-compat alias

    def on_insert(self, v: int, time: int) -> None:
        self._touch(v, time)

    def on_use(self, v: int, time: int) -> None:
        self._touch(v, time)


class FIFOPolicy(_StampHeapPolicy):
    """Evict the candidate inserted earliest (uses don't refresh)."""

    def __init__(self):
        super().__init__()
        self.inserted_at = self.stamp   # back-compat alias

    def on_insert(self, v: int, time: int) -> None:
        self._touch(v, time)

    def on_use(self, v: int, time: int) -> None:  # uses don't matter
        pass


class BeladyPolicy(EvictionPolicy):
    """Offline MIN: evict the candidate whose next use is furthest away.

    Requires the full future use schedule: ``use_times[v]`` is the sorted
    list of logical times at which ``v`` will be used as an operand.
    Implemented with a lazy max-heap keyed by next-use time.
    """

    def __init__(self, use_times: dict[int, list[int]]):
        self.use_times = use_times
        self.cursor: dict[int, int] = {}
        # Max-heap entries: (-next_use, v).  Entries go stale when a use
        # passes; staleness is detected against _next_use() on pop.
        self.heap: list[tuple[float, int]] = []
        self.cached: set[int] = set()

    def _next_use(self, v: int, after: int) -> float:
        """Earliest use of ``v`` strictly after time ``after``."""
        times = self.use_times.get(v, [])
        i = self.cursor.get(v, 0)
        while i < len(times) and times[i] <= after:
            i += 1
        self.cursor[v] = i
        return times[i] if i < len(times) else _INF

    def on_insert(self, v: int, time: int) -> None:
        self.cached.add(v)
        nxt = self._next_use(v, time)
        heapq.heappush(self.heap, (-nxt, v))

    def on_use(self, v: int, time: int) -> None:
        nxt = self._next_use(v, time)
        heapq.heappush(self.heap, (-nxt, v))

    def on_evict(self, v: int) -> None:
        self.cached.discard(v)

    def choose_victim(self, candidates: set[int]) -> int:
        while self.heap:
            neg_next, v = self.heap[0]
            if v not in candidates:
                heapq.heappop(self.heap)
                continue
            # Validate freshness: the stored key must match the current
            # next use (cursor may have advanced past it).
            times = self.use_times.get(v, [])
            i = self.cursor.get(v, 0)
            current = times[i] if i < len(times) else _INF
            if -neg_next != current:
                heapq.heappop(self.heap)
                heapq.heappush(self.heap, (-current, v))
                continue
            return v
        # Fallback: heap exhausted (candidates never re-pushed) — all
        # remaining candidates are never used again; pick deterministic.
        if candidates:
            return min(candidates)
        raise CacheError("no eviction candidate available")


def make_policy(name: str, use_times: dict[int, list[int]] | None = None) -> EvictionPolicy:
    """Factory: ``"lru"``, ``"fifo"``, or ``"belady"`` (the latter needs
    ``use_times`` — the executor supplies them)."""
    if name == "lru":
        return LRUPolicy()
    if name == "fifo":
        return FIFOPolicy()
    if name == "belady":
        if use_times is None:
            raise CacheError("belady policy requires use_times")
        return BeladyPolicy(use_times)
    raise CacheError(f"unknown eviction policy {name!r}")
