"""Unit and property tests for the union-find structure."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.unionfind import UnionFind


class TestUnionFind:
    def test_initial_components(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert len(uf) == 5

    def test_union_reduces_components(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.n_components == 3

    def test_union_same_component_returns_false(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.n_components == 2

    def test_connected(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(2, 3)
        assert uf.connected(0, 1)
        assert not uf.connected(1, 2)
        uf.union(1, 2)
        assert uf.connected(0, 3)

    def test_component_size(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.component_size(2) == 3
        assert uf.component_size(3) == 1

    def test_groups(self):
        uf = UnionFind(4)
        uf.union(0, 2)
        groups = uf.groups()
        members = sorted(sorted(g) for g in groups.values())
        assert members == [[0, 2], [1], [3]]

    def test_labels_consistent_with_find(self):
        uf = UnionFind(6)
        uf.union(0, 5)
        uf.union(2, 3)
        labels = uf.labels()
        assert labels[0] == labels[5]
        assert labels[2] == labels[3]
        assert labels[1] != labels[0]

    def test_zero_elements(self):
        uf = UnionFind(0)
        assert uf.n_components == 0
        assert uf.groups() == {}

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @given(
        st.integers(min_value=1, max_value=40),
        st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39))),
    )
    def test_components_match_naive(self, n, edges):
        """Component count and membership must match a naive BFS."""
        edges = [(a % n, b % n) for a, b in edges]
        uf = UnionFind(n)
        for a, b in edges:
            uf.union(a, b)

        # Naive: BFS over adjacency.
        adj = {i: set() for i in range(n)}
        for a, b in edges:
            adj[a].add(b)
            adj[b].add(a)
        seen = set()
        n_comp = 0
        comp_of = {}
        for start in range(n):
            if start in seen:
                continue
            n_comp += 1
            stack = [start]
            while stack:
                v = stack.pop()
                if v in seen:
                    continue
                seen.add(v)
                comp_of[v] = n_comp
                stack.extend(adj[v] - seen)
        assert uf.n_components == n_comp
        for a in range(n):
            for b in range(n):
                assert uf.connected(a, b) == (comp_of[a] == comp_of[b])
