"""Hypothesis property tests across schedules, policies and cache sizes.

These drive the executor with randomly generated (but valid) schedules
and assert the model-level invariants that the lower-bound reasoning
rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bilinear import strassen, winograd
from repro.cdag import build_cdag
from repro.pebbling import CacheExecutor, simulate_io, trace_from_executor
from repro.schedules import (
    demand_driven_schedule,
    random_product_order_schedule,
    random_topological_schedule,
    validate_schedule,
)


@pytest.fixture(scope="module")
def g2():
    return build_cdag(strassen(), 2)


class TestScheduleGenerationProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_topological_always_valid(self, seed):
        g = build_cdag(strassen(), 2)
        validate_schedule(g, random_topological_schedule(g, seed=seed))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_any_product_permutation_yields_valid_schedule(self, seed):
        g = build_cdag(winograd(), 2)
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(g.products()))
        validate_schedule(g, demand_driven_schedule(g, order))


class TestExecutorInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from([8, 16, 48]),
    )
    def test_compulsory_floor(self, seed, M):
        """Any schedule, any policy: I/O >= inputs + outputs."""
        g = build_cdag(strassen(), 2)
        sched = random_topological_schedule(g, seed=seed)
        floor = len(g.inputs()) + len(g.outputs())
        for policy in ("lru", "fifo", "belady"):
            assert simulate_io(g, sched, M, policy, validate=False).total >= floor

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_belady_reads_never_worse(self, seed):
        """Offline MIN minimises read misses for any fixed schedule."""
        g = build_cdag(strassen(), 2)
        sched = random_product_order_schedule(g, seed=seed)
        for M in (8, 24):
            lru = simulate_io(g, sched, M, "lru", validate=False)
            fifo = simulate_io(g, sched, M, "fifo", validate=False)
            belady = simulate_io(g, sched, M, "belady", validate=False)
            assert belady.reads <= lru.reads
            assert belady.reads <= fifo.reads

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_belady_reads_monotone_in_m(self, seed):
        """More cache never increases MIN's read misses."""
        g = build_cdag(strassen(), 2)
        sched = random_topological_schedule(g, seed=seed)
        reads = [
            simulate_io(g, sched, M, "belady", validate=False).reads
            for M in (8, 16, 32, 64)
        ]
        assert all(a >= b for a, b in zip(reads, reads[1:]))

    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from(["lru", "fifo", "belady"]),
    )
    def test_pebble_game_equivalence_random(self, seed, policy):
        """Every executor run is a legal pebbling of identical cost —
        for arbitrary schedules and policies."""
        g = build_cdag(strassen(), 2)
        sched = random_topological_schedule(g, seed=seed)
        res = simulate_io(g, sched, 12, policy, validate=False)
        game = trace_from_executor(g, sched, 12, policy)
        assert game.io_count == res.total
        assert game.is_complete()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_io_trace_is_monotone_and_consistent(self, seed):
        """The per-step cumulative I/O trace is nondecreasing and ends at
        most at the final total (drain writes follow)."""
        g = build_cdag(strassen(), 2)
        sched = random_topological_schedule(g, seed=seed)
        executor = CacheExecutor(g)
        trace: list[int] = []
        res = executor.run(sched, 16, io_trace=trace, validate=False)
        assert len(trace) == len(sched)
        assert all(a <= b for a, b in zip(trace, trace[1:]))
        assert trace[-1] <= res.total

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_lower_bound_never_beaten(self, seed):
        """The Theorem-1 Ω-form (constant 1) holds below every random
        execution in the scaling regime."""
        from repro.bounds import io_lower_bound

        g = build_cdag(strassen(), 3)
        sched = random_product_order_schedule(g, seed=seed)
        M = 12
        measured = simulate_io(g, sched, M, "belady", validate=False).total
        assert measured >= io_lower_bound(strassen(), 8, M)


class TestSegmentArgumentProperty:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_eq2_on_random_schedules(self, seed):
        """Equation (2) must hold for *every* execution order — probe it
        with random ones."""
        from repro.cdag import compute_metavertices
        from repro.pebbling import SegmentAnalysis

        g = build_cdag(strassen(), 3)
        meta = compute_metavertices(g)
        analysis = SegmentAnalysis(g, meta, cache_size=1, k=1, threshold=18)
        sched = random_topological_schedule(g, seed=seed)
        for rec in analysis.analyze(sched):
            assert rec.satisfies_eq2(), rec
