"""Lower and upper bounds on I/O and bandwidth cost.

- :mod:`repro.bounds.theorem1`: the paper's bounds (Ω-form and explicit
  constants);
- :mod:`repro.bounds.classical`: Hong-Kung [10] baselines;
- :mod:`repro.bounds.optimal`: the matching upper bounds (recursive
  blocked schedule / [3]);
- :mod:`repro.bounds.expansion`: the edge-expansion technique of [6] and
  its applicability;
- :mod:`repro.bounds.crossover`: fast-vs-classical comparisons.
"""

from repro.bounds.theorem1 import (
    io_lower_bound,
    io_lower_bound_paper_constants,
    parallel_bandwidth_lower_bound,
    memory_independent_lower_bound,
    combined_parallel_lower_bound,
    paper_k_section5,
    paper_k_section6,
)
from repro.bounds.classical import (
    classical_io_lower_bound,
    blocked_io_upper_bound,
    classical_parallel_bandwidth_lower_bound,
    classical_memory_independent_lower_bound,
)
from repro.bounds.optimal import (
    recursive_io_upper_bound,
    recursive_io_recurrence,
)
from repro.bounds.expansion import (
    edge_expansion,
    decoder_edge_expansion,
    expansion_technique_applicable,
)
from repro.bounds.dominators import (
    minimum_dominator_size,
    minimum_set,
    partition_by_io,
    verify_hk_partition,
    hong_kung_bound_from_partition,
)
from repro.bounds.crossover import (
    flop_crossover_n,
    io_crossover_n,
    io_ratio,
    flops,
)

__all__ = [
    "io_lower_bound",
    "io_lower_bound_paper_constants",
    "parallel_bandwidth_lower_bound",
    "memory_independent_lower_bound",
    "combined_parallel_lower_bound",
    "paper_k_section5",
    "paper_k_section6",
    "classical_io_lower_bound",
    "blocked_io_upper_bound",
    "classical_parallel_bandwidth_lower_bound",
    "classical_memory_independent_lower_bound",
    "recursive_io_upper_bound",
    "recursive_io_recurrence",
    "edge_expansion",
    "decoder_edge_expansion",
    "expansion_technique_applicable",
    "minimum_dominator_size",
    "minimum_set",
    "partition_by_io",
    "verify_hk_partition",
    "hong_kung_bound_from_partition",
    "flop_crossover_n",
    "io_crossover_n",
    "io_ratio",
    "flops",
]
