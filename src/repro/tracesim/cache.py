"""Address-trace cache simulators.

Complementing the CDAG pebble-game executor (which is exact but bounded
by explicit graph sizes), these simulators consume *address traces* of
loop-nest kernels (:mod:`repro.tracesim.kernels`) and so reach the
large-``n`` regime of experiment E10 with realistic cache organisations:

- :class:`FullyAssociativeLRU` — the theory-side model (matches the
  machine model up to the write policy);
- :class:`SetAssociativeLRU` — hardware-shaped (sets + ways + lines),
  for the ablation of how much the idealised model under-counts.

Both are thin views over the simulation core's one LRU engine
(:class:`repro.simcore.trace.LRUCacheCore`): this module owns the
address-to-line mapping, the :class:`CacheStats` accumulation and the
``tracesim.run`` spans; the core owns the eviction rule, exactly once
(the pre-unification ``OrderedDict`` loops survive verbatim as the
golden reference in ``tests/tracesim/_reference.py``).  When the
compiled kernels are active, :meth:`FullyAssociativeLRU.run` routes a
cold run through the columnar lockstep kernel
(:func:`repro.simcore.trace.run_trace_grid`).

Counters distinguish hits, misses, and dirty evictions (write-backs), so
``misses + writebacks`` mirrors the paper's read+write I/O measure.
"""

from __future__ import annotations

import numpy as np

from repro.simcore.dispatch import active_mode
from repro.simcore.trace import CacheStats, LRUCacheCore, run_trace_grid
from repro.telemetry.spans import span
from repro.utils.validation import check_positive_int

__all__ = ["CacheStats", "FullyAssociativeLRU", "SetAssociativeLRU"]


class FullyAssociativeLRU:
    """Fully associative, write-back, write-allocate LRU cache.

    Parameters
    ----------
    capacity_lines:
        Number of cache lines.
    line_size:
        Words per line; ``1`` reproduces the theoretical machine model
        (every word its own transfer unit).
    """

    def __init__(self, capacity_lines: int, line_size: int = 1):
        self.capacity = check_positive_int(capacity_lines, "capacity_lines")
        self.line_size = check_positive_int(line_size, "line_size")
        self._core = LRUCacheCore(1, self.capacity)
        self.stats = CacheStats()

    def access(self, address: int, is_write: bool = False) -> bool:
        """Touch ``address``; returns True on hit."""
        line = address // self.line_size
        hit, wrote_back = self._core.access(line, is_write)
        stats = self.stats
        stats.accesses += 1
        if hit:
            stats.hits += 1
        else:
            stats.misses += 1
            if wrote_back:
                stats.writebacks += 1
        return hit

    def flush(self) -> None:
        """Write back all dirty lines (end of run)."""
        self.stats.writebacks += self._core.flush()

    def run(self, trace) -> CacheStats:
        """Consume an iterable of ``(address, is_write)`` pairs and
        flush; returns the statistics.

        The hot loop lives in :meth:`LRUCacheCore.run_counts` (the
        E10 traces run to 10^7 accesses).  With the compiled kernels on
        and the cache cold, the trace is materialised once and handed to
        the columnar lockstep kernel instead — bit-identical by the
        tracesim equivalence suite.
        """
        with span(
            "tracesim.run", organisation="fully-associative",
            capacity_lines=self.capacity, line_size=self.line_size,
        ) as sp:
            if active_mode() == "jit" and not self._core.buckets[0]:
                # Pack (address, is_write) into one int64 stream so a
                # single fromiter pass materialises the generator.
                enc = np.fromiter(
                    (addr * 2 + bool(w) for addr, w in trace),
                    dtype=np.int64,
                )
                g = run_trace_grid(
                    enc >> 1, (enc & 1).astype(np.uint8),
                    [self.capacity], line_size=self.line_size,
                )[0]
                stats = self.stats
                stats.accesses += g.accesses
                stats.hits += g.hits
                stats.misses += g.misses
                stats.writebacks += g.writebacks
            else:
                counts = self._core.run_counts(trace, self.line_size)
                stats = self.stats
                stats.accesses += counts[0]
                stats.hits += counts[1]
                stats.misses += counts[2]
                stats.writebacks += counts[3]
                self.flush()
            _record_cache_counters(sp, self.stats)
            return self.stats


class SetAssociativeLRU:
    """Set-associative, write-back, write-allocate LRU cache."""

    def __init__(self, n_sets: int, ways: int, line_size: int = 1):
        self.n_sets = check_positive_int(n_sets, "n_sets")
        self.ways = check_positive_int(ways, "ways")
        self.line_size = check_positive_int(line_size, "line_size")
        self._core = LRUCacheCore(self.n_sets, self.ways)
        self.stats = CacheStats()

    @property
    def capacity_lines(self) -> int:
        return self.n_sets * self.ways

    def access(self, address: int, is_write: bool = False) -> bool:
        line = address // self.line_size
        hit, wrote_back = self._core.access(line, is_write)
        stats = self.stats
        stats.accesses += 1
        if hit:
            stats.hits += 1
        else:
            stats.misses += 1
            if wrote_back:
                stats.writebacks += 1
        return hit

    def flush(self) -> None:
        self.stats.writebacks += self._core.flush()

    def run(self, trace) -> CacheStats:
        """Same core hot loop, with the set lookup (``line % n_sets``)
        resolved inside the core."""
        with span(
            "tracesim.run", organisation="set-associative",
            capacity_lines=self.capacity_lines, line_size=self.line_size,
        ) as sp:
            counts = self._core.run_counts(trace, self.line_size)
            stats = self.stats
            stats.accesses += counts[0]
            stats.hits += counts[1]
            stats.misses += counts[2]
            stats.writebacks += counts[3]
            self.flush()
            _record_cache_counters(sp, stats)
            return stats


def _record_cache_counters(sp, stats: CacheStats) -> None:
    """Per-policy hit/miss/eviction counters onto the run's span."""
    sp.add("accesses", stats.accesses)
    sp.add("hits", stats.hits)
    sp.add("misses", stats.misses)
    sp.add("writebacks", stats.writebacks)
