"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "strassen" in out
        assert "laderman" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "--n", "256", "--M", "64"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out

    def test_bounds_parallel(self, capsys):
        assert main(
            ["bounds", "--n", "256", "--M", "64", "--P", "7"]
        ) == 0
        assert "memory-independent" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(
            ["simulate", "--r", "2", "--M", "16", "--schedule", "recursive"]
        ) == 0
        out = capsys.readouterr().out
        assert "total=" in out

    def test_simulate_random_schedule(self, capsys):
        assert main(
            ["simulate", "--r", "2", "--M", "16", "--schedule", "random",
             "--seed", "4"]
        ) == 0

    def test_route_verified(self, capsys):
        assert main(["route", "--alg", "strassen", "--k", "1"]) == 0
        assert "VERIFIED: True" in capsys.readouterr().out

    def test_caps(self, capsys):
        assert main(
            ["caps", "--n", "64", "--P", "7", "--M", "100000"]
        ) == 0
        assert "bandwidth cost" in capsys.readouterr().out

    def test_render_ascii(self, capsys):
        assert main(["render", "--alg", "strassen"]) == 0
        assert "rank" in capsys.readouterr().out

    def test_render_dot(self, capsys):
        assert main(["render", "--alg", "strassen", "--format", "dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_experiments_selected(self, capsys):
        assert main(["experiments", "E1"]) == 0
        assert "reproduced" in capsys.readouterr().out
