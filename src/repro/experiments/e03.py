"""E3 — Claim 1 routing in Strassen's decoding graph (Section 5,
Figures 3-4).

Construct the ``D_k`` routing for k = 1..k_max and verify the
``11 * 7^k`` hit bound; record the measured maximum (the paper "did not
optimize for the constant factor" — the slack is part of the record).
Also verify the Section-5 case analysis on a concrete segment: at least
``|S̄| * 7^k / 2`` boundary-crossing paths when at most half the rank-k
vertices are in S.
"""

from __future__ import annotations

import numpy as np

from repro.bilinear import strassen, winograd
from repro.cdag import build_cdag
from repro.experiments.harness import ExperimentResult, register
from repro.routing import claim1_bound, claim1_routing, count_boundary_crossings, verify_routing
from repro.utils.tables import TextTable

__all__ = ["run"]


@register("E3")
def run(k_max: int = 3) -> ExperimentResult:
    table = TextTable(
        ["algorithm", "k", "paths", "claimed 11*7^k", "measured max",
         "slack"],
        title="E3: Claim 1 decoder routing (Section 5)",
    )
    checks: dict[str, bool] = {}
    for alg in (strassen(), winograd()):
        for k in range(1, k_max + 1):
            g = build_cdag(alg, k)
            routing = claim1_routing(g)
            bound = claim1_bound(alg, k)
            report = verify_routing(g, routing, bound, check_paths=(k <= 2))
            table.add_row(
                [alg.name, k, report.n_paths, bound,
                 report.max_vertex_hits,
                 round(bound / report.max_vertex_hits, 2)]
            )
            checks[f"{alg.name} k={k}: within 11*7^k"] = report.within_bound
            checks[f"{alg.name} k={k}: one path per (product, output)"] = (
                report.n_paths == alg.b**k * alg.a**k
            )

    # The boundary-crossing case analysis on a quarter-of-outputs segment.
    g = build_cdag(strassen(), 2)
    routing = claim1_routing(g)
    outputs = g.outputs()
    s_size = len(outputs) // 4
    in_s = np.zeros(g.n_vertices, dtype=bool)
    in_s[outputs[:s_size]] = True
    counts = count_boundary_crossings(routing, in_s)
    needed = s_size * 7**2 // 2
    checks["case analysis: >= |S̄| 7^k / 2 crossing paths"] = (
        counts.n_crossing >= needed
    )
    crossing_table = TextTable(
        ["|S̄|", "crossing paths measured", "paper's floor"],
        title="E3: boundary-crossing count (case analysis)",
    )
    crossing_table.add_row([s_size, counts.n_crossing, needed])

    return ExperimentResult(
        experiment_id="E3",
        title="Claim 1: decoder routing and boundary crossings",
        tables=[table, crossing_table],
        checks=checks,
    )
