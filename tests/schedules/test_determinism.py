"""Seeded randomised schedules are bit-reproducible — including their
telemetry counters, so perf baselines of seeded runs are stable."""

import numpy as np
import pytest

from repro import telemetry
from repro.bilinear import strassen
from repro.cdag import build_cdag
from repro.schedules import (
    random_product_order_schedule,
    random_topological_schedule,
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def _counters(name):
    """Counter dicts of all collected spans with ``name``."""
    return [
        s["counters"]
        for s in telemetry.collected_spans()
        if s["name"] == name
    ]


def test_random_topo_seeded_runs_are_identical():
    g = build_cdag(strassen(), 2)
    telemetry.enable()

    first = random_topological_schedule(g, seed=1234)
    first_counters = _counters("schedules.random_topo")
    telemetry.reset()

    second = random_topological_schedule(g, seed=1234)
    second_counters = _counters("schedules.random_topo")

    np.testing.assert_array_equal(first, second)
    assert first_counters == second_counters
    (counters,) = first_counters
    assert counters["scheduled"] == len(first)
    assert counters["rng_draws"] == len(first)
    assert counters["frontier_peak"] >= 1


def test_random_topo_different_seeds_differ():
    g = build_cdag(strassen(), 2)
    a = random_topological_schedule(g, seed=1)
    b = random_topological_schedule(g, seed=2)
    assert not np.array_equal(a, b)


def test_random_product_order_seeded_runs_are_identical():
    g = build_cdag(strassen(), 2)
    telemetry.enable()

    first = random_product_order_schedule(g, seed=7)
    first_spans = _counters("schedules.random_product_order")
    telemetry.reset()

    second = random_product_order_schedule(g, seed=7)
    second_spans = _counters("schedules.random_product_order")

    np.testing.assert_array_equal(first, second)
    assert first_spans == second_spans == [{}]


def test_counters_identical_without_telemetry_interference():
    """Disabled telemetry must not change the schedule itself."""
    g = build_cdag(strassen(), 2)
    dark = random_topological_schedule(g, seed=99)
    telemetry.enable()
    lit = random_topological_schedule(g, seed=99)
    np.testing.assert_array_equal(dark, lit)
