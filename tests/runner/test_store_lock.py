"""Cross-process store publication: the advisory lock's guarantees.

Before the lock, two writers (or a writer plus ``gc_orphans``) could
interleave mkstemp/replace/unlink and either lose an in-flight temp
file or quarantine a freshly healed artifact.  These tests hammer those
interleavings with real processes.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.runner.jobs import JobSpec
from repro.runner.store import LOCK_FILE, ResultStore

from tests.runner.helpers import store_hammer

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="needs fork-started processes"
)


def test_two_process_hammer(tmp_path):
    root = tmp_path / "store"
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=store_hammer, args=(str(root), tag, 30))
        for tag in range(2)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
    assert [p.exitcode for p in procs] == [0, 0]
    store = ResultStore(root)
    # Every key survived the crossfire as a verified artifact...
    for slot in range(3):
        artifact = store.get(JobSpec("T-LOCK", {"slot": slot}))
        assert artifact is not None
        assert artifact["result"]["data"]["tag"] in (0, 1)
    # ...nothing was quarantined and no temp files were lost or leaked.
    assert not list(store.quarantine_root.glob("*"))
    assert not list(root.rglob(".tmp-*"))


def test_put_blocks_on_a_held_lock(tmp_path):
    fcntl = pytest.importorskip("fcntl")
    root = tmp_path / "store"
    store = ResultStore(root)
    spec = JobSpec("T-LOCK", {"slot": 0})
    store.put(spec, {"experiment_id": "T-LOCK", "data": {}})  # creates .lock

    ctx = multiprocessing.get_context("fork")
    go = ctx.Event()

    def _publisher():
        go.wait(timeout=30)
        ResultStore(root).put(
            spec, {"experiment_id": "T-LOCK", "data": {"late": True}}
        )

    # Fork *before* taking the flock: a child forked afterwards would
    # inherit the lock-holding fd and deadlock against itself.
    p = ctx.Process(target=_publisher)
    p.start()
    fd = os.open(root / LOCK_FILE, os.O_RDWR)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        go.set()
        time.sleep(0.3)
        # The publisher is parked on the lock, not finished.
        assert p.is_alive()
        assert store.get(spec)["result"]["data"] == {}
    finally:
        os.close(fd)  # releases the flock
    p.join(timeout=30)
    assert p.exitcode == 0
    assert store.get(spec)["result"]["data"] == {"late": True}


def test_quarantine_reverify_spares_a_healed_artifact(tmp_path):
    store = ResultStore(tmp_path / "store")
    spec = JobSpec("T-LOCK", {"slot": 1})
    path = store.put(spec, {"experiment_id": "T-LOCK", "data": {"v": 1}})
    # A caller saw a bad read (say, mid-replace on an old kernel) but by
    # quarantine time the artifact verifies: it must be left alone.
    assert store.quarantine(path, "checksum", spec=spec) is None
    assert path.exists()
    assert store.get(spec) is not None
    assert not list(store.quarantine_root.glob("*"))


def test_quarantine_moves_a_genuinely_bad_artifact(tmp_path):
    store = ResultStore(tmp_path / "store")
    spec = JobSpec("T-LOCK", {"slot": 2})
    path = store.put(spec, {"experiment_id": "T-LOCK", "data": {"v": 2}})
    path.write_text('{"torn', encoding="utf-8")
    # Re-verify under the lock fails, so the move proceeds even with a
    # spec supplied.
    dest = store.quarantine(path, "undecodable", spec=spec)
    assert dest is not None and dest.exists()
    assert not path.exists()
    assert store.get(spec) is None
