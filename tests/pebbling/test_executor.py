"""Tests for the cache executor (I/O counting)."""

import numpy as np
import pytest

from repro.bilinear import classical, strassen
from repro.cdag import build_base_graph, build_cdag
from repro.errors import CacheError, ScheduleError
from repro.pebbling import CacheExecutor, MachineModel, min_cache_size, simulate_io
from repro.schedules import (
    rank_order_schedule,
    random_topological_schedule,
    recursive_schedule,
)


@pytest.fixture(scope="module")
def g2():
    return build_cdag(strassen(), 2)


@pytest.fixture(scope="module")
def sched2(g2):
    return recursive_schedule(g2)


class TestBasicAccounting:
    def test_huge_cache_compulsory_io_only(self, g2, sched2):
        """With cache bigger than the graph, I/O = inputs + outputs."""
        res = simulate_io(g2, sched2, cache_size=g2.n_vertices + 1)
        assert res.reads == len(g2.inputs())
        assert res.writes == len(g2.outputs())
        assert res.spill_reads == 0
        assert res.spill_writes == 0

    def test_total_is_reads_plus_writes(self, g2, sched2):
        res = simulate_io(g2, sched2, cache_size=16)
        assert res.total == res.reads + res.writes

    def test_io_monotone_in_cache_size(self, g2, sched2):
        """Larger cache never hurts (same policy, same schedule)."""
        totals = [
            simulate_io(g2, sched2, cache_size=M).total
            for M in (8, 16, 32, 64, 128, 1024)
        ]
        assert all(a >= b for a, b in zip(totals, totals[1:]))

    def test_io_at_least_compulsory(self, g2):
        """No schedule/policy does fewer I/Os than touching inputs and
        outputs once each."""
        compulsory = len(g2.inputs()) + len(g2.outputs())
        for sched in (recursive_schedule(g2), rank_order_schedule(g2)):
            for policy in ("lru", "fifo", "belady"):
                res = simulate_io(g2, sched, 16, policy=policy)
                assert res.total >= compulsory

    def test_peak_cache_bounded(self, g2, sched2):
        res = simulate_io(g2, sched2, cache_size=12)
        assert res.peak_cache <= 12


class TestPolicies:
    def test_belady_at_most_lru(self, g2, sched2):
        """Belady (MIN) never does more read I/O than LRU on the same
        run.  (Total includes writes, which MIN does not optimise, so
        compare reads.)"""
        for M in (8, 16, 32):
            lru = simulate_io(g2, sched2, M, policy="lru")
            belady = simulate_io(g2, sched2, M, policy="belady")
            assert belady.reads <= lru.reads

    def test_unknown_policy_raises(self, g2, sched2):
        with pytest.raises(CacheError):
            simulate_io(g2, sched2, 16, policy="magic")

    def test_fifo_runs(self, g2, sched2):
        res = simulate_io(g2, sched2, 16, policy="fifo")
        assert res.total > 0


class TestValidation:
    def test_rejects_wrong_length(self, g2, sched2):
        with pytest.raises(ScheduleError):
            simulate_io(g2, sched2[:-1], 16)

    def test_rejects_non_topological(self, g2, sched2):
        bad = sched2.copy()[::-1]
        with pytest.raises(ScheduleError):
            simulate_io(g2, bad, 16)

    def test_rejects_duplicates(self, g2, sched2):
        bad = sched2.copy()
        bad[1] = bad[0]
        with pytest.raises(ScheduleError):
            simulate_io(g2, bad, 16)

    def test_rejects_cache_too_small(self, g2, sched2):
        with pytest.raises(CacheError):
            simulate_io(g2, sched2, min_cache_size(g2) - 1)


class TestMachineModel:
    def test_min_cache_size(self):
        g = build_base_graph(strassen())
        # Widest vertex: decoder output c11/c22 with 4 preds -> 5.
        assert min_cache_size(g) == 5

    def test_exclude_input_reads(self, g2, sched2):
        machine = MachineModel(cache_size=16, count_input_reads=False)
        res = CacheExecutor(g2).run(sched2, 16, machine=machine)
        default = simulate_io(g2, sched2, 16)
        assert res.reads == default.reads - default.input_reads

    def test_exclude_output_writes(self, g2, sched2):
        machine = MachineModel(cache_size=16, count_output_writes=False)
        res = CacheExecutor(g2).run(sched2, 16, machine=machine)
        default = simulate_io(g2, sched2, 16)
        assert res.writes == default.writes - default.output_writes

    def test_bad_cache_size(self):
        with pytest.raises(ValueError):
            MachineModel(cache_size=0)


class TestScheduleQualityOrdering:
    def test_recursive_beats_rank_order(self):
        """The blocking structure must show up in measured I/O."""
        g = build_cdag(strassen(), 3)
        M = 32
        rec = simulate_io(g, recursive_schedule(g), M)
        rank = simulate_io(g, rank_order_schedule(g), M)
        assert rec.total < rank.total

    def test_recursive_beats_random(self):
        g = build_cdag(strassen(), 3)
        M = 32
        rec = simulate_io(g, recursive_schedule(g), M)
        rnd = simulate_io(g, random_topological_schedule(g, seed=7), M)
        assert rec.total < rnd.total

    def test_recursive_io_decreases_with_m(self):
        g = build_cdag(strassen(), 3)
        sched = recursive_schedule(g)
        io_small = simulate_io(g, sched, 16).total
        io_big = simulate_io(g, sched, 256).total
        assert io_big < io_small


class TestClassicalBaseline:
    def test_blocked_classical_io(self):
        from repro.schedules import loop_order_schedule

        g = build_cdag(classical(2), 3)
        sched = loop_order_schedule(g, "ijk")
        res = simulate_io(g, sched, 32)
        # Must at least touch all inputs and outputs.
        assert res.total >= len(g.inputs()) + len(g.outputs())
