"""Candidate evaluation: the autotuner's objective as a runner job.

One candidate evaluation = build (or memmap) ``G_r``, expand the genome
into a demand-driven schedule, simulate it under the chosen eviction
policy, and report the measured I/O together with the **Belady gap** —
measured total I/O minus the Theorem-1 Ω-form lower bound.  The gap is
the search objective: a schedule that drives it down tightens the upper
half of the paper's sandwich.

:func:`evaluate_candidate` is a module-level runner entrypoint
(``repro.autotune.evaluate:evaluate_candidate``), so every candidate is
a content-addressed sweep job: identical candidates — re-proposed after
a crash, re-visited by a neighbourhood, or submitted by another search
— hash to the same job key and are answered from the result store
without simulating.  Compiled plans come from the graph-bundle cache
when one is active (workers inherit ``REPRO_GRAPH_CACHE``).

Three dispatch backends share one interface (``evaluate(orders)`` →
records, in proposal order):

- :class:`LocalEvaluator` — in-process, one shared
  :class:`~repro.pebbling.executor.CacheExecutor` whose content-keyed
  plan cache (plus a genome-key memo) makes repeated-neighbourhood
  evaluations cheap; used by :func:`repro.schedules.search.search_schedule`
  and the E15 experiment;
- :class:`PoolEvaluator` — a worker pool per generation through
  :func:`repro.runner.run_sweep` with the on-disk result store;
- :class:`ServiceEvaluator` — submits to a resident ``repro serve``
  daemon for warm-worker reuse (store hits never wake a worker).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autotune.genome import GENOME_VERSION, genome_key
from repro.errors import ReproError

__all__ = [
    "EVALUATE_VERSION",
    "TUNE_EXPERIMENT_ID",
    "EvalRecord",
    "evaluate_candidate",
    "candidate_spec",
    "LocalEvaluator",
    "PoolEvaluator",
    "ServiceEvaluator",
]

#: Version of the evaluation semantics; part of every job's params so a
#: change in what "io" means re-keys cached evaluations.
EVALUATE_VERSION = "1"

#: Experiment id evaluation jobs are filed under in the result store
#: (``<cache-dir>/TUNE/<job_key>.json``).
TUNE_EXPERIMENT_ID = "TUNE"


@dataclass(frozen=True)
class EvalRecord:
    """Outcome of evaluating one candidate order."""

    key: str          # genome key (not the job key)
    io: int
    gap: float
    lower: float
    cached: bool      # served from a store/memo instead of simulating
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def evaluate_candidate(
    alg: str = "strassen",
    r: int = 2,
    cache_size: int = 16,
    policy: str = "belady",
    order=None,
    genome: str = GENOME_VERSION,
    evaluate: str = EVALUATE_VERSION,
) -> dict:
    """Runner-job entrypoint: measure one candidate product order.

    Returns a JSON-native dict (the sweep pool wraps it as the job
    payload's ``data``): measured I/O split, the Theorem-1 Ω-form lower
    bound at ``(n, M)``, and the Belady gap ``io - lower``.
    """
    from repro.bilinear import by_name
    from repro.bounds import io_lower_bound
    from repro.cdag import build_cdag
    from repro.pebbling import CacheExecutor
    from repro.schedules.base import demand_driven_schedule

    if genome != GENOME_VERSION or evaluate != EVALUATE_VERSION:
        raise ReproError(
            f"evaluation format mismatch: genome={genome!r} "
            f"evaluate={evaluate!r}"
        )
    if order is None:
        raise ReproError("evaluate_candidate needs an 'order' parameter")
    algorithm = by_name(alg)
    g = build_cdag(algorithm, int(r))
    arr = np.ascontiguousarray(order, dtype=np.int64)
    sched = demand_driven_schedule(g, arr)
    res = CacheExecutor(g).run(
        sched, int(cache_size), policy, validate=False
    )
    n = algorithm.n0 ** int(r)
    lower = io_lower_bound(algorithm, n, int(cache_size))
    return {
        "io": int(res.total),
        "reads": int(res.reads),
        "writes": int(res.writes),
        "spill_reads": int(res.spill_reads),
        "spill_writes": int(res.spill_writes),
        "peak_cache": int(res.peak_cache),
        "lower": float(lower),
        "gap": float(res.total - lower),
        "genome_key": genome_key(arr),
    }


def candidate_spec(alg: str, r: int, cache_size: int, policy: str, order):
    """The :class:`~repro.runner.JobSpec` for one candidate (the genome
    rides in the params, so the job key is the content address of the
    whole evaluation)."""
    from repro.runner import JobSpec

    return JobSpec(
        TUNE_EXPERIMENT_ID,
        {
            "alg": alg,
            "r": int(r),
            "cache_size": int(cache_size),
            "policy": policy,
            "order": np.ascontiguousarray(order, dtype=np.int64).tolist(),
            "genome": GENOME_VERSION,
            "evaluate": EVALUATE_VERSION,
        },
        entrypoint="repro.autotune.evaluate:evaluate_candidate",
    )


def _record_from_data(key: str, data: dict, cached: bool) -> EvalRecord:
    return EvalRecord(
        key=key,
        io=int(data["io"]),
        gap=float(data["gap"]),
        lower=float(data["lower"]),
        cached=cached,
    )


class LocalEvaluator:
    """In-process evaluation against one shared executor.

    The executor's content-keyed plan cache already dedupes compiled
    plans; the genome-key memo on top skips schedule expansion and
    simulation entirely for exact repeats (the hill-climb re-visits its
    incumbent's neighbourhood constantly).
    """

    def __init__(self, cdag, cache_size: int, policy: str = "belady"):
        from repro.bounds import io_lower_bound
        from repro.pebbling import CacheExecutor

        self.cdag = cdag
        self.cache_size = int(cache_size)
        self.policy = policy
        self.executor = CacheExecutor(cdag)
        n = cdag.alg.n0**cdag.r
        self.lower = float(io_lower_bound(cdag.alg, n, self.cache_size))
        self._memo: dict[str, EvalRecord] = {}

    def evaluate(self, orders) -> list[EvalRecord]:
        from repro.schedules.base import demand_driven_schedule

        out = []
        for order in orders:
            key = genome_key(order)
            hit = self._memo.get(key)
            if hit is not None:
                out.append(EvalRecord(key, hit.io, hit.gap, hit.lower, True))
                continue
            sched = demand_driven_schedule(self.cdag, order)
            res = self.executor.run(
                sched, self.cache_size, self.policy, validate=False
            )
            rec = EvalRecord(
                key=key,
                io=int(res.total),
                gap=float(res.total - self.lower),
                lower=self.lower,
                cached=False,
            )
            self._memo[key] = rec
            out.append(rec)
        return out

    def close(self) -> None:  # interface symmetry
        pass


class PoolEvaluator:
    """Dispatch each generation as a sweep over a local worker pool.

    Candidates dedupe through the content-addressed result store: a
    re-proposed candidate (same genome, same grid point, same code
    version) is a cache hit, which is what makes a killed search cheap
    to resume.
    """

    def __init__(
        self,
        alg: str,
        r: int,
        cache_size: int,
        policy: str = "belady",
        *,
        store=None,
        workers: int = 2,
        graph_cache=None,
        events=None,
        fresh: bool = False,
    ):
        self.alg = alg
        self.r = int(r)
        self.cache_size = int(cache_size)
        self.policy = policy
        self.store = store
        self.workers = int(workers)
        self.graph_cache = graph_cache
        self.events = events
        self.fresh = fresh

    def evaluate(self, orders) -> list[EvalRecord]:
        from repro.runner import run_sweep

        orders = list(orders)
        if not orders:
            return []
        specs = [
            candidate_spec(
                self.alg, self.r, self.cache_size, self.policy, order
            )
            for order in orders
        ]
        outcomes = run_sweep(
            specs,
            self.store,
            workers=min(self.workers, len(specs)),
            progress=False,
            events=self.events,
            graph_cache=self.graph_cache,
            fresh=self.fresh,
        )
        out = []
        for order, outcome in zip(orders, outcomes):
            key = genome_key(order)
            if not outcome.ok:
                out.append(EvalRecord(key, 0, 0.0, 0.0, False,
                                      error=outcome.error or "failed"))
                continue
            data = outcome.payload["data"]
            out.append(_record_from_data(key, data, outcome.cached))
        return out

    def close(self) -> None:
        pass


class ServiceEvaluator:
    """Dispatch generations to a resident ``repro serve`` daemon.

    Store hits are answered on the daemon's event loop without waking a
    worker; misses run on its warm pool with pre-attached graph
    bundles.  Raises :class:`~repro.errors.ServiceError` when the
    daemon is unreachable (the CLI maps that to exit code 2, matching
    ``repro submit``).
    """

    def __init__(
        self,
        alg: str,
        r: int,
        cache_size: int,
        policy: str = "belady",
        *,
        socket_path: str,
        timeout: float = 600.0,
        fresh: bool = False,
    ):
        from repro.service import ServiceClient

        self.alg = alg
        self.r = int(r)
        self.cache_size = int(cache_size)
        self.policy = policy
        self.fresh = fresh
        self._client = ServiceClient(socket_path, timeout=timeout)

    def evaluate(self, orders) -> list[EvalRecord]:
        orders = list(orders)
        if not orders:
            return []
        specs = [
            candidate_spec(
                self.alg, self.r, self.cache_size, self.policy, order
            )
            for order in orders
        ]
        summary = self._client.submit(specs, fresh=self.fresh)
        by_key = {msg.get("key"): msg for msg in summary["results"]}
        out = []
        for order, spec in zip(orders, specs):
            key = genome_key(order)
            msg = by_key.get(spec.cache_key)
            if msg is None or msg.get("op") == "rejected":
                reason = (msg or {}).get("reason", "no result")
                out.append(EvalRecord(key, 0, 0.0, 0.0, False,
                                      error=f"rejected: {reason}"))
            elif msg.get("status") == "failed":
                out.append(EvalRecord(key, 0, 0.0, 0.0, False,
                                      error=msg.get("error") or "failed"))
            else:
                data = msg["payload"]["data"]
                out.append(_record_from_data(
                    key, data, msg.get("source") == "store"
                ))
        return out

    def close(self) -> None:
        self._client.close()
