"""Columnar partition-traffic accounting for the parallel machine model.

The memory-independent bound experiments (E11) measure the
communication a concrete vertex partition forces: a value computed by
processor ``p`` and consumed on ``q != p`` crosses the network once per
*distinct* ``(value, destination)`` pair.  The original accounting
looped over vertices and built Python sets per vertex — fine for
``P = 8``, hopeless for the P-in-the-thousands regime the
Ballard/Demmel-style strong-scaling checks need.

Here the whole cut is computed columnar, straight off the CDAG's
successor CSR: repeat each source vertex over its successor slice, mask
the edges whose endpoint owners differ, encode the surviving pairs as
``src_vertex * P + dst_owner`` and unique them — the distinct
(value, destination) pairs of the entire partition in a handful of
vectorised passes, shared by the volume and the per-processor traffic
counts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cut_pairs", "cut_traffic"]


def cut_pairs(succ_indptr, succ_indices, owner):
    """Distinct cross-processor ``(value, destination)`` pairs of a
    partition.

    Returns ``(src_vertex, dst_owner)`` — equal-length int64 arrays, one
    entry per distinct pair whose destination differs from the source
    vertex's owner.  ``len(src_vertex)`` is the partition's
    communication volume.
    """
    owner = np.ascontiguousarray(owner, dtype=np.int64)
    n = owner.shape[0]
    counts = np.diff(succ_indptr)
    srcs = np.repeat(np.arange(n, dtype=np.int64), counts)
    dst_own = owner[succ_indices]
    cross = dst_own != owner[srcs]
    if not cross.any():
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    P = int(owner.max()) + 1
    keys = np.unique(srcs[cross] * P + dst_own[cross])
    return keys // P, keys % P


def cut_traffic(succ_indptr, succ_indices, owner, P: int):
    """Per-processor words ``(sent, recv)`` of a partition — sender is
    the source value's owner, one word per distinct destination."""
    owner = np.ascontiguousarray(owner, dtype=np.int64)
    src_vertex, dst_owner = cut_pairs(succ_indptr, succ_indices, owner)
    sent = np.bincount(owner[src_vertex], minlength=P)
    recv = np.bincount(dst_owner, minlength=P)
    return sent.astype(np.int64), recv.astype(np.int64)
