"""Telemetry counter identity for the array-backed executor.

The ``pebbling.run`` span counters (scheduled/reads/writes/evictions/
spill_reads/spill_writes, plus the ``peak_cache`` value) are part of the
executor's observable contract: dashboards and perf baselines consume
them.  The vectorised core must emit exactly the values the reference
simulator implies — per configuration, and identically through
``run()`` and ``run_many()``.
"""

import pytest

from repro import telemetry
from repro.bilinear import strassen
from repro.bounds.theorem1 import io_lower_bound
from repro.cdag import build_cdag
from repro.pebbling import CacheExecutor, kernels
from repro.schedules import recursive_schedule

from ..pebbling._reference import reference_run

CONFIGS = [(8, "lru"), (8, "belady"), (12, "fifo"), (24, "belady")]


@pytest.fixture()
def workload():
    g = build_cdag(strassen(), 2)
    return g, recursive_schedule(g)


def _finished(name="pebbling.run"):
    return [s for s in telemetry.collected_spans() if s["name"] == name]


def _expected_counters(g, sched, cache_size, policy):
    """Counters the reference simulator implies for one configuration."""
    res, evictions = reference_run(g, sched, cache_size, policy)
    n_inputs = int((g.in_degree() == 0).sum())
    return {
        "scheduled": g.n_vertices - n_inputs,
        "reads": res.reads,
        "writes": res.writes,
        "evictions": evictions,
        "spill_reads": res.spill_reads,
        "spill_writes": res.spill_writes,
        "peak_cache": res.peak_cache,
    }


def test_run_counters_match_reference(workload):
    g, sched = workload
    telemetry.enable()
    ex = CacheExecutor(g)
    for cache_size, policy in CONFIGS:
        telemetry.reset()
        ex.run(sched, cache_size, policy)
        spans = _finished()
        assert len(spans) == 1
        sp = spans[0]
        assert sp["attrs"] == {"policy": policy, "cache_size": cache_size}
        assert sp["counters"] == _expected_counters(g, sched, cache_size, policy)


def test_run_many_emits_identical_spans(workload):
    """One span per configuration, counters identical to run()."""
    g, sched = workload
    telemetry.enable()
    ex = CacheExecutor(g)

    telemetry.reset()
    for cache_size, policy in CONFIGS:
        ex.run(sched, cache_size, policy)
    one_by_one = [
        (s["attrs"]["cache_size"], s["attrs"]["policy"], s["counters"])
        for s in _finished()
    ]

    telemetry.reset()
    results = ex.run_many(
        sched, sorted({M for M, _ in CONFIGS}), ("lru", "fifo", "belady")
    )
    batched = {
        (s["attrs"]["cache_size"], s["attrs"]["policy"]): s["counters"]
        for s in _finished()
    }
    assert len(batched) == len(results)
    for M, policy, counters in one_by_one:
        assert batched[(M, policy)] == counters


def test_belady_gap_gauge_emitted_per_run(workload):
    """Every run sets the ``pebbling.belady_gap`` registry gauge to the
    measured total minus the Theorem-1 Ω-form bound — the autotuner's
    objective.  It is a registry gauge, not a span counter, so the exact
    span-counter contract above is untouched."""
    g, sched = workload
    telemetry.enable()
    ex = CacheExecutor(g)
    alg = g.alg
    n = alg.n0**g.r
    for i, (cache_size, policy) in enumerate(CONFIGS):
        telemetry.reset()
        res = ex.run(sched, cache_size, policy)
        gauge = telemetry.metrics().gauge("pebbling.belady_gap")
        assert gauge.count == 1
        assert gauge.last == res.total - io_lower_bound(alg, n, cache_size)
        # The span counter set stays exactly the reference contract.
        (sp,) = _finished()
        assert "belady_gap" not in sp["counters"]


def test_plan_cache_counters(workload):
    """Repeat runs of one schedule hit the executor's content-keyed plan
    cache; the hit/miss counters make that observable (the autotuner's
    satellite requirement: candidate re-evaluation must not recompile)."""
    g, sched = workload
    telemetry.enable()
    telemetry.reset()
    ex = CacheExecutor(g)
    ex.run(sched, 8, "belady")
    reg = telemetry.metrics()
    assert reg.counter("pebbling.plan.miss").value == 1
    assert reg.counter("pebbling.plan.hit").value == 0
    for _ in range(3):
        ex.run(sched, 8, "belady")
    assert reg.counter("pebbling.plan.miss").value == 1
    assert reg.counter("pebbling.plan.hit").value == 3


KERNEL_MODE = "jit" if kernels.HAVE_NUMBA else "interp"


def test_kernel_path_counter_per_simulation(workload):
    """Each simulation increments exactly one
    ``pebbling.kernel.{jit,interp,fallback}`` path counter — through
    run() and once per configuration through run_many()."""
    g, sched = workload
    telemetry.enable()
    ex = CacheExecutor(g)

    with kernels.forced_mode(KERNEL_MODE):
        telemetry.reset()
        ex.run(sched, 8, "belady")
        reg = telemetry.metrics()
        assert reg.counter(f"pebbling.kernel.{KERNEL_MODE}").value == 1
        assert reg.counter("pebbling.kernel.fallback").value == 0
        ex.run_many(sched, (8, 12), ("lru", "belady"))
        assert reg.counter(f"pebbling.kernel.{KERNEL_MODE}").value == 5

    with kernels.forced_mode("off"):
        telemetry.reset()
        ex.run(sched, 8, "belady")
        ex.run_many(sched, (8, 12), ("lru", "belady"))
        reg = telemetry.metrics()
        assert reg.counter("pebbling.kernel.fallback").value == 5
        assert reg.counter(f"pebbling.kernel.{KERNEL_MODE}").value == 0


def test_kernel_counters_identical_across_paths(workload):
    """Bit-identity extends to telemetry: the span counters of a kernel
    simulation equal the fallback's (and hence the reference's)."""
    g, sched = workload
    telemetry.enable()
    ex = CacheExecutor(g)
    for cache_size, policy in CONFIGS:
        with kernels.forced_mode(KERNEL_MODE):
            telemetry.reset()
            ex.run(sched, cache_size, policy)
            (sp,) = _finished()
            assert sp["counters"] == _expected_counters(
                g, sched, cache_size, policy
            )


def test_kernel_compile_gauge_set_once(workload):
    """The first kernel invocation publishes the
    ``pebbling.kernel.compile_s`` gauge exactly once per registry life
    (on a cold numba cache the value is dominated by JIT compilation)."""
    g, sched = workload
    telemetry.enable()
    telemetry.reset()
    ex = CacheExecutor(g)
    with kernels.forced_mode(KERNEL_MODE):
        ex.run(sched, 8, "lru")
        ex.run(sched, 12, "belady")
    gauge = telemetry.metrics().gauge("pebbling.kernel.compile_s")
    assert gauge.count == 1
    assert gauge.last >= 0.0


def test_disabled_telemetry_skips_run_counters(workload):
    """With telemetry disabled, runs leave the registry untouched — no
    belady-gap gauge evaluation, no kernel path counters (the hoisted
    disabled-path check)."""
    g, sched = workload
    telemetry.disable()
    telemetry.reset()
    ex = CacheExecutor(g)
    ex.run(sched, 8, "belady")
    ex.run_many(sched, (8, 12), ("lru", "belady"))
    reg = telemetry.metrics()
    assert reg.gauge("pebbling.belady_gap").count == 0
    for path in ("jit", "interp", "fallback"):
        assert reg.counter(f"pebbling.kernel.{path}").value == 0
    # Plan cache accounting stays unconditional (cheap, and the
    # autotuner's dedupe contract reads it).
    assert reg.counter("pebbling.plan.miss").value == 1


def test_simulate_io_reuses_plans_across_calls(workload):
    """The simulate_io convenience path shares a content-keyed executor
    per graph, so repeated calls hit the in-process plan cache instead
    of recompiling (no graph cache required)."""
    from repro.pebbling import simulate_io

    g, sched = workload
    telemetry.enable()
    telemetry.reset()
    first = simulate_io(g, sched, 8, "belady")
    reg = telemetry.metrics()
    misses = reg.counter("pebbling.plan.miss").value
    for _ in range(3):
        assert simulate_io(g, sched, 8, "belady") == first
    assert reg.counter("pebbling.plan.miss").value == misses
    assert reg.counter("pebbling.plan.hit").value >= 3
