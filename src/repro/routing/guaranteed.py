"""Guaranteed dependencies (paper, Section 7).

An input-output pair ``(v, w)`` is a *guaranteed dependence* when every
correct matrix-multiplication algorithm must contain a chain from ``v``
to ``w``: for ``v = a_ij`` and ``w = c_i'j'`` exactly when ``i = i'``,
and for ``v = b_ij`` exactly when ``j = j'``.

In tuple coordinates this decomposes digit-wise: the global row of an
``A``-input matches the global row of an output iff the per-level row
digits all match — which is what makes Claim 2's recursive lifting work.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.cdag.graph import CDAG, Region
from repro.utils.indexing import pair_unindex

__all__ = [
    "input_row_col",
    "output_row_col",
    "guaranteed_dependencies",
    "is_guaranteed_dependence",
    "count_guaranteed_dependencies",
]


def _digits_row_col(digits: tuple[int, ...], n0: int) -> tuple[int, int]:
    """Global (row, col) of an entry-tuple, most significant digit
    first."""
    row = col = 0
    for e in digits:
        r, c = pair_unindex(e, n0)
        row = row * n0 + r
        col = col * n0 + c
    return row, col


def input_row_col(cdag: CDAG, v: int) -> tuple[str, int, int]:
    """``(side, row, col)`` of an input vertex."""
    region, local_rank, digits = cdag.vertex_digits(v)
    if local_rank != 0 or region == Region.DEC:
        raise ValueError(f"vertex {v} is not an input")
    side = "A" if region == Region.ENC_A else "B"
    row, col = _digits_row_col(digits, cdag.alg.n0)
    return side, row, col


def output_row_col(cdag: CDAG, w: int) -> tuple[int, int]:
    """``(row, col)`` of an output vertex."""
    region, local_rank, digits = cdag.vertex_digits(w)
    if region != Region.DEC or local_rank != cdag.r:
        raise ValueError(f"vertex {w} is not an output")
    return _digits_row_col(digits, cdag.alg.n0)


def is_guaranteed_dependence(cdag: CDAG, v: int, w: int) -> bool:
    """Whether ``(v, w)`` is a guaranteed input-output dependence."""
    side, row, col = input_row_col(cdag, v)
    out_row, out_col = output_row_col(cdag, w)
    return row == out_row if side == "A" else col == out_col


def guaranteed_dependencies(
    cdag: CDAG, side: str | None = None
) -> Iterator[tuple[int, int]]:
    """Yield all guaranteed dependencies ``(input, output)``.

    ``side`` restricts to ``"A"`` or ``"B"``.  There are ``n0^(3r)``
    pairs per side: one per (row, col, output-col) for A, per
    (row, col, output-row) for B.
    """
    n = cdag.alg.n0**cdag.r
    sides = ("A", "B") if side is None else (side,)
    inputs_by_rc: dict[tuple[str, int, int], int] = {}
    for s in sides:
        for v in cdag.inputs(s).tolist():
            _, row, col = input_row_col(cdag, v)
            inputs_by_rc[(s, row, col)] = v
    outputs_by_rc: dict[tuple[int, int], int] = {}
    for w in cdag.outputs().tolist():
        outputs_by_rc[output_row_col(cdag, w)] = w

    for s in sides:
        for row in range(n):
            for col in range(n):
                v = inputs_by_rc[(s, row, col)]
                if s == "A":
                    for out_col in range(n):
                        yield v, outputs_by_rc[(row, out_col)]
                else:
                    for out_row in range(n):
                        yield v, outputs_by_rc[(out_row, col)]


def count_guaranteed_dependencies(cdag: CDAG, side: str | None = None) -> int:
    """``n0^(3r)`` per side."""
    per_side = cdag.alg.n0 ** (3 * cdag.r)
    return per_side * (2 if side is None else 1)
