"""E15 — Schedule autotuning: searching the upper half of the sandwich.

The I/O-complexity is a minimum over all schedules, so every fixed
family (recursive, rank-order, the blocked/recursive hybrids) only
brackets it from above — E9's sandwich is meaningful exactly because
the recursive family is a *good* representative.  This experiment
quantifies how good, from the other side: the autotuner
(:mod:`repro.autotune`) searches product-order space for schedules with
a smaller **Belady gap** (measured I/O under offline-MIN eviction minus
the Theorem-1 Ω-form bound) than any fixed family achieves.

Findings this records:

1. at a small, cache-tight grid point the search *does* beat the best
   fixed family by several percent — the recursive order is near-optimal
   but not optimal, and the certified gap tightens accordingly;
2. the gap trajectory is monotone and flattens within a small budget —
   consistent with E13's ablation finding that local search buys only a
   few percent, which is what licenses reading E9's recursive
   measurements as a faithful upper half.
"""

from __future__ import annotations

from repro.autotune import (
    AutoTuner,
    GenomeContext,
    LocalEvaluator,
    TuneConfig,
    hybrid_order,
)
from repro.bilinear import strassen
from repro.bounds import io_lower_bound
from repro.cdag import build_cdag
from repro.experiments.harness import ExperimentResult, register
from repro.pebbling import CacheExecutor
from repro.schedules import (
    demand_driven_schedule,
    rank_order_schedule,
    recursive_schedule,
)
from repro.utils.tables import TextTable

__all__ = ["run"]


@register("E15")
def run(
    seed: int = 2,
    r: int = 2,
    cache_size: int = 12,
    budget: int = 64,
    generation: int = 8,
    strategy: str = "anneal",
) -> ExperimentResult:
    alg = strassen()
    g = build_cdag(alg, r)
    n = alg.n0**r
    lower = io_lower_bound(alg, n, cache_size)
    executor = CacheExecutor(g)
    checks: dict[str, bool] = {}

    # ------------------------------------------------------------------
    # 1. The fixed families' Belady gaps at this grid point.
    # ------------------------------------------------------------------
    ctx = GenomeContext(n_products=alg.b**r, b=alg.b, r=r)
    families = {"recursive": recursive_schedule(g),
                "rank-order": rank_order_schedule(g)}
    for d in range(1, r):
        families[f"hybrid d={d}"] = demand_driven_schedule(
            g, hybrid_order(ctx, d)
        )
    family_table = TextTable(
        ["family", "I/O (belady)", "Belady gap", "I/O / bound"],
        title=f"E15.1: fixed schedule families at n={n}, M={cache_size}",
    )
    family_io: dict[str, int] = {}
    for name, sched in families.items():
        io = int(executor.run(
            sched, cache_size, "belady", validate=False
        ).total)
        family_io[name] = io
        family_table.add_row(
            [name, io, round(io - lower, 1), round(io / lower, 3)]
        )
    best_family = min(family_io, key=family_io.get)
    best_family_io = family_io[best_family]

    # ------------------------------------------------------------------
    # 2. Autotune from the recursive start.
    # ------------------------------------------------------------------
    config = TuneConfig(
        alg=alg.name, r=r, cache_size=cache_size, policy="belady",
        strategy=strategy, budget=budget, generation=generation, seed=seed,
    )
    result = AutoTuner(
        config, LocalEvaluator(g, cache_size, "belady")
    ).run()

    trajectory_table = TextTable(
        ["generation", "evaluations", "best I/O", "Belady gap",
         "I/O / bound"],
        title=f"E15.2: gap trajectory ({strategy}, budget {budget}, "
              f"seed {seed})",
    )
    for point in result.trajectory:
        trajectory_table.add_row([
            point["gen"], point["evaluations"], point["best_io"],
            round(point["best_gap"], 1),
            round(point["best_io"] / lower, 3),
        ])

    summary_table = TextTable(
        ["quantity", "value"],
        title="E15.3: tuned schedule vs the best fixed family",
    )
    summary_table.add_row(["best fixed family", best_family])
    summary_table.add_row(["best fixed I/O", best_family_io])
    summary_table.add_row(["tuned I/O", result.best_io])
    summary_table.add_row(
        ["improvement", f"{100 * (1 - result.best_io / best_family_io):.2f}%"]
    )
    summary_table.add_row(["Theorem-1 bound", round(lower, 1)])
    summary_table.add_row(["tuned gap", round(result.best_gap, 1)])
    summary_table.add_row(["evaluations", result.evaluations])

    # ------------------------------------------------------------------
    # Checks: the tuner's acceptance criteria.
    # ------------------------------------------------------------------
    checks["tuned schedule beats the best fixed family"] = (
        result.best_io < best_family_io
    )
    checks["search never regresses the start order"] = (
        result.best_io <= result.start_io
    )
    checks["measured I/O stays above the Theorem-1 bound"] = (
        result.best_io >= lower
    )
    best_ios = [p["best_io"] for p in result.trajectory]
    checks["gap trajectory is monotone non-increasing"] = (
        best_ios == sorted(best_ios, reverse=True)
    )
    checks["improvement is a few percent, not an order"] = (
        result.best_io > 0.75 * best_family_io
    )

    return ExperimentResult(
        experiment_id="E15",
        title="Schedule autotuning — closing the Belady gap",
        tables=[family_table, trajectory_table, summary_table],
        checks=checks,
        data={
            "n": n,
            "cache_size": cache_size,
            "lower": float(lower),
            "families": family_io,
            "best_family": best_family,
            "tuned_io": int(result.best_io),
            "tuned_gap": float(result.best_gap),
            "trajectory": result.trajectory,
            "evaluations": int(result.evaluations),
        },
    )
