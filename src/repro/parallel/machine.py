"""Distributed machine model (paper, "Machine model" for parallel runs).

``P`` processors, each with a private local memory of ``M`` words; data
moves between processors in messages.  Following the paper (and [2, 16]),
the *bandwidth cost* counts words communicated along the critical path:
words moved simultaneously by different processors count once.  We
realise this with BSP-style supersteps: the cost of a superstep is the
maximum over processors of words sent plus received in it, and the run's
bandwidth cost is the sum over supersteps —
:class:`CommunicationLog` does the accounting.

The log stores supersteps *columnar*: a uniform superstep (every
processor moves the same ``w`` words — the common case in the CAPS
recursion) is one O(1) record regardless of ``P``, and an irregular one
keeps ``(proc, sent, recv)`` arrays rather than a Python dict.  The
bandwidth and volume totals are accumulated eagerly as records arrive,
so :meth:`bandwidth_cost` is O(1) and a simulated machine with ``P`` in
the thousands costs the same to log as ``P = 8`` (the E11 strong-scaling
sweeps rely on this).  :meth:`replay` re-appends a recorded segment in
O(segment) — the DFS branch of the CAPS recursion repeats its subtree's
communication ``b - 1`` times without re-simulating it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.utils.validation import check_positive_int

__all__ = ["DistributedMachine", "CommunicationLog"]


@dataclass(frozen=True)
class DistributedMachine:
    """``P`` processors with ``local_memory`` words each."""

    n_processors: int
    local_memory: int

    def __post_init__(self):
        check_positive_int(self.n_processors, "n_processors")
        check_positive_int(self.local_memory, "local_memory")

    @property
    def total_memory(self) -> int:
        return self.n_processors * self.local_memory


class CommunicationLog:
    """Superstep-based bandwidth accounting.

    Usage::

        log = CommunicationLog(P)
        log.superstep({0: (sent0, recv0), 3: (sent3, recv3)})
        ...
        log.bandwidth_cost()   # sum over supersteps of max_p (sent+recv)
    """

    def __init__(self, n_processors: int):
        check_positive_int(n_processors, "n_processors")
        self.n_processors = n_processors
        #: records: ("uniform", w, bw, vol) or
        #: ("sparse", (procs, sent, recv), bw, vol); bw/vol are the
        #: record's bandwidth-cost and volume contributions.
        self._records: list[tuple] = []
        self._bandwidth = 0
        self._volume = 0

    def superstep(self, traffic: dict[int, tuple[int, int]]) -> None:
        """Record one superstep.  ``traffic[p] = (sent, recv)`` in words;
        processors absent from the dict were silent."""
        k = len(traffic)
        procs = np.fromiter(traffic.keys(), dtype=np.int64, count=k)
        pairs = np.fromiter(
            (x for pair in traffic.values() for x in pair),
            dtype=np.int64, count=2 * k,
        ).reshape(k, 2)
        if k:
            if procs.min() < 0 or procs.max() >= self.n_processors:
                bad = procs[(procs < 0) | (procs >= self.n_processors)][0]
                raise PartitionError(f"processor {bad} out of range")
            if pairs.min() < 0:
                raise PartitionError("negative word counts")
        sent, recv = pairs[:, 0], pairs[:, 1]
        bw = int((sent + recv).max()) if k else 0
        vol = int(sent.sum())
        self._records.append(("sparse", (procs, sent, recv), bw, vol))
        self._bandwidth += bw
        self._volume += vol

    def uniform_superstep(self, words_per_processor: float) -> None:
        """Every processor sends and receives ``words_per_processor`` —
        one O(1) record, independent of ``P``."""
        if words_per_processor < 0:
            raise PartitionError("negative word counts")
        w = int(round(words_per_processor))
        self._records.append(("uniform", w, 2 * w, w * self.n_processors))
        self._bandwidth += 2 * w
        self._volume += w * self.n_processors

    def replay(self, start: int, end: int, times: int) -> None:
        """Append the superstep segment ``[start, end)`` again,
        ``times`` times — the recorded records are immutable, so the
        repetitions share them."""
        if times <= 0 or end <= start:
            return
        segment = self._records[start:end]
        bw = sum(rec[2] for rec in segment)
        vol = sum(rec[3] for rec in segment)
        for _ in range(times):
            self._records.extend(segment)
        self._bandwidth += bw * times
        self._volume += vol * times

    def bandwidth_cost(self) -> int:
        """Words on the critical path: per superstep, the busiest
        processor's sent+received; summed over supersteps."""
        return self._bandwidth

    def total_volume(self) -> int:
        """Total words sent across all processors and supersteps (the
        *volume*, for contrast with the critical-path cost)."""
        return self._volume

    def processor_totals(self) -> np.ndarray:
        """Words sent+received per processor, summed over all
        supersteps — one columnar pass over the records."""
        totals = np.zeros(self.n_processors, dtype=np.int64)
        uniform = 0
        for kind, payload, _, _ in self._records:
            if kind == "uniform":
                uniform += 2 * payload
            else:
                procs, sent, recv = payload
                np.add.at(totals, procs, sent + recv)
        totals += uniform
        return totals

    @property
    def steps(self) -> list[dict[int, tuple[int, int]]]:
        """The supersteps as per-processor dicts, materialised on
        demand (debugging / small-P introspection; the accounting never
        builds these)."""
        out = []
        for kind, payload, _, _ in self._records:
            if kind == "uniform":
                w = payload
                out.append({p: (w, w) for p in range(self.n_processors)})
            else:
                procs, sent, recv = payload
                out.append({
                    int(p): (int(s), int(r))
                    for p, s, r in zip(procs, sent, recv)
                })
        return out

    @property
    def n_supersteps(self) -> int:
        return len(self._records)
