"""Benchmark E8: Segment argument on real executions (Equations 1-2).

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md)
and asserts every paper-claim check; pytest-benchmark tracks the
regeneration cost.
"""


def test_e8_segments(run_experiment):
    run_experiment("E8")
