"""Batched grid simulation: ``(config, slot)`` 2-D state stepped in
lockstep by one compiled kernel.

The PR-8 grid entry point compiled the *loop over configurations* —
each ``(cache_size, policy)`` cell still ran start-to-finish on one
core.  Here the batch is columnar: every kind of per-vertex state is
one ``(config, slot)`` matrix (row = configuration, slot axis = vertex
/ heap entry / scalar index), and ``_grid_lockstep`` advances *all*
rows through schedule step ``t`` before moving to ``t + 1``.  The
schedule, operand CSR and next-use arrays are read once per step and
shared across every row, so a thousand-configuration sweep costs one
pass over the plan instead of a thousand.

Configurations are independent, so the interleaving cannot change any
row's result — bit-identity with single-config runs is structural, and
the hypothesis suite (``tests/simcore/``) asserts it anyway.

Scaling knobs
-------------
Under numba the kernel releases the GIL, so the Python wrapper splits
the config rows into chunks and steps the chunks on a thread pool: a
whole grid saturates the machine's cores from one process.
``REPRO_GRID_THREADS`` pins the thread count (default: up to 8, bounded
by ``os.cpu_count()``); chunks also bound peak state memory to
``chunk_rows x n_vertices``.  Without numba the threads would just
contend for the GIL, so the fallback and ``interp`` modes run the grid
single-threaded.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.simcore.dispatch import (
    HAVE_NUMBA,
    active_mode,
    count_path,
    njit,
    note_first_call,
)
from repro.simcore.policies import (
    READS,
    SC_LEN,
    STATUS,
    STATUS_OK,
    WRITES,
    _belady_step,
    _drain_outputs,
    _recency_step,
)

__all__ = ["simulate_plan", "run_grid"]


# ----------------------------------------------------------------------
# Per-config kernels (single row of state; io_trace support).
# ----------------------------------------------------------------------


@njit(cache=True, nogil=True)
def _recency_kernel(sched, indptr, ops, uses_left0, is_input, is_output,
                    n, cache_size, refresh_on_use, trace, want_trace, sc):
    T = sched.shape[0]
    cached = np.zeros(n, dtype=np.uint8)
    dirty = np.zeros(n, dtype=np.uint8)
    in_slow = np.empty(n, dtype=np.uint8)
    output_written = np.zeros(n, dtype=np.uint8)
    uses_left = np.empty(n, dtype=np.int64)
    stamp = np.zeros(n, dtype=np.int64)
    pinned = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        in_slow[i] = is_input[i]
        uses_left[i] = uses_left0[i]
    heap = np.empty(ops.shape[0] + T + 2, dtype=np.int64)
    aside = np.empty(n, dtype=np.int64)

    for t in range(T):
        if _recency_step(sched[t], t, indptr[t], indptr[t + 1], ops, n,
                         cache_size, refresh_on_use, is_input, is_output,
                         cached, dirty, in_slow, output_written, uses_left,
                         stamp, pinned, heap, aside, sc) < 0:
            return
        if want_trace:
            trace[t] = sc[READS] + sc[WRITES]

    _drain_outputs(n, is_output, dirty, output_written, sc)


@njit(cache=True, nogil=True)
def _belady_kernel(sched, indptr, ops, occ_next, first_use, uses_left0,
                   is_input, is_output, n, cache_size, trace, want_trace, sc):
    T = sched.shape[0]
    cached = np.zeros(n, dtype=np.uint8)
    dirty = np.zeros(n, dtype=np.uint8)
    in_slow = np.empty(n, dtype=np.uint8)
    output_written = np.zeros(n, dtype=np.uint8)
    uses_left = np.empty(n, dtype=np.int64)
    key = np.zeros(n, dtype=np.int64)
    pinned = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        in_slow[i] = is_input[i]
        uses_left[i] = uses_left0[i]
    heap = np.empty(ops.shape[0] + T + 2, dtype=np.int64)

    for t in range(T):
        if _belady_step(sched[t], t, indptr[t], indptr[t + 1], ops, occ_next,
                        first_use, n, T, cache_size, is_input, is_output,
                        cached, dirty, in_slow, output_written, uses_left,
                        key, pinned, heap, sc) < 0:
            return
        if want_trace:
            trace[t] = sc[READS] + sc[WRITES]

    _drain_outputs(n, is_output, dirty, output_written, sc)


@njit(cache=True, nogil=True)
def _simulate_one(sched, indptr, ops, occ_next, first_use, uses_left0,
                  is_input, is_output, n, cache_size, policy_code,
                  trace, want_trace, sc):
    """Policy dispatch: 0 = LRU, 1 = FIFO, 2 = Belady."""
    if policy_code == 2:
        _belady_kernel(sched, indptr, ops, occ_next, first_use, uses_left0,
                       is_input, is_output, n, cache_size, trace, want_trace,
                       sc)
    else:
        _recency_kernel(sched, indptr, ops, uses_left0, is_input, is_output,
                        n, cache_size, policy_code == 0, trace, want_trace,
                        sc)


# ----------------------------------------------------------------------
# Lockstep grid kernel: (config, slot) 2-D state, time-major loop.
# ----------------------------------------------------------------------


@njit(cache=True, nogil=True)
def _grid_lockstep(sched, indptr, ops, occ_next, first_use, uses_left0,
                   is_input, is_output, n, cache_sizes, policy_codes,
                   cached, dirty, in_slow, output_written, uses_left,
                   stampkey, pinned, heaps, aside, sc):
    """Step every configuration row through the schedule in lockstep.

    All state matrices are ``(n_configs, slots)``; row ``j`` is
    configuration ``(cache_sizes[j], policy_codes[j])``'s private state,
    initialised here so callers can pass ``np.empty`` storage.
    ``stampkey`` row ``j`` is the recency stamp for LRU/FIFO rows and
    the next-use key for Belady rows — the policies never mix within a
    row.  Rows whose ``STATUS`` goes non-OK stop stepping; the rest of
    the grid continues.
    """
    T = sched.shape[0]
    C = cache_sizes.shape[0]
    for j in range(C):
        for k in range(SC_LEN):
            sc[j, k] = 0
        for i in range(n):
            cached[j, i] = 0
            dirty[j, i] = 0
            in_slow[j, i] = is_input[i]
            output_written[j, i] = 0
            uses_left[j, i] = uses_left0[i]
            stampkey[j, i] = 0
            pinned[j, i] = -1
    for t in range(T):
        v = sched[t]
        start = indptr[t]
        end = indptr[t + 1]
        for j in range(C):
            if sc[j, STATUS] != STATUS_OK:
                continue
            if policy_codes[j] == 2:
                _belady_step(v, t, start, end, ops, occ_next, first_use,
                             n, T, cache_sizes[j], is_input, is_output,
                             cached[j], dirty[j], in_slow[j],
                             output_written[j], uses_left[j], stampkey[j],
                             pinned[j], heaps[j], sc[j])
            else:
                _recency_step(v, t, start, end, ops, n, cache_sizes[j],
                              policy_codes[j] == 0, is_input, is_output,
                              cached[j], dirty[j], in_slow[j],
                              output_written[j], uses_left[j], stampkey[j],
                              pinned[j], heaps[j], aside[j], sc[j])
    for j in range(C):
        if sc[j, STATUS] == STATUS_OK:
            _drain_outputs(n, is_output, dirty[j], output_written[j], sc[j])


# ----------------------------------------------------------------------
# Python wrappers.
# ----------------------------------------------------------------------

_DUMMY_TRACE = np.empty(1, dtype=np.int64)

#: Grids smaller than this never split across threads — the pool and
#: per-chunk state setup would dominate.
_MIN_CHUNK = 4


def _n_threads() -> int:
    env = os.environ.get("REPRO_GRID_THREADS", "")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            return 1
    return max(1, min(os.cpu_count() or 1, 8))


def simulate_plan(plan_arrays, is_input_u8, is_output_u8, cache_size,
                  policy_code, trace=None) -> np.ndarray:
    """Run one ``(cache_size, policy)`` configuration over a plan's
    kernel arrays; returns the ``SC_LEN`` scalar vector (first eight
    slots are the count tuple, then status/diagnostics).

    ``plan_arrays`` is the tuple from
    :meth:`SchedulePlan.kernel_arrays` — contiguous int64 arrays in
    ``PLAN_ARRAY_NAMES`` order, possibly read-only memmaps straight from
    a plan bundle (the kernels never write them).
    """
    sched, indptr, ops, occ_next, first_use, uses_left0 = plan_arrays
    sc = np.zeros(SC_LEN, dtype=np.int64)
    want_trace = trace is not None
    t0 = time.perf_counter()
    _simulate_one(sched, indptr, ops, occ_next, first_use, uses_left0,
                  is_input_u8, is_output_u8, is_input_u8.shape[0],
                  cache_size, policy_code,
                  trace if want_trace else _DUMMY_TRACE, want_trace, sc)
    note_first_call(time.perf_counter() - t0)
    count_path(active_mode())
    return sc


def run_grid(plan_arrays, is_input_u8, is_output_u8, cache_sizes,
             policy_codes) -> np.ndarray:
    """Batched lockstep sweep over one plan: returns an
    ``(n_configs, SC_LEN)`` matrix, one scalar vector per
    ``(cache_size, policy)`` cell.

    Under numba the grid's config rows are chunked across a thread pool
    (the kernel is ``nogil``), so large sweeps use every core from one
    process; see the module docstring for the knobs.
    """
    sched, indptr, ops, occ_next, first_use, uses_left0 = plan_arrays
    Ms = np.ascontiguousarray(cache_sizes, dtype=np.int64)
    pols = np.ascontiguousarray(policy_codes, dtype=np.int64)
    C = Ms.shape[0]
    n = int(is_input_u8.shape[0])
    heap_cap = ops.shape[0] + sched.shape[0] + 2
    out = np.zeros((C, SC_LEN), dtype=np.int64)

    def _run_rows(lo: int, hi: int) -> None:
        c = hi - lo
        cached = np.empty((c, n), dtype=np.uint8)
        dirty = np.empty((c, n), dtype=np.uint8)
        in_slow = np.empty((c, n), dtype=np.uint8)
        output_written = np.empty((c, n), dtype=np.uint8)
        uses_left = np.empty((c, n), dtype=np.int64)
        stampkey = np.empty((c, n), dtype=np.int64)
        pinned = np.empty((c, n), dtype=np.int64)
        heaps = np.empty((c, heap_cap), dtype=np.int64)
        aside = np.empty((c, n), dtype=np.int64)
        _grid_lockstep(sched, indptr, ops, occ_next, first_use, uses_left0,
                       is_input_u8, is_output_u8, n, Ms[lo:hi], pols[lo:hi],
                       cached, dirty, in_slow, output_written, uses_left,
                       stampkey, pinned, heaps, aside, out[lo:hi])

    mode = active_mode()
    threads = _n_threads() if (mode == "jit" and HAVE_NUMBA) else 1
    n_chunks = min(threads, max(1, C // _MIN_CHUNK))
    t0 = time.perf_counter()
    if n_chunks <= 1:
        _run_rows(0, C)
    else:
        bounds = [round(i * C / n_chunks) for i in range(n_chunks + 1)]
        with ThreadPoolExecutor(max_workers=n_chunks) as pool:
            list(pool.map(lambda b: _run_rows(*b),
                          zip(bounds[:-1], bounds[1:])))
    note_first_call(time.perf_counter() - t0)
    count_path(mode, C)
    return out
