"""Bring your own fast matrix-multiplication algorithm.

Defines a bilinear algorithm from scratch (here: a transposed-dual
variant of Strassen built by hand), validates it against the Brent
equations, and runs the full analysis pipeline on it: structure census,
I/O bounds, routing certificate, and a simulated execution — the same
treatment the paper gives to "any Strassen-like algorithm".

Swap in your own U, V, W to analyse a new algorithm; every downstream
quantity updates automatically.

Run:  python examples/custom_algorithm.py
"""

import numpy as np

import repro
from repro.bilinear import BilinearAlgorithm
from repro.bilinear.verify import algorithm_stats
from repro.bounds import expansion_technique_applicable
from repro.routing import theorem2_certificate


def build_my_algorithm() -> BilinearAlgorithm:
    """A hand-entered 7-multiplication 2x2 algorithm.

    (This one is Strassen with A and B roles swapped via C^T = B^T A^T;
    replace the coefficient tables with your own discovery.)
    """
    # Entry order: (0,0), (0,1), (1,0), (1,1).
    # Products: M1=(A11+A22)(B11+B22), M2=A11(B12+B22), M3=(A21-A22)B11,
    # M4=(A22-A11)(B11+B12)... — the B^T A^T dual of Strassen's seven.
    U = np.array(
        [
            [1, 0, 0, 1],
            [1, 0, 0, 0],
            [0, 0, 1, -1],
            [-1, 1, 0, 0],
            [0, 0, 0, 1],
            [1, 0, 1, 0],
            [0, 1, 0, 1],
        ],
        dtype=float,
    )
    V = np.array(
        [
            [1, 0, 0, 1],
            [0, 1, 0, 1],
            [1, 0, 0, 0],
            [0, 0, 0, 1],
            [1, 0, 1, 0],
            [-1, 1, 0, 0],
            [0, 0, 1, -1],
        ],
        dtype=float,
    )
    W = np.array(
        [
            [1, 0, 0, 1, -1, 0, 1],
            [0, 1, 0, 1, 0, 0, 0],
            [0, 0, 1, 0, 1, 0, 0],
            [1, -1, 1, 0, 0, 1, 0],
        ],
        dtype=float,
    )
    return BilinearAlgorithm(n0=2, U=U, V=V, W=W, name="my-algorithm")


def main() -> None:
    alg = build_my_algorithm()

    # Exact correctness first: Brent equations, then numeric spot check.
    alg.validate()
    rng = np.random.default_rng(0)
    A, B = rng.standard_normal((2, 2)), rng.standard_normal((2, 2))
    assert np.allclose(alg.apply_base(A, B), A @ B)
    print(f"{alg.name}: Brent equations hold; numeric check passes.")

    stats = algorithm_stats(alg)
    print(f"  n0={stats.n0}, b={stats.b}, omega0={stats.omega0:.4f}, "
          f"strassen-like={stats.is_strassen_like}")
    print(f"  single-use assumption: {stats.satisfies_single_use}")
    print(f"  edge-expansion technique applicable: "
          f"{expansion_technique_applicable(alg)['applicable']}")

    # Theorem 1 bounds for this algorithm.
    n, M = 2**10, 2**8
    print(f"\nTheorem 1 at n={n}, M={M}:")
    print(f"  sequential I/O  >= {repro.io_lower_bound(alg, n, M):.3e}")
    print(f"  bandwidth (P=49) >= "
          f"{repro.parallel_bandwidth_lower_bound(alg, n, M, 49):.3e}")
    print(f"  memory-independent (P=49) >= "
          f"{repro.memory_independent_lower_bound(alg, n, 49):.3e}")

    # The Routing Theorem certificate.
    cert = theorem2_certificate(alg, 2)
    print(f"\nRouting certificate (k=2): {cert.report.n_paths} paths, "
          f"max hits {cert.report.max_vertex_hits} <= {cert.claimed_m}: "
          f"{cert.report.within_bound}")

    # And a measured execution.
    g = repro.build_cdag(alg, 3)
    sched = repro.recursive_schedule(g)
    res = repro.simulate_io(g, sched, 48, policy="belady")
    print(f"\nMeasured I/O on G_3 (M=48, belady): {res.total} "
          f"(lower bound {repro.io_lower_bound(alg, 8, 48):.0f})")


if __name__ == "__main__":
    main()
