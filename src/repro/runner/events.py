"""Structured JSONL event log and live progress line.

Every scheduler decision is recorded as one JSON object per line:
job start/finish/retry/failure, cache hits, and sweep begin/end, each
with a wall-clock timestamp and (where known) the worker pid and
duration.  The log is the sweep's flight recorder — retry histories and
cache-hit rates in tests and post-mortems come from here, never from
parsing human-readable output.  Timestamps live only in the event log,
never in stored artifacts, which keeps artifacts byte-reproducible.
"""

from __future__ import annotations

import json
import sys
import time
from collections import Counter
from pathlib import Path
from typing import IO, Iterable, Mapping

__all__ = [
    "EVENT_SCHEMA",
    "EventLog",
    "ProgressLine",
    "read_events",
    "validate_event",
    "tally",
]

#: Required fields per event type (beyond the envelope ``ts``/``event``).
EVENT_SCHEMA: dict[str, frozenset] = {
    "sweep_start": frozenset({"jobs", "workers"}),
    "sweep_finish": frozenset({"ok", "failed", "cached", "duration"}),
    "cache_hit": frozenset({"job", "experiment", "key"}),
    "job_start": frozenset({"job", "experiment", "key", "attempt"}),
    "job_finish": frozenset(
        {"job", "experiment", "key", "attempt", "duration", "worker"}
    ),
    "job_retry": frozenset({"job", "experiment", "key", "attempt", "kind", "reason"}),
    "job_failed": frozenset({"job", "experiment", "key", "attempts", "reason"}),
}


class EventLog:
    """Appends JSONL records to ``path`` (or any writable stream) and
    keeps in-memory per-type counters either way."""

    def __init__(
        self,
        path: str | Path | None = None,
        stream: IO[str] | None = None,
        clock=time.time,
    ):
        self.path = Path(path) if path is not None else None
        self._stream = stream
        self._clock = clock
        self._owned = False
        self.counts: Counter = Counter()
        self.records: list[dict] = []
        self._bound: dict = {}
        if self.path is not None and self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("a", encoding="utf-8")
            self._owned = True

    def bind(self, **fields) -> None:
        """Merge ``fields`` into every subsequent record (drop a field
        by binding it to ``None``) — used to stamp all of a sweep's
        events with its telemetry span id."""
        for name, value in fields.items():
            if value is None:
                self._bound.pop(name, None)
            else:
                self._bound[name] = value

    def emit(self, event: str, **fields) -> dict:
        record = {"ts": round(float(self._clock()), 6), "event": event}
        record.update(self._bound)
        record.update(fields)
        self.counts[event] += 1
        self.records.append(record)
        if self._stream is not None:
            self._stream.write(json.dumps(record, sort_keys=True) + "\n")
            self._stream.flush()
        return record

    def close(self) -> None:
        if self._owned and self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: str | Path) -> list[dict]:
    """Parse a JSONL event log back into records (skipping blank lines)."""
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def validate_event(record: Mapping) -> list[str]:
    """Schema check of one event record; returns a list of problems
    (empty when the record is well-formed)."""
    problems = []
    if "ts" not in record:
        problems.append("missing 'ts'")
    elif not isinstance(record["ts"], (int, float)):
        problems.append("'ts' is not numeric")
    event = record.get("event")
    if event is None:
        problems.append("missing 'event'")
        return problems
    required = EVENT_SCHEMA.get(event)
    if required is None:
        problems.append(f"unknown event type {event!r}")
        return problems
    for name in sorted(required):
        if name not in record:
            problems.append(f"{event}: missing field {name!r}")
    return problems


class ProgressLine:
    """Single overwriting status line on a terminal (no-op elsewhere).

    The scheduler calls :meth:`update` after every state change; the
    line shows completed/total plus cached, failed and in-flight
    counts, so a long sweep is observable without tailing the JSONL
    log.
    """

    def __init__(
        self,
        total: int,
        stream: IO[str] | None = None,
        enabled: bool | None = None,
    ):
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            enabled = bool(getattr(self.stream, "isatty", lambda: False)())
        self.enabled = enabled
        self._last_len = 0

    def update(self, done: int, cached: int, failed: int, running: int) -> None:
        if not self.enabled:
            return
        line = (
            f"sweep: {done}/{self.total} done"
            f" ({cached} cached, {failed} failed, {running} running)"
        )
        pad = " " * max(0, self._last_len - len(line))
        self.stream.write("\r" + line + pad)
        self.stream.flush()
        self._last_len = len(line)

    def finish(self) -> None:
        if self.enabled and self._last_len:
            self.stream.write("\n")
            self.stream.flush()
            self._last_len = 0


def tally(records: Iterable[Mapping]) -> Counter:
    """Per-type counts over an iterable of event records."""
    return Counter(r.get("event") for r in records)
