"""Golden-equivalence tests: the array-backed executor must be
bit-identical to the pre-vectorisation reference simulator.

``tests/pebbling/_reference.py`` keeps the original set/dict executor
(with its original policy objects inlined) verbatim.  These tests run
both simulators over a grid of schedules x policies x cache sizes and
assert that every ``IOResult`` field, the eviction count and the full
cumulative ``io_trace`` agree exactly — not approximately.  Any
divergence in victim selection shows up here long before it would bend
an experiment curve.

The whole grid runs against *both* executor paths: the pure-Python
fallback loops (``off``) and the kernel algorithm from
:mod:`repro.pebbling.kernels` (``interp`` when numba is absent, so the
exact code numba would compile runs under the plain interpreter; the
compiled ``jit`` path when numba is installed).
"""

import pytest

from repro.bilinear import classical, strassen
from repro.cdag import build_cdag
from repro.pebbling import CacheExecutor, kernels, min_cache_size
from repro.schedules import (
    random_topological_schedule,
    rank_order_schedule,
    recursive_schedule,
)

from ._reference import reference_run

POLICIES = ("lru", "fifo", "belady")
PATHS = ("off", "jit" if kernels.HAVE_NUMBA else "interp")


@pytest.fixture(params=PATHS)
def sim_path(request):
    """Run the test body under one executor dispatch mode."""
    with kernels.forced_mode(request.param):
        yield request.param


def _cases():
    """(label, cdag, schedule) grid: two algorithms, three schedule
    families, two recursion depths."""
    cases = []
    for alg_name, alg, rs in (("strassen", strassen(), (1, 2)),
                              ("classical", classical(2), (1, 2))):
        for r in rs:
            g = build_cdag(alg, r)
            cases.append((f"{alg_name}-r{r}-rec", g, recursive_schedule(g)))
            cases.append((f"{alg_name}-r{r}-rank", g, rank_order_schedule(g)))
            cases.append(
                (f"{alg_name}-r{r}-rand", g, random_topological_schedule(g, seed=7))
            )
    return cases


CASES = _cases()


@pytest.mark.parametrize("label,g,sched", CASES, ids=[c[0] for c in CASES])
@pytest.mark.parametrize("policy", POLICIES)
def test_bit_identical_to_reference(label, g, sched, policy, sim_path):
    ex = CacheExecutor(g)
    m0 = min_cache_size(g)
    for cache_size in (m0, m0 + 3, 2 * m0, g.n_vertices + 1):
        trace_new: list[int] = []
        trace_ref: list[int] = []
        res_new, ev_new = ex._run(sched, cache_size, policy, True, None, trace_new)
        res_ref, ev_ref = reference_run(
            g, sched, cache_size, policy, io_trace=trace_ref
        )
        assert res_new == res_ref, (label, policy, cache_size)
        assert ev_new == ev_ref, (label, policy, cache_size)
        assert trace_new == trace_ref, (label, policy, cache_size)


def test_run_many_matches_reference(sim_path):
    """The batched sweep API returns the same results as one-at-a-time
    reference runs for every (cache_size, policy) configuration."""
    g = build_cdag(strassen(), 2)
    sched = recursive_schedule(g)
    cache_sizes = (8, 12, 24)
    results = CacheExecutor(g).run_many(sched, cache_sizes, POLICIES)
    assert set(results) == {(M, p) for M in cache_sizes for p in POLICIES}
    for (M, policy), res in results.items():
        ref, _ = reference_run(g, sched, M, policy)
        assert res == ref, (M, policy)


def test_run_matches_run_many(sim_path):
    """run() and run_many() share the plan cache and agree exactly."""
    g = build_cdag(strassen(), 2)
    sched = recursive_schedule(g)
    ex = CacheExecutor(g)
    many = ex.run_many(sched, (8, 24), ("lru", "belady"))
    for (M, policy), res in many.items():
        assert ex.run(sched, M, policy) == res


def test_partitioned_run_many_matches_reference(sim_path):
    """The ProcessPoolExecutor grid partitioning returns exactly what
    the serial sweep does (workers rebuild the plan from its arrays)."""
    g = build_cdag(strassen(), 2)
    sched = recursive_schedule(g)
    ex = CacheExecutor(g)
    serial = ex.run_many(sched, (8, 12, 24), POLICIES)
    parallel = ex.run_many(sched, (8, 12, 24), POLICIES, workers=3)
    assert parallel == serial
