"""Verification of routings: path validity and hit-count certificates.

A routing certificate is only worth anything if machine-checked; this
module confirms (a) every path is a genuine undirected walk of the CDAG,
(b) endpoints match declarations, (c) the vertex- and meta-vertex-level
hit maxima are within the claimed ``m`` — the content of Definition 2
and the Routing Theorem's meta-vertex clause.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdag.graph import CDAG
from repro.cdag.metavertex import MetaVertexPartition
from repro.errors import RoutingError
from repro.routing.paths import Routing

__all__ = ["RoutingReport", "verify_path", "verify_routing"]


def _check_edges(cdag: CDAG, u: np.ndarray, v: np.ndarray) -> None:
    """Raise :class:`RoutingError` unless every ``(u[i], v[i])`` pair is
    adjacent in the CDAG (direction ignored).

    One vectorised membership test over the CDAG's sorted
    both-orientation edge-key index (:meth:`CDAG.edge_key_index`)
    replaces the former per-edge ``in predecessors()`` scans — the
    routing certificate checks of E4/E6 walk millions of path steps, so
    this is a batch ``np.searchsorted`` instead of a Python loop.
    """
    if len(u) == 0:
        return
    n = np.int64(cdag.n_vertices)
    in_range = (u >= 0) & (u < n) & (v >= 0) & (v < n)
    if not in_range.all():
        i = int(np.argmin(in_range))
        raise RoutingError(
            f"path step {int(u[i])} -> {int(v[i])} is not a CDAG edge"
        )
    keys = cdag.edge_key_index()
    wanted = u * n + v
    pos = np.searchsorted(keys, wanted)
    found = (pos < len(keys)) & (keys[np.minimum(pos, len(keys) - 1)] == wanted)
    if not found.all():
        i = int(np.argmin(found))
        raise RoutingError(
            f"path step {int(u[i])} -> {int(v[i])} is not a CDAG edge"
        )


def verify_path(cdag: CDAG, path: np.ndarray) -> None:
    """Raise :class:`RoutingError` unless consecutive vertices are
    adjacent in the CDAG (direction ignored)."""
    path = np.asarray(path, dtype=np.int64)
    _check_edges(cdag, path[:-1], path[1:])


@dataclass(frozen=True)
class RoutingReport:
    """Outcome of :func:`verify_routing` (one row of E3/E4 reports)."""

    label: str
    n_paths: int
    claimed_m: int
    max_vertex_hits: int
    max_meta_hits: int | None
    total_length: int

    @property
    def within_bound(self) -> bool:
        ok = self.max_vertex_hits <= self.claimed_m
        if self.max_meta_hits is not None:
            ok = ok and self.max_meta_hits <= self.claimed_m
        return ok

    @property
    def slack(self) -> float:
        """claimed / measured — how loose the paper's constant is."""
        measured = max(
            self.max_vertex_hits,
            self.max_meta_hits or 0,
        )
        return self.claimed_m / measured if measured else float("inf")


def verify_routing(
    cdag: CDAG,
    routing: Routing,
    claimed_m: int,
    meta: MetaVertexPartition | None = None,
    expected_pairs: set[tuple[int, int]] | None = None,
    check_paths: bool = True,
) -> RoutingReport:
    """Full certificate check.

    Parameters
    ----------
    claimed_m:
        The ``m`` of the claimed ``m``-routing (e.g. ``6 a^k``).
    meta:
        When given, also enforce the bound at meta-vertex granularity.
    expected_pairs:
        When given, the declared endpoint pairs must cover this set
        exactly once each (the "|X||Y| paths, one per pair" clause).
    check_paths:
        Edge-by-edge validity check (O(total length); disable only in
        benchmarks that verified the same construction before).

    Raises on any violation; returns the measured report otherwise.
    """
    if check_paths:
        # Endpoint declarations first (cheap, per path), then a single
        # batched edge-membership test over every step of every path.
        heads = []
        tails = []
        for path, (src, dst) in zip(routing.paths, routing.endpoints):
            if int(path[0]) != src or int(path[-1]) != dst:
                raise RoutingError(
                    f"path endpoints ({path[0]}, {path[-1]}) disagree with "
                    f"declaration ({src}, {dst})"
                )
            path = np.asarray(path, dtype=np.int64)
            if len(path) > 1:
                heads.append(path[:-1])
                tails.append(path[1:])
        if heads:
            _check_edges(cdag, np.concatenate(heads), np.concatenate(tails))

    if expected_pairs is not None:
        declared = list(routing.endpoints)
        if len(declared) != len(expected_pairs) or set(declared) != expected_pairs:
            raise RoutingError(
                f"routing declares {len(declared)} paths over "
                f"{len(set(declared))} pairs; expected exactly "
                f"{len(expected_pairs)} pairs"
            )

    max_hits = routing.max_vertex_hits()
    if max_hits > claimed_m:
        raise RoutingError(
            f"vertex hit count {max_hits} exceeds claimed m={claimed_m}"
        )
    max_meta = None
    if meta is not None:
        max_meta = routing.max_meta_hits(meta)
        if max_meta > claimed_m:
            raise RoutingError(
                f"meta-vertex hit count {max_meta} exceeds claimed "
                f"m={claimed_m}"
            )
    return RoutingReport(
        label=routing.label,
        n_paths=len(routing),
        claimed_m=claimed_m,
        max_vertex_hits=max_hits,
        max_meta_hits=max_meta,
        total_length=routing.total_path_length(),
    )
