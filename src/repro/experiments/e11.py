"""E11 — Theorem 1, parallel: bandwidth cost vs P and M.

Simulate CAPS executions across processor counts and memory sizes;
verify the measured bandwidth sits above the combined lower bound
``max((n/√M)^ω0 M/P, n²/P^(2/ω0))`` with a bounded constant, that the
two regimes appear where predicted, and contrast with the classical
2D / 2.5D / 3D baselines.  Also check the memory-independent clause's
premise on an explicit CDAG: per-rank-balanced partitions really do
communicate.
"""

from __future__ import annotations

from repro.bilinear import strassen
from repro.bounds import (
    memory_independent_lower_bound,
    parallel_bandwidth_lower_bound,
)
from repro.cdag import build_cdag
from repro.experiments.harness import ExperimentResult, register
from repro.parallel import (
    DistributedMachine,
    cannon_2d_bandwidth,
    classical_25d_bandwidth,
    classical_3d_bandwidth,
    communication_volume,
    minimum_memory,
    partition_by_rank_balanced,
    simulate_caps,
    validate_rank_balanced,
)
from repro.utils.tables import TextTable
from repro.utils.validation import check_power

__all__ = ["run"]


@register("E11")
def run(n: int = 2**10) -> ExperimentResult:
    alg = strassen()
    checks: dict[str, bool] = {}

    scaling_table = TextTable(
        ["P", "M", "schedule", "BW measured", "mem-bound term",
         "mem-indep term", "BW / max(bounds)"],
        title="E11: CAPS bandwidth vs Theorem 1's parallel bounds",
    )
    ratios = []
    # t = 5 is P = 16807: the columnar CommunicationLog (O(1) uniform
    # supersteps, eager totals) makes the thousands-of-processors rows
    # as cheap as P = 7.
    depth = check_power(n, alg.n0, "n")
    for t in (1, 2, 3, 4, 5):
        if t > depth:
            break
        P = 7**t
        for mult in (1.5, 8, 1e6):
            M = int(minimum_memory(alg, n, P) * mult)
            run_ = simulate_caps(alg, n, DistributedMachine(P, M))
            mem_bound = parallel_bandwidth_lower_bound(alg, n, M, P)
            mem_indep = memory_independent_lower_bound(alg, n, P)
            ratio = run_.bandwidth_cost / max(mem_bound, mem_indep)
            ratios.append(ratio)
            scaling_table.add_row(
                [P, M, run_.schedule_string, run_.bandwidth_cost,
                 round(mem_bound), round(mem_indep), round(ratio, 2)]
            )
    checks["measured BW always >= combined lower bound"] = all(
        r >= 1.0 for r in ratios
    )
    checks["measured BW within constant factor (< 64x) of bound"] = all(
        r < 64 for r in ratios
    )

    # Memory-scarcity signature: one fewer BFS-ready memory level costs
    # a factor b/a.
    P = 7**3
    base = minimum_memory(alg, n, P)
    bw2 = simulate_caps(alg, n, DistributedMachine(P, int(base * 2))).bandwidth_cost
    bw8 = simulate_caps(alg, n, DistributedMachine(P, int(base * 8))).bandwidth_cost
    checks["memory-poor scaling factor = (b/a)^2 per 4x memory"] = (
        abs(bw2 / bw8 - (alg.b / alg.a) ** 2) < 0.2
    )

    baseline_table = TextTable(
        ["P", "CAPS (rich M)", "classical 2D", "classical 2.5D c=4",
         "classical 3D"],
        title="E11: Strassen-like vs classical parallel baselines",
    )
    for t in (2, 4):
        P = 7**t
        run_ = simulate_caps(alg, n, DistributedMachine(P, 10**12))
        p_sq = int(round(P ** 0.5)) ** 2  # nearest square for 2D models
        baseline_table.add_row(
            [P, run_.bandwidth_cost,
             round(2.0 * n * n / P**0.5),
             round(classical_25d_bandwidth(n, P, 4)),
             round(classical_3d_bandwidth(n, P))]
        )
    big_p = 7**4
    run_big = simulate_caps(alg, n, DistributedMachine(big_p, 10**12))
    checks["CAPS beats classical 3D at large P (rich memory)"] = (
        run_big.bandwidth_cost < classical_3d_bandwidth(n, big_p) * 30
    )

    # Per-rank-balanced partitions on an explicit CDAG communicate.
    # The large-P rows exercise the columnar cut accounting
    # (repro.simcore.parallel): the whole cut is a handful of
    # vectorised passes, so P = 2048 costs the same as P = 2.
    g = build_cdag(alg, 3)
    partition_table = TextTable(
        ["P", "partition", "communication volume (words)"],
        title="E11: explicit CDAG, load-balanced-per-rank partitions",
    )
    for P in (2, 4, 8, 256, 2048):
        for contiguous in (True, False):
            owner = partition_by_rank_balanced(g, P, seed=3, contiguous=contiguous)
            validate_rank_balanced(g, owner, P)
            vol = communication_volume(g, owner)
            partition_table.add_row(
                [P, "contiguous" if contiguous else "random", vol]
            )
            checks[f"P={P} {'contig' if contiguous else 'random'}: "
                   "balanced partition communicates"] = vol > 0

    return ExperimentResult(
        experiment_id="E11",
        title="Theorem 1 parallel: bandwidth simulations",
        tables=[scaling_table, baseline_table, partition_table],
        checks=checks,
    )
