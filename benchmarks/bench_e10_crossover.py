"""Benchmark E10: Strassen vs classical crossovers.

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md)
and asserts every paper-claim check; pytest-benchmark tracks the
regeneration cost.  The sweep variant fans trace sizes out on the
parallel runner and merges the per-worker trace-cache counters.
"""


def test_e10_crossover(run_experiment):
    run_experiment("E10")


def test_e10_sweep_via_runner(run_sweep_benchmark):
    from repro.runner import expand_grid, merged_cache_stats

    specs = expand_grid("E10", {"trace_n": [32, 64]})
    outcomes = run_sweep_benchmark(specs, workers=2)
    merged = merged_cache_stats(outcomes)
    assert set(merged) == {"blocked-classical", "recursive-strassen"}
    assert all(s.io > 0 for s in merged.values())
