"""Synthetic algorithm variants for exercising edge cases and assumptions.

These constructors deliberately produce algorithms at the boundary of the
paper's hypotheses:

- :func:`with_duplicate_product` **violates** the single-use assumption
  (two identical nontrivial linear combinations feed different
  multiplications) while remaining a correct matrix-multiplication
  algorithm — used to test that the assumption checkers fire and that the
  routing pipeline refuses/flags such inputs rather than silently
  producing invalid certificates.
- :func:`with_split_output` rescales and splits a product so a decoder
  row has fractional coefficients — checks that nothing in the pipeline
  assumes ±1 coefficients.
- :func:`broken_algorithm` corrupts one coefficient — a *negative
  control* that must fail Brent validation (and, downstream, the Hall
  condition machinery of Lemma 5 when validation is bypassed).
"""

from __future__ import annotations

import numpy as np

from repro.bilinear.algorithm import BilinearAlgorithm

__all__ = [
    "with_duplicate_product",
    "with_split_output",
    "broken_algorithm",
    "make_single_use",
]


def with_duplicate_product(
    alg: BilinearAlgorithm, product: int = 0
) -> BilinearAlgorithm:
    """Split product ``m`` into two identical multiplications with halved
    decoder coefficients.

    The result computes the same function with ``b + 1`` products, but the
    (identical, nontrivial when ``alg``'s row is) linear combination of
    row ``m`` now feeds two multiplications — violating the paper's
    single-use assumption.  Used as the canonical
    ``satisfies_single_use() == False`` fixture.
    """
    if not 0 <= product < alg.b:
        raise ValueError(f"product index {product} out of range")
    U = np.vstack([alg.U, alg.U[product : product + 1]])
    V = np.vstack([alg.V, alg.V[product : product + 1]])
    W = np.hstack([alg.W, alg.W[:, product : product + 1]])
    W = W.copy()
    W[:, product] *= 0.5
    W[:, -1] *= 0.5
    return BilinearAlgorithm(
        n0=alg.n0,
        U=U,
        V=V,
        W=W,
        name=f"{alg.name}+dup{product}",
        notes=f"{alg.name} with product {product} duplicated (single-use violated).",
    ).validate()


def with_split_output(
    alg: BilinearAlgorithm, product: int = 0, scale: float = 2.0
) -> BilinearAlgorithm:
    """Rescale product ``m`` by ``scale`` on the A side and ``1/scale`` in
    the decoder.  Function is unchanged; coefficients are no longer ±1.
    Checks the pipeline is coefficient-agnostic (only supports matter)."""
    if scale == 0:
        raise ValueError("scale must be nonzero")
    U = alg.U.copy()
    W = alg.W.copy()
    U[product] *= scale
    W[:, product] /= scale
    return BilinearAlgorithm(
        n0=alg.n0,
        U=U,
        V=alg.V,
        W=W,
        name=f"{alg.name}+scaled{product}",
        notes=f"{alg.name} with product {product} rescaled by {scale}.",
    ).validate()


def make_single_use(alg: BilinearAlgorithm, max_rounds: int = 10) -> BilinearAlgorithm:
    """Rescale duplicate nontrivial encoder rows so the algorithm
    satisfies the paper's single-use assumption.

    Tensoring with the classical algorithm produces base graphs where the
    *same nontrivial linear combination* feeds several multiplications
    (e.g. ``strassen (x) classical``), violating the assumption even
    though the function computed is fine.  Scaling the later duplicates
    by distinct constants (and compensating in the decoder) makes the
    combination *values* distinct without touching any support — so
    decoder disconnectedness and multiple copying survive, and the result
    is a paper-compliant fast algorithm with a disconnected decoding
    graph (the E12 headline example).
    """
    U = alg.U.copy()
    V = alg.V.copy()
    W = alg.W.copy()
    for _ in range(max_rounds):
        changed = False
        for E in (U, V):
            nontrivial = np.count_nonzero(E, axis=1) > 1
            seen: dict[tuple, int] = {}
            for m in range(E.shape[0]):
                if not nontrivial[m]:
                    continue
                key = tuple(E[m])
                count = seen.get(key, 0)
                seen[key] = count + 1
                if count:
                    scale = float(count + 1)
                    E[m] *= scale
                    W[:, m] /= scale
                    changed = True
        if not changed:
            break
    else:  # pragma: no cover - catalog inputs converge in one round
        raise ValueError("row disambiguation did not converge")
    out = BilinearAlgorithm(
        n0=alg.n0,
        U=U,
        V=V,
        W=W,
        name=f"{alg.name}+su",
        notes=f"{alg.name} with duplicate nontrivial rows rescaled to "
        "distinct values (single-use restored).",
    ).validate()
    if not out.satisfies_single_use():  # pragma: no cover
        raise ValueError("single-use disambiguation failed")
    return out


def broken_algorithm(alg: BilinearAlgorithm) -> BilinearAlgorithm:
    """Corrupt one decoder coefficient.  Must fail :meth:`validate`;
    negative control for the correctness machinery."""
    W = alg.W.copy()
    # Flip the first nonzero decoder coefficient.
    e, m = np.argwhere(W != 0)[0]
    W[e, m] += 1.0
    return BilinearAlgorithm(
        n0=alg.n0,
        U=alg.U,
        V=alg.V,
        W=W,
        name=f"{alg.name}+broken",
        notes="Deliberately corrupted decoder; fails Brent validation.",
    )
