"""Path routings — the paper's contribution, machine-checkable.

Pipeline: :mod:`guaranteed` (the dependence pairs) -> :mod:`hall` (the
Theorem-3 matching, justified by Lemma 5/Winograd) -> :mod:`lemma3`
(chains for all guaranteed dependencies, Claim 2 lifting) ->
:mod:`lemma4` (concatenation covering all input-output pairs) ->
:mod:`theorem2` (the verified ``6 a^k`` certificate).  :mod:`claim1`
implements the simpler Section-5 decoder routing; :mod:`boundary`
measures the boundary-crossing counts the I/O argument hinges on.
"""

from repro.routing.paths import Routing, concatenate_paths
from repro.routing.guaranteed import (
    guaranteed_dependencies,
    is_guaranteed_dependence,
    count_guaranteed_dependencies,
    input_row_col,
    output_row_col,
)
from repro.routing.hall import (
    base_dependencies,
    hall_graph,
    base_matching,
    check_hall_condition,
)
from repro.routing.lemma3 import dependency_chain, lemma3_routing
from repro.routing.lemma4 import lemma4_routing, chain_usage_counts
from repro.routing.claim1 import claim1_routing, claim1_bound, decoder_local_paths
from repro.routing.theorem2 import (
    theorem2_bound,
    theorem2_routing,
    theorem2_certificate,
    Theorem2Certificate,
)
from repro.routing.verify import RoutingReport, verify_path, verify_routing
from repro.routing.boundary import (
    BoundaryCount,
    count_boundary_crossings,
    crossing_delta_vertices,
)

__all__ = [
    "Routing",
    "concatenate_paths",
    "guaranteed_dependencies",
    "is_guaranteed_dependence",
    "count_guaranteed_dependencies",
    "input_row_col",
    "output_row_col",
    "base_dependencies",
    "hall_graph",
    "base_matching",
    "check_hall_condition",
    "dependency_chain",
    "lemma3_routing",
    "lemma4_routing",
    "chain_usage_counts",
    "claim1_routing",
    "claim1_bound",
    "decoder_local_paths",
    "theorem2_bound",
    "theorem2_routing",
    "theorem2_certificate",
    "Theorem2Certificate",
    "RoutingReport",
    "verify_path",
    "verify_routing",
    "BoundaryCount",
    "count_boundary_crossings",
    "crossing_delta_vertices",
]
