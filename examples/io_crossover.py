"""Strassen vs classical: flops, I/O bounds, and trace-simulated I/O.

Reproduces the "who wins, where" picture: classical multiplication wins
small sizes, the fast algorithm wins past the crossover in arithmetic
and — by Theorem 1 vs Hong-Kung — asymptotically in communication too.

Run:  python examples/io_crossover.py
"""

import math

from repro.bilinear import strassen
from repro.bounds import (
    classical_io_lower_bound,
    flop_crossover_n,
    flops,
    io_lower_bound,
)
from repro.tracesim import FullyAssociativeLRU, trace_blocked, trace_strassen_recursive
from repro.utils.tables import TextTable


def main() -> None:
    alg = strassen()

    flop_table = TextTable(
        ["n", "strassen flops", "classical (2n^3-n^2)", "strassen/classical"],
        title="Arithmetic comparison",
    )
    for r in range(3, 11):
        n = 2**r
        fast = flops(alg, n)
        cls = 2 * n**3 - n * n
        flop_table.add_row([n, f"{fast:.3e}", f"{cls:.3e}",
                            round(fast / cls, 3)])
    print(flop_table.render())
    print(f"\nflop crossover at n ~ {flop_crossover_n(alg):.0f} "
          "(pure recursion, no cutoff tuning)\n")

    bound_table = TextTable(
        ["n", "M", "Hong-Kung n^3/sqrt(M)", "Theorem 1 (n/sqrt(M))^w M",
         "classical/fast"],
        title="I/O lower-bound comparison",
    )
    M = 2**15
    for n_exp in (8, 11, 14, 17, 20):
        n = 2**n_exp
        cls = classical_io_lower_bound(n, M)
        fast = io_lower_bound(alg, n, M)
        bound_table.add_row(
            [n, M, f"{cls:.3e}", f"{fast:.3e}", round(cls / fast, 2)]
        )
    print(bound_table.render())

    print("\nTrace-simulated I/O (LRU cache, line size 1):")
    trace_table = TextTable(["kernel", "n", "M", "I/O"])
    n, M = 64, 1536
    block = max(2, int(math.sqrt(M / 3)))
    trace_table.add_row(
        ["blocked classical", n, M,
         FullyAssociativeLRU(M).run(trace_blocked(n, block)).io]
    )
    trace_table.add_row(
        ["recursive strassen", n, M,
         FullyAssociativeLRU(M).run(
             trace_strassen_recursive(alg, n, cutoff=8)
         ).io]
    )
    print(trace_table.render())
    print("\nAt laptop-scale n the classical blocked kernel still wins "
          "measured I/O\n(its constants are smaller); the bound table "
          "shows the asymptotic reversal.")


if __name__ == "__main__":
    main()
