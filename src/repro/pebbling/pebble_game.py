"""The red-blue pebble game of Hong and Kung [10], strict form.

The paper's machine model "see [10] for the formalization of this model
as a pebble game played on the computation graph".  This module provides
that formalisation as an explicit state machine with legality checking:

- a *blue* pebble marks a value in slow memory, *red* in fast memory;
- **LOAD v**: place red on a blue-pebbled vertex (cost 1);
- **STORE v**: place blue on a red-pebbled vertex (cost 1);
- **COMPUTE v**: place red on ``v`` if all predecessors carry red — at
  most once per vertex (no recomputation);
- **DELETE v**: remove the red pebble from ``v`` (free);
- at most ``M`` red pebbles at any time;
- initially: blue on all inputs; goal: blue on all outputs.

:func:`trace_from_executor` replays a :class:`CacheExecutor` run as a
pebble-game move sequence, proving (per run) that the executor's
accounting corresponds to a *legal* pebbling of the same cost — the
integration tests rely on this equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.cdag.graph import CDAG
from repro.errors import PebbleGameError
from repro.pebbling.cache import make_policy

__all__ = ["Move", "MoveKind", "PebbleGame", "trace_from_executor"]


class MoveKind(Enum):
    LOAD = "load"
    STORE = "store"
    COMPUTE = "compute"
    DELETE = "delete"


@dataclass(frozen=True)
class Move:
    kind: MoveKind
    vertex: int


class PebbleGame:
    """Strict red-blue pebble game state machine on a CDAG."""

    def __init__(self, cdag: CDAG, cache_size: int):
        if cache_size <= 0:
            raise PebbleGameError("cache_size must be positive")
        self.cdag = cdag
        self.cache_size = cache_size
        self.red: set[int] = set()
        self.blue: set[int] = set(np.nonzero(cdag.in_degree() == 0)[0].tolist())
        self.computed: set[int] = set(self.blue)  # inputs count as available
        self.io_count = 0
        self.moves: list[Move] = []

    # ------------------------------------------------------------------

    def load(self, v: int) -> None:
        """Slow -> fast (cost 1)."""
        if v not in self.blue:
            raise PebbleGameError(f"LOAD {v}: no blue pebble")
        if v in self.red:
            raise PebbleGameError(f"LOAD {v}: already red")
        self._need_room()
        self.red.add(v)
        self.io_count += 1
        self.moves.append(Move(MoveKind.LOAD, v))

    def store(self, v: int) -> None:
        """Fast -> slow (cost 1)."""
        if v not in self.red:
            raise PebbleGameError(f"STORE {v}: no red pebble")
        self.blue.add(v)
        self.io_count += 1
        self.moves.append(Move(MoveKind.STORE, v))

    def compute(self, v: int) -> None:
        """Place red on ``v``; all predecessors must be red."""
        if v in self.computed:
            raise PebbleGameError(f"COMPUTE {v}: already computed (recomputation forbidden)")
        preds = self.cdag.predecessors(v)
        missing = [int(p) for p in preds if int(p) not in self.red]
        if missing:
            raise PebbleGameError(f"COMPUTE {v}: predecessors {missing} not in fast memory")
        if v in self.red:
            raise PebbleGameError(f"COMPUTE {v}: already red")
        self._need_room()
        self.red.add(v)
        self.computed.add(v)
        self.moves.append(Move(MoveKind.COMPUTE, v))

    def delete(self, v: int) -> None:
        """Remove a red pebble (free)."""
        if v not in self.red:
            raise PebbleGameError(f"DELETE {v}: no red pebble")
        self.red.discard(v)
        self.moves.append(Move(MoveKind.DELETE, v))

    def _need_room(self) -> None:
        if len(self.red) >= self.cache_size:
            raise PebbleGameError(
                f"fast memory full ({self.cache_size} red pebbles); "
                "DELETE or STORE+DELETE first"
            )

    # ------------------------------------------------------------------

    def is_complete(self) -> bool:
        """All outputs carry blue pebbles."""
        return all(int(v) in self.blue for v in self.cdag.outputs())

    def assert_complete(self) -> None:
        if not self.is_complete():
            missing = [
                int(v) for v in self.cdag.outputs() if int(v) not in self.blue
            ]
            raise PebbleGameError(f"outputs without blue pebbles: {missing[:10]}")


def trace_from_executor(
    cdag: CDAG,
    schedule,
    cache_size: int,
    policy: str = "lru",
) -> PebbleGame:
    """Replay an executor run as pebble-game moves and return the game.

    The move sequence mirrors :class:`~repro.pebbling.executor.CacheExecutor`
    exactly (same policy objects, same eviction decisions), so
    ``game.io_count`` equals the executor's ``IOResult.total`` — asserted
    by the integration tests.  Raises :class:`PebbleGameError` if any
    implied move would be illegal.
    """
    schedule = np.asarray(schedule, dtype=np.int64)
    game = PebbleGame(cdag, cache_size)
    is_input = cdag.in_degree() == 0
    is_output = np.zeros(cdag.n_vertices, dtype=bool)
    is_output[cdag.outputs()] = True

    uses_left = np.zeros(cdag.n_vertices, dtype=np.int64)
    use_times: dict[int, list[int]] = {}
    for t, v in enumerate(schedule.tolist()):
        for p in cdag.predecessors(v).tolist():
            uses_left[p] += 1
            use_times.setdefault(p, []).append(t)

    pol = make_policy(policy, use_times=use_times)
    output_written: set[int] = set()

    def evict(candidates: set[int]) -> None:
        victim = pol.choose_victim(candidates)
        pol.on_evict(victim)
        live = uses_left[victim] > 0
        unwritten_output = bool(is_output[victim]) and victim not in output_written
        if victim not in game.blue and (live or unwritten_output):
            game.store(victim)
            if unwritten_output:
                output_written.add(victim)
        game.delete(victim)

    for t, v in enumerate(schedule.tolist()):
        preds = cdag.predecessors(v).tolist()
        pinned = set(preds) | {v}
        for p in preds:
            if p not in game.red:
                while len(game.red) >= cache_size:
                    evict(game.red - pinned)
                game.load(p)
                pol.on_insert(p, t)
        while len(game.red) >= cache_size:
            evict(game.red - pinned)
        game.compute(v)
        pol.on_insert(v, t)
        # Each operand use touches the policy exactly once, *after* the
        # compute: a pre-compute touch could be destructively consumed
        # by this step's evictions while the operand is pinned (Belady's
        # lazy heap), so the post-compute touch is the one that defines
        # the policy's view of the use.
        for p in preds:
            pol.on_use(p, t)
            uses_left[p] -= 1

    for v in sorted(game.red):
        if is_output[v] and v not in output_written:
            game.store(v)
            output_written.add(v)
    game.assert_complete()
    return game
