"""Tests for argument-validation helpers."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_nonnegative_int,
    check_positive_int,
    check_power,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_integral_float(self):
        assert check_positive_int(4.0, "x") == 4

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-2, "x")

    def test_rejects_fractional(self):
        with pytest.raises(TypeError):
            check_positive_int(1.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive_int("three", "x")

    def test_name_in_message(self):
        with pytest.raises(ValueError, match="cache_size"):
            check_positive_int(-1, "cache_size")


class TestCheckNonnegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(1, 1, 3, "x") == 1
        assert check_in_range(3, 1, 3, "x") == 3

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(0, 1, 3, "x")
        with pytest.raises(ValueError):
            check_in_range(4, 1, 3, "x")


class TestCheckPower:
    def test_exact_powers(self):
        assert check_power(1, 2, "n") == 0
        assert check_power(8, 2, "n") == 3
        assert check_power(27, 3, "n") == 3

    def test_rejects_non_powers(self):
        with pytest.raises(ValueError):
            check_power(6, 2, "n")
        with pytest.raises(ValueError):
            check_power(12, 3, "n")

    def test_base_one(self):
        assert check_power(1, 1, "n") == 0
        with pytest.raises(ValueError):
            check_power(2, 1, "n")
