"""Randomised schedules.

Two adversarial families used to probe the lower bound from above:

- :func:`random_topological_schedule`: a uniform-ish random topological
  order (Kahn's algorithm with random tie-breaking) — maximally
  locality-free;
- :func:`random_product_order_schedule`: demand-driven with the products
  visited in random order — respects the encoder/decoder dataflow shape
  but destroys the recursive blocking.

Both take a seed for reproducibility.
"""

from __future__ import annotations

import numpy as np

from repro.cdag.graph import CDAG
from repro.schedules.base import demand_driven_schedule
from repro.telemetry.spans import span, traced
from repro.utils.rngs import make_rng

__all__ = ["random_topological_schedule", "random_product_order_schedule"]


def random_topological_schedule(cdag: CDAG, seed=None) -> np.ndarray:
    """Kahn's algorithm with uniformly random choice among ready
    vertices."""
    with span("schedules.random_topo", seed=seed) as sp:
        rng = make_rng(seed)
        pending = np.diff(cdag.pred_indptr).astype(np.int64)
        ready = np.nonzero(pending == 0)[0].tolist()  # inputs
        # Inputs are available, not scheduled; seed the frontier with the
        # vertices they release.
        out: list[int] = []
        frontier: list[int] = []
        frontier_peak = 0
        for v in ready:
            for s in cdag.successors(v).tolist():
                pending[s] -= 1
                if pending[s] == 0:
                    frontier.append(s)

        while frontier:
            if len(frontier) > frontier_peak:
                frontier_peak = len(frontier)
            i = int(rng.integers(len(frontier)))
            frontier[i], frontier[-1] = frontier[-1], frontier[i]
            v = frontier.pop()
            out.append(v)
            for s in cdag.successors(v).tolist():
                pending[s] -= 1
                if pending[s] == 0:
                    frontier.append(s)
        # Deterministic given (cdag, seed): rng draws track the schedule
        # exactly, so identical seeds yield identical counter values.
        sp.add("scheduled", len(out))
        sp.add("rng_draws", len(out))
        sp.add("frontier_peak", frontier_peak)
        return np.asarray(out, dtype=np.int64)


@traced("schedules.random_product_order")
def random_product_order_schedule(cdag: CDAG, seed=None) -> np.ndarray:
    """Demand-driven schedule with products in random order."""
    rng = make_rng(seed)
    order = rng.permutation(len(cdag.products()))
    return demand_driven_schedule(cdag, order)
