"""Compiled pebbling kernels: the executor's hot loops as numba
``@njit`` functions over flat int64 arrays.

The pure-Python step loops in :mod:`repro.pebbling.executor` interpret
one Python bytecode stream per scheduled vertex; at n = 128 (recursion
depth 7 for Strassen) that is ~6M steps per configuration and the
interpreter becomes the bottleneck.  This module reimplements the two
simulation loops (`recency` for LRU/FIFO, `belady` for offline-MIN) as
kernels structured like the tiled OpenMP path kernel in SNIPPETS.md
Snippet 2: flat C arrays only, state preallocated once per
configuration, and a batched ``run_grid`` entry point that steps a whole
``(cache_size x policy)`` grid in one compiled call (the next-use
backward scan is *not* redone per cell — it lives in the shared
``_SchedulePlan`` occurrence arrays, computed once per schedule).

Bit-for-bit identity with the golden reference
----------------------------------------------
The kernels must be indistinguishable from the retained reference
simulator (``tests/pebbling/_reference.py``) on every ``IOResult``
field, the eviction count and the cumulative ``io_trace``.  The Python
loops achieve this with lazy min-heaps of tuples; here each heap entry
is encoded into a single ``int64``:

- recency: ``stamp * n + v`` — orders exactly like the tuple
  ``(stamp, v)`` because ``v < n``;
- belady: ``(T - next_use) * n + v`` — ``T`` is the "never used again"
  sentinel, so ``T - next_use`` ascends as ``-next_use`` does and the
  encoding orders exactly like ``(-next_use, v)``.

A binary min-heap over a total order pops the same value sequence
regardless of its internal layout, so the victim choices (and hence
every downstream count) match the Python loops exactly; the golden
equivalence and hypothesis suites assert this across schedules x
policies x cache sizes.

Gating
------
numba is an *optional* dependency (the ``speed`` extra).  Three modes:

- ``jit`` — numba present, kernels compiled with ``cache=True`` (the
  compilation is paid once per machine, then loaded from the on-disk
  cache);
- ``off`` — numba absent, or ``REPRO_NO_JIT=1``: callers fall back to
  the pure-Python loops;
- ``interp`` — test-only (``REPRO_FORCE_KERNELS=1`` or
  ``set_mode("interp")``): run this module's kernel *code* under the
  plain interpreter even without numba, so the equivalence suites
  exercise the kernel algorithm everywhere.

The executor counts the path taken per simulation
(``pebbling.kernel.{jit,interp,fallback}``) and the wall time of the
first kernel invocation per process (``pebbling.kernel.compile_s`` — on
a cold numba cache this is dominated by JIT compilation).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.telemetry.metrics import metrics
from repro.telemetry.spans import enabled as _telemetry_enabled

__all__ = [
    "HAVE_NUMBA",
    "active_mode",
    "available",
    "set_mode",
    "forced_mode",
    "simulate_plan",
    "run_grid",
    "SC_LEN",
    "STATUS_OK",
    "STATUS_OPERAND_MISSING",
    "STATUS_NO_VICTIM",
]

try:  # pragma: no cover - exercised only when numba is installed
    from numba import njit

    HAVE_NUMBA = True
except Exception:  # ImportError, or a broken numba install
    HAVE_NUMBA = False

    def njit(*args, **kwargs):
        """Identity decorator: the kernels below are valid plain Python
        over numpy arrays, so without numba they stay importable and
        runnable (the ``interp`` test mode and the hypothesis suite
        rely on this)."""
        if args and callable(args[0]):
            return args[0]

        def deco(fn):
            return fn

        return deco


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0")


#: ``set_mode`` override; None means "decide from numba + environment".
_MODE_OVERRIDE: str | None = None


def active_mode() -> str:
    """The simulation path the executor will take: ``"jit"``,
    ``"interp"`` or ``"off"`` (= pure-Python fallback loops)."""
    mode = _MODE_OVERRIDE
    if mode is None:
        if _env_flag("REPRO_NO_JIT"):
            return "off"
        if HAVE_NUMBA:
            return "jit"
        return "interp" if _env_flag("REPRO_FORCE_KERNELS") else "off"
    return mode


def available() -> bool:
    """Whether the kernel path (compiled or interpreted) is active."""
    return active_mode() != "off"


def set_mode(mode: str | None) -> None:
    """Override the dispatch mode: ``"off"``, ``"interp"``, ``"jit"``,
    ``"auto"``/None (= re-derive from numba + environment).  Used by
    ``--no-jit`` CLI flags, benchmarks and tests."""
    global _MODE_OVERRIDE
    if mode in ("auto", None):
        _MODE_OVERRIDE = None
        return
    if mode not in ("off", "interp", "jit"):
        raise ValueError(f"unknown kernel mode {mode!r}")
    if mode == "jit" and not HAVE_NUMBA:
        raise RuntimeError("kernel mode 'jit' requires numba (pip install repro[speed])")
    _MODE_OVERRIDE = mode


class forced_mode:
    """Context manager: force a dispatch mode, restore the previous
    override on exit (benchmark pairing and tests)."""

    def __init__(self, mode: str | None):
        self.mode = mode
        self._prev: str | None = None

    def __enter__(self):
        self._prev = _MODE_OVERRIDE
        set_mode(self.mode)
        return self

    def __exit__(self, *exc):
        global _MODE_OVERRIDE
        _MODE_OVERRIDE = self._prev
        return False


# ----------------------------------------------------------------------
# Scalar-state layout (one int64 vector per simulation, shared with the
# batched grid kernel as one matrix row per configuration).  The first
# eight slots match the count tuple the Python loops return.
# ----------------------------------------------------------------------

READS = 0
WRITES = 1
INPUT_READS = 2
SPILL_READS = 3
SPILL_WRITES = 4
OUTPUT_WRITES = 5
PEAK = 6
EVICTIONS = 7
NCACHED = 8
HEAPN = 9
STATUS = 10
ERR_A = 11
ERR_B = 12
SC_LEN = 13

STATUS_OK = 0
#: ``ERR_A`` = the operand, ``ERR_B`` = the vertex using it.
STATUS_OPERAND_MISSING = 1
STATUS_NO_VICTIM = 2


# ----------------------------------------------------------------------
# Flat binary min-heap (int64 keys, capacity preallocated by callers).
# ----------------------------------------------------------------------


@njit(cache=True, nogil=True)
def _heap_push(heap, size, val):
    heap[size] = val
    i = size
    while i > 0:
        parent = (i - 1) >> 1
        if heap[i] < heap[parent]:
            tmp = heap[i]
            heap[i] = heap[parent]
            heap[parent] = tmp
        else:
            break
        i = parent
    return size + 1


@njit(cache=True, nogil=True)
def _heap_pop(heap, size):
    """Remove the root; returns the new size."""
    size -= 1
    heap[0] = heap[size]
    i = 0
    while True:
        left = 2 * i + 1
        if left >= size:
            break
        child = left
        right = left + 1
        if right < size and heap[right] < heap[left]:
            child = right
        if heap[child] < heap[i]:
            tmp = heap[i]
            heap[i] = heap[child]
            heap[child] = tmp
            i = child
        else:
            break
    return size


# ----------------------------------------------------------------------
# Eviction helpers.  These are line-for-line transcriptions of
# ``evict_one`` in the Python loops; state travels in the arrays plus
# the ``sc`` scalar vector (numba cannot pass scalars by reference).
# ----------------------------------------------------------------------


@njit(cache=True, nogil=True)
def _recency_evict(heap, sc, cached, dirty, in_slow, output_written,
                   uses_left, is_output, stamp, pinned, aside, t, n):
    """One recency-policy eviction; returns 0, or -1 with ``sc[STATUS]``
    set.  Fresh entries of pinned vertices are set aside and re-pushed,
    exactly like the Python loop's ``aside`` list."""
    n_aside = 0
    u = np.int64(-1)
    while True:
        if sc[HEAPN] == 0:
            sc[STATUS] = STATUS_NO_VICTIM
            return -1
        e = heap[0]
        tm = e // n
        u = e % n
        if cached[u] == 0 or stamp[u] != tm:
            sc[HEAPN] = _heap_pop(heap, sc[HEAPN])  # stale entry
            continue
        if pinned[u] == t:
            aside[n_aside] = e
            n_aside += 1
            sc[HEAPN] = _heap_pop(heap, sc[HEAPN])
            continue
        break
    for i in range(n_aside):
        sc[HEAPN] = _heap_push(heap, sc[HEAPN], aside[i])
    sc[EVICTIONS] += 1
    cached[u] = 0
    sc[NCACHED] -= 1
    if dirty[u] == 1:
        if uses_left[u] > 0 or (is_output[u] == 1 and output_written[u] == 0):
            sc[WRITES] += 1
            in_slow[u] = 1
            if is_output[u] == 1:
                sc[OUTPUT_WRITES] += 1
                output_written[u] = 1
            else:
                sc[SPILL_WRITES] += 1
        dirty[u] = 0
    return 0


@njit(cache=True, nogil=True)
def _belady_evict(heap, sc, cached, dirty, in_slow, output_written,
                  uses_left, is_output, key, pinned, t, n, T):
    """One Belady eviction (max next-use first, ties on smaller vertex
    id); destructive pops for non-candidates and re-keyed pushes for
    stale entries match the reference policy's lazy invalidation."""
    u = np.int64(-1)
    found = False
    while sc[HEAPN] > 0:
        e = heap[0]
        u = e % n
        nxt = T - e // n
        if cached[u] == 0 or pinned[u] == t:
            sc[HEAPN] = _heap_pop(heap, sc[HEAPN])
            continue
        cur = key[u]
        if nxt != cur:
            sc[HEAPN] = _heap_pop(heap, sc[HEAPN])
            sc[HEAPN] = _heap_push(heap, sc[HEAPN], (T - cur) * n + u)
            continue
        found = True
        break
    if not found:
        # Heap exhausted (candidate entries were destructively popped
        # while pinned): deterministic fallback, smallest cached
        # unpinned vertex id.
        u = np.int64(-1)
        for w in range(n):
            if cached[w] == 1 and pinned[w] != t:
                u = w
                break
        if u < 0:
            sc[STATUS] = STATUS_NO_VICTIM
            return -1
    sc[EVICTIONS] += 1
    cached[u] = 0
    sc[NCACHED] -= 1
    if dirty[u] == 1:
        if uses_left[u] > 0 or (is_output[u] == 1 and output_written[u] == 0):
            sc[WRITES] += 1
            in_slow[u] = 1
            if is_output[u] == 1:
                sc[OUTPUT_WRITES] += 1
                output_written[u] = 1
            else:
                sc[SPILL_WRITES] += 1
        dirty[u] = 0
    return 0


# ----------------------------------------------------------------------
# Step loops.
# ----------------------------------------------------------------------


@njit(cache=True, nogil=True)
def _recency_kernel(sched, indptr, ops, uses_left0, is_input, is_output,
                    n, cache_size, refresh_on_use, trace, want_trace, sc):
    T = sched.shape[0]
    cached = np.zeros(n, dtype=np.uint8)
    dirty = np.zeros(n, dtype=np.uint8)
    in_slow = np.empty(n, dtype=np.uint8)
    output_written = np.zeros(n, dtype=np.uint8)
    uses_left = np.empty(n, dtype=np.int64)
    stamp = np.zeros(n, dtype=np.int64)
    pinned = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        in_slow[i] = is_input[i]
        uses_left[i] = uses_left0[i]
    heap = np.empty(ops.shape[0] + T + 2, dtype=np.int64)
    aside = np.empty(n, dtype=np.int64)

    for t in range(T):
        v = sched[t]
        start = indptr[t]
        end = indptr[t + 1]
        pinned[v] = t
        for i in range(start, end):
            pinned[ops[i]] = t
        # Load missing operands.
        for i in range(start, end):
            p = ops[i]
            if cached[p] == 1:
                if refresh_on_use and stamp[p] != t:
                    stamp[p] = t
                    sc[HEAPN] = _heap_push(heap, sc[HEAPN], t * n + p)
            else:
                if in_slow[p] == 0:
                    sc[STATUS] = STATUS_OPERAND_MISSING
                    sc[ERR_A] = p
                    sc[ERR_B] = v
                    return
                while sc[NCACHED] >= cache_size:
                    if _recency_evict(heap, sc, cached, dirty, in_slow,
                                      output_written, uses_left, is_output,
                                      stamp, pinned, aside, t, n) < 0:
                        return
                cached[p] = 1
                sc[NCACHED] += 1
                stamp[p] = t
                sc[HEAPN] = _heap_push(heap, sc[HEAPN], t * n + p)
                sc[READS] += 1
                if is_input[p] == 1:
                    sc[INPUT_READS] += 1
                else:
                    sc[SPILL_READS] += 1
        # Make room for the result and compute.
        while sc[NCACHED] >= cache_size:
            if _recency_evict(heap, sc, cached, dirty, in_slow,
                              output_written, uses_left, is_output,
                              stamp, pinned, aside, t, n) < 0:
                return
        if cached[v] == 0:
            cached[v] = 1
            sc[NCACHED] += 1
        dirty[v] = 1
        stamp[v] = t
        sc[HEAPN] = _heap_push(heap, sc[HEAPN], t * n + v)
        if sc[NCACHED] > sc[PEAK]:
            sc[PEAK] = sc[NCACHED]
        for i in range(start, end):
            uses_left[ops[i]] -= 1
        if want_trace:
            trace[t] = sc[READS] + sc[WRITES]

    # Drain: outputs still dirty must reach slow memory.
    for u in range(n):
        if dirty[u] == 1 and is_output[u] == 1 and output_written[u] == 0:
            sc[WRITES] += 1
            sc[OUTPUT_WRITES] += 1
            output_written[u] = 1


@njit(cache=True, nogil=True)
def _belady_kernel(sched, indptr, ops, occ_next, first_use, uses_left0,
                   is_input, is_output, n, cache_size, trace, want_trace, sc):
    T = sched.shape[0]
    cached = np.zeros(n, dtype=np.uint8)
    dirty = np.zeros(n, dtype=np.uint8)
    in_slow = np.empty(n, dtype=np.uint8)
    output_written = np.zeros(n, dtype=np.uint8)
    uses_left = np.empty(n, dtype=np.int64)
    key = np.zeros(n, dtype=np.int64)
    pinned = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        in_slow[i] = is_input[i]
        uses_left[i] = uses_left0[i]
    heap = np.empty(ops.shape[0] + T + 2, dtype=np.int64)

    for t in range(T):
        v = sched[t]
        start = indptr[t]
        end = indptr[t + 1]
        pinned[v] = t
        for i in range(start, end):
            pinned[ops[i]] = t
        for i in range(start, end):
            p = ops[i]
            if cached[p] == 0:
                if in_slow[p] == 0:
                    sc[STATUS] = STATUS_OPERAND_MISSING
                    sc[ERR_A] = p
                    sc[ERR_B] = v
                    return
                while sc[NCACHED] >= cache_size:
                    if _belady_evict(heap, sc, cached, dirty, in_slow,
                                     output_written, uses_left, is_output,
                                     key, pinned, t, n, T) < 0:
                        return
                cached[p] = 1
                sc[NCACHED] += 1
                sc[READS] += 1
                if is_input[p] == 1:
                    sc[INPUT_READS] += 1
                else:
                    sc[SPILL_READS] += 1
        while sc[NCACHED] >= cache_size:
            if _belady_evict(heap, sc, cached, dirty, in_slow,
                             output_written, uses_left, is_output,
                             key, pinned, t, n, T) < 0:
                return
        if cached[v] == 0:
            cached[v] = 1
            sc[NCACHED] += 1
        dirty[v] = 1
        nxt = first_use[v]
        key[v] = nxt
        sc[HEAPN] = _heap_push(heap, sc[HEAPN], (T - nxt) * n + v)
        if sc[NCACHED] > sc[PEAK]:
            sc[PEAK] = sc[NCACHED]
        # Refresh: exactly one heap entry per operand use, pushed after
        # the compute so it survives this step's evictions.
        for i in range(start, end):
            p = ops[i]
            nxt = occ_next[i]
            key[p] = nxt
            sc[HEAPN] = _heap_push(heap, sc[HEAPN], (T - nxt) * n + p)
            uses_left[p] -= 1
        if want_trace:
            trace[t] = sc[READS] + sc[WRITES]

    for u in range(n):
        if dirty[u] == 1 and is_output[u] == 1 and output_written[u] == 0:
            sc[WRITES] += 1
            sc[OUTPUT_WRITES] += 1
            output_written[u] = 1


@njit(cache=True, nogil=True)
def _simulate_one(sched, indptr, ops, occ_next, first_use, uses_left0,
                  is_input, is_output, n, cache_size, policy_code,
                  trace, want_trace, sc):
    """Policy dispatch: 0 = LRU, 1 = FIFO, 2 = Belady."""
    if policy_code == 2:
        _belady_kernel(sched, indptr, ops, occ_next, first_use, uses_left0,
                       is_input, is_output, n, cache_size, trace, want_trace,
                       sc)
    else:
        _recency_kernel(sched, indptr, ops, uses_left0, is_input, is_output,
                        n, cache_size, policy_code == 0, trace, want_trace,
                        sc)


@njit(cache=True, nogil=True)
def _run_grid_kernel(sched, indptr, ops, occ_next, first_use, uses_left0,
                     is_input, is_output, n, cache_sizes, policy_codes,
                     trace, out):
    """Batched sweep: one compiled call steps every configuration of a
    ``(cache_size x policy)`` grid over one shared plan (the occurrence
    arrays — including the next-use backward scan — are read-only and
    shared across all cells)."""
    for j in range(cache_sizes.shape[0]):
        _simulate_one(sched, indptr, ops, occ_next, first_use, uses_left0,
                      is_input, is_output, n, cache_sizes[j], policy_codes[j],
                      trace, False, out[j])


# ----------------------------------------------------------------------
# Python wrappers.
# ----------------------------------------------------------------------

_DUMMY_TRACE = np.empty(1, dtype=np.int64)
_compile_s: float | None = None


def _note_first_call(elapsed: float) -> None:
    """Remember the first kernel invocation's wall time (on a cold
    numba cache this is dominated by JIT compilation) and publish it as
    the ``pebbling.kernel.compile_s`` gauge once per registry life."""
    global _compile_s
    if _compile_s is None:
        _compile_s = elapsed
    if _telemetry_enabled():
        gauge = metrics().gauge("pebbling.kernel.compile_s")
        if gauge.count == 0:
            gauge.set(_compile_s)


def simulate_plan(plan_arrays, is_input_u8, is_output_u8, cache_size,
                  policy_code, trace=None) -> np.ndarray:
    """Run one ``(cache_size, policy)`` configuration over a plan's
    kernel arrays; returns the ``SC_LEN`` scalar vector (first eight
    slots are the count tuple, then status/diagnostics).

    ``plan_arrays`` is the tuple from
    :meth:`_SchedulePlan.kernel_arrays` — contiguous int64 arrays in
    ``PLAN_ARRAY_NAMES`` order, possibly read-only memmaps straight from
    a plan bundle (the kernels never write them).
    """
    sched, indptr, ops, occ_next, first_use, uses_left0 = plan_arrays
    sc = np.zeros(SC_LEN, dtype=np.int64)
    want_trace = trace is not None
    t0 = time.perf_counter()
    _simulate_one(sched, indptr, ops, occ_next, first_use, uses_left0,
                  is_input_u8, is_output_u8, is_input_u8.shape[0],
                  cache_size, policy_code,
                  trace if want_trace else _DUMMY_TRACE, want_trace, sc)
    _note_first_call(time.perf_counter() - t0)
    return sc


def run_grid(plan_arrays, is_input_u8, is_output_u8, cache_sizes,
             policy_codes) -> np.ndarray:
    """Batched sweep over one plan: returns an ``(n_configs, SC_LEN)``
    matrix, one scalar vector per ``(cache_size, policy)`` cell."""
    sched, indptr, ops, occ_next, first_use, uses_left0 = plan_arrays
    Ms = np.ascontiguousarray(cache_sizes, dtype=np.int64)
    pols = np.ascontiguousarray(policy_codes, dtype=np.int64)
    out = np.zeros((Ms.shape[0], SC_LEN), dtype=np.int64)
    t0 = time.perf_counter()
    _run_grid_kernel(sched, indptr, ops, occ_next, first_use, uses_left0,
                     is_input_u8, is_output_u8, is_input_u8.shape[0],
                     Ms, pols, _DUMMY_TRACE, out)
    _note_first_call(time.perf_counter() - t0)
    return out
