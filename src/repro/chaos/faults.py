"""Fault bodies: what actually happens when a plan decision fires.

Worker faults run inside the pool worker (shipped there as a plain
dict inside the job doc — no chaos state crosses the pickle boundary);
store faults mutate a just-written artifact file in place; the kill
faults are raised as :class:`SweepKilled` from the event-log hook so
the scheduler unwinds exactly as if the driver process had died
mid-write.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Mapping

__all__ = [
    "ChaosInjectedError",
    "SweepKilled",
    "apply_worker_fault",
    "apply_store_fault",
]


class ChaosInjectedError(RuntimeError):
    """An injected, deliberately-survivable worker failure."""


class SweepKilled(RuntimeError):
    """Simulated mid-sweep SIGKILL (raised from the event-log hook).

    :func:`repro.chaos.soak.run_chaos_sweep` catches this, recovers the
    journal, and restarts the sweep against the same store — the
    crash-safe-resume path under test.
    """


def apply_worker_fault(doc: Mapping) -> None:
    """Apply a worker-site fault described by ``doc`` (see
    :meth:`FaultPlan.worker_fault_doc`).  ``slow`` returns normally so
    the real job body still runs; every other kind does not return."""
    kind = doc.get("kind")
    if kind == "exception":
        raise ChaosInjectedError("chaos: injected worker exception")
    if kind == "exit":
        os._exit(21)  # segfault-style: no exception, no cleanup
    if kind == "oom":
        # Bounded over-allocation: enough to be a real allocation, far
        # too small to endanger the host, then the failure the kernel
        # would have delivered anyway.
        ballast = bytearray(int(doc.get("oom_bytes", 32 << 20)))
        raise MemoryError(
            f"chaos: simulated OOM after allocating {len(ballast)} bytes"
        )
    if kind == "hang":
        # The caller skipped starting the heartbeat thread for this
        # fault, so the watchdog sees a stale heartbeat — a *true*
        # hang.  The raise below only fires if no watchdog is armed,
        # keeping the sweep terminating either way.
        time.sleep(float(doc.get("hang_seconds", 30.0)))
        raise ChaosInjectedError("chaos: hang outlived the watchdog")
    if kind == "slow":
        time.sleep(float(doc.get("slow_seconds", 0.3)))
        return
    if kind == "shm_leak":
        # Publish a ledger-recorded shared-memory segment, then die
        # segfault-style without any cleanup — the exact leak a crashed
        # warm worker leaves behind, which the service's ledger-driven
        # drain/gc must unlink.  Opt-in (not in the default worker kind
        # tuple): it needs a shm root in the fault doc to mean anything.
        shm_root = doc.get("shm")
        if shm_root:
            import numpy as np

            from repro.service.shm import ShmTier

            ShmTier(shm_root).put(
                "chaos",
                f"leak-{os.getpid()}",
                {"ballast": np.zeros(4096, dtype=np.uint8)},
            )
        os._exit(23)
    raise ValueError(f"unknown worker fault kind {kind!r}")


def _flip_payload_byte(path: Path) -> None:
    """Flip one byte *inside the serialised result payload* so the
    artifact still parses as JSON but fails checksum verification
    (flipping indentation or envelope bytes could go undetected or be
    caught by the cheaper key/schema checks instead)."""
    data = bytearray(path.read_bytes())
    anchor = data.find(b'"result"')
    start = anchor + len(b'"result"') if anchor != -1 else 0
    for i in range(start, len(data)):
        c = data[i]
        if 0x30 <= c <= 0x39 or 0x61 <= c <= 0x7A:  # digit or lowercase
            data[i] ^= 0x02
            break
    path.write_bytes(bytes(data))


def apply_store_fault(kind: str, path: str | os.PathLike) -> None:
    """Corrupt the artifact at ``path`` in the way ``kind`` names."""
    path = Path(path)
    if kind == "truncate":
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
    elif kind == "bitflip":
        _flip_payload_byte(path)
    elif kind == "orphan":
        stray = path.parent / f".tmp-chaos-{path.stem[:12]}.json"
        stray.write_text('{"torn": tru', encoding="utf-8")
    elif kind == "perm":
        path.chmod(0)
    else:
        raise ValueError(f"unknown store fault kind {kind!r}")
