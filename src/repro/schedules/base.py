"""Schedule fundamentals: validation and demand-driven generation.

A *schedule* is the sequence of computed (non-input) vertices in
execution order; the I/O-complexity lower bound quantifies over all of
them, so the library ships several families (rank-order, random
topological, recursive depth-first, loop-order) built on the two
primitives here:

- :func:`validate_schedule` — permutation + topological checks;
- :func:`demand_driven_schedule` — given an order over the *product*
  vertices, emit each product's not-yet-computed encoder ancestors
  before it and every decoder vertex as soon as its operands complete.
  With products in lexicographic order this is exactly the depth-first
  recursive schedule; with products ordered by global (i, j, k) it is a
  classical loop-nest schedule; with a random product order it is a
  locality-free adversary.
"""

from __future__ import annotations

import numpy as np

from repro.cdag.graph import CDAG, Region
from repro.errors import ScheduleError

__all__ = ["validate_schedule", "demand_driven_schedule"]


def validate_schedule(cdag: CDAG, schedule) -> np.ndarray:
    """Check ``schedule`` is a topological permutation of all computable
    (non-input) vertices; return it as an int64 array."""
    schedule = np.asarray(schedule, dtype=np.int64)
    is_input = cdag.in_degree() == 0
    n_computable = int(np.count_nonzero(~is_input))
    if len(schedule) != n_computable:
        raise ScheduleError(
            f"schedule length {len(schedule)} != computable vertices "
            f"{n_computable}"
        )
    done = is_input.copy()
    for v in schedule.tolist():
        if not 0 <= v < cdag.n_vertices:
            raise ScheduleError(f"vertex {v} out of range")
        if done[v]:
            raise ScheduleError(f"vertex {v} repeated or is an input")
        if not all(done[p] for p in cdag.predecessors(v)):
            raise ScheduleError(f"vertex {v} scheduled before a predecessor")
        done[v] = True
    return schedule


def demand_driven_schedule(cdag: CDAG, product_order) -> np.ndarray:
    """Build a schedule from an order over the product vertices.

    For each product (in the given order): first emit its uncomputed
    encoder ancestors bottom-up (lazily — encoder values are computed
    only when a product needs them), then the product; decoder vertices
    are emitted eagerly, the moment their last operand completes.

    ``product_order`` is a permutation of ``range(b**r)`` (positions
    within ``cdag.products()``).
    """
    product_order = np.asarray(product_order, dtype=np.int64)
    products = cdag.products()
    if sorted(product_order.tolist()) != list(range(len(products))):
        raise ScheduleError(
            "product_order must be a permutation of range(#products)"
        )

    is_input = cdag.in_degree() == 0
    computed = is_input.copy()  # inputs start available
    # pending[v]: operands of v not yet computed (inputs pre-discounted).
    pending = np.diff(cdag.pred_indptr).astype(np.int64)
    edge_parents = np.repeat(
        np.arange(cdag.n_vertices), np.diff(cdag.pred_indptr)
    )
    input_edges = is_input[cdag.pred_indices]
    pending -= np.bincount(
        edge_parents[input_edges], minlength=cdag.n_vertices
    )
    is_dec = cdag.region == Region.DEC
    dec_rank_positive = is_dec & (cdag.rank > cdag.r + 1)
    out: list[int] = []

    def emit(v: int) -> None:
        """Record v as computed and eagerly release ready decoder
        vertices above it."""
        computed[v] = True
        out.append(v)
        stack = [v]
        while stack:
            node = stack.pop()
            for s in cdag.successors(node).tolist():
                pending[s] -= 1
                if pending[s] == 0 and dec_rank_positive[s] and not computed[s]:
                    computed[s] = True
                    out.append(s)
                    stack.append(s)

    for idx in product_order.tolist():
        v = int(products[idx])
        if computed[v]:  # pragma: no cover - products are never decoder-released
            continue
        # DFS over uncomputed ancestors, emitting bottom-up, then v.
        stack: list[tuple[int, bool]] = [(v, False)]
        while stack:
            node, expanded = stack.pop()
            if computed[node]:
                continue
            if expanded:
                emit(node)
                continue
            stack.append((node, True))
            for p in cdag.predecessors(node).tolist():
                if not computed[p]:
                    stack.append((p, False))

    expected = int(np.count_nonzero(cdag.in_degree() > 0))
    if len(out) != expected:
        raise ScheduleError(
            f"demand-driven emission incomplete: {len(out)} of {expected}"
        )
    return np.asarray(out, dtype=np.int64)
