"""Structural inspection of CDAGs: rank counts, connectivity, degree
statistics — the quantities the paper states about ``G_r`` and that
experiment E1 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdag.graph import CDAG, Region
from repro.utils.unionfind import UnionFind

__all__ = [
    "rank_sizes",
    "expected_rank_sizes",
    "connected_components",
    "is_connected",
    "region_components",
    "CDAGSummary",
    "summarize",
]


def rank_sizes(cdag: CDAG) -> dict[int, int]:
    """Vertex count per global rank (``0 .. 2r+1``)."""
    ranks, counts = np.unique(cdag.rank, return_counts=True)
    return dict(zip(ranks.tolist(), counts.tolist()))


def expected_rank_sizes(a: int, b: int, r: int) -> dict[int, int]:
    """The paper's rank-size formulas for ``G_r``.

    Encoder rank ``i`` has ``b^i a^(r-i)`` vertices per side; decoding
    rank ``j`` (global rank ``r+1+j``) has ``b^(r-j) a^j``.
    """
    out: dict[int, int] = {}
    for i in range(r + 1):
        out[i] = 2 * b**i * a ** (r - i)
    for j in range(r + 1):
        out[r + 1 + j] = b ** (r - j) * a**j
    return out


def connected_components(cdag: CDAG, vertices: np.ndarray | None = None) -> int:
    """Number of weakly connected components of the CDAG (or of the
    induced subgraph on ``vertices``)."""
    if vertices is None:
        uf = UnionFind(cdag.n_vertices)
        for child, parent in zip(
            cdag.pred_indices.tolist(),
            np.repeat(
                np.arange(cdag.n_vertices), np.diff(cdag.pred_indptr)
            ).tolist(),
        ):
            uf.union(child, parent)
        return uf.n_components
    vertices = np.asarray(vertices, dtype=np.int64)
    index = {int(v): i for i, v in enumerate(vertices)}
    uf = UnionFind(len(vertices))
    for i, v in enumerate(vertices.tolist()):
        for p in cdag.predecessors(v).tolist():
            if p in index:
                uf.union(i, index[p])
    return uf.n_components


def is_connected(cdag: CDAG) -> bool:
    """Whether ``G_r`` is weakly connected.

    The paper notes the *whole* CDAG of a correct matrix multiplication
    algorithm must be connected, even when its encoders/decoder are not
    individually.
    """
    return connected_components(cdag) == 1


def region_components(cdag: CDAG, region: int) -> int:
    """Weakly connected components of one region's induced subgraph.

    For the decoder, the product vertices (decoding rank 0) are included
    — this matches the paper's "decoding graph".  Disconnected here is
    exactly the situation where the edge-expansion technique of [6]
    breaks (experiment E12).
    """
    vertices = np.nonzero(cdag.region == region)[0]
    return connected_components(cdag, vertices)


@dataclass(frozen=True)
class CDAGSummary:
    """Structure report for one CDAG (experiment E1 row)."""

    name: str
    r: int
    n_vertices: int
    n_edges: int
    n_inputs: int
    n_outputs: int
    n_products: int
    connected: bool
    enc_a_components: int
    enc_b_components: int
    dec_components: int
    n_copy_vertices: int


def summarize(cdag: CDAG) -> CDAGSummary:
    """Compute the full structure report."""
    return CDAGSummary(
        name=cdag.alg.name,
        r=cdag.r,
        n_vertices=cdag.n_vertices,
        n_edges=cdag.n_edges,
        n_inputs=len(cdag.inputs()),
        n_outputs=len(cdag.outputs()),
        n_products=len(cdag.products()),
        connected=is_connected(cdag),
        enc_a_components=region_components(cdag, Region.ENC_A),
        enc_b_components=region_components(cdag, Region.ENC_B),
        dec_components=region_components(cdag, Region.DEC),
        n_copy_vertices=int(np.count_nonzero(cdag.is_copy)),
    )
