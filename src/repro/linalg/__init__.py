"""Numeric matrix-multiplication kernels with exact operation counting:
classical (naive / blocked) and the recursive execution of any bilinear
algorithm from the catalog."""

from repro.linalg.counting import OpCounter
from repro.linalg.classical import naive_matmul, blocked_matmul
from repro.linalg.bilinear_apply import recursive_matmul, strassen_matmul

__all__ = [
    "OpCounter",
    "naive_matmul",
    "blocked_matmul",
    "recursive_matmul",
    "strassen_matmul",
]
