"""Report aggregation: summaries, verdicts, CacheStats merging."""

from repro.runner.jobs import JobSpec
from repro.runner.pool import run_sweep
from repro.runner.report import (
    cache_stats_table,
    merged_cache_stats,
    render_sweep,
    results_of,
    sweep_ok,
    sweep_summary,
)
from repro.runner.store import ResultStore
from repro.tracesim import SetAssociativeLRU, trace_blocked
from repro.tracesim.cache import CacheStats

HELPERS = "tests.runner.helpers"


def _sweep(specs, store=None, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("backoff", 0.01)
    kw.setdefault("progress", False)
    return run_sweep(specs, store, **kw)


def _spec(name, params=None, fn="ok_job"):
    return JobSpec(name, params or {}, entrypoint=f"{HELPERS}:{fn}")


class TestSummaries:
    def test_summary_row_per_job(self, tmp_path):
        outcomes = _sweep(
            [_spec("T-OK", {"x": 1}), _spec("T-ERR", fn="error_job")],
            ResultStore(tmp_path), retries=0,
        )
        table = sweep_summary(outcomes)
        assert len(table.rows) == 2
        text = table.render()
        assert "ok" in text and "failed" in text

    def test_results_of_skips_failures(self, tmp_path):
        outcomes = _sweep(
            [_spec("T-OK"), _spec("T-ERR", fn="error_job")], retries=0
        )
        results = results_of(outcomes)
        assert [r.experiment_id for r in results] == ["T-OK"]
        assert results[0].all_checks_pass

    def test_render_includes_retry_history_for_failures(self):
        outcomes = _sweep([_spec("T-ERR", fn="error_job")], retries=1)
        text = render_sweep(outcomes)
        assert "FAILED jobs" in text
        assert "attempt 1: error" in text
        assert "attempt 2: error" in text


class TestVerdicts:
    def test_all_green(self):
        outcomes = _sweep([_spec("T-OK")])
        assert sweep_ok(outcomes)

    def test_failed_job_fails_sweep(self):
        outcomes = _sweep([_spec("T-ERR", fn="error_job")], retries=0)
        assert not sweep_ok(outcomes)

    def test_failed_check_fails_sweep(self):
        outcomes = _sweep([_spec("T-BADCHECK", fn="failing_check_job")])
        assert all(o.ok for o in outcomes)
        assert not sweep_ok(outcomes)
        assert "FAILED paper-claim checks" in render_sweep(outcomes)


class TestCacheStatsMerge:
    def test_per_shard_counters_merge_losslessly(self, tmp_path):
        """Workers simulate disjoint shards; the merged counters must
        equal running the shards serially in one process."""
        shards = [0, 1, 2]
        outcomes = _sweep(
            [_spec("T-SHARD", {"shard": s}, fn="cache_shard_job")
             for s in shards],
            ResultStore(tmp_path),
        )
        merged = merged_cache_stats(outcomes)
        assert set(merged) == {"shard"}
        serial = CacheStats()
        for s in shards:
            cache = SetAssociativeLRU(n_sets=4, ways=2)
            serial = serial + cache.run(trace_blocked(8 + 4 * s, 4))
        assert merged["shard"] == serial
        assert merged["shard"].io == serial.io

    def test_merge_table_renders_totals(self):
        merged = {
            "a": CacheStats(10, 6, 4, 2),
            "b": CacheStats(20, 15, 5, 1),
        }
        text = cache_stats_table(merged).render()
        assert "TOTAL" in text
        # 4+5 misses, 2+1 writebacks -> 12 I/O in the total row
        assert "12" in text

    def test_e10_payload_feeds_the_merge(self, tmp_path):
        outcomes = _sweep(
            [JobSpec("E10", {"trace_n": 16, "trace_m": 96})],
            ResultStore(tmp_path),
        )
        merged = merged_cache_stats(outcomes)
        assert set(merged) == {"blocked-classical", "recursive-strassen"}
        assert all(s.accesses > 0 for s in merged.values())
        assert "Merged trace-cache counters" in render_sweep(outcomes)
