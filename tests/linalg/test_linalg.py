"""Tests for the numeric kernels and operation counting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bilinear import classical, laderman, strassen, winograd
from repro.errors import AlgorithmError
from repro.linalg import (
    OpCounter,
    blocked_matmul,
    naive_matmul,
    recursive_matmul,
    strassen_matmul,
)
from repro.utils.rngs import make_rng


class TestNaive:
    def test_matches_numpy(self):
        rng = make_rng(0)
        A = rng.standard_normal((5, 5))
        B = rng.standard_normal((5, 5))
        np.testing.assert_allclose(naive_matmul(A, B), A @ B, atol=1e-10)

    def test_operation_counts(self):
        counter = OpCounter()
        n = 4
        naive_matmul(np.eye(n), np.eye(n), counter)
        assert counter.multiplications == n**3
        assert counter.additions == n**3 - n * n

    def test_rejects_nonsquare(self):
        with pytest.raises(AlgorithmError):
            naive_matmul(np.zeros((2, 3)), np.zeros((2, 3)))


class TestBlocked:
    @pytest.mark.parametrize("block", [1, 2, 3, 8])
    def test_matches_numpy(self, block):
        rng = make_rng(1)
        A = rng.standard_normal((6, 6))
        B = rng.standard_normal((6, 6))
        np.testing.assert_allclose(
            blocked_matmul(A, B, block), A @ B, atol=1e-10
        )

    def test_counts_classical(self):
        counter = OpCounter()
        blocked_matmul(np.eye(4), np.eye(4), 2, counter)
        assert counter.multiplications == 64


class TestRecursive:
    @pytest.mark.parametrize(
        "maker,n",
        [(strassen, 8), (winograd, 8), (laderman, 9), (lambda: classical(2), 8)],
        ids=["strassen", "winograd", "laderman", "classical"],
    )
    def test_matches_numpy(self, maker, n):
        alg = maker()
        rng = make_rng(2)
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        np.testing.assert_allclose(
            recursive_matmul(alg, A, B), A @ B, atol=1e-8
        )

    def test_cutoff_hybrid(self):
        rng = make_rng(3)
        A = rng.standard_normal((16, 16))
        B = rng.standard_normal((16, 16))
        np.testing.assert_allclose(
            recursive_matmul(strassen(), A, B, cutoff=4), A @ B, atol=1e-8
        )

    def test_multiplication_count_strassen(self):
        """Pure Strassen on 2^r: exactly 7^r scalar multiplications."""
        counter = OpCounter()
        n = 8
        strassen_matmul(np.eye(n), np.eye(n), counter=counter)
        assert counter.multiplications == 7**3

    def test_multiplication_count_matches_flops_model(self):
        from repro.bounds import flops

        counter = OpCounter()
        n = 8
        strassen_matmul(np.eye(n), np.eye(n), counter=counter)
        assert counter.total == flops(strassen(), n)

    def test_laderman_multiplication_count(self):
        counter = OpCounter()
        recursive_matmul(laderman(), np.eye(9), np.eye(9), counter=counter)
        assert counter.multiplications == 23**2

    def test_fewer_mults_than_classical(self):
        c1, c2 = OpCounter(), OpCounter()
        n = 16
        A = np.eye(n)
        strassen_matmul(A, A, counter=c1)
        naive_matmul(A, A, c2)
        assert c1.multiplications < c2.multiplications

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            recursive_matmul(strassen(), np.eye(6), np.eye(6))

    def test_rejects_bad_cutoff(self):
        with pytest.raises(AlgorithmError):
            recursive_matmul(strassen(), np.eye(4), np.eye(4), cutoff=0)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_strassen_numeric_property(self, seed):
        rng = make_rng(seed)
        A = rng.standard_normal((8, 8)) * 5
        B = rng.standard_normal((8, 8)) * 5
        np.testing.assert_allclose(strassen_matmul(A, B), A @ B, atol=1e-7)


class TestOpCounter:
    def test_reset(self):
        c = OpCounter()
        c.add_mults(3)
        c.add_adds(4)
        assert c.total == 7
        c.reset()
        assert c.total == 0
