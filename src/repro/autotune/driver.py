"""The autotune driver: budgeted, journaled search over schedules.

The driver owns everything a strategy should not have to know about:
the evaluation budget, the **ledger** (genome key → measured I/O, so a
re-proposed candidate costs no simulation), the checksummed journal,
telemetry, and best-so-far tracking.  Per generation it asks the
strategy for proposals, answers what it can from the ledger, sends the
rest to the evaluator (local pool / resident service / in-process),
folds the results back into the strategy, and checkpoints.

Budget semantics match the original hill-climb: **every proposal
charges the budget**, whether it was simulated or answered from the
ledger/result store — so fixed-seed trajectories are independent of
cache warmth, and a resumed search replays the interrupted generation
(identical RNG draws) to land on the exact uninterrupted trajectory.

Telemetry: one ``autotune.generation`` span per generation (Chrome
trace shows the search cadence), plus always-on registry counters
``autotune.evaluations`` / ``autotune.cache_hits`` / ``autotune.failures``
and the ``autotune.best_gap`` gauge (the gap trajectory).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autotune.evaluate import EvalRecord
from repro.autotune.genome import GenomeContext, genome_key
from repro.autotune.journal import TuneJournal
from repro.autotune.strategies import TuneContext, make_strategy
from repro.errors import ReproError
from repro.telemetry.metrics import metrics
from repro.telemetry.spans import span
from repro.utils.rngs import make_rng
from repro.utils.validation import check_positive_int

__all__ = ["TuneConfig", "TuneResult", "AutoTuner"]


@dataclass(frozen=True)
class TuneConfig:
    """Search configuration (canonicalised into the journal, so a
    resume refuses to continue under different settings)."""

    alg: str = "strassen"
    r: int = 3
    cache_size: int = 24
    policy: str = "belady"
    strategy: str = "hillclimb"
    budget: int = 64
    generation: int = 8
    seed: int | None = None

    def __post_init__(self):
        check_positive_int(self.budget, "budget")
        check_positive_int(self.generation, "generation")
        check_positive_int(self.r, "r")

    def describe(self) -> dict:
        return {
            "alg": self.alg,
            "r": int(self.r),
            "cache_size": int(self.cache_size),
            "policy": self.policy,
            "strategy": self.strategy,
            "budget": int(self.budget),
            "generation": int(self.generation),
            "seed": self.seed,
        }


@dataclass
class TuneResult:
    """Terminal state of one search."""

    best_order: np.ndarray
    best_io: int
    best_gap: float
    lower: float
    start_io: int
    evaluations: int
    cache_hits: int
    failures: int
    generations: int
    trajectory: list = field(default_factory=list)
    resumed: bool = False

    @property
    def improved(self) -> bool:
        return self.best_io < self.start_io

    @property
    def improvement(self) -> float:
        """Relative I/O reduction over the start order (0 when none)."""
        return 1.0 - self.best_io / self.start_io if self.start_io else 0.0

    def summary(self) -> dict:
        return {
            "best_io": int(self.best_io),
            "best_gap": round(float(self.best_gap), 3),
            "lower": round(float(self.lower), 3),
            "start_io": int(self.start_io),
            "evaluations": int(self.evaluations),
            "cache_hits": int(self.cache_hits),
            "failures": int(self.failures),
            "generations": int(self.generations),
            "improved": self.improved,
            "improvement": round(self.improvement, 6),
            "resumed": self.resumed,
        }


class AutoTuner:
    """Drive one search: strategy proposals → evaluator → checkpoint.

    Parameters
    ----------
    config:
        The search settings; journaled and enforced on resume.
    evaluator:
        Any of the :mod:`repro.autotune.evaluate` backends (anything
        with ``evaluate(orders) -> list[EvalRecord]``).
    journal:
        A :class:`~repro.autotune.journal.TuneJournal` (or a path); None
        disables checkpointing (in-memory search).
    start_order:
        Initial product permutation; default is the recursive order.
    strategy_options:
        Extra constructor kwargs for the strategy (the ``external``
        escape hatch takes ``solver_cmd``/``cache_dir``/``timeout``).
    resume:
        Continue from the journal's last completed generation; the
        journal's config must match ``config``.
    algorithm:
        Explicit :class:`~repro.bilinear.BilinearAlgorithm`; default is
        the catalog lookup of ``config.alg`` (pass it for algorithms
        that are not catalog-addressable by name).
    """

    def __init__(
        self,
        config: TuneConfig,
        evaluator,
        *,
        journal: TuneJournal | str | None = None,
        start_order=None,
        strategy_options: dict | None = None,
        resume: bool = False,
        algorithm=None,
    ):
        self.config = config
        self.evaluator = evaluator
        if journal is not None and not isinstance(journal, TuneJournal):
            journal = TuneJournal(journal)
        self.journal = journal
        self.resume = resume
        if algorithm is None:
            from repro.bilinear import by_name

            algorithm = by_name(config.alg)
        gctx = GenomeContext(
            n_products=algorithm.b**config.r, b=algorithm.b, r=config.r
        )
        order = (
            np.arange(gctx.n_products, dtype=np.int64)
            if start_order is None
            else np.ascontiguousarray(start_order, dtype=np.int64)
        )
        if len(order) != gctx.n_products:
            raise ReproError(
                f"start order has {len(order)} entries; expected "
                f"{gctx.n_products}"
            )
        self.ctx = TuneContext(
            genome=gctx,
            start_order=order,
            budget=config.budget,
            generation=config.generation,
        )
        self.strategy = make_strategy(
            config.strategy, **(strategy_options or {})
        )

    # ------------------------------------------------------------------

    def _restore(self, rng):
        """Restore (state, counters, ledger, …) from the journal; returns
        None when there is nothing valid to resume from."""
        if self.journal is None:
            return None
        records = TuneJournal.load(self.journal.path)
        if not records or records[0].get("kind") != "tune_start":
            return None
        if records[0]["config"] != self.config.describe():
            raise ReproError(
                "journal config mismatch: refusing to resume "
                f"{self.journal.path} under different settings"
            )
        generations = [r for r in records if r.get("kind") == "generation"]
        if not generations:
            return None
        last = generations[-1]
        ledger = {}
        for rec in generations:
            for key, io, gap in rec["ledger_new"]:
                ledger[key] = {"io": int(io), "gap": float(gap)}
        rng.bit_generator.state = last["rng_state"]
        return {
            "state": last["state"],
            "ledger": ledger,
            "gen": int(last["gen"]) + 1,
            "evaluations": int(last["evaluations"]),
            "cache_hits": int(last["cache_hits"]),
            "failures": int(last["failures"]),
            "start_io": int(last["start_io"]),
            "best_key": last["best_key"],
            "best_io": int(last["best_io"]),
            "best_gap": float(last["best_gap"]),
            "best_order": np.asarray(last["best_order"], dtype=np.int64),
            "trajectory": [
                {
                    "gen": int(r["gen"]),
                    "evaluations": int(r["evaluations"]),
                    "best_io": int(r["best_io"]),
                    "best_gap": float(r["best_gap"]),
                }
                for r in generations
            ],
        }

    # ------------------------------------------------------------------

    def run(self) -> TuneResult:
        config = self.config
        ctx = self.ctx
        strategy = self.strategy
        rng = make_rng(config.seed)
        reg = metrics()

        state = strategy.initial_state(ctx)
        ledger: dict[str, dict] = {}
        trajectory: list[dict] = []
        gen = evaluations = cache_hits = failures = 0
        best_key = None
        best_io = best_gap = None
        best_order = None
        start_io = None
        lower = None
        resumed = False

        if self.resume:
            snapshot = self._restore(rng)
            if snapshot is not None:
                state = snapshot["state"]
                ledger = snapshot["ledger"]
                gen = snapshot["gen"]
                evaluations = snapshot["evaluations"]
                cache_hits = snapshot["cache_hits"]
                failures = snapshot["failures"]
                start_io = snapshot["start_io"]
                best_key = snapshot["best_key"]
                best_io = snapshot["best_io"]
                best_gap = snapshot["best_gap"]
                best_order = snapshot["best_order"]
                trajectory = snapshot["trajectory"]
                resumed = True
                self.journal.append({"kind": "tune_resume", "gen": gen})
                # Re-verify the incumbent through the evaluator: for a
                # store-backed evaluator this is a guaranteed cache hit
                # (its generation completed before the kill), proving
                # the dedupe path end to end.  Not charged to the
                # budget, so trajectories stay bit-for-bit identical.
                verify = self.evaluator.evaluate([best_order])
                cache_hits += sum(1 for rec in verify if rec.cached)
                reg.inc(
                    "autotune.cache_hits",
                    sum(1 for rec in verify if rec.cached),
                )
                if verify and verify[0].ok:
                    lower = verify[0].lower
        if not resumed and self.journal is not None:
            # A resume that found a start record but no completed
            # generation restarts from scratch without duplicating the
            # start record (same seed → identical generation 0).  A
            # non-resumed search starts the journal over: appending a
            # second run to an old journal would poison later resumes.
            existing = []
            if self.resume:
                existing = TuneJournal.load(self.journal.path)
            else:
                self.journal.truncate()
            if not existing:
                self.journal.append({
                    "kind": "tune_start",
                    "config": config.describe(),
                    "n_products": ctx.genome.n_products,
                })

        while evaluations < config.budget:
            if gen == 0:
                proposals = strategy.seed_orders(ctx, state, rng)
            else:
                proposals = strategy.propose(ctx, state, rng)
            proposals = [
                np.ascontiguousarray(o, dtype=np.int64) for o in proposals
            ]
            if not proposals:
                break
            proposals = proposals[: config.budget - evaluations]
            with span(
                "autotune.generation", gen=gen, strategy=strategy.name
            ) as sp:
                keys = [genome_key(o) for o in proposals]
                fresh_orders, fresh_keys, seen = [], [], set()
                for key, order in zip(keys, proposals):
                    if key not in ledger and key not in seen:
                        seen.add(key)
                        fresh_keys.append(key)
                        fresh_orders.append(order)
                fresh = self.evaluator.evaluate(fresh_orders)
                ledger_new = []
                batch_hits = batch_failures = 0
                for key, rec in zip(fresh_keys, fresh):
                    if rec.ok:
                        ledger[key] = {"io": rec.io, "gap": rec.gap}
                        ledger_new.append([key, rec.io, rec.gap])
                        if lower is None:
                            lower = rec.lower
                        if rec.cached:
                            batch_hits += 1
                    else:
                        batch_failures += 1
                # Records aligned with proposals: ledger answers count
                # as hits (no simulation happened for them).
                fresh_by_key = dict(zip(fresh_keys, fresh))
                records = []
                for key in keys:
                    rec = fresh_by_key.pop(key, None)
                    if rec is None:
                        if key in ledger:
                            entry = ledger[key]
                            rec = EvalRecord(
                                key, entry["io"], entry["gap"],
                                lower or 0.0, True,
                            )
                            batch_hits += 1
                        else:  # duplicate of a failed fresh evaluation
                            rec = EvalRecord(key, 0, 0.0, 0.0, False,
                                             error="evaluation failed")
                    records.append(rec)
                strategy.observe(ctx, state, proposals, records, rng)
                for order, key, rec in zip(proposals, keys, records):
                    if not rec.ok:
                        continue
                    if best_io is None or rec.io < best_io:
                        best_io, best_gap = rec.io, rec.gap
                        best_key, best_order = key, order
                if gen == 0 and records and records[0].ok:
                    start_io = records[0].io
                if start_io is None and best_io is not None:
                    start_io = best_io  # first proposal failed; degrade
                evaluations += len(proposals)
                cache_hits += batch_hits
                failures += batch_failures
                sp.add("evaluations", len(proposals))
                sp.add("cache_hits", batch_hits)
                sp.add("failures", batch_failures)
                if best_io is not None:
                    sp.set("best_io", best_io)
                reg.inc("autotune.evaluations", len(proposals))
                reg.inc("autotune.cache_hits", batch_hits)
                reg.inc("autotune.failures", batch_failures)
                if best_gap is not None:
                    reg.gauge("autotune.best_gap").set(best_gap)
            if best_io is None:
                raise ReproError(
                    "no successful candidate evaluations in the first "
                    "generation; cannot search"
                )
            trajectory.append({
                "gen": gen,
                "evaluations": evaluations,
                "best_io": int(best_io),
                "best_gap": float(best_gap),
            })
            if self.journal is not None:
                self.journal.append({
                    "kind": "generation",
                    "gen": gen,
                    "evaluations": evaluations,
                    "cache_hits": cache_hits,
                    "failures": failures,
                    "start_io": int(start_io),
                    "best_key": best_key,
                    "best_io": int(best_io),
                    "best_gap": float(best_gap),
                    "best_order": best_order.tolist(),
                    "state": state,
                    "rng_state": rng.bit_generator.state,
                    "ledger_new": ledger_new,
                })
            gen += 1

        if best_io is None:
            raise ReproError("search made no successful evaluations")
        result = TuneResult(
            best_order=best_order,
            best_io=int(best_io),
            best_gap=float(best_gap),
            lower=float(lower if lower is not None else 0.0),
            start_io=int(start_io),
            evaluations=evaluations,
            cache_hits=cache_hits,
            failures=failures,
            generations=gen,
            trajectory=trajectory,
            resumed=resumed,
        )
        if self.journal is not None:
            self.journal.append({
                "kind": "tune_finish", **result.summary()
            })
        return result
