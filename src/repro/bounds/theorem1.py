"""Theorem 1: the paper's I/O and bandwidth lower bounds.

Two flavours are provided for each bound:

- the Ω-form with constant 1 (``io_lower_bound`` etc.) — the right
  object for *shape* comparisons (scaling exponents, crossovers);
- the paper's explicit-constant form (``io_lower_bound_paper_constants``)
  that evaluates the actual counting expression from Section 6,

      floor( (3 a^k b^(r-k)) / (b^2 36 M) ) * M,
      k = ceil(log_a 72 M),

  which is what the segment argument literally certifies (the paper
  notes it "did not optimize for the constant factor").

Preconditions: Theorem 1 requires ``M = o(n^2)`` and, for the explicit
form, ``k <= r - 2``; out-of-regime evaluations raise
:class:`~repro.errors.BoundError` unless ``clamp=True``.
"""

from __future__ import annotations

import math

from repro.bilinear.algorithm import BilinearAlgorithm
from repro.errors import BoundError
from repro.utils.validation import check_positive_int, check_power

__all__ = [
    "io_lower_bound",
    "io_lower_bound_paper_constants",
    "parallel_bandwidth_lower_bound",
    "memory_independent_lower_bound",
    "combined_parallel_lower_bound",
    "paper_k_section6",
    "paper_k_section5",
]


def paper_k_section6(a: int, M: int) -> int:
    """Section 6's ``k = ceil(log_a 72 M)`` — smallest k with
    ``a^k >= 2 * 36 M``."""
    return max(0, math.ceil(math.log(72 * M, a)))


def paper_k_section5(M: int) -> int:
    """Section 5's ``k = ceil(log_4 132 M)`` — smallest k with
    ``4^k >= 2 * 66 M`` (Strassen-specific)."""
    return max(0, math.ceil(math.log(132 * M, 4)))


def io_lower_bound(alg: BilinearAlgorithm, n: int, M: int) -> float:
    """Ω-form sequential bound: ``(n / sqrt(M))^(2 log_a b) * M``.

    Valid for Strassen-like algorithms (ω0 < 3) under the single-use
    assumption; for ω0 = 3 the expression still evaluates (and coincides
    with the classical bound's shape) but Theorem 1 does not claim it.
    """
    n = check_positive_int(n, "n")
    M = check_positive_int(M, "M")
    exponent = 2 * math.log(alg.b, alg.a)  # = omega0
    return (n / math.sqrt(M)) ** exponent * M


def io_lower_bound_paper_constants(
    alg: BilinearAlgorithm,
    n: int,
    M: int,
    clamp: bool = False,
) -> int:
    """The Section 6 counting bound with the paper's explicit constants.

    ``floor( 3 a^k b^(r-k) / (b^2 * 36 M) ) * M`` with
    ``k = ceil(log_a 72M)``.  Requires ``n = n0^r`` and ``k <= r - 2``
    (the regime ``M = o(n^2)`` in asymptotic terms).

    With ``clamp=True``, out-of-regime parameters return 0 instead of
    raising — convenient inside sweeps.
    """
    n = check_positive_int(n, "n")
    M = check_positive_int(M, "M")
    r = check_power(n, alg.n0, "n")
    k = paper_k_section6(alg.a, M)
    if k > r - 2:
        if clamp:
            return 0
        raise BoundError(
            f"paper-constant bound needs k={k} <= r-2={r - 2}: cache "
            f"M={M} is too large relative to n={n} (requires M = o(n^2))"
        )
    a, b = alg.a, alg.b
    counted = 3 * a**k * b ** (r - k)
    segments = counted // (b**2 * 36 * M)
    return segments * M


def parallel_bandwidth_lower_bound(
    alg: BilinearAlgorithm, n: int, M: int, P: int
) -> float:
    """Ω-form parallel bandwidth bound: ``(n/sqrt(M))^ω0 * M / P``.

    Derived from the sequential bound by the argument of [2]: some
    processor computes at least ``1/P`` of the counted vertices.
    """
    P = check_positive_int(P, "P")
    return io_lower_bound(alg, n, M) / P


def memory_independent_lower_bound(
    alg: BilinearAlgorithm, n: int, P: int
) -> float:
    """Ω-form cache-independent bound: ``n^2 / P^(2/ω0)``.

    Holds for any local memory size, provided computation is load
    balanced per rank of the CDAG (Theorem 1, final clause).
    """
    n = check_positive_int(n, "n")
    P = check_positive_int(P, "P")
    return n**2 / P ** (2 / alg.omega0)


def combined_parallel_lower_bound(
    alg: BilinearAlgorithm, n: int, M: int, P: int
) -> float:
    """max of the memory-dependent and memory-independent bounds — the
    piecewise bound CAPS [3] matches on both sides of the crossover."""
    return max(
        parallel_bandwidth_lower_bound(alg, n, M, P),
        memory_independent_lower_bound(alg, n, P),
    )
