"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc. are still
raised for misuse that cannot be attributed to data).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "AlgorithmError",
    "BrentEquationError",
    "CDAGError",
    "GraphCacheError",
    "ScheduleError",
    "PebbleGameError",
    "CacheError",
    "RoutingError",
    "HallConditionError",
    "BoundError",
    "PartitionError",
    "ServiceError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class AlgorithmError(ReproError):
    """A bilinear algorithm description is malformed or inconsistent.

    Raised when the encoding/decoding matrices of a
    :class:`~repro.bilinear.BilinearAlgorithm` have mismatched shapes, an
    empty multiplication set, or otherwise cannot describe a matrix
    multiplication algorithm.
    """


class BrentEquationError(AlgorithmError):
    """A claimed matrix-multiplication algorithm fails the Brent equations.

    The Brent equations are the exact algebraic condition for a bilinear
    algorithm ``<U, V, W>`` to compute the matrix-multiplication tensor.
    The exception carries the first violated equation for debugging.
    """

    def __init__(self, message: str, index: tuple | None = None):
        super().__init__(message)
        #: Index ``(i, j, k, l, m, n)`` of the first violated Brent
        #: equation, if available.
        self.index = index


class CDAGError(ReproError):
    """A computation-DAG construction or query is invalid.

    Examples: asking for a rank outside ``0 .. 2r+1``, extracting a
    sub-computation with ``k > r``, or constructing a graph with an
    inconsistent vertex table.
    """


class GraphCacheError(CDAGError):
    """A compiled-graph bundle is unreadable, mismatched or corrupt.

    Raised by :mod:`repro.cdag.artifact` when a serialised bundle fails
    its checksum, declares an unknown format version, or disagrees with
    the arrays it claims to hold.  The graph cache treats this as
    "quarantine and rebuild", never as a fatal error.
    """


class ScheduleError(ReproError):
    """A schedule is not a valid execution order for its CDAG.

    A valid schedule is a permutation of the *computed* vertices (all
    non-input vertices) in a topological order of the CDAG.
    """


class PebbleGameError(ReproError):
    """An illegal move in the red-blue pebble game was attempted.

    Raised by the strict :class:`~repro.pebbling.PebbleGame` state machine
    when, e.g., a value is computed without all predecessors in fast
    memory, or fast-memory capacity would be exceeded.
    """


class CacheError(ReproError):
    """The cache simulator was configured or driven inconsistently."""


class RoutingError(ReproError):
    """A path routing could not be constructed or fails verification.

    Raised when a path in a routing is not a connected sequence of
    adjacent CDAG vertices, does not join its declared endpoints, or when
    a claimed ``m``-routing exceeds its hit budget.
    """


class HallConditionError(RoutingError):
    """The Hall condition required by the matching step fails.

    Per Lemma 5 of the paper this cannot happen for a correct
    matrix-multiplication algorithm whose nontrivial linear combinations
    are used in only one multiplication; encountering this error therefore
    indicates the input algorithm violates the paper's assumptions (or is
    not a correct matrix-multiplication algorithm at all).  The exception
    records the violating set for inspection.
    """

    def __init__(self, message: str, violating_set=None, neighborhood=None):
        super().__init__(message)
        #: The subset ``D`` of dependence vertices with ``|N(D)| < |D|/p``.
        self.violating_set = violating_set
        #: Its neighborhood ``N(D)``.
        self.neighborhood = neighborhood


class BoundError(ReproError):
    """A lower/upper-bound formula was evaluated outside its regime.

    For example Theorem 1 requires ``M = o(n^2)``; evaluating the bound
    with ``M`` so large that the segment construction is vacuous raises
    this error rather than returning a misleading number (callers can opt
    into clamping instead).
    """


class PartitionError(ReproError):
    """A parallel work partition is malformed (not load balanced per rank,
    overlapping ownership, or not covering the computation)."""


class ServiceError(ReproError):
    """The sweep service (daemon, client, or shared-memory tier) failed.

    Raised for daemon-side lifecycle problems (socket already bound,
    drain timeout) and client-side connection failures.  Admission
    rejections (backpressure, quota) are *not* errors — they are ordinary
    protocol responses the client surfaces to its caller.
    """


class ProtocolError(ServiceError):
    """A service peer sent a malformed or unexpected protocol message.

    The wire format is newline-delimited JSON objects; anything that is
    not one JSON object per line, lacks the required ``op`` field, or
    answers with an ``op`` the caller cannot interpret raises this.
    """
