"""Catalog of concrete bilinear matrix-multiplication algorithms.

Every constructor returns a validated :class:`BilinearAlgorithm` (the
Brent equations are checked at build time, so a corrupted coefficient
table cannot silently propagate into experiments).

The catalog covers the regimes the paper distinguishes:

- :func:`strassen` / :func:`winograd`: fast 2x2 algorithms with connected
  encoders/decoders — the case already handled by [6];
- :func:`classical`: the Θ(n^3) algorithm (disconnected encoders *and*
  decoders, multiple copying; not Strassen-like — baseline for
  Hong–Kung);
- :func:`laderman`: fast 3x3 algorithm with 23 multiplications
  (ω0 ≈ 2.854), exercising a base dimension n0 > 2;
- compositions built in :mod:`repro.bilinear.compose`
  (e.g. Strassen ⊗ classical: a *fast* algorithm with a disconnected
  decoding graph and multiple copying — precisely the case where the
  edge-expansion technique of [6] fails and this paper's routing
  technique is needed).

Coefficient conventions match :mod:`repro.bilinear.algorithm`: entry
``(i, j)`` of an ``n0 x n0`` matrix has flat index ``i * n0 + j``
(0-based).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.bilinear.algorithm import BilinearAlgorithm, solve_decoder
from repro.utils.indexing import pair_index
from repro.utils.validation import check_positive_int

__all__ = [
    "strassen",
    "winograd",
    "classical",
    "laderman",
    "strassen_peeled",
    "list_catalog",
    "by_name",
]


def _combo(n0: int, terms: dict[tuple[int, int], float]) -> np.ndarray:
    """Row vector for a linear combination given as {(i, j): coeff},
    1-based indices as written in the literature."""
    row = np.zeros(n0 * n0)
    for (i, j), coeff in terms.items():
        row[pair_index(i - 1, j - 1, n0)] = coeff
    return row


@lru_cache(maxsize=None)
def strassen() -> BilinearAlgorithm:
    """Strassen's original 7-multiplication algorithm for 2x2 matrices.

    M1 = (A11+A22)(B11+B22),  M2 = (A21+A22)B11,  M3 = A11(B12-B22),
    M4 = A22(B21-B11),        M5 = (A11+A12)B22,  M6 = (A21-A11)(B11+B12),
    M7 = (A12-A22)(B21+B22);
    C11 = M1+M4-M5+M7, C12 = M3+M5, C21 = M2+M4, C22 = M1-M2+M3+M6.
    """
    n0 = 2
    U = np.array(
        [
            _combo(n0, {(1, 1): 1, (2, 2): 1}),
            _combo(n0, {(2, 1): 1, (2, 2): 1}),
            _combo(n0, {(1, 1): 1}),
            _combo(n0, {(2, 2): 1}),
            _combo(n0, {(1, 1): 1, (1, 2): 1}),
            _combo(n0, {(2, 1): 1, (1, 1): -1}),
            _combo(n0, {(1, 2): 1, (2, 2): -1}),
        ]
    )
    V = np.array(
        [
            _combo(n0, {(1, 1): 1, (2, 2): 1}),
            _combo(n0, {(1, 1): 1}),
            _combo(n0, {(1, 2): 1, (2, 2): -1}),
            _combo(n0, {(2, 1): 1, (1, 1): -1}),
            _combo(n0, {(2, 2): 1}),
            _combo(n0, {(1, 1): 1, (1, 2): 1}),
            _combo(n0, {(2, 1): 1, (2, 2): 1}),
        ]
    )
    # Rows of W indexed by output entry (1,1), (1,2), (2,1), (2,2).
    W = np.array(
        [
            [1, 0, 0, 1, -1, 0, 1],
            [0, 0, 1, 0, 1, 0, 0],
            [0, 1, 0, 1, 0, 0, 0],
            [1, -1, 1, 0, 0, 1, 0],
        ],
        dtype=float,
    )
    return BilinearAlgorithm(
        n0=n0,
        U=U,
        V=V,
        W=W,
        name="strassen",
        notes="Strassen 1969; the algorithm analysed in Section 5 of the paper.",
    ).validate()


@lru_cache(maxsize=None)
def winograd() -> BilinearAlgorithm:
    """The Strassen–Winograd 7-multiplication variant.

    In straight-line form (with reuse of intermediate sums) this variant
    needs only 15 additions; the flat bilinear form below cannot express
    reuse, so its support counts 24 additions.

    Same exponent as Strassen (log2 7) but a different base graph —
    different encoder/decoder supports, hence different routing instances.
    Products (expanded to bilinear form):

    M1 = A11 B11,                M2 = A12 B21,
    M3 = (A11+A12-A21-A22) B22,  M4 = A22 (B11-B12+B22-B21),
    M5 = (A21+A22)(B12-B11),     M6 = (A21+A22-A11)(B11-B12+B22),
    M7 = (A11-A21)(B22-B12);
    C11 = M1+M2, C12 = M1+M3+M5+M6, C21 = M1-M4+M6+M7, C22 = M1+M5+M6+M7.
    """
    n0 = 2
    U = np.array(
        [
            _combo(n0, {(1, 1): 1}),
            _combo(n0, {(1, 2): 1}),
            _combo(n0, {(1, 1): 1, (1, 2): 1, (2, 1): -1, (2, 2): -1}),
            _combo(n0, {(2, 2): 1}),
            _combo(n0, {(2, 1): 1, (2, 2): 1}),
            _combo(n0, {(2, 1): 1, (2, 2): 1, (1, 1): -1}),
            _combo(n0, {(1, 1): 1, (2, 1): -1}),
        ]
    )
    V = np.array(
        [
            _combo(n0, {(1, 1): 1}),
            _combo(n0, {(2, 1): 1}),
            _combo(n0, {(2, 2): 1}),
            _combo(n0, {(1, 1): 1, (1, 2): -1, (2, 2): 1, (2, 1): -1}),
            _combo(n0, {(1, 2): 1, (1, 1): -1}),
            _combo(n0, {(1, 1): 1, (1, 2): -1, (2, 2): 1}),
            _combo(n0, {(2, 2): 1, (1, 2): -1}),
        ]
    )
    W = np.array(
        [
            [1, 1, 0, 0, 0, 0, 0],
            [1, 0, 1, 0, 1, 1, 0],
            [1, 0, 0, -1, 0, 1, 1],
            [1, 0, 0, 0, 1, 1, 1],
        ],
        dtype=float,
    )
    return BilinearAlgorithm(
        n0=n0,
        U=U,
        V=V,
        W=W,
        name="winograd",
        notes="Strassen-Winograd variant: 7 multiplications (15 additions with reuse).",
    ).validate()


@lru_cache(maxsize=None)
def classical(n0: int = 2) -> BilinearAlgorithm:
    """The classical Θ(n0^3) algorithm as a bilinear algorithm.

    One multiplication per triple ``(i, j, k)``: ``a_{ij} * b_{jk}``
    contributing to ``c_{ik}``.  Not Strassen-like (ω0 = 3); its encoders
    and decoder are maximally disconnected (every component is a star)
    and every input exhibits multiple copying — useful both as the
    Hong–Kung baseline (experiment E10) and as a composition factor that
    injects disconnectedness into fast algorithms.
    """
    n0 = check_positive_int(n0, "n0")
    a = n0 * n0
    b = n0 ** 3
    U = np.zeros((b, a))
    V = np.zeros((b, a))
    W = np.zeros((a, b))
    m = 0
    for i in range(n0):
        for j in range(n0):
            for k in range(n0):
                U[m, pair_index(i, j, n0)] = 1
                V[m, pair_index(j, k, n0)] = 1
                W[pair_index(i, k, n0), m] = 1
                m += 1
    return BilinearAlgorithm(
        n0=n0,
        U=U,
        V=V,
        W=W,
        name=f"classical-{n0}",
        notes="Definition of matrix multiplication; omega0 = 3.",
    ).validate()


@lru_cache(maxsize=None)
def laderman() -> BilinearAlgorithm:
    """Laderman's 23-multiplication algorithm for 3x3 matrices.

    ω0 = log_3 23 ≈ 2.854.  The decoder is recovered exactly from the
    products via :func:`repro.bilinear.algorithm.solve_decoder` (the Brent
    equations are linear in W once U and V are fixed), which doubles as a
    correctness certificate for the product list.

    Provenance note: the products follow Laderman (1976); two of the
    six-term rows were reconstructed by solving the Brent equations
    against the remaining 21 products (the solved system is exact and
    all-integer, and the resulting decoder matches Laderman's published
    output sums, e.g. ``c11 = m6 + m14 + m19``), so individual product
    rows may differ from the 1976 listing by a symmetry of the algorithm.
    """
    n0 = 3
    products = _laderman_products()
    U = np.array([_combo(n0, ua) for ua, _ in products])
    V = np.array([_combo(n0, vb) for _, vb in products])
    W = solve_decoder(n0, U, V)
    return BilinearAlgorithm(
        n0=n0,
        U=U,
        V=V,
        W=W,
        name="laderman",
        notes="Laderman 1976, 23 multiplications for 3x3.",
    ).validate()


def _laderman_products():
    """The 23 products of Laderman's algorithm, 1-based literature
    indexing: list of (A-side combo, B-side combo) dictionaries."""
    return [
        # m1
        (
            {(1, 1): 1, (1, 2): 1, (1, 3): 1, (2, 1): -1, (2, 2): -1,
             (3, 2): -1, (3, 3): -1},
            {(2, 2): 1},
        ),
        # m2
        ({(1, 1): 1, (2, 1): -1}, {(1, 2): -1, (2, 2): 1}),
        # m3
        (
            {(2, 2): 1},
            {(1, 1): -1, (1, 2): 1, (2, 1): 1, (2, 2): -1, (2, 3): -1,
             (3, 1): -1, (3, 3): 1},
        ),
        # m4
        ({(1, 1): -1, (2, 1): 1, (2, 2): 1}, {(1, 1): 1, (1, 2): -1, (2, 2): 1}),
        # m5
        ({(2, 1): 1, (2, 2): 1}, {(1, 1): -1, (1, 2): 1}),
        # m6
        ({(1, 1): 1}, {(1, 1): 1}),
        # m7
        ({(1, 1): -1, (3, 1): 1, (3, 2): 1}, {(1, 1): 1, (1, 3): -1, (2, 3): 1}),
        # m8
        ({(1, 1): -1, (3, 1): 1}, {(1, 3): 1, (2, 3): -1}),
        # m9
        ({(3, 1): 1, (3, 2): 1}, {(1, 1): -1, (1, 3): 1}),
        # m10
        (
            {(1, 1): 1, (1, 2): 1, (1, 3): 1, (2, 2): -1, (2, 3): -1,
             (3, 1): -1, (3, 2): -1},
            {(2, 3): 1},
        ),
        # m11
        (
            {(3, 2): 1},
            {(1, 1): -1, (1, 3): 1, (2, 1): 1, (2, 2): -1, (2, 3): -1,
             (3, 1): -1, (3, 2): 1},
        ),
        # m12
        ({(1, 3): -1, (3, 2): 1, (3, 3): 1}, {(2, 2): 1, (3, 1): 1, (3, 2): -1}),
        # m13
        ({(1, 3): 1, (3, 3): -1}, {(2, 2): 1, (3, 2): -1}),
        # m14
        ({(1, 3): 1}, {(3, 1): 1}),
        # m15
        ({(3, 2): 1, (3, 3): 1}, {(3, 1): -1, (3, 2): 1}),
        # m16
        ({(1, 3): -1, (2, 2): 1, (2, 3): 1}, {(2, 3): 1, (3, 1): 1, (3, 3): -1}),
        # m17
        ({(1, 3): 1, (2, 3): -1}, {(2, 3): 1, (3, 3): -1}),
        # m18
        ({(2, 2): 1, (2, 3): 1}, {(3, 1): -1, (3, 3): 1}),
        # m19
        ({(1, 2): 1}, {(2, 1): 1}),
        # m20
        ({(2, 3): 1}, {(3, 2): 1}),
        # m21
        ({(2, 1): 1}, {(1, 3): 1}),
        # m22
        ({(3, 1): 1}, {(1, 2): 1}),
        # m23
        ({(3, 3): 1}, {(3, 3): 1}),
    ]


@lru_cache(maxsize=None)
def strassen_peeled() -> BilinearAlgorithm:
    """Peeled Strassen for 3x3: 26 multiplications, ω0 = log_3 26 ≈ 2.966.

    The classical "padding-free" construction: split the 3x3 matrices as
    a 2x2 block ``P``, a column ``u``, a row ``v`` and a scalar ``s``;
    use Strassen's 7 products for ``P·Q`` and classical products for the
    rank-1 / matrix-vector pieces:

        C[0:2,0:2] = P·Q + u⊗x        (7 + 4 products)
        C[0:2, 2 ] = P·w + u·t        (4 + 2)
        C[ 2 ,0:2] = v·Q + s·x        (4 + 2)
        C[ 2 , 2 ] = v·w + s·t        (2 + 1)

    A genuinely *fast* (ω0 < 3) 3x3 base whose encoders and decoder are
    highly non-uniform — 7 Strassen-style nontrivial products next to 19
    trivial ones — stressing the routing and bound machinery away from
    the uniform catalog entries.  The decoder is recovered exactly via
    :func:`~repro.bilinear.algorithm.solve_decoder`.
    """
    n0 = 3
    strassen_u = [
        {(1, 1): 1, (2, 2): 1}, {(2, 1): 1, (2, 2): 1}, {(1, 1): 1},
        {(2, 2): 1}, {(1, 1): 1, (1, 2): 1}, {(2, 1): 1, (1, 1): -1},
        {(1, 2): 1, (2, 2): -1},
    ]
    strassen_v = [
        {(1, 1): 1, (2, 2): 1}, {(1, 1): 1}, {(1, 2): 1, (2, 2): -1},
        {(2, 1): 1, (1, 1): -1}, {(2, 2): 1}, {(1, 1): 1, (1, 2): 1},
        {(2, 1): 1, (2, 2): 1},
    ]
    products: list[tuple[dict, dict]] = list(zip(strassen_u, strassen_v))
    # u ⊗ x: a_{i,3} * b_{3,k}
    for i in (1, 2):
        for k in (1, 2):
            products.append(({(i, 3): 1}, {(3, k): 1}))
    # P·w: a_{i,j} * b_{j,3}
    for i in (1, 2):
        for j in (1, 2):
            products.append(({(i, j): 1}, {(j, 3): 1}))
    # u·t: a_{i,3} * b_{3,3}
    for i in (1, 2):
        products.append(({(i, 3): 1}, {(3, 3): 1}))
    # v·Q: a_{3,j} * b_{j,k}
    for j in (1, 2):
        for k in (1, 2):
            products.append(({(3, j): 1}, {(j, k): 1}))
    # s·x: a_{3,3} * b_{3,k}
    for k in (1, 2):
        products.append(({(3, 3): 1}, {(3, k): 1}))
    # v·w: a_{3,j} * b_{j,3}
    for j in (1, 2):
        products.append(({(3, j): 1}, {(j, 3): 1}))
    # s·t
    products.append(({(3, 3): 1}, {(3, 3): 1}))

    U = np.array([_combo(n0, ua) for ua, _ in products])
    V = np.array([_combo(n0, vb) for _, vb in products])
    W = solve_decoder(n0, U, V)
    return BilinearAlgorithm(
        n0=n0,
        U=U,
        V=V,
        W=W,
        name="strassen-peeled-3",
        notes="Strassen on the 2x2 block + classical peeling; 26 products.",
    ).validate()


def list_catalog() -> list[BilinearAlgorithm]:
    """All base algorithms in the catalog (compositions live in
    :mod:`repro.bilinear.compose` and are built on demand)."""
    return [strassen(), winograd(), classical(2), classical(3), laderman(),
            strassen_peeled()]


def by_name(name: str) -> BilinearAlgorithm:
    """Look up a catalog algorithm by its :attr:`name`."""
    for alg in list_catalog():
        if alg.name == name:
            return alg
    from repro.bilinear.compose import named_compositions

    for alg in named_compositions():
        if alg.name == name:
            return alg
    raise KeyError(f"no catalog algorithm named {name!r}")
