"""Content-addressed on-disk result store.

Artifacts live at ``<root>/<experiment_id>/<cache_key>.json`` and hold
the full serialised :class:`ExperimentResult` plus the job description
that produced it.  Properties the sweep machinery relies on:

- **deterministic bytes** — artifacts are canonical JSON
  (``sort_keys``, fixed separators, trailing newline) containing no
  wall-clock or host metadata, so re-running an identical sweep yields
  byte-identical files;
- **atomic writes** — written to a temp file in the same directory and
  ``os.replace``-d into place, so an interrupted sweep never leaves a
  truncated artifact and ``--resume`` can trust whatever it finds;
- **self-describing** — each artifact embeds its key, params, seed and
  package version; a corrupt or mismatched file reads as a cache miss,
  never an error.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Mapping

from repro.experiments.harness import ExperimentResult
from repro.runner.jobs import JobSpec, canonical_params
from repro.utils.tables import TextTable

__all__ = [
    "SCHEMA_VERSION",
    "ResultStore",
    "result_to_payload",
    "payload_to_result",
]

#: Bump when the artifact layout changes; old artifacts then read as
#: cache misses rather than decoding errors.
SCHEMA_VERSION = 1


def _jsonify(value):
    """Best-effort reduction of result payloads to JSON-native types
    (numpy scalars -> Python scalars, tuples -> lists, keys -> str)."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [_jsonify(v) for v in items]
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return _jsonify(value.item())
    if hasattr(value, "tolist"):
        return _jsonify(value.tolist())
    return repr(value)


def result_to_payload(result: ExperimentResult) -> dict:
    """Serialise an :class:`ExperimentResult` to a JSON-native dict."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "tables": [
            {"title": t.title, "headers": list(t.headers), "rows": [list(r) for r in t.rows]}
            for t in result.tables
        ],
        "checks": {str(k): bool(v) for k, v in result.checks.items()},
        "data": _jsonify(result.data),
    }


def payload_to_result(payload: Mapping) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from a stored payload.

    Table rows were rendered to aligned strings at serialisation time,
    so ``render()`` of the rebuilt result matches the original exactly.
    """
    tables = []
    for doc in payload.get("tables", ()):
        table = TextTable(doc["headers"], title=doc.get("title"))
        table.rows = [list(row) for row in doc["rows"]]
        tables.append(table)
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload.get("title", payload["experiment_id"]),
        tables=tables,
        checks=dict(payload.get("checks", {})),
        data=dict(payload.get("data", {})),
    )


class ResultStore:
    """Content-addressed JSON artifact store rooted at ``root``."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, spec: JobSpec) -> Path:
        return self.root / spec.experiment_id / f"{spec.cache_key}.json"

    def has(self, spec: JobSpec) -> bool:
        return self.path_for(spec).is_file()

    def get(self, spec: JobSpec) -> dict | None:
        """The stored artifact for ``spec``, or None (a miss) when the
        artifact is absent, unreadable, or keyed differently."""
        path = self.path_for(spec)
        try:
            with path.open("r", encoding="utf-8") as fh:
                artifact = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(artifact, dict)
            or artifact.get("schema") != SCHEMA_VERSION
            or artifact.get("key") != spec.cache_key
        ):
            return None
        return artifact

    def put(self, spec: JobSpec, result_payload: Mapping) -> Path:
        """Atomically write the artifact for ``spec``; returns its path."""
        from repro._version import __version__

        artifact = {
            "schema": SCHEMA_VERSION,
            "key": spec.cache_key,
            "experiment_id": spec.experiment_id,
            "params": canonical_params(spec.params),
            "seed": spec.seed,
            "entrypoint": spec.entrypoint,
            "version": __version__,
            "result": _jsonify(result_payload),
        }
        blob = json.dumps(artifact, sort_keys=True, indent=2) + "\n"
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def discard(self, spec: JobSpec) -> bool:
        """Remove the artifact for ``spec``; True when one existed."""
        try:
            self.path_for(spec).unlink()
            return True
        except OSError:
            return False

    def iter_artifacts(self) -> Iterator[dict]:
        """Yield every decodable artifact under the root."""
        for path in sorted(self.root.glob("*/*.json")):
            try:
                with path.open("r", encoding="utf-8") as fh:
                    artifact = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(artifact, dict) and artifact.get("schema") == SCHEMA_VERSION:
                yield artifact

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete all artifacts; returns how many were removed."""
        n = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n
