"""On-disk cache of compiled graph bundles shared across processes.

A sweep runs dozens of jobs over a handful of ``(algorithm, depth)``
graphs; without a cache every worker rebuilds its CDAG, regenerates its
schedules and recompiles its executor plans.  :class:`GraphCache` makes
each of those a content-addressed bundle (:mod:`repro.cdag.artifact`)
under one root directory:

.. code-block:: text

    <root>/
      <graph key>/            # CDAG CSR arrays + copy flags
        meta.json  *.npy
      schedules/<key>/        # named schedule arrays (recursive, rank)
      plans/<key>/            # executor _SchedulePlan occurrence arrays
      corrupt/                # quarantined bundles (post-mortem)

Workers ``np.load(..., mmap_mode="r")`` the arrays, so however many
processes map a bundle, physical memory holds one copy (the page cache
does the sharing) and a graph is *built* once per machine, not once per
job.  Plan bundles stay memmapped end to end on the compiled-kernel
path: the executor's kernels consume the bundle's contiguous int64
arrays directly (:func:`repro.cdag.artifact.plan_kernel_arrays`), so a
loaded plan is never materialised into Python lists unless a simulation
actually falls back to the pure-Python loops.  Loads verify sha256
checksums; a truncated or bit-flipped bundle is moved to ``corrupt/``
and rebuilt — corruption is a miss, never an error.

Process-wide activation goes through
:func:`repro.cdag.artifact.active_cache`: :func:`activate` installs a
cache for this process, and the ``REPRO_GRAPH_CACHE`` environment
variable does the same lazily in freshly spawned pool workers.
Telemetry: ``graphcache.{hit,miss}`` counters (with per-kind
sub-counters), ``graphcache.{build_s,map_s}`` gauges and a
``graphcache.<kind>`` span per bundle acquisition.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.cdag import artifact
from repro.errors import GraphCacheError
from repro.telemetry.spans import span

__all__ = ["GraphCache", "activate", "deactivate", "counter_snapshot"]

#: Directory (under the cache root) holding quarantined bundles.
QUARANTINE_DIR = "corrupt"

#: Subdirectories for derived bundles (graph bundles live at top level).
SCHEDULES_DIR = "schedules"
PLANS_DIR = "plans"

#: Process-local object caches are bounded so a long-lived process
#: sweeping many configurations cannot accumulate unbounded plans.
_MAX_LOCAL_PLANS = 64
_MAX_LOCAL_SCHEDULES = 64


def _metrics():
    from repro import telemetry

    return telemetry.metrics()


def counter_snapshot() -> dict[str, int]:
    """Current ``graphcache.*`` counter values of this process (used by
    pool workers to report their per-job deltas back to the parent)."""
    registry = _metrics()
    out = {}
    for name in registry.names():
        if name.startswith("graphcache."):
            metric = registry.get(name)
            value = getattr(metric, "value", None)
            if isinstance(value, int):
                out[name] = value
    return out


class GraphCache:
    """Content-addressed bundle store rooted at ``root``.

    One instance per process is installed via :func:`activate`; the
    build hooks (:func:`repro.cdag.builder.build_cdag`, the schedule
    generators, :meth:`CacheExecutor._plan`) consult it through
    :func:`repro.cdag.artifact.active_cache`.
    """

    def __init__(self, root: str | os.PathLike, verify: bool = True, shm=None):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.verify = verify
        #: optional :class:`repro.service.shm.ShmTier` hot tier; consulted
        #: between the process-local maps and the on-disk bundles.
        self.shm = shm
        self._graphs: dict[str, object] = {}
        self._schedules: dict[str, np.ndarray] = {}
        self._plans: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    def _quarantine(self, path: Path, reason: str) -> Path | None:
        """Move a corrupt bundle directory under ``corrupt/`` (never
        raises; falls back to deletion, then to leaving it in place)."""
        dest = None
        try:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
            dest = self.quarantine_root / path.name
            n = 0
            while dest.exists():
                n += 1
                dest = self.quarantine_root / f"{path.name}.{n}"
            os.replace(path, dest)
        except OSError:
            dest = None
            shutil.rmtree(path, ignore_errors=True)
        registry = _metrics()
        registry.inc("graphcache.quarantined")
        return dest

    def _count(self, outcome: str, kind: str, seconds: float) -> None:
        registry = _metrics()
        registry.inc(f"graphcache.{outcome}")
        registry.inc(f"graphcache.{outcome}.{kind}")
        gauge = "graphcache.build_s" if outcome == "miss" else "graphcache.map_s"
        registry.gauge(gauge).set(seconds)

    def _remember(self, table: dict, limit: int, key: str, value) -> None:
        if len(table) >= limit:
            table.pop(next(iter(table)))
        table[key] = value

    def _shm_get(self, kind: str, key: str):
        """Arrays from the shared-memory hot tier, or None.  The tier
        is an optimisation: any trouble reads as a miss, never an
        error (the memmap tier below is the durable copy)."""
        if self.shm is None:
            return None
        try:
            return self.shm.get(kind, key)
        except Exception:
            return None

    def _shm_put(self, kind: str, key: str, arrays) -> None:
        if self.shm is None:
            return
        try:
            self.shm.put(kind, key, dict(arrays))
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Graph bundles
    # ------------------------------------------------------------------

    def get_graph(self, alg, r: int):
        """The CDAG ``G_r`` of ``alg`` — from the process-local map, a
        mapped on-disk bundle, or a fresh build (published on miss)."""
        from repro.cdag import builder

        gkey = artifact.graph_key(alg, r)
        g = self._graphs.get(gkey)
        if g is not None:
            self._count("hit", "graph", 0.0)
            return g
        path = self.root / gkey
        with span("graphcache.graph", alg=alg.name) as sp:
            sp.set("key", gkey)
            sp.set("r", int(r))
            t0 = time.perf_counter()
            shm_arrays = self._shm_get("graph", gkey)
            if shm_arrays is not None:
                g = artifact.graph_from_arrays(alg, r, shm_arrays)
                g._graph_key = gkey
                self._graphs[gkey] = g
                self._count("hit", "graph_shm", time.perf_counter() - t0)
                sp.set("outcome", "shm")
                return g
            if path.is_dir():
                t0 = time.perf_counter()
                try:
                    arrays, _meta = artifact.read_bundle(
                        path, artifact.GRAPH_ARRAY_NAMES, verify=self.verify
                    )
                    g = artifact.graph_from_arrays(alg, r, arrays)
                except GraphCacheError:
                    self._quarantine(path, "unreadable graph bundle")
                    sp.set("quarantined", True)
                else:
                    g._graph_key = gkey
                    self._graphs[gkey] = g
                    self._shm_put("graph", gkey, arrays)
                    self._count("hit", "graph", time.perf_counter() - t0)
                    sp.set("outcome", "hit")
                    return g
            t0 = time.perf_counter()
            g = builder.build_cdag_uncached(alg, r)
            build_s = time.perf_counter() - t0
            g._graph_key = gkey
            self._graphs[gkey] = g
            self._count("miss", "graph", build_s)
            sp.set("outcome", "miss")
            meta = {
                "kind": "graph",
                "key": gkey,
                "alg": alg.name,
                "alg_digest": artifact.alg_digest(alg),
                "r": int(r),
                "n_vertices": g.n_vertices,
                "n_edges": g.n_edges,
            }
            try:
                artifact.write_bundle(path, artifact.graph_to_arrays(g), meta)
            except OSError:
                pass  # publication is best effort (read-only root etc.)
            self._shm_put("graph", gkey, artifact.graph_to_arrays(g))
            return g

    # ------------------------------------------------------------------
    # Schedule bundles
    # ------------------------------------------------------------------

    def get_schedule(
        self, cdag, name: str, version: str, build: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """The compiled schedule array for family ``name`` on ``cdag``,
        generated by ``build()`` on a miss."""
        gkey = artifact.cdag_graph_key(cdag)
        skey = artifact.schedule_key(gkey, name, version)
        arr = self._schedules.get(skey)
        if arr is not None:
            self._count("hit", "schedule", 0.0)
            return arr
        path = self.root / SCHEDULES_DIR / skey
        with span("graphcache.schedule", family=name) as sp:
            sp.set("key", skey)
            t0 = time.perf_counter()
            shm_arrays = self._shm_get("schedule", skey)
            if shm_arrays is not None and "schedule" in shm_arrays:
                arr = shm_arrays["schedule"]
                self._remember(self._schedules, _MAX_LOCAL_SCHEDULES, skey, arr)
                self._count("hit", "schedule_shm", time.perf_counter() - t0)
                sp.set("outcome", "shm")
                return arr
            if path.is_dir():
                t0 = time.perf_counter()
                try:
                    arrays, _meta = artifact.read_bundle(
                        path, artifact.SCHEDULE_ARRAY_NAMES, verify=self.verify
                    )
                except GraphCacheError:
                    self._quarantine(path, "unreadable schedule bundle")
                    sp.set("quarantined", True)
                else:
                    arr = arrays["schedule"]
                    self._remember(self._schedules, _MAX_LOCAL_SCHEDULES, skey, arr)
                    self._shm_put("schedule", skey, {"schedule": arr})
                    self._count("hit", "schedule", time.perf_counter() - t0)
                    sp.set("outcome", "hit")
                    return arr
            t0 = time.perf_counter()
            arr = np.ascontiguousarray(build(), dtype=np.int64)
            self._count("miss", "schedule", time.perf_counter() - t0)
            sp.set("outcome", "miss")
            meta = {
                "kind": "schedule",
                "key": skey,
                "graph": gkey,
                "name": name,
                "version": version,
                "n_steps": int(len(arr)),
            }
            try:
                artifact.write_bundle(path, {"schedule": arr}, meta)
            except OSError:
                pass
            self._shm_put("schedule", skey, {"schedule": arr})
            self._remember(self._schedules, _MAX_LOCAL_SCHEDULES, skey, arr)
            return arr

    # ------------------------------------------------------------------
    # Plan bundles
    # ------------------------------------------------------------------

    def get_plan(self, executor, schedule: np.ndarray, schedule_digest: str,
                 validate: bool):
        """The compiled :class:`_SchedulePlan` for ``schedule`` on
        ``executor``'s CDAG (compiled and published on a miss)."""
        from repro.pebbling.executor import EXECUTOR_VERSION, _SchedulePlan

        gkey = artifact.cdag_graph_key(executor.cdag)
        pkey = artifact.plan_key(gkey, schedule_digest, EXECUTOR_VERSION)

        def _validated(plan):
            if validate and not plan.validated:
                executor.validate_schedule(schedule)
                plan.validated = True
            return plan

        plan = self._plans.get(pkey)
        if plan is not None:
            self._count("hit", "plan", 0.0)
            return _validated(plan)
        path = self.root / PLANS_DIR / pkey
        with span("graphcache.plan") as sp:
            sp.set("key", pkey)
            t0 = time.perf_counter()
            shm_arrays = self._shm_get("plan", pkey)
            if shm_arrays is not None:
                # The validated bit travels as a one-element side array
                # (shm segments carry arrays, not metadata documents).
                flag = shm_arrays.pop("_validated", None)
                was_validated = bool(flag is not None and int(flag[0]))
                plan = _SchedulePlan.from_arrays(
                    shm_arrays, validated=was_validated
                )
                self._remember(self._plans, _MAX_LOCAL_PLANS, pkey, plan)
                self._count("hit", "plan_shm", time.perf_counter() - t0)
                sp.set("outcome", "shm")
                return _validated(plan)
            if path.is_dir():
                t0 = time.perf_counter()
                try:
                    arrays, meta = artifact.read_bundle(
                        path, artifact.PLAN_ARRAY_NAMES, verify=self.verify
                    )
                except GraphCacheError:
                    self._quarantine(path, "unreadable plan bundle")
                    sp.set("quarantined", True)
                else:
                    plan = _SchedulePlan.from_arrays(
                        arrays, validated=bool(meta.get("validated", False))
                    )
                    self._remember(self._plans, _MAX_LOCAL_PLANS, pkey, plan)
                    self._shm_put("plan", pkey, {
                        **dict(arrays),
                        "_validated": np.asarray(
                            [int(plan.validated)], dtype=np.int8
                        ),
                    })
                    self._count("hit", "plan", time.perf_counter() - t0)
                    sp.set("outcome", "hit")
                    return _validated(plan)
            t0 = time.perf_counter()
            if validate:
                schedule = executor.validate_schedule(schedule)
            plan = _SchedulePlan(executor.cdag, schedule, validated=validate)
            self._count("miss", "plan", time.perf_counter() - t0)
            sp.set("outcome", "miss")
            meta = {
                "kind": "plan",
                "key": pkey,
                "graph": gkey,
                "schedule_blake2b": schedule_digest,
                "executor_version": EXECUTOR_VERSION,
                "validated": bool(plan.validated),
                "n_steps": int(plan.n_steps),
            }
            try:
                artifact.write_bundle(path, plan.to_arrays(), meta)
            except OSError:
                pass
            self._shm_put("plan", pkey, {
                **plan.to_arrays(),
                "_validated": np.asarray([int(plan.validated)], dtype=np.int8),
            })
            self._remember(self._plans, _MAX_LOCAL_PLANS, pkey, plan)
            return plan

    # ------------------------------------------------------------------
    # Warming, inspection, GC
    # ------------------------------------------------------------------

    def warm(
        self,
        alg,
        rs: Iterable[int],
        schedules: Sequence[str] = ("recursive", "rank"),
    ) -> dict[str, int]:
        """Pre-build graph, schedule and plan bundles for ``alg`` at
        each depth in ``rs``; returns hit/miss counts for the pass."""
        from repro.cdag import build_cdag
        from repro.pebbling.executor import CacheExecutor
        from repro.schedules import rank_order_schedule, recursive_schedule

        builders = {"recursive": recursive_schedule, "rank": rank_order_schedule}
        unknown = [s for s in schedules if s not in builders]
        if unknown:
            raise ValueError(
                f"unknown schedule families {unknown}; choose from "
                f"{sorted(builders)}"
            )
        before = counter_snapshot()
        prev = artifact.set_active_cache(self)
        try:
            for r in rs:
                g = build_cdag(alg, int(r))
                ex = CacheExecutor(g)
                for name in schedules:
                    ex.compile(builders[name](g), validate=True)
        finally:
            artifact.set_active_cache(prev)
        after = counter_snapshot()
        return {
            key: after.get(key, 0) - before.get(key, 0)
            for key in ("graphcache.hit", "graphcache.miss")
        }

    def _bundle_dirs(self) -> list[Path]:
        """Every published bundle directory (skips quarantine and
        in-flight ``.tmp-*`` staging dirs)."""
        dirs = []
        for meta_path in sorted(self.root.rglob("meta.json")):
            rel = meta_path.relative_to(self.root).parts
            if rel[0] == QUARANTINE_DIR or any(p.startswith(".tmp-") for p in rel):
                continue
            dirs.append(meta_path.parent)
        return dirs

    def entries(self) -> list[dict]:
        """One metadata dict per bundle (for ``repro graph-cache ls``)."""
        out = []
        for path in self._bundle_dirs():
            try:
                meta = json.loads((path / "meta.json").read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            size = sum(
                f.stat().st_size for f in path.iterdir() if f.is_file()
            )
            out.append(
                {
                    "kind": meta.get("kind", "?"),
                    "key": meta.get("key", path.name),
                    "path": str(path),
                    "size_bytes": size,
                    "mtime": path.stat().st_mtime,
                    "meta": meta,
                }
            )
        return out

    def gc(self, max_age_s: float | None = None, clear: bool = False) -> list[Path]:
        """Remove orphaned ``.tmp-*`` staging dirs always, plus every
        bundle when ``clear`` or bundles idle longer than ``max_age_s``.
        Returns the removed paths."""
        removed = []
        for tmp in sorted(self.root.rglob(".tmp-*")):
            shutil.rmtree(tmp, ignore_errors=True)
            removed.append(tmp)
        if clear or max_age_s is not None:
            now = time.time()
            for path in self._bundle_dirs():
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    continue
                if clear or (max_age_s is not None and age > max_age_s):
                    shutil.rmtree(path, ignore_errors=True)
                    removed.append(path)
        return removed


def activate(
    root: str | os.PathLike, shm_root: str | os.PathLike | None = None
) -> GraphCache:
    """Install (or reuse) the process-global cache rooted at ``root``.

    With ``shm_root``, a shared-memory hot tier
    (:class:`repro.service.shm.ShmTier`, ledger under ``shm_root``) is
    layered in front of the on-disk bundles — how the sweep service's
    warm workers share one physical copy of each compiled bundle.
    """
    want_root = Path(root).expanduser()
    want_shm = Path(shm_root).expanduser() if shm_root is not None else None
    current = artifact.active_cache()
    if isinstance(current, GraphCache) and current.root == want_root:
        current_shm = getattr(current.shm, "root", None)
        if want_shm is None or current_shm == want_shm:
            return current
    shm = None
    if want_shm is not None:
        from repro.service.shm import ShmTier  # lazy: avoids import cycle

        shm = ShmTier(want_shm)
    cache = GraphCache(root, shm=shm)
    artifact.set_active_cache(cache)
    return cache


def deactivate() -> None:
    """Remove the process-global cache (bundles on disk are untouched)."""
    artifact.set_active_cache(None)
