"""Tests for Lemma 3 (chains for guaranteed dependencies, Claim 2
lifting) and Lemma 4 (concatenation routing)."""

import numpy as np
import pytest

from repro.bilinear import classical, laderman, strassen, winograd
from repro.cdag import build_cdag, compute_metavertices
from repro.routing import (
    chain_usage_counts,
    count_guaranteed_dependencies,
    dependency_chain,
    guaranteed_dependencies,
    lemma3_routing,
    lemma4_routing,
    verify_path,
    verify_routing,
)
from repro.routing.hall import base_matching
from repro.errors import RoutingError


@pytest.fixture(scope="module")
def g2():
    return build_cdag(strassen(), 2)


@pytest.fixture(scope="module")
def chains2(g2):
    return lemma3_routing(g2)


class TestDependencyChain:
    def test_chain_is_valid_path(self, g2):
        matching = base_matching(strassen(), "A")
        deps = list(guaranteed_dependencies(g2, side="A"))
        for v, w in deps[:10]:
            chain = dependency_chain(g2, v, w, matching)
            verify_path(g2, chain)
            assert chain[0] == v and chain[-1] == w

    def test_chain_length(self, g2):
        """A chain spans every rank once: 2r + 2 vertices."""
        matching = base_matching(strassen(), "A")
        v, w = next(iter(guaranteed_dependencies(g2, side="A")))
        chain = dependency_chain(g2, v, w, matching)
        assert len(chain) == 2 * g2.r + 2

    def test_chain_monotone_ranks(self, g2):
        matching = base_matching(strassen(), "B")
        v, w = next(iter(guaranteed_dependencies(g2, side="B")))
        chain = dependency_chain(g2, v, w, matching)
        ranks = g2.rank[chain]
        assert (np.diff(ranks) == 1).all()

    def test_non_dependence_raises(self, g2):
        matching = base_matching(strassen(), "A")
        # a_00 and c_10 do not share a row: not guaranteed.
        from repro.routing import input_row_col, output_row_col

        v = next(
            x for x in g2.inputs("A").tolist()
            if input_row_col(g2, x)[1:] == (0, 0)
        )
        w = next(
            y for y in g2.outputs().tolist()
            if output_row_col(g2, y) == (1, 0)
        )
        with pytest.raises(RoutingError):
            dependency_chain(g2, v, w, matching)

    def test_non_input_raises(self, g2):
        matching = base_matching(strassen(), "A")
        with pytest.raises(RoutingError):
            dependency_chain(
                g2, int(g2.products()[0]), int(g2.outputs()[0]), matching
            )


class TestLemma3Routing:
    def test_covers_all_dependencies(self, g2, chains2):
        assert len(chains2) == count_guaranteed_dependencies(g2)
        declared = set(chains2.endpoints)
        expected = set(guaranteed_dependencies(g2))
        assert declared == expected

    def test_vertex_bound_2n0k(self, g2, chains2):
        """Lemma 3's claim: a 2 n0^k-routing."""
        bound = 2 * 2**g2.r
        report = verify_routing(g2, chains2, bound)
        assert report.max_vertex_hits <= bound

    def test_meta_bound(self, g2, chains2):
        meta = compute_metavertices(g2)
        bound = 2 * 2**g2.r
        report = verify_routing(g2, chains2, bound, meta=meta)
        assert report.max_meta_hits <= bound

    def test_single_side_bound_n0k(self, g2):
        routing = lemma3_routing(g2, side="A")
        report = verify_routing(g2, routing, 2**g2.r)
        assert report.max_vertex_hits <= 2**g2.r

    @pytest.mark.parametrize(
        "maker,k",
        [(winograd, 2), (laderman, 1), (lambda: classical(2), 2)],
        ids=["winograd", "laderman", "classical"],
    )
    def test_other_algorithms(self, maker, k):
        alg = maker()
        g = build_cdag(alg, k)
        routing = lemma3_routing(g)
        verify_routing(g, routing, 2 * alg.n0**k)

    def test_claim2_lifting_k3(self):
        """The m^k growth of Claim 2: bound 2 n0^3 at k = 3."""
        g = build_cdag(strassen(), 3)
        routing = lemma3_routing(g)
        report = verify_routing(g, routing, 2 * 2**3, check_paths=False)
        assert report.max_vertex_hits <= 16


class TestLemma4Routing:
    def test_covers_all_pairs(self, g2, chains2):
        routing = lemma4_routing(g2, chains2)
        assert len(routing) == len(g2.inputs()) * len(g2.outputs())
        declared = set(routing.endpoints)
        expected = {
            (int(v), int(w)) for v in g2.inputs() for w in g2.outputs()
        }
        assert declared == expected

    def test_paths_valid(self, g2, chains2):
        routing = lemma4_routing(g2, chains2)
        for path in routing.paths[:50]:
            verify_path(g2, path)

    def test_chain_usage_exactly_3n0k(self, g2, chains2):
        """Lemma 4: each guaranteed-dependence chain is used exactly
        3 n0^k times."""
        usage = chain_usage_counts(g2, chains2)
        expected = 3 * 2**g2.r
        assert set(usage.values()) == {expected}

    def test_usage_counts_match_materialised_routing(self, g2, chains2):
        """The symbolic counts agree with brute-force piece counting on
        the materialised paths (sanity of the bookkeeping)."""
        usage = chain_usage_counts(g2, chains2)
        total_pieces = sum(usage.values())
        routing = lemma4_routing(g2, chains2)
        assert total_pieces == 3 * len(routing)

    def test_vertex_bound_6ak(self, g2, chains2):
        routing = lemma4_routing(g2, chains2)
        report = verify_routing(g2, routing, 6 * 4**g2.r, check_paths=False)
        assert report.max_vertex_hits <= 6 * 4**g2.r
