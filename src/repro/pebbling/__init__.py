"""Pebble-game / two-level cache machinery.

- :mod:`repro.pebbling.machine`: the machine model (paper Section 1);
- :mod:`repro.pebbling.executor`: I/O counting for a schedule — a thin
  view over the unified simulation core (:mod:`repro.simcore`, which
  owns the one LRU/FIFO/Belady policy implementation);
- :mod:`repro.pebbling.kernels`: back-compat surface over the core's
  compiled kernels and dispatch;
- :mod:`repro.pebbling.pebble_game`: strict red-blue pebble game [10];
- :mod:`repro.pebbling.segments`: the paper's segment-counting argument
  (Definition 1, Equations 1-2) measured on real executions.

The golden reference eviction policies live under
``tests/pebbling/_reference.py``.
"""

from repro.pebbling.machine import MachineModel, min_cache_size
from repro.pebbling.executor import IOResult, CacheExecutor, simulate_io
from repro.pebbling import kernels
from repro.pebbling.pebble_game import (
    Move,
    MoveKind,
    PebbleGame,
    trace_from_executor,
)
from repro.pebbling.segments import (
    boundary_sets,
    meta_boundary,
    counted_mask_section5,
    counted_mask_section6,
    partition_schedule,
    SegmentRecord,
    SegmentAnalysis,
    paper_k,
)

__all__ = [
    "MachineModel",
    "min_cache_size",
    "IOResult",
    "CacheExecutor",
    "simulate_io",
    "kernels",
    "Move",
    "MoveKind",
    "PebbleGame",
    "trace_from_executor",
    "boundary_sets",
    "meta_boundary",
    "counted_mask_section5",
    "counted_mask_section6",
    "partition_schedule",
    "SegmentRecord",
    "SegmentAnalysis",
    "paper_k",
]
