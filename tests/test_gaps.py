"""Second-pass tests for gaps found by coverage review.

Highlights: the Fact-1 isomorphism transports verified routings from a
standalone ``G_k`` into any subcomputation copy inside ``G_r`` — the
step the Section-6 argument performs implicitly when it "fixes a
routing in each input-disjoint G_k^i".
"""

import numpy as np
import pytest

from repro.bilinear import strassen, winograd
from repro.cdag import (
    Region,
    build_cdag,
    subcomputation,
    subcomputation_count,
)
from repro.errors import RoutingError
from repro.routing import (
    Routing,
    theorem2_routing,
    verify_path,
    verify_routing,
)


class TestRoutingTransport:
    """Map a standalone G_k routing into G_r via the Fact-1 isomorphism."""

    @pytest.fixture(scope="class")
    def transported(self):
        alg = strassen()
        g_r = build_cdag(alg, 3)
        g_k = build_cdag(alg, 1)
        routing_k = theorem2_routing(g_k)
        sub = subcomputation(g_r, 1, 17)
        mapped = Routing(g_r, label="transported")
        for path, (src, dst) in zip(routing_k.paths, routing_k.endpoints):
            mapped.add(
                [sub.global_id(int(v)) for v in path],
                source=sub.global_id(src),
                target=sub.global_id(dst),
            )
        return g_r, sub, routing_k, mapped

    def test_paths_valid_in_big_graph(self, transported):
        g_r, _, _, mapped = transported
        for path in mapped.paths:
            verify_path(g_r, np.asarray(path))

    def test_endpoints_are_copy_io(self, transported):
        g_r, sub, _, mapped = transported
        inputs = set(sub.inputs().tolist())
        outputs = set(sub.outputs().tolist())
        for src, dst in mapped.endpoints:
            assert src in inputs
            assert dst in outputs

    def test_hit_counts_preserved(self, transported):
        """The isomorphism preserves the routing's m exactly."""
        _, _, routing_k, mapped = transported
        assert mapped.max_vertex_hits() == routing_k.max_vertex_hits()

    def test_global_local_roundtrip(self, transported):
        g_r, sub, _, _ = transported
        for v in sub.all_vertices().tolist():
            assert sub.global_id(sub.local_id(v)) == v

    def test_disjoint_copies_disjoint_routings(self):
        """Routings transported into two different copies never share a
        vertex — the 'vertex-disjoint copies' clause of Fact 1 in
        action."""
        alg = strassen()
        g_r = build_cdag(alg, 2)
        g_k = build_cdag(alg, 1)
        routing_k = theorem2_routing(g_k)
        used = []
        for idx in (0, 3):
            sub = subcomputation(g_r, 1, idx)
            vertices = set()
            for path in routing_k.paths:
                vertices.update(sub.global_id(int(v)) for v in path)
            used.append(vertices)
        assert not (used[0] & used[1])


class TestVerifyRoutingNegatives:
    @pytest.fixture(scope="class")
    def g1(self):
        return build_cdag(strassen(), 1)

    def test_rejects_wrong_endpoint_declaration(self, g1):
        r = Routing(g1)
        v = int(g1.products()[0])
        p = int(g1.predecessors(v)[0])
        r.add([p, v], source=v, target=p)  # declared backwards
        with pytest.raises(RoutingError):
            verify_routing(g1, r, 100)

    def test_rejects_broken_path(self, g1):
        r = Routing(g1)
        ins = g1.inputs()
        r.paths.append(np.array([int(ins[0]), int(ins[1])]))
        r.endpoints.append((int(ins[0]), int(ins[1])))
        with pytest.raises(RoutingError):
            verify_routing(g1, r, 100)

    def test_rejects_exceeded_bound(self, g1):
        r = theorem2_routing(g1)
        with pytest.raises(RoutingError):
            verify_routing(g1, r, 1, check_paths=False)

    def test_rejects_missing_pairs(self, g1):
        r = theorem2_routing(g1)
        r.paths.pop()
        r.endpoints.pop()
        expected = {
            (int(v), int(w)) for v in g1.inputs() for w in g1.outputs()
        }
        with pytest.raises(RoutingError):
            verify_routing(
                g1, r, 1000, expected_pairs=expected, check_paths=False
            )

    def test_report_slack(self, g1):
        report = verify_routing(g1, theorem2_routing(g1), 1000,
                                check_paths=False)
        assert report.slack == 1000 / report.max_vertex_hits


class TestSubcomputationCounts:
    def test_all_copies_have_equal_size(self):
        g = build_cdag(winograd(), 3)
        sizes = {
            len(subcomputation(g, 1, i).all_vertices())
            for i in range(subcomputation_count(g, 1))
        }
        assert len(sizes) == 1

    def test_copy_vertex_count_formula(self):
        """|G_k| = 2 * sum(b^i a^(k-i)) + sum(b^(k-j) a^j)."""
        alg = strassen()
        g = build_cdag(alg, 3)
        k = 1
        expected = (
            2 * sum(alg.b**i * alg.a ** (k - i) for i in range(k + 1))
            + sum(alg.b ** (k - j) * alg.a**j for j in range(k + 1))
        )
        assert len(subcomputation(g, k, 0).all_vertices()) == expected


class TestRenderAllCatalog:
    def test_dot_for_every_base_graph(self):
        from repro.bilinear import list_catalog
        from repro.cdag import build_base_graph, to_dot

        for alg in list_catalog():
            dot = to_dot(build_base_graph(alg))
            assert dot.startswith("digraph")
            assert dot.endswith("}")


class TestCapsStrategiesOrdering:
    def test_dfs_first_never_cheaper(self):
        """Communication ordering across strategies whenever all are
        feasible: bfs-first <= auto <= dfs-first."""
        from repro.parallel import DistributedMachine, simulate_caps

        alg = strassen()
        n, P, M = 2**8, 49, 10**9
        machine = DistributedMachine(P, M)
        bfs = simulate_caps(alg, n, machine, "bfs-first").bandwidth_cost
        auto = simulate_caps(alg, n, machine, "auto").bandwidth_cost
        dfs = simulate_caps(alg, n, machine, "dfs-first").bandwidth_cost
        assert bfs <= auto <= dfs

    def test_dfs_first_lowest_memory(self):
        from repro.parallel import DistributedMachine, simulate_caps

        alg = strassen()
        n, P, M = 2**8, 49, 10**9
        machine = DistributedMachine(P, M)
        bfs = simulate_caps(alg, n, machine, "bfs-first")
        dfs = simulate_caps(alg, n, machine, "dfs-first")
        assert dfs.peak_memory_per_processor <= bfs.peak_memory_per_processor


class TestExperimentRenderFailPath:
    def test_failed_check_renders_fail(self):
        from repro.experiments import ExperimentResult
        from repro.utils.tables import TextTable

        result = ExperimentResult(
            experiment_id="EX",
            title="t",
            tables=[TextTable(["a"])],
            checks={"bad": False},
        )
        assert not result.all_checks_pass
        assert "[FAIL] bad" in result.render()
