"""Compositions and symmetries of bilinear algorithms.

Two constructions matter for the paper's scope:

- :func:`tensor_product`: if ``alg1`` multiplies ``n1 x n1`` matrices with
  ``b1`` products and ``alg2`` multiplies ``n2 x n2`` with ``b2``, their
  tensor product multiplies ``(n1*n2) x (n1*n2)`` matrices with ``b1*b2``
  products.  Tensoring a fast algorithm with the classical one yields a
  *fast* Strassen-like algorithm whose decoding graph is **disconnected**
  and whose encoders exhibit **multiple copying** — exactly the base
  graphs out of reach for the edge-expansion technique of [6] and in
  scope for this paper's path-routing technique (experiments E1, E12).

- :func:`cyclic_rotation` / :func:`transpose_dual`: the symmetries of the
  matrix-multiplication tensor.  They produce algorithms with the same
  parameters (a, b, ω0) but different base-graph supports, giving the
  routing machinery structurally distinct instances for free.

All constructors validate their output against the Brent equations.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.bilinear.algorithm import BilinearAlgorithm
from repro.utils.indexing import pair_index, pair_unindex

__all__ = [
    "tensor_product",
    "tensor_power",
    "cyclic_rotation",
    "transpose_dual",
    "strassen_x_classical",
    "strassen_x_classical_su",
    "strassen_squared",
    "sandwich_transform",
    "random_equivalent",
    "named_compositions",
]


def _entry_merge_permutation(n1: int, n2: int) -> np.ndarray:
    """Permutation taking the Kronecker entry index ``e1 * a2 + e2`` to the
    flat entry index of the merged ``(n1*n2)``-dimensional matrix.

    Entry ``e1 = (r1, c1)`` of the coarse matrix and ``e2 = (r2, c2)`` of
    the fine block correspond to global entry
    ``(r1*n2 + r2, c1*n2 + c2)``.
    """
    a1, a2 = n1 * n1, n2 * n2
    perm = np.empty(a1 * a2, dtype=np.int64)
    for e1 in range(a1):
        r1, c1 = pair_unindex(e1, n1)
        for e2 in range(a2):
            r2, c2 = pair_unindex(e2, n2)
            merged = pair_index(r1 * n2 + r2, c1 * n2 + c2, n1 * n2)
            perm[e1 * a2 + e2] = merged
    return perm


def tensor_product(
    alg1: BilinearAlgorithm,
    alg2: BilinearAlgorithm,
    name: str | None = None,
) -> BilinearAlgorithm:
    """Tensor (Kronecker) product of two bilinear algorithms.

    The result multiplies ``(n1*n2) x (n1*n2)`` matrices using
    ``b1 * b2`` products: one level of ``alg1``'s recursion with ``alg2``
    used for the block products.  Its exponent satisfies
    ``(n1*n2)^ω = b1*b2``, i.e. a weighted mix of the factors' exponents.
    """
    n1, n2 = alg1.n0, alg2.n0
    n0 = n1 * n2
    perm = _entry_merge_permutation(n1, n2)

    def merge_encoder(E1: np.ndarray, E2: np.ndarray) -> np.ndarray:
        kron = np.kron(E1, E2)  # shape (b1*b2, a1*a2), cols in (e1, e2) order
        out = np.zeros_like(kron)
        out[:, perm] = kron
        return out

    U = merge_encoder(alg1.U, alg2.U)
    V = merge_encoder(alg1.V, alg2.V)
    kron_w = np.kron(alg1.W, alg2.W)  # shape (a1*a2, b1*b2)
    W = np.zeros_like(kron_w)
    W[perm, :] = kron_w
    composed = BilinearAlgorithm(
        n0=n0,
        U=U,
        V=V,
        W=W,
        name=name or f"{alg1.name}(x){alg2.name}",
        notes=(
            f"Tensor product of {alg1.name} (n0={n1}, b={alg1.b}) and "
            f"{alg2.name} (n0={n2}, b={alg2.b})."
        ),
    )
    return composed.validate()


def tensor_power(alg: BilinearAlgorithm, k: int, name: str | None = None) -> BilinearAlgorithm:
    """``k``-fold tensor power (``k >= 1``): one algorithm whose base case
    is ``k`` unrolled recursion levels of ``alg``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    out = alg
    for _ in range(k - 1):
        out = tensor_product(out, alg)
    return BilinearAlgorithm(
        n0=out.n0,
        U=out.U,
        V=out.V,
        W=out.W,
        name=name or f"{alg.name}^({k})",
        notes=f"{k}-fold tensor power of {alg.name}.",
    )


def cyclic_rotation(alg: BilinearAlgorithm, name: str | None = None) -> BilinearAlgorithm:
    """Rotate the roles (A, B, C) -> (B, C, A) using the cyclic symmetry
    of the matrix-multiplication tensor.

    If ``<U, V, W>`` computes ``C = A B`` then
    ``U'[m, (x,y)] = V[m, (x,y)]``, ``V'[m, (x,y)] = W[(y,x), m]``,
    ``W'[(x,y), m] = U[m, (y,x)]`` computes matrix multiplication again
    (with transpositions absorbing the index flips).  Produces a valid
    algorithm with the same (a, b) but different supports.
    """
    n0 = alg.n0
    a = alg.a
    transpose = np.array(
        [pair_index(c, r, n0) for e in range(a) for r, c in [pair_unindex(e, n0)]]
    )
    U2 = alg.V.copy()
    V2 = alg.W.T[:, transpose]
    W2 = alg.U[:, transpose].T
    return BilinearAlgorithm(
        n0=n0,
        U=U2,
        V=V2,
        W=W2,
        name=name or f"{alg.name}-rot",
        notes=f"Cyclic (A,B,C) rotation of {alg.name}.",
    ).validate()


def transpose_dual(alg: BilinearAlgorithm, name: str | None = None) -> BilinearAlgorithm:
    """The dual algorithm from ``C^T = B^T A^T``.

    ``U'[m, (i,j)] = V[m, (j,i)]``, ``V'[m, (i,j)] = U[m, (j,i)]``,
    ``W'[(i,j), m] = W[(j,i), m]``.
    """
    n0 = alg.n0
    a = alg.a
    transpose = np.array(
        [pair_index(c, r, n0) for e in range(a) for r, c in [pair_unindex(e, n0)]]
    )
    return BilinearAlgorithm(
        n0=n0,
        U=alg.V[:, transpose],
        V=alg.U[:, transpose],
        W=alg.W[transpose, :],
        name=name or f"{alg.name}-dual",
        notes=f"Transpose dual of {alg.name}.",
    ).validate()


@lru_cache(maxsize=None)
def strassen_x_classical() -> BilinearAlgorithm:
    """Strassen ⊗ classical(2): a 4x4 base with 56 products.

    ω0 = log_4 56 ≈ 2.904 < 3, so this *is* a fast Strassen-like
    algorithm — yet its decoding graph is disconnected (the classical
    factor's decoder is a disjoint union of stars) and its encoders
    perform multiple copying.  It is the library's canonical example of a
    base graph where the technique of [6] does not apply but the paper's
    Theorem 1 does.
    """
    from repro.bilinear.catalog import classical, strassen

    return tensor_product(
        strassen(), classical(2), name="strassen(x)classical-2"
    )


@lru_cache(maxsize=None)
def strassen_squared() -> BilinearAlgorithm:
    """Strassen ⊗ Strassen: a 4x4 base with 49 products, same exponent
    log2 7.  Used to check that bounds and routings agree across different
    base-graph granularities of the *same* algorithm."""
    from repro.bilinear.catalog import strassen

    return tensor_power(strassen(), 2, name="strassen^2")


@lru_cache(maxsize=None)
def strassen_x_classical_su() -> BilinearAlgorithm:
    """``strassen (x) classical`` with duplicate nontrivial rows rescaled
    to distinct values (:func:`repro.bilinear.synthetic.make_single_use`).

    The raw tensor product violates the paper's single-use assumption
    (the classical factor repeats each combination across its ``k``
    loop); this variant restores the assumption while preserving every
    support — so it is a *fast*, paper-compliant algorithm whose decoder
    is disconnected: the exact case Theorem 1 newly covers (experiment
    E12's headline).
    """
    from repro.bilinear.synthetic import make_single_use

    return make_single_use(strassen_x_classical())


def sandwich_transform(
    alg: BilinearAlgorithm,
    X: np.ndarray,
    Y: np.ndarray,
    Z: np.ndarray,
    name: str | None = None,
) -> BilinearAlgorithm:
    """De Groote sandwiching: a new algorithm from invertible X, Y, Z.

    If ``<U, V, W>`` computes ``C = A B``, then substituting
    ``A = X^-1 A' Y^-1``, ``B = Y B' Z^-1`` and reading off
    ``C' = X C Z`` yields an algorithm for ``C' = A' B'`` — the classical
    symmetry group of the matrix-multiplication tensor (de Groote 1978;
    for 2x2 every 7-multiplication algorithm arises from Strassen's this
    way).  In row-major vec coordinates:

        U' = U (X^-1 ⊗ Y^-T),  V' = V (Y ⊗ Z^-T)... — see the code for
        the exact Kronecker orientation; the result is Brent-validated.

    The transformed coefficients are generally dense and non-integral:
    ideal stress inputs for everything downstream that must depend only
    on supports (routing, Hall matching) or must be coefficient-exact
    (evaluation).
    """
    n0 = alg.n0
    for mat, label in ((X, "X"), (Y, "Y"), (Z, "Z")):
        mat = np.asarray(mat, dtype=np.float64)
        if mat.shape != (n0, n0):
            raise ValueError(f"{label} must be {n0}x{n0}")
        if abs(np.linalg.det(mat)) < 1e-12:
            raise ValueError(f"{label} must be invertible")
    X = np.asarray(X, dtype=np.float64)
    Y = np.asarray(Y, dtype=np.float64)
    Z = np.asarray(Z, dtype=np.float64)
    Xi, Yi, Zi = (np.linalg.inv(M) for M in (X, Y, Z))
    # Row-major vec identity: vec(P Q R) = (P ⊗ R^T) vec(Q).
    # A = Xi A' Yi  => vec(A) = (Xi ⊗ Yi^T) vec(A').
    U2 = alg.U @ np.kron(Xi, Yi.T)
    # B = Y B' Zi   => vec(B) = (Y ⊗ Zi^T) vec(B').
    V2 = alg.V @ np.kron(Y, Zi.T)
    # C' = X C Z    => vec(C') = (X ⊗ Z^T) vec(C).
    W2 = np.kron(X, Z.T) @ alg.W
    return BilinearAlgorithm(
        n0=n0,
        U=U2,
        V=V2,
        W=W2,
        name=name or f"{alg.name}~sandwich",
        notes=f"De Groote sandwich transform of {alg.name}.",
    ).validate()


def random_equivalent(
    alg: BilinearAlgorithm, seed=None, integer: bool = True
) -> BilinearAlgorithm:
    """A random member of ``alg``'s de Groote equivalence class.

    ``integer=True`` draws X, Y, Z as random unimodular integer matrices
    (products of elementary row operations), keeping coefficients exact;
    otherwise well-conditioned random real matrices are used.
    """
    from repro.utils.rngs import make_rng

    rng = make_rng(seed)
    n0 = alg.n0

    def unimodular() -> np.ndarray:
        M = np.eye(n0)
        for _ in range(4):
            i, j = rng.integers(0, n0, size=2)
            if i != j:
                E = np.eye(n0)
                E[i, j] = float(rng.integers(-2, 3))
                M = M @ E
        return M

    def well_conditioned() -> np.ndarray:
        while True:
            M = rng.standard_normal((n0, n0))
            if np.linalg.cond(M) < 50:
                return M

    draw = unimodular if integer else well_conditioned
    return sandwich_transform(
        alg, draw(), draw(), draw(),
        name=f"{alg.name}~rand",
    )


def named_compositions() -> list[BilinearAlgorithm]:
    """Compositions addressable through :func:`repro.bilinear.by_name`."""
    return [strassen_x_classical(), strassen_squared(), strassen_x_classical_su()]
