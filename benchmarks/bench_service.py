"""Daemon cold/warm timing: the resident service vs a cold sweep.

The service exists so a *repeated* grid costs a socket round trip
instead of a process pool: the first submission dispatches to warm
workers, the resubmission is answered entirely from the result store
(``service.hit_no_worker``) without waking a worker.  This bench runs
the E9 smoke grid through a real daemon both ways and records the
ratio in ``BENCH_service.json`` — the acceptance floor is a 3x warm
speedup, which in practice is two to three orders of magnitude.

Two entry points:

- ``pytest benchmarks/bench_service.py`` — asserts the speedup floor;
- ``python benchmarks/bench_service.py [--out PATH]`` — standalone run
  that (re)writes the committed baseline artifact.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.runner import expand_grid
from repro.service import ServiceClient, ServiceConfig, ServiceThread

#: The E9 smoke grid: small enough for CI, wide enough that the cold
#: pass genuinely exercises workers, graph bundles and the shm tier.
E9_GRID = {"r_max": [3, 4], "cache_sizes": [[12, 24], [12, 24, 48]],
           "r_big": [None]}

SPEEDUP_FLOOR = 3.0


def measure(workers: int = 2) -> dict:
    """Cold submit vs warm resubmit of the E9 smoke grid, one daemon."""
    scratch = Path(tempfile.mkdtemp(prefix="bench-service-"))
    config = ServiceConfig(
        socket_path=str(scratch / "svc.sock"),
        cache_dir=str(scratch / "cache"),
        graph_cache=str(scratch / "graphs"),
        workers=workers,
    )
    specs = expand_grid("E9", E9_GRID)
    try:
        with ServiceThread(config):
            with ServiceClient(config.socket_path) as client:
                t0 = time.perf_counter()
                cold = client.submit(specs)
                cold_s = time.perf_counter() - t0
                t1 = time.perf_counter()
                warm = client.submit(specs)
                warm_s = time.perf_counter() - t1
                status = client.status()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    assert cold["ok"] == len(specs), f"cold pass failed: {cold}"
    assert cold["dispatched"] == len(specs)
    assert warm["ok"] == len(specs), f"warm pass failed: {warm}"
    assert warm["dispatched"] == 0, "warm resubmission woke a worker"
    assert warm["hits"] == len(specs)
    return {
        "schema": 1,
        "experiment": "service",
        "grid": {k: v for k, v in sorted(E9_GRID.items())},
        "jobs": len(specs),
        "workers": workers,
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 2),
        "hit_no_worker": status["hit_no_worker"],
        "counters": {
            name: value
            for name, value in sorted(status["counters"].items())
            if name.startswith(("service.", "graphcache."))
        },
    }


def test_warm_resubmission_speedup():
    doc = measure()
    assert doc["hit_no_worker"] == doc["jobs"]
    assert doc["speedup"] >= SPEEDUP_FLOOR, (
        f"warm E9 resubmission only {doc['speedup']}x faster "
        f"(cold {doc['cold_s']}s, warm {doc['warm_s']}s)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_service.json",
        help="baseline artifact path (default: %(default)s)",
    )
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)
    doc = measure(workers=args.workers)
    blob = json.dumps(doc, sort_keys=True, indent=2) + "\n"
    Path(args.out).write_text(blob, encoding="utf-8")
    print(blob, end="")
    if doc["speedup"] < SPEEDUP_FLOOR:
        print(f"FAIL: speedup {doc['speedup']}x < {SPEEDUP_FLOOR}x floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
