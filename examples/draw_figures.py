"""Regenerate the paper's structural figures as Graphviz DOT files.

Writes machine-generated counterparts of Figures 1-3 into ./figures/:

- figure1_strassen_base.dot   — Strassen's base graph G_1 (Figure 1);
- figure2_metavertex.dot      — a multiple-copying meta-vertex inside
  classical's G_2 (Figure 2's upward-branching tree);
- figure3_zigzag.txt          — an encoder zig-zag path (Figure 3):
  the Claim-1 routing's indirect hop where W lacks a direct edge;
- plus ASCII rank views of each base graph in the catalog.

Render with graphviz if available:  dot -Tpng figures/figure1_*.dot

Run:  python examples/draw_figures.py
"""

import pathlib

import numpy as np

from repro.bilinear import classical, list_catalog, strassen
from repro.cdag import (
    ascii_ranks,
    build_base_graph,
    build_cdag,
    compute_metavertices,
    describe_vertex,
    to_dot,
)
from repro.routing import claim1_routing


def main() -> None:
    out_dir = pathlib.Path("figures")
    out_dir.mkdir(exist_ok=True)

    # Figure 1: the base graph of Strassen's algorithm.
    g1 = build_base_graph(strassen())
    (out_dir / "figure1_strassen_base.dot").write_text(to_dot(g1))
    print(f"figure1: G_1 of strassen ({g1.n_vertices} vertices) -> "
          f"{out_dir}/figure1_strassen_base.dot")

    # Figure 2: a branching meta-vertex (multiple copying).
    g2 = build_cdag(classical(2), 2)
    meta = compute_metavertices(g2)
    root = int(meta.multi_copy_roots()[0])
    members = meta.members(root)
    lines = ["digraph metavertex {", "  rankdir=BT;",
             "  node [style=filled, fillcolor=lightyellow];"]
    member_set = set(members.tolist())
    for v in members.tolist():
        shape = "doublecircle" if v == root else "circle"
        lines.append(
            f'  v{v} [label="{describe_vertex(g2, v)}", shape={shape}];'
        )
        for s in g2.successors(v).tolist():
            if s in member_set:
                lines.append(f"  v{v} -> v{s};")
    lines.append("}")
    (out_dir / "figure2_metavertex.dot").write_text("\n".join(lines))
    print(f"figure2: meta-vertex rooted at {describe_vertex(g2, root)} "
          f"with {len(members)} members -> figures/figure2_metavertex.dot")

    # Figure 3: a zig-zag path in the decoder routing.
    gk = build_cdag(strassen(), 2)
    routing = claim1_routing(gk)
    zigzag = max(routing.paths, key=len)
    text = ["A maximally indirect Claim-1 path (paper Figure 3's zig-zag):"]
    for v in zigzag.tolist():
        text.append(f"  {describe_vertex(gk, v)}")
    (out_dir / "figure3_zigzag.txt").write_text("\n".join(text))
    print(f"figure3: zig-zag of length {len(zigzag)} -> "
          "figures/figure3_zigzag.txt")

    # ASCII rank views for the whole catalog.
    for alg in list_catalog():
        path = out_dir / f"ranks_{alg.name}.txt"
        path.write_text(ascii_ranks(build_base_graph(alg)))
    print(f"rank views for {len(list_catalog())} base graphs written.")


if __name__ == "__main__":
    main()
