"""Construct and verify the paper's Routing Theorem certificate.

Walks the full pipeline of Section 7 for a chosen algorithm:

1. the Hall graph H and the capacity-n0 matching (Lemma 5 / Theorem 3),
2. chains for all guaranteed dependencies with Claim-2 lifting
   (Lemma 3),
3. the concatenation routing over all input-output pairs (Lemma 4),
4. the verified 6 a^k bound, per vertex and per meta-vertex (Theorem 2),

and prints what was measured vs what the paper claims.

Run:  python examples/routing_certificate.py [algorithm] [k]
      e.g. python examples/routing_certificate.py laderman 1
"""

import sys

from repro.bilinear import by_name, strassen
from repro.cdag import build_cdag, compute_metavertices
from repro.routing import (
    base_matching,
    chain_usage_counts,
    hall_graph,
    lemma3_routing,
    theorem2_certificate,
)
from repro.utils.flow import degree_histogram
from repro.utils.tables import TextTable


def main(name: str = "strassen", k: int = 2) -> None:
    alg = by_name(name) if name != "strassen" else strassen()
    print(f"Routing certificate for {alg.name}, k={k} "
          f"(a={alg.a}, b={alg.b}, n0={alg.n0})\n")

    # Step 1: Hall matching on the base graph.
    for side in ("A", "B"):
        deps, adjacency = hall_graph(alg, side)
        matching = base_matching(alg, side)
        loads = degree_histogram(list(matching.values()))
        print(f"Hall matching side {side}: {len(deps)} dependencies -> "
              f"{alg.b} multiplications, max load "
              f"{max(loads.values())} (capacity n0 = {alg.n0})")

    # Steps 2-4: the full certificate.
    cert = theorem2_certificate(alg, k)
    table = TextTable(["quantity", "paper claim", "measured"])
    table.add_row(["paths (|In| x |Out|)", 2 * alg.a**k * alg.a**k,
                   cert.report.n_paths])
    table.add_row(["Lemma 3 max vertex hits", f"<= {2 * alg.n0**k}",
                   cert.lemma3_max_hits])
    table.add_row(["Lemma 4 chain usage", f"= {3 * alg.n0**k}",
                   "exact" if cert.chains_used_exactly_3n0k else "VIOLATED"])
    table.add_row(["Theorem 2 vertex hits", f"<= {cert.claimed_m}",
                   cert.report.max_vertex_hits])
    table.add_row(["Theorem 2 meta-vertex hits", f"<= {cert.claimed_m}",
                   cert.report.max_meta_hits])
    print()
    print(table.render())
    print(f"\nCertificate verified: {cert.report.within_bound}")
    if not cert.single_use:
        print("note: this algorithm violates the single-use assumption; "
              "the verified certificate is empirical evidence for the "
              "paper's Section-8 conjecture.")

    # Bonus: show one concrete chain.
    g = build_cdag(alg, k)
    chains = lemma3_routing(g)
    path = chains.paths[0]
    from repro.cdag import describe_vertex

    print("\nA guaranteed-dependence chain (input -> ... -> output):")
    for v in path.tolist():
        print(f"  {describe_vertex(g, v)}")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "strassen"
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    main(name, k)
