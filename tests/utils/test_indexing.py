"""Unit and property tests for mixed-radix indexing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.indexing import (
    MixedRadix,
    digits_to_int,
    int_to_digits,
    pack_tuple,
    pair_index,
    pair_unindex,
    unpack_tuple,
)


class TestDigitsToInt:
    def test_uniform_base_example(self):
        assert digits_to_int([1, 0, 2], 3) == 11

    def test_empty_digits(self):
        assert digits_to_int([], 5) == 0

    def test_single_digit(self):
        assert digits_to_int([4], 7) == 4

    def test_msd_first(self):
        # digit 0 is most significant
        assert digits_to_int([1, 0], 10) == 10

    def test_out_of_range_digit_raises(self):
        with pytest.raises(ValueError):
            digits_to_int([3], 3)

    def test_negative_digit_raises(self):
        with pytest.raises(ValueError):
            digits_to_int([-1], 3)


class TestIntToDigits:
    def test_example(self):
        assert int_to_digits(11, 3, 3) == (1, 0, 2)

    def test_zero_padding(self):
        assert int_to_digits(1, 2, 4) == (0, 0, 0, 1)

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            int_to_digits(8, 2, 3)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            int_to_digits(-1, 2, 3)

    @given(
        st.integers(min_value=2, max_value=9),
        st.integers(min_value=1, max_value=8),
        st.data(),
    )
    def test_roundtrip(self, radix, length, data):
        value = data.draw(
            st.integers(min_value=0, max_value=radix**length - 1)
        )
        assert digits_to_int(int_to_digits(value, radix, length), radix) == value


class TestMixedRadix:
    def test_size(self):
        assert MixedRadix([7, 7, 4]).size == 196

    def test_pack_unpack_example(self):
        mr = MixedRadix([7, 7, 4])
        assert mr.pack((6, 0, 3)) == 171
        assert mr.unpack(171) == (6, 0, 3)

    def test_empty(self):
        mr = MixedRadix([])
        assert mr.size == 1
        assert mr.pack(()) == 0
        assert mr.unpack(0) == ()

    def test_len(self):
        assert len(MixedRadix([2, 3, 4])) == 3

    def test_nonuniform_radices(self):
        mr = MixedRadix([2, 3])
        seen = {mr.pack((d0, d1)) for d0 in range(2) for d1 in range(3)}
        assert seen == set(range(6))

    def test_pack_wrong_length_raises(self):
        with pytest.raises(ValueError):
            MixedRadix([2, 2]).pack((1,))

    def test_pack_out_of_range_raises(self):
        with pytest.raises(ValueError):
            MixedRadix([2, 2]).pack((1, 2))

    def test_unpack_out_of_range_raises(self):
        with pytest.raises(ValueError):
            MixedRadix([2, 2]).unpack(4)

    def test_zero_radix_raises(self):
        with pytest.raises(ValueError):
            MixedRadix([2, 0])

    @given(st.lists(st.integers(min_value=1, max_value=6), max_size=6), st.data())
    def test_roundtrip_property(self, radices, data):
        mr = MixedRadix(radices)
        value = data.draw(st.integers(min_value=0, max_value=mr.size - 1))
        assert mr.pack(mr.unpack(value)) == value

    def test_pack_array_matches_scalar(self):
        mr = MixedRadix([3, 5, 2])
        values = np.arange(mr.size)
        cols = mr.unpack_array(values)
        repacked = mr.pack_array(cols)
        np.testing.assert_array_equal(repacked, values)

    def test_unpack_array_matches_scalar(self):
        mr = MixedRadix([4, 3])
        for v in range(mr.size):
            cols = mr.unpack_array(np.array([v]))
            assert tuple(int(c[0]) for c in cols) == mr.unpack(v)

    def test_pack_array_wrong_columns_raises(self):
        mr = MixedRadix([2, 2])
        with pytest.raises(ValueError):
            mr.pack_array([np.array([0])])


class TestOneShotHelpers:
    def test_pack_tuple(self):
        assert pack_tuple((1, 1), (2, 2)) == 3

    def test_unpack_tuple(self):
        assert unpack_tuple(3, (2, 2)) == (1, 1)


class TestPairIndex:
    def test_row_major(self):
        assert pair_index(0, 0, 3) == 0
        assert pair_index(0, 2, 3) == 2
        assert pair_index(1, 0, 3) == 3
        assert pair_index(2, 2, 3) == 8

    def test_unindex_roundtrip(self):
        n = 4
        for e in range(n * n):
            r, c = pair_unindex(e, n)
            assert pair_index(r, c, n) == e

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            pair_index(3, 0, 3)
        with pytest.raises(ValueError):
            pair_unindex(9, 3)
