"""Tests for Fact 1 decomposition and Lemma 1 input-disjoint families."""

import numpy as np
import pytest

from repro.bilinear import classical, laderman, strassen, strassen_x_classical
from repro.cdag import (
    Region,
    build_cdag,
    compute_metavertices,
    input_disjoint_family,
    middle_ranks_vertices,
    subcomputation,
    subcomputation_count,
    subcomputation_of_vertex,
    verify_fact1,
)
from repro.errors import CDAGError


@pytest.fixture(scope="module")
def g3():
    return build_cdag(strassen(), 3)


class TestFact1:
    def test_copy_count(self, g3):
        assert subcomputation_count(g3, 1) == 7**2
        assert subcomputation_count(g3, 3) == 1
        assert subcomputation_count(g3, 0) == 7**3

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_verify_fact1_strassen(self, g3, k):
        report = verify_fact1(g3, k)
        assert report["ok"], report

    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_verify_fact1_laderman(self, k):
        g = build_cdag(laderman(), 2)
        assert verify_fact1(g, k)["ok"]

    def test_verify_fact1_classical(self):
        g = build_cdag(classical(2), 3)
        assert verify_fact1(g, 1)["ok"]

    def test_copies_partition_middle_ranks(self, g3):
        k = 1
        middle = set(middle_ranks_vertices(g3, k).tolist())
        seen = set()
        for i in range(subcomputation_count(g3, k)):
            vs = set(subcomputation(g3, k, i).all_vertices().tolist())
            assert not (vs & seen)
            seen |= vs
        assert seen == middle

    def test_invalid_k_raises(self, g3):
        with pytest.raises(CDAGError):
            subcomputation_count(g3, 4)
        with pytest.raises(CDAGError):
            subcomputation_count(g3, -1)

    def test_invalid_index_raises(self, g3):
        with pytest.raises(CDAGError):
            subcomputation(g3, 1, 49)


class TestSubcomputation:
    def test_io_counts(self, g3):
        sub = subcomputation(g3, 2, 3)
        assert len(sub.inputs("A")) == 4**2
        assert len(sub.inputs()) == 2 * 4**2
        assert len(sub.outputs()) == 4**2
        assert len(sub.products()) == 7**2

    def test_prefix_roundtrip(self, g3):
        sub = subcomputation(g3, 1, 10)
        assert len(sub.prefix) == 2
        from repro.utils.indexing import MixedRadix

        assert MixedRadix([7, 7]).pack(sub.prefix) == 10

    def test_vertex_membership(self, g3):
        k = 1
        sub = subcomputation(g3, k, 5)
        for v in sub.all_vertices().tolist():
            assert subcomputation_of_vertex(g3, v, k) == 5

    def test_vertex_outside_middle_ranks(self, g3):
        # An input of G_r lies below the middle ranks for k < r.
        v = int(g3.inputs()[0])
        assert subcomputation_of_vertex(g3, v, 1) is None

    def test_local_id_maps_ranks(self, g3):
        k = 2
        sub = subcomputation(g3, k, 6)
        gk = build_cdag(strassen(), k)
        for v in sub.inputs("A").tolist():
            lv = sub.local_id(v)
            assert lv in gk.inputs("A").tolist()
        for v in sub.outputs().tolist():
            lv = sub.local_id(v)
            assert lv in gk.outputs().tolist()

    def test_local_id_wrong_copy_raises(self, g3):
        sub0 = subcomputation(g3, 1, 0)
        sub1 = subcomputation(g3, 1, 1)
        v = int(sub1.products()[0])
        with pytest.raises(CDAGError):
            sub0.local_id(v)

    def test_local_id_outside_ranks_raises(self, g3):
        sub = subcomputation(g3, 1, 0)
        v = int(g3.inputs()[0])
        with pytest.raises(CDAGError):
            sub.local_id(v)

    def test_encoder_rank_bounds(self, g3):
        sub = subcomputation(g3, 1, 0)
        with pytest.raises(CDAGError):
            sub.encoder_rank("A", 2)
        with pytest.raises(CDAGError):
            sub.decoder_rank(-1)


class TestLemma1:
    def test_strassen_all_copies_disjoint(self, g3):
        """Strassen has only chains, so every copy qualifies."""
        meta = compute_metavertices(g3)
        family = input_disjoint_family(g3, 1, meta)
        assert len(family) == 49

    def test_family_is_input_disjoint(self, g3):
        meta = compute_metavertices(g3)
        family = input_disjoint_family(g3, 1, meta)
        seen = set()
        for i in family:
            labels = set(meta.label[subcomputation(g3, 1, i).inputs()].tolist())
            assert not (labels & seen)
            seen |= labels

    def test_multicopy_algorithm_selection(self):
        """strassen(x)classical has multiple copying: the constructive
        selection must produce b^(r-k-2) mutually disjoint copies."""
        g = build_cdag(strassen_x_classical(), 2)
        meta = compute_metavertices(g)
        family = input_disjoint_family(g, 0, meta)
        assert len(family) == 56 ** 0
        # Verify disjointness explicitly.
        seen = set()
        for i in family:
            labels = set(meta.label[subcomputation(g, 0, i).inputs()].tolist())
            assert not (labels & seen)
            seen |= labels

    def test_classical_fails_lemma1_precondition(self):
        """Classical has only trivial encoder rows, so the Lemma 1
        precondition fails — exactly the paper's remark that such
        algorithms are not fast."""
        g = build_cdag(classical(2), 4)
        meta = compute_metavertices(g)
        with pytest.raises(CDAGError, match="trivial rows"):
            input_disjoint_family(g, 1, meta)

    def test_multicopy_fast_path_large_r(self):
        """Duplicated-trivial-product Strassen (b=8) has multiple
        copying but nontrivial rows: the constructive selection yields
        b^(r-k-2) mutually disjoint copies."""
        from repro.bilinear.synthetic import with_duplicate_product

        alg = with_duplicate_product(strassen(), product=2)
        g = build_cdag(alg, 4)
        meta = compute_metavertices(g)
        family = input_disjoint_family(g, 1, meta)
        assert len(family) == 8 ** (4 - 1 - 2)
        seen = set()
        for i in family:
            labels = set(meta.label[subcomputation(g, 1, i).inputs()].tolist())
            assert not (labels & seen)
            seen |= labels

    def test_k_too_large_with_multicopy_raises(self):
        g = build_cdag(classical(2), 2)
        meta = compute_metavertices(g)
        with pytest.raises(CDAGError):
            input_disjoint_family(g, 1, meta)

    def test_fraction_at_least_inverse_b_squared(self):
        """Lemma 1's statement: the family is >= 1/b^2 of all copies."""
        from repro.bilinear.synthetic import with_duplicate_product

        alg = with_duplicate_product(strassen(), product=2)
        g = build_cdag(alg, 4)
        meta = compute_metavertices(g)
        family = input_disjoint_family(g, 1, meta)
        total = subcomputation_count(g, 1)
        assert len(family) * g.b**2 >= total
