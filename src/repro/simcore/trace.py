"""Trace-cache engine of the simulation core.

One implementation of the write-back, write-allocate LRU cache serves
every address-trace simulator: the set-associative engine
(:class:`LRUCacheCore`, with fully-associative = one set) replaces the
four inlined copies of the eviction rule that
:mod:`repro.tracesim.cache` used to carry, and the columnar
:func:`run_trace_grid` kernel steps many capacities over one trace in
lockstep — the same ``(config, slot)`` layout as the pebbling grid
kernel.

The lockstep kernel relies on an LRU-specific degeneracy: every touch
re-stamps a line with the current access index, so stamps are pushed in
strictly increasing order and the lazy min-heap of ``(stamp, line)``
entries *is* the access stream itself.  Victim selection is a pointer
walking forward through the trace until it finds a position whose line
is still cached and was last touched exactly there — no heap storage,
no ordering work, and the per-config state is just the dense
``(config, line)`` matrices plus one queue pointer per config.
Equivalence with the ``OrderedDict`` engine (move-to-end on hit,
pop-oldest on miss) is structural — unique increasing stamps make
"oldest inserted/touched" and "minimum stamp" the same line — and the
tracesim equivalence suite asserts it anyway.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.simcore.dispatch import (
    active_mode,
    count_path,
    njit,
    note_first_call,
)

__all__ = ["CacheStats", "LRUCacheCore", "run_trace_grid"]


@dataclass
class CacheStats:
    """Access counters for one simulated run.

    Counters form a commutative monoid under ``+`` (identity
    ``CacheStats()``), so per-shard counters collected from parallel
    runner workers aggregate losslessly — including write-backs, which
    derived measures like :attr:`io` depend on.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def io(self) -> int:
        """Reads from + writes to slow memory (the paper's measure, at
        line granularity)."""
        return self.misses + self.writebacks

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            writebacks=self.writebacks + other.writebacks,
        )

    def __radd__(self, other) -> "CacheStats":
        if other == 0:  # supports sum(stats_list)
            return CacheStats(self.accesses, self.hits, self.misses,
                              self.writebacks)
        return self.__add__(other)

    @classmethod
    def merge(cls, shards) -> "CacheStats":
        """Sum an iterable of per-shard counters into one total."""
        total = cls()
        for shard in shards:
            total = total + shard
        return total

    def as_dict(self) -> dict:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
        }

    @classmethod
    def from_dict(cls, counters) -> "CacheStats":
        return cls(
            accesses=int(counters["accesses"]),
            hits=int(counters["hits"]),
            misses=int(counters["misses"]),
            writebacks=int(counters["writebacks"]),
        )


class LRUCacheCore:
    """The one dict-based LRU cache state: ``n_sets`` buckets of at most
    ``ways`` lines each, write-back and write-allocate.

    Fully associative is ``n_sets=1, ways=capacity``.  The tracesim
    classes are thin views over an instance of this core — they own the
    :class:`CacheStats`, spans and address-to-line mapping; the core
    owns the eviction rule, exactly once.
    """

    __slots__ = ("n_sets", "ways", "buckets")

    def __init__(self, n_sets: int, ways: int):
        self.n_sets = n_sets
        self.ways = ways
        self.buckets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(n_sets)
        ]

    def access(self, line: int, is_write: bool) -> tuple[bool, bool]:
        """Touch ``line``; returns ``(hit, wrote_back)``."""
        bucket = self.buckets[line % self.n_sets] if self.n_sets > 1 \
            else self.buckets[0]
        if line in bucket:
            bucket.move_to_end(line)
            if is_write:
                bucket[line] = True
            return True, False
        wrote_back = False
        if len(bucket) >= self.ways:
            _, dirty = bucket.popitem(last=False)
            wrote_back = bool(dirty)
        bucket[line] = is_write
        return False, wrote_back

    def flush(self) -> int:
        """Drop every line; returns the number of dirty write-backs."""
        writebacks = 0
        for bucket in self.buckets:
            for dirty in bucket.values():
                if dirty:
                    writebacks += 1
            bucket.clear()
        return writebacks

    def run_counts(self, trace, line_size: int) -> tuple[int, int, int, int]:
        """Consume ``(address, is_write)`` pairs; returns the raw
        ``(accesses, hits, misses, writebacks)`` counts **without**
        flushing.

        This is the one inlined hot loop (locally bound dict methods, no
        per-access attribute lookups — the E10 traces run to 10^7
        accesses) that used to exist in four copies across the tracesim
        structs.  The fully-associative case hoists the single bucket
        out of the loop.
        """
        accesses = hits = misses = writebacks = 0
        n_sets = self.n_sets
        ways = self.ways
        if n_sets == 1:
            bucket = self.buckets[0]
            move_to_end = bucket.move_to_end
            popitem = bucket.popitem
            for address, is_write in trace:
                line = address // line_size if line_size > 1 else address
                accesses += 1
                if line in bucket:
                    hits += 1
                    move_to_end(line)
                    if is_write:
                        bucket[line] = True
                    continue
                misses += 1
                if len(bucket) >= ways:
                    _, dirty = popitem(last=False)
                    if dirty:
                        writebacks += 1
                bucket[line] = is_write
            return accesses, hits, misses, writebacks
        buckets = self.buckets
        for address, is_write in trace:
            line = address // line_size if line_size > 1 else address
            bucket = buckets[line % n_sets]
            accesses += 1
            if line in bucket:
                hits += 1
                bucket.move_to_end(line)
                if is_write:
                    bucket[line] = True
                continue
            misses += 1
            if len(bucket) >= ways:
                _, dirty = bucket.popitem(last=False)
                if dirty:
                    writebacks += 1
            bucket[line] = is_write
        return accesses, hits, misses, writebacks


# ----------------------------------------------------------------------
# Columnar lockstep kernel (fully associative; see module docstring).
# ----------------------------------------------------------------------

#: ``run_trace_grid`` output columns.
TR_ACCESSES, TR_HITS, TR_MISSES, TR_WRITEBACKS = 0, 1, 2, 3
TR_LEN = 4


@njit(cache=True, nogil=True)
def _trace_lockstep(lines, wbit, capacities, cached, dirty, stamp, qptr,
                    n_cached, out):
    """Step every capacity row through the dense-line trace in lockstep.

    ``lines`` holds dense line ids in ``[0, L)``; all ``(config, line)``
    state matrices are initialised here.  ``qptr`` row ``j`` is the lazy
    LRU queue head: positions before it are all stale for row ``j``.
    """
    A = lines.shape[0]
    C = capacities.shape[0]
    L = cached.shape[1]
    for j in range(C):
        for k in range(TR_LEN):
            out[j, k] = 0
        for i in range(L):
            cached[j, i] = 0
            dirty[j, i] = 0
            stamp[j, i] = 0
        qptr[j] = 0
        n_cached[j] = 0
    for a in range(A):
        line = lines[a]
        w = wbit[a]
        for j in range(C):
            out[j, TR_ACCESSES] += 1
            if cached[j, line]:
                out[j, TR_HITS] += 1
                stamp[j, line] = a
                if w:
                    dirty[j, line] = 1
            else:
                out[j, TR_MISSES] += 1
                if n_cached[j] >= capacities[j]:
                    q = qptr[j]
                    while True:
                        u = lines[q]
                        if cached[j, u] and stamp[j, u] == q:
                            cached[j, u] = 0
                            n_cached[j] -= 1
                            if dirty[j, u]:
                                out[j, TR_WRITEBACKS] += 1
                                dirty[j, u] = 0
                            q += 1
                            break
                        q += 1
                    qptr[j] = q
                cached[j, line] = 1
                dirty[j, line] = w
                stamp[j, line] = a
                n_cached[j] += 1
    # Flush: every dirty resident line writes back at end of run.
    for j in range(C):
        for i in range(L):
            if cached[j, i] and dirty[j, i]:
                out[j, TR_WRITEBACKS] += 1


def densify_trace(addresses, is_write, line_size: int = 1):
    """Map an address trace onto dense line ids: returns
    ``(lines, wbit)`` with ``lines`` in ``[0, L)`` — the bounded-id
    regime the columnar kernel's ``(config, line)`` state needs."""
    addresses = np.ascontiguousarray(addresses, dtype=np.int64)
    lines = addresses // line_size if line_size > 1 else addresses
    _, dense = np.unique(lines, return_inverse=True)
    wbit = np.ascontiguousarray(is_write, dtype=np.uint8)
    return np.ascontiguousarray(dense, dtype=np.int64), wbit


def run_trace_grid(addresses, is_write, capacities,
                   line_size: int = 1) -> list[CacheStats]:
    """Batched fully-associative LRU sweep: one pass over the trace
    steps every capacity in lockstep; returns one :class:`CacheStats`
    (flush included) per capacity.

    Falls back to the dict engine per capacity when the kernels are off
    — bit-identical by the tracesim equivalence suite.
    """
    caps = np.ascontiguousarray(capacities, dtype=np.int64)
    C = caps.shape[0]
    mode = active_mode()
    if mode == "off":
        out = []
        for cap in caps.tolist():
            core = LRUCacheCore(1, int(cap))
            counts = core.run_counts(zip(addresses, is_write), line_size)
            stats = CacheStats(*counts)
            stats.writebacks += core.flush()
            out.append(stats)
        count_path("off", C)
        return out
    lines, wbit = densify_trace(addresses, is_write, line_size)
    L = max(1, int(lines.max()) + 1) if lines.size else 1
    cached = np.empty((C, L), dtype=np.uint8)
    dirty = np.empty((C, L), dtype=np.uint8)
    stamp = np.empty((C, L), dtype=np.int64)
    qptr = np.empty(C, dtype=np.int64)
    n_cached = np.empty(C, dtype=np.int64)
    out = np.empty((C, TR_LEN), dtype=np.int64)
    t0 = perf_counter()
    _trace_lockstep(lines, wbit, caps, cached, dirty, stamp, qptr,
                    n_cached, out)
    note_first_call(perf_counter() - t0)
    count_path(mode, C)
    return [CacheStats(*(int(x) for x in row)) for row in out]
