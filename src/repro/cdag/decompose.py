"""Fact 1 and Lemma 1: cutting ``G_r`` into copies of ``G_k``.

Fact 1 (paper): for ``0 <= k <= r``, the middle ``2(k+1)`` ranks of
``G_r`` — encoder ranks ``r-k .. r`` plus decoding ranks ``0 .. k`` —
consist of ``b^(r-k)`` vertex-disjoint copies of ``G_k``, indexed by the
leading ``r-k`` multiplication digits shared by all their vertices.

Lemma 1: provided neither encoder consists solely of duplicated (trivial)
rows, at least a ``1/b^2`` fraction of these subcomputations can be
chosen *mutually input-disjoint* (no two share an input meta-vertex).
The proof is constructive — pick, under every "grandparent" prefix of
length ``r-k-2``, the descendant reached by one nontrivial ``U`` row then
one nontrivial ``V`` row — and :func:`input_disjoint_family` implements
exactly that construction (with the stronger "all of them" answer when
the algorithm has no multiple copying, e.g. Strassen).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdag.graph import CDAG, Region
from repro.cdag.metavertex import MetaVertexPartition
from repro.errors import CDAGError
from repro.telemetry.spans import add_counter, traced
from repro.utils.indexing import MixedRadix

__all__ = [
    "Subcomputation",
    "subcomputation",
    "subcomputation_count",
    "subcomputation_of_vertex",
    "middle_ranks_vertices",
    "input_disjoint_family",
    "verify_fact1",
]


@dataclass(frozen=True)
class Subcomputation:
    """One copy ``G_k^i`` of ``G_k`` inside ``G_r`` (Fact 1).

    Attributes
    ----------
    cdag:
        The ambient ``G_r``.
    k:
        Recursion depth of the copy.
    index:
        Copy index ``i`` in ``[0, b^(r-k))`` — the packed leading
        multiplication digits.
    """

    cdag: CDAG
    k: int
    index: int

    @property
    def prefix(self) -> tuple[int, ...]:
        """The leading ``r-k`` multiplication digits identifying the copy."""
        return MixedRadix([self.cdag.b] * (self.cdag.r - self.k)).unpack(self.index)

    # ------------------------------------------------------------------
    # Vertex sets (all as global ids in G_r)
    # ------------------------------------------------------------------

    def encoder_rank(self, side: str, local_rank: int) -> np.ndarray:
        """Vertices of this copy on encoder rank ``r-k+local_rank`` of
        ``G_r`` — i.e. rank ``local_rank`` of the copy's own encoder."""
        cdag, k = self.cdag, self.k
        if not 0 <= local_rank <= k:
            raise CDAGError(f"encoder rank {local_rank} outside 0..{k}")
        region = Region.ENC_A if side == "A" else Region.ENC_B
        slab = cdag.slab(region, cdag.r - k + local_rank)
        # Slab digits: (m_1 .. m_{r-k+local}, e_rest); our copy fixes the
        # first r-k digits; the rest enumerate b^local * a^(k-local).
        block = cdag.b**local_rank * cdag.a ** (k - local_rank)
        start = slab.offset + self.index * block
        return np.arange(start, start + block, dtype=np.int64)

    def decoder_rank(self, local_rank: int) -> np.ndarray:
        """Vertices of this copy on decoding rank ``local_rank`` (of both
        the copy and G_r — decoding ranks align)."""
        cdag, k = self.cdag, self.k
        if not 0 <= local_rank <= k:
            raise CDAGError(f"decoder rank {local_rank} outside 0..{k}")
        slab = cdag.slab(Region.DEC, local_rank)
        block = cdag.b ** (k - local_rank) * cdag.a**local_rank
        start = slab.offset + self.index * block
        return np.arange(start, start + block, dtype=np.int64)

    def inputs(self, side: str | None = None) -> np.ndarray:
        """The copy's inputs: encoder rank ``r-k`` vertices (``a^k`` per
        side)."""
        if side is not None:
            return self.encoder_rank(side, 0)
        return np.concatenate([self.encoder_rank("A", 0), self.encoder_rank("B", 0)])

    def outputs(self) -> np.ndarray:
        """The copy's outputs: decoding rank ``k`` vertices (``a^k``)."""
        return self.decoder_rank(self.k)

    def products(self) -> np.ndarray:
        """The copy's multiplication vertices (``b^k``)."""
        return self.decoder_rank(0)

    def all_vertices(self) -> np.ndarray:
        """Every vertex of the copy."""
        parts = [self.encoder_rank(s, i) for s in ("A", "B") for i in range(self.k + 1)]
        parts += [self.decoder_rank(j) for j in range(self.k + 1)]
        return np.concatenate(parts)

    def local_id(self, v: int) -> int:
        """Map a vertex of this copy to its id in a standalone ``G_k``
        built from the same base algorithm — the Fact 1 isomorphism."""
        cdag, k = self.cdag, self.k
        reg, local_rank, digits = cdag.vertex_digits(v)
        if reg == Region.DEC:
            if not 0 <= local_rank <= k:
                raise CDAGError(f"vertex {v} outside the copy's decoder ranks")
            inner_rank = local_rank
        else:
            inner_rank = local_rank - (cdag.r - k)
            if not 0 <= inner_rank <= k:
                raise CDAGError(f"vertex {v} outside the copy's encoder ranks")
        prefix, rest = digits[: cdag.r - k], digits[cdag.r - k :]
        if MixedRadix([cdag.b] * (cdag.r - k)).pack(prefix) != self.index:
            raise CDAGError(f"vertex {v} belongs to a different subcomputation")
        if reg == Region.DEC:
            radix = MixedRadix([cdag.b] * (k - inner_rank) + [cdag.a] * inner_rank)
        else:
            radix = MixedRadix([cdag.b] * inner_rank + [cdag.a] * (k - inner_rank))
        # Standalone G_k uses the same slab layout with r=k.
        gk = _gk_cache(cdag.alg, k)
        return gk.slab(reg, inner_rank).offset + radix.pack(rest)

    def global_id(self, local_vertex: int) -> int:
        """Inverse of :meth:`local_id`: map a vertex of the standalone
        ``G_k`` into this copy inside ``G_r``."""
        cdag, k = self.cdag, self.k
        gk = _gk_cache(cdag.alg, k)
        reg, inner_rank, digits = gk.vertex_digits(local_vertex)
        if reg == Region.DEC:
            outer_rank = inner_rank
            radix = MixedRadix(
                [cdag.b] * (cdag.r - inner_rank) + [cdag.a] * inner_rank
            )
        else:
            outer_rank = cdag.r - k + inner_rank
            radix = MixedRadix(
                [cdag.b] * outer_rank + [cdag.a] * (cdag.r - outer_rank)
            )
        full_digits = self.prefix + digits
        return cdag.slab(reg, outer_rank).offset + radix.pack(full_digits)

    def __repr__(self) -> str:
        return f"Subcomputation(k={self.k}, index={self.index}, prefix={self.prefix})"


_GK_CACHE: dict[tuple[str, int, int, int], CDAG] = {}


def _gk_cache(alg, k: int) -> CDAG:
    """Cache standalone G_k graphs keyed by algorithm identity."""
    from repro.cdag.builder import build_cdag

    key = (alg.name, alg.a, alg.b, k)
    if key not in _GK_CACHE:
        add_counter("gk_cache_misses")
        _GK_CACHE[key] = build_cdag(alg, k)
    return _GK_CACHE[key]


def subcomputation_count(cdag: CDAG, k: int) -> int:
    """Number of ``G_k`` copies in ``G_r`` (Fact 1): ``b^(r-k)``."""
    _check_k(cdag, k)
    return cdag.b ** (cdag.r - k)


def subcomputation(cdag: CDAG, k: int, index: int) -> Subcomputation:
    """The ``index``-th copy of ``G_k`` in ``G_r``."""
    _check_k(cdag, k)
    count = subcomputation_count(cdag, k)
    if not 0 <= index < count:
        raise CDAGError(f"subcomputation index {index} outside [0, {count})")
    return Subcomputation(cdag, k, index)


def subcomputation_of_vertex(cdag: CDAG, v: int, k: int) -> int | None:
    """Index of the ``G_k`` copy containing vertex ``v``, or ``None`` if
    ``v`` lies outside the middle ``2(k+1)`` ranks."""
    _check_k(cdag, k)
    reg, local_rank, digits = cdag.vertex_digits(v)
    if reg == Region.DEC:
        if local_rank > k:
            return None
    else:
        if local_rank < cdag.r - k:
            return None
    prefix = digits[: cdag.r - k]
    return MixedRadix([cdag.b] * (cdag.r - k)).pack(prefix)


def middle_ranks_vertices(cdag: CDAG, k: int) -> np.ndarray:
    """All vertices of ``G_{r,k}`` (the middle ``2(k+1)`` ranks)."""
    _check_k(cdag, k)
    parts = []
    for region in (Region.ENC_A, Region.ENC_B):
        for i in range(cdag.r - k, cdag.r + 1):
            parts.append(cdag.slab_vertices(region, i))
    for j in range(k + 1):
        parts.append(cdag.slab_vertices(Region.DEC, j))
    return np.concatenate(parts)


@traced("cdag.input_disjoint_family")
def input_disjoint_family(
    cdag: CDAG,
    k: int,
    meta: MetaVertexPartition,
) -> list[int]:
    """A mutually input-disjoint family of ``G_k`` copies (Lemma 1).

    Returns subcomputation indices.  If the CDAG has no duplicated
    vertices at the copies' input rank, *all* ``b^(r-k)`` copies are
    returned (they are automatically disjoint — a chain never has two
    vertices on one rank).  Otherwise the paper's constructive selection
    is used: requires ``k <= r-2`` and at least one nontrivial row in each
    encoder, and returns exactly ``b^(r-k-2)`` indices.

    Raises
    ------
    CDAGError
        If the Lemma 1 precondition fails (an encoder with only trivial
        rows — the algorithm is then no better than classical, per the
        paper's discussion after Lemma 1).
    """
    _check_k(cdag, k)
    alg, r = cdag.alg, cdag.r
    n_copies = subcomputation_count(cdag, k)

    # Fast path: no duplicated input-rank vertices at all.
    input_rank_vertices = np.concatenate(
        [cdag.slab_vertices(Region.ENC_A, r - k), cdag.slab_vertices(Region.ENC_B, r - k)]
    )
    labels = meta.label[input_rank_vertices]
    if len(np.unique(labels)) == len(labels):
        add_counter("family_size", n_copies)
        return list(range(n_copies))

    if k > r - 2:
        raise CDAGError(
            "Lemma 1 construction needs k <= r-2 when the inputs contain "
            f"duplicated vertices (got k={k}, r={r})"
        )

    nontrivial_u = np.nonzero(~alg.trivial_rows("A"))[0]
    nontrivial_v = np.nonzero(~alg.trivial_rows("B"))[0]
    if len(nontrivial_u) == 0 or len(nontrivial_v) == 0:
        raise CDAGError(
            "Lemma 1 precondition fails: an encoder has only trivial rows "
            "(the algorithm computes no linear combinations of one input "
            "matrix and is not fast)"
        )
    m_star = int(nontrivial_u[0])  # fresh A-side values
    m_star2 = int(nontrivial_v[0])  # fresh B-side values

    # Family: every grandparent prefix p (length r-k-2) extended by
    # (m_star, m_star2).  Freshness of the A side survives the second
    # step only if the path from rank r-k-1 to r-k keeps values within
    # the subtree, which it does (copies only propagate downward in the
    # recursion tree).
    prefix_radix = MixedRadix([cdag.b] * (r - k))
    family = [
        prefix_radix.pack(tuple(p) + (m_star, m_star2))
        for p in np.ndindex(*([cdag.b] * (r - k - 2)))
    ]

    # Defensive check: the construction must produce a mutually
    # input-disjoint family (certifies the meta-vertex reasoning).
    if not _family_is_input_disjoint(cdag, k, meta, family):  # pragma: no cover
        raise CDAGError("internal error: Lemma 1 family is not input-disjoint")
    add_counter("family_size", len(family))
    return family


def _family_is_input_disjoint(
    cdag: CDAG, k: int, meta: MetaVertexPartition, family: list[int]
) -> bool:
    seen: set[int] = set()
    for index in family:
        sub = Subcomputation(cdag, k, index)
        labels = set(meta.label[sub.inputs()].tolist())
        if labels & seen:
            return False
        seen |= labels
    return True


@traced("cdag.verify_fact1")
def verify_fact1(cdag: CDAG, k: int) -> dict:
    """Empirically verify Fact 1 on ``G_{r,k}``.

    Checks (a) the copies partition the middle-rank vertices, (b) every
    edge among middle-rank vertices stays within one copy, and (c) each
    copy is isomorphic to the standalone ``G_k`` (via :meth:`local_id`,
    spot-checking edge correspondence).  Returns a report dict.
    """
    _check_k(cdag, k)
    n_copies = subcomputation_count(cdag, k)
    middle = middle_ranks_vertices(cdag, k)
    middle_set = set(middle.tolist())
    add_counter("copies_checked", n_copies)
    add_counter("middle_vertices", len(middle))

    covered: set[int] = set()
    for i in range(n_copies):
        vertices = Subcomputation(cdag, k, i).all_vertices()
        vset = set(vertices.tolist())
        if covered & vset:
            return {"ok": False, "reason": f"copies {i} overlap earlier copies"}
        covered |= vset
    if covered != middle_set:
        return {"ok": False, "reason": "copies do not cover the middle ranks"}

    # Isomorphism check: within each spot-checked copy, the in-copy
    # predecessor sets must map exactly onto the standalone G_k's
    # predecessor sets under local_id.  (Bottom-rank vertices have no
    # in-copy predecessors, matching G_k's inputs, which have none.)
    gk = _gk_cache(cdag.alg, k)
    for i in range(min(n_copies, 4)):
        sub = Subcomputation(cdag, k, i)
        vset = set(sub.all_vertices().tolist())
        for v in vset:
            lv = sub.local_id(v)
            preds_local = sorted(
                sub.local_id(p) for p in cdag.predecessors(v).tolist() if p in vset
            )
            gk_preds = sorted(gk.predecessors(lv).tolist())
            if preds_local != gk_preds:
                return {
                    "ok": False,
                    "reason": f"edge mismatch at vertex {v} of copy {i}",
                }
    return {"ok": True, "n_copies": n_copies, "middle_vertices": len(middle)}


def _check_k(cdag: CDAG, k: int) -> None:
    if not 0 <= k <= cdag.r:
        raise CDAGError(f"k must be in [0, {cdag.r}], got {k}")
