"""Tests for the Routing Theorem (Theorem 2) and Claim 1."""

import pytest

from repro.bilinear import (
    classical,
    laderman,
    strassen,
    strassen_x_classical,
    winograd,
)
from repro.bilinear.synthetic import with_duplicate_product
from repro.cdag import build_cdag, compute_metavertices
from repro.errors import RoutingError
from repro.routing import (
    claim1_bound,
    claim1_routing,
    decoder_local_paths,
    theorem2_bound,
    theorem2_certificate,
    theorem2_routing,
    verify_routing,
)


class TestTheorem2:
    @pytest.mark.parametrize(
        "maker,k",
        [
            (strassen, 1),
            (strassen, 2),
            (winograd, 1),
            (winograd, 2),
            (laderman, 1),
            (lambda: classical(2), 2),
            (strassen_x_classical, 1),
        ],
        ids=[
            "strassen-k1", "strassen-k2", "winograd-k1", "winograd-k2",
            "laderman-k1", "classical-k2", "sxc-k1",
        ],
    )
    def test_certificate(self, maker, k):
        """Full verified 6a^k-routing across the catalog — including the
        disconnected-decoder composition (the case beyond [6])."""
        alg = maker()
        cert = theorem2_certificate(alg, k)
        assert cert.report.within_bound
        assert cert.chains_used_exactly_3n0k
        assert cert.lemma3_max_hits <= 2 * alg.n0**k

    def test_bound_formula(self):
        assert theorem2_bound(strassen(), 3) == 6 * 64

    def test_routing_from_cdag(self):
        g = build_cdag(strassen(), 1)
        routing = theorem2_routing(g)
        assert len(routing) == 8 * 4

    def test_routing_from_algorithm(self):
        routing = theorem2_routing(strassen(), k=1)
        assert len(routing) == 32

    def test_missing_k_raises(self):
        with pytest.raises(RoutingError):
            theorem2_routing(strassen())

    def test_single_use_violation_rejected(self):
        dup = with_duplicate_product(strassen(), product=0)
        with pytest.raises(RoutingError, match="single-use"):
            theorem2_routing(dup, k=1)

    def test_strassen_bound_is_tight_at_vertices(self):
        """For Strassen the measured maximum hit count equals 6 a^k —
        the theorem's constant is exactly attained (at the outputs)."""
        cert = theorem2_certificate(strassen(), 2)
        assert cert.report.max_vertex_hits == cert.claimed_m

    def test_meta_bound_never_exceeds_vertex_count(self):
        cert = theorem2_certificate(strassen(), 2)
        assert cert.report.max_meta_hits <= cert.report.max_vertex_hits


class TestClaim1:
    @pytest.mark.parametrize("k", [1, 2])
    def test_strassen_decoder_routing(self, k):
        g = build_cdag(strassen(), k)
        routing = claim1_routing(g)
        report = verify_routing(g, routing, claim1_bound(strassen(), k))
        assert report.within_bound
        assert report.n_paths == 7**k * 4**k

    def test_bound_value(self):
        # |V(D_1)| = 11 for Strassen: the paper's 11 * 7^k.
        assert claim1_bound(strassen(), 2) == 11 * 49

    def test_paths_stay_in_decoder(self):
        from repro.cdag import Region

        g = build_cdag(strassen(), 2)
        routing = claim1_routing(g)
        for path in routing.paths[:100]:
            assert (g.region[path] == Region.DEC).all()

    def test_endpoints_are_products_and_outputs(self):
        g = build_cdag(strassen(), 1)
        routing = claim1_routing(g)
        products = set(g.products().tolist())
        outputs = set(g.outputs().tolist())
        for src, dst in routing.endpoints:
            assert src in products
            assert dst in outputs

    def test_disconnected_decoder_raises(self):
        """Classical's decoder is disconnected: Claim 1's construction
        must fail — the Section 6 motivation."""
        with pytest.raises(RoutingError, match="disconnected"):
            decoder_local_paths(classical(2))

    def test_strassen_x_classical_decoder_raises(self):
        g = build_cdag(strassen_x_classical(), 1)
        with pytest.raises(RoutingError, match="disconnected"):
            claim1_routing(g)

    def test_winograd_decoder_routing(self):
        g = build_cdag(winograd(), 2)
        routing = claim1_routing(g)
        report = verify_routing(g, routing, claim1_bound(winograd(), 2))
        assert report.within_bound

    def test_local_paths_alternate(self):
        paths = decoder_local_paths(strassen())
        for (m, e), walk in paths.items():
            assert walk[0] == m
            assert walk[-1] == -(e + 1)
            # Alternation: signs alternate along the walk.
            for x, y in zip(walk, walk[1:]):
                assert (x >= 0) != (y >= 0)

    def test_requires_standalone_gk(self):
        g = build_cdag(strassen(), 2)
        with pytest.raises(RoutingError):
            claim1_routing(g, k=1)
