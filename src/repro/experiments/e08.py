"""E8 — The segment argument on real executions (Equations 1-2,
Fact 1, Lemmas 1-2).

Partition concrete schedules into segments with ``|S̄|`` counted
vertices and measure ``|δ'(S')|`` on every segment, confirming
Equation (2)'s ``|δ'(S')| >= |S̄| / 12`` — for good (recursive), bad
(rank-order) and adversarial (random) schedules.  Also records Fact 1's
copy counts and the Lemma-1 family fraction.
"""

from __future__ import annotations

from repro.bilinear import strassen
from repro.cdag import (
    build_cdag,
    compute_metavertices,
    input_disjoint_family,
    subcomputation_count,
    verify_fact1,
)
from repro.experiments.harness import ExperimentResult, register
from repro.pebbling import SegmentAnalysis
from repro.schedules import (
    random_topological_schedule,
    rank_order_schedule,
    recursive_schedule,
)
from repro.utils.tables import TextTable

__all__ = ["run"]


@register("E8")
def run(
    r: int = 3, k: int = 1, threshold: int = 24, seed: int = 13
) -> ExperimentResult:
    alg = strassen()
    g = build_cdag(alg, r)
    meta = compute_metavertices(g)

    checks: dict[str, bool] = {}
    fact1 = verify_fact1(g, k)
    checks[f"Fact 1: G_{{r,{k}}} = b^(r-k) disjoint copies"] = fact1["ok"]
    checks["Fact 1: copy count"] = (
        subcomputation_count(g, k) == alg.b ** (r - k)
    )
    family = input_disjoint_family(g, k, meta)
    checks["Lemma 1: family fraction >= 1/b^2"] = (
        len(family) * alg.b**2 >= subcomputation_count(g, k)
    )

    analysis = SegmentAnalysis(g, meta, cache_size=max(1, threshold // 36) or 1,
                               k=k, threshold=threshold)
    table = TextTable(
        ["schedule", "segments", "min |S̄|", "min |δ'|", "min ratio",
         "eq2 floor 1/12", "all hold"],
        title="E8: Equation (2) on real executions",
    )
    schedules = [
        ("recursive", recursive_schedule(g)),
        ("rank-order", rank_order_schedule(g)),
        ("random", random_topological_schedule(g, seed=seed)),
    ]
    for name, sched in schedules:
        records = analysis.analyze(sched)
        complete = [rec for rec in records if rec.counted >= threshold]
        ratios = [
            rec.meta_boundary / rec.counted
            for rec in records
            if rec.counted > 0
        ]
        all_hold = all(rec.satisfies_eq2() for rec in records)
        table.add_row(
            [name, len(records),
             min((rec.counted for rec in records), default=0),
             min((rec.meta_boundary for rec in records), default=0),
             round(min(ratios), 4) if ratios else "-",
             round(1 / 12, 4), "yes" if all_hold else "no"]
        )
        checks[f"{name}: eq (2) holds on every segment"] = all_hold
        checks[f"{name}: complete segments reach threshold"] = all(
            rec.counted >= threshold for rec in records[:-1]
        )

    return ExperimentResult(
        experiment_id="E8",
        title="Segment argument measured on executions",
        tables=[table],
        checks=checks,
        data={"family_size": len(family)},
    )
