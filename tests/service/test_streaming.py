"""Event streaming: journal replay, live tail, seq discipline.

The contract under test: a client that attaches mid-run sees the full
history (replay) and then every subsequent record (tail) with strictly
increasing, gap-free, duplicate-free ``seq`` numbers — the property the
atomic snapshot-and-subscribe in ``_Journal.subscribe`` exists to give.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.runner.jobs import JobSpec
from repro.service import ServiceClient, ServiceConfig, ServiceThread

HELPERS = "tests.runner.helpers"


def spec(name, params=None, fn=None):
    return JobSpec(
        name, params or {}, entrypoint=f"{HELPERS}:{fn or 'ok_job'}",
    )


@pytest.fixture
def make_config(tmp_path):
    def make(**kw):
        kw.setdefault("socket_path", str(tmp_path / "svc.sock"))
        kw.setdefault("cache_dir", str(tmp_path / "cache"))
        kw.setdefault("workers", 1)
        kw.setdefault("shm_root", None)
        kw.setdefault("backoff", 0.01)
        return ServiceConfig(**kw)

    return make


def assert_seq_discipline(records, *, contiguous=True):
    seqs = [r["seq"] for r in records]
    assert seqs, "stream delivered no records"
    assert len(set(seqs)) == len(seqs), f"duplicate seqs: {seqs}"
    assert seqs == sorted(seqs), f"out-of-order seqs: {seqs}"
    if contiguous:
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs))), (
            f"gap in seqs: {seqs}"
        )


class _Tail(threading.Thread):
    """Collects an events stream (replay + live tail) off-thread."""

    def __init__(self, socket_path):
        super().__init__(daemon=True)
        self.client = ServiceClient(socket_path)
        self.records: list[dict] = []
        self.attached = threading.Event()

    def run(self):
        stream = self.client.events(replay=True, follow=True)
        for record in stream:
            self.records.append(record)
            self.attached.set()


class TestMidRunAttach:
    def test_replay_then_live_tail_no_gaps(self, make_config):
        config = make_config()
        slow = spec("T-SLEEPY", {"duration": 0.6}, fn="sleepy_job")
        late = spec("T-OK", {"x": 2})
        handle = ServiceThread(config).start()
        with ServiceClient(config.socket_path) as client:
            client.submit([slow], wait=False)
            # Attach mid-run: history exists (service_start, submit,
            # job_start...) and more records are still coming.
            tails = [_Tail(config.socket_path) for _ in range(2)]
            for t in tails:
                t.start()
            for t in tails:
                assert t.attached.wait(timeout=10.0)
            client.submit([late])
        handle.drain()
        for t in tails:
            t.join(timeout=10.0)
            assert not t.is_alive()
        for t in tails:
            events = [r["event"] for r in t.records]
            # Replay reached back to the beginning...
            assert events[0] == "service_start"
            # ...and the live tail ran to the daemon's last breath.
            assert "job_finish" in events
            assert events[-1] == "service_stop"
            assert_seq_discipline(t.records)
        # Concurrent subscribers saw the identical stream.
        assert tails[0].records == tails[1].records

    def test_replay_only_stream_terminates(self, make_config):
        config = make_config()
        with ServiceThread(config):
            with ServiceClient(config.socket_path) as client:
                client.submit([spec("T-OK", {"x": 1})])
            with ServiceClient(config.socket_path) as client:
                records = list(client.events(replay=True, follow=False))
        assert_seq_discipline(records)
        events = [r["event"] for r in records]
        assert "job_start" in events
        assert "job_finish" in events


class TestStoreShortCircuit:
    def test_second_submission_dispatches_nothing(self, make_config):
        config = make_config()
        job = spec("T-OK", {"x": 9})
        with ServiceThread(config):
            with ServiceClient(config.socket_path) as client:
                client.submit([job])
                client.submit([job])
                client.submit([job])
                records = []
                with ServiceClient(config.socket_path) as tap:
                    records = list(tap.events(replay=True, follow=False))
        starts = [r for r in records if r["event"] == "job_start"]
        hits = [r for r in records if r["event"] == "cache_hit"]
        assert len(starts) == 1, "store hits must not reach a worker"
        assert len(hits) == 2
        assert all(r["key"] == job.cache_key for r in starts + hits)
        assert_seq_discipline(records)


class TestRestartContinuity:
    def test_seq_continues_across_daemon_restart(self, make_config):
        config = make_config()
        first, second = spec("T-OK", {"x": 1}), spec("T-OK", {"x": 2})
        with ServiceThread(config):
            with ServiceClient(config.socket_path) as client:
                client.submit([first])
        # Same cache dir → same journal file: the reborn daemon recovers
        # it and keeps numbering where the old one stopped.
        with ServiceThread(config):
            with ServiceClient(config.socket_path) as client:
                client.submit([second])
                records = list(client.events(replay=True, follow=False))
        events = [r["event"] for r in records]
        assert events.count("service_start") == 2
        assert events.count("service_stop") == 1  # the first life's
        assert events.count("job_finish") == 2
        assert_seq_discipline(records)

    def test_tail_survives_until_drain_during_active_work(self, make_config):
        config = make_config()
        job = spec("T-SLEEPY", {"duration": 0.5}, fn="sleepy_job")
        handle = ServiceThread(config).start()
        tail = _Tail(config.socket_path)
        tail.start()
        assert tail.attached.wait(timeout=10.0)
        with ServiceClient(config.socket_path) as client:
            client.submit([job], wait=False)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if client.status()["inflight"]:
                    break
                time.sleep(0.02)
            client.drain()
        handle.drain()
        tail.join(timeout=10.0)
        assert not tail.is_alive()
        events = [r["event"] for r in tail.records]
        # The drained daemon finished the in-flight job and the tail saw
        # the whole story: drain announcement, the finish, the stop.
        assert "service_drain" in events
        assert "job_finish" in events
        assert events[-1] == "service_stop"
        assert_seq_discipline(tail.records)
