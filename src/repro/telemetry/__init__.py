"""Zero-dependency instrumentation: spans, metrics, exporters, perf
baselines.

The paper's objects — ``G_k`` construction, Theorem 2's ``6 a^k``
routing assembly, pebble-game execution — dominate wall-clock as ``k``
and ``n`` grow.  This package makes that observable without changing
any result:

- :mod:`repro.telemetry.spans` — nestable timing spans (wall time,
  peak-RSS delta, per-span counters) usable as context manager or
  decorator, thread- and process-safe, with a no-op fast path while
  telemetry is disabled (the default);
- :mod:`repro.telemetry.metrics` — named counters / gauges /
  histograms whose canonical states form a commutative merge monoid
  (mirroring ``CacheStats``), so per-worker shards from the sweep pool
  aggregate cleanly;
- :mod:`repro.telemetry.export` — JSON, Prometheus text format, and
  Chrome ``trace_event`` exporters (open a routing run or an E9 sweep
  directly in ``chrome://tracing`` / Perfetto);
- :mod:`repro.telemetry.baseline` — ``BENCH_<exp>.json`` perf
  snapshots plus ``python -m repro perf --compare`` regression gating.

Quick start::

    from repro import telemetry

    telemetry.enable()
    with telemetry.span("my.region", size=64) as sp:
        sp.add("items", 64)
    telemetry.write_chrome_trace("trace.json", telemetry.collected_spans())

Set ``REPRO_TELEMETRY=1`` to enable collection at import time (the CLI
``--profile`` flags do this per command).
"""

from repro.telemetry.baseline import (
    DEFAULT_PERF_IDS,
    bench_filename,
    bench_path,
    compare_docs,
    load_baseline,
    measure_experiment,
    run_perf,
    write_baseline,
)
from repro.telemetry.export import (
    metrics_to_prometheus,
    spans_to_chrome_trace,
    telemetry_to_json,
    write_chrome_trace,
    write_json,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
    reset_metrics,
)
from repro.telemetry.spans import (
    NOOP_SPAN,
    add_counter,
    collected_spans,
    current_span,
    disable,
    drain_spans,
    enable,
    enabled,
    ingest_spans,
    reset_spans,
    span,
    traced,
)

__all__ = [
    # spans
    "span",
    "traced",
    "current_span",
    "add_counter",
    "enable",
    "disable",
    "enabled",
    "reset_spans",
    "collected_spans",
    "drain_spans",
    "ingest_spans",
    "NOOP_SPAN",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "reset_metrics",
    # export
    "spans_to_chrome_trace",
    "write_chrome_trace",
    "metrics_to_prometheus",
    "telemetry_to_json",
    "write_json",
    # baselines
    "DEFAULT_PERF_IDS",
    "bench_filename",
    "bench_path",
    "measure_experiment",
    "write_baseline",
    "load_baseline",
    "compare_docs",
    "run_perf",
]


def reset() -> None:
    """Clear collected spans and the global metrics registry."""
    reset_spans()
    reset_metrics()
