"""Shared benchmark fixtures.

Each experiment bench runs the experiment through pytest-benchmark (so
wall-clock regenerating cost is tracked) and *prints the experiment's
tables* — the rows recorded in EXPERIMENTS.md — while asserting every
paper-claim check passes.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentResult, get_experiment


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Benchmark an experiment, print its report, assert its checks."""

    def runner(experiment_id: str, **params) -> ExperimentResult:
        fn = get_experiment(experiment_id)
        result = benchmark.pedantic(
            lambda: fn(**params), iterations=1, rounds=1
        )
        with capsys.disabled():
            print()
            print(result.render())
        failed = [name for name, ok in result.checks.items() if not ok]
        assert not failed, f"{experiment_id} failed checks: {failed}"
        return result

    return runner
