"""Benchmark E11: Theorem 1 parallel: CAPS bandwidth vs bounds.

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md)
and asserts every paper-claim check; pytest-benchmark tracks the
regeneration cost.
"""


def test_e11_parallel(run_experiment):
    run_experiment("E11")
