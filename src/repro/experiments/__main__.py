"""Run all (or selected) experiments and print their reports.

Usage::

    python -m repro.experiments                # run everything, serially
    python -m repro.experiments E4 E9          # run selected
    python -m repro.experiments --list         # list ids and exit
    python -m repro.experiments --jobs 4       # fan out on a process pool

Exits nonzero when any experiment's paper-claim check fails (or any job
fails), so CI can gate on the reproduction.  With ``--jobs > 1`` the run
is routed through :mod:`repro.runner` — the parallel scheduler with the
on-disk result cache (``--cache-dir``).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import get_experiment, list_experiments


def _describe(experiment_id: str) -> str:
    """First docstring line of the experiment's module."""
    fn = get_experiment(experiment_id)
    doc = sys.modules.get(fn.__module__, None)
    doc = (doc.__doc__ or "") if doc is not None else ""
    return doc.strip().splitlines()[0] if doc.strip() else ""


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Run the reproduction experiments (E1..E14).",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (default all)")
    parser.add_argument(
        "--list", action="store_true", dest="list_only",
        help="list registered experiment ids and exit",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes; >1 routes through the sweep runner",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache for --jobs > 1 (default: no cache)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="collect telemetry spans and counters during the run",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write collected spans as a Chrome trace_event JSON "
             "(implies --profile)",
    )
    args = parser.parse_args(argv)

    if args.list_only:
        for experiment_id in list_experiments():
            print(f"{experiment_id:5s} {_describe(experiment_id)}")
        return 0

    ids = args.ids or list_experiments()

    profiled = bool(args.profile or args.trace_out)
    if profiled:
        from repro import telemetry

        telemetry.enable()

    def _finish_profile() -> None:
        from repro import telemetry

        spans = telemetry.collected_spans()
        if args.trace_out:
            telemetry.write_chrome_trace(
                args.trace_out, spans, metadata={"command": "experiments"}
            )
            print(f"trace: {args.trace_out} ({len(spans)} spans)")
        else:
            print(f"telemetry: {len(spans)} spans collected")

    if args.jobs > 1:
        from repro.runner import (
            ResultStore, jobs_for_ids, render_sweep, run_sweep, sweep_ok,
        )

        store = ResultStore(args.cache_dir) if args.cache_dir else None
        outcomes = run_sweep(
            jobs_for_ids(ids), store, workers=args.jobs, profile=profiled
        )
        print(render_sweep(outcomes))
        if profiled:
            _finish_profile()
        return 0 if sweep_ok(outcomes) else 1

    failures = []
    for experiment_id in ids:
        result = get_experiment(experiment_id)()
        print(result.render())
        print()
        if not result.all_checks_pass:
            failures.append(experiment_id)
    if profiled:
        _finish_profile()
    if failures:
        print(f"FAILED experiments: {failures}")
        return 1
    print(f"All {len(ids)} experiments reproduced.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
