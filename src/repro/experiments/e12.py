"""E12 — Path routing vs edge expansion: the gap the paper fills.

The technique of [6] needs connected encoders/decoders and no multiple
copying: compute exact decoder edge expansions to show where it holds
(Strassen: positive expansion) and where it certifies nothing
(classical-tensored compositions: expansion 0), then demonstrate the
path-routing certificate *still exists* for those algorithms.

The headline example is ``strassen (x) classical (+su)``: a fast
algorithm (ω0 ≈ 2.90) with a disconnected decoding graph and multiple
copying that *satisfies* the paper's single-use assumption — covered by
Theorem 1 and by no earlier technique.  The raw tensor product (without
the ``+su`` rescaling) violates single-use; its verified routing is
recorded too, as empirical support for the paper's Section-8 conjecture
that the assumption can be lifted.
"""

from __future__ import annotations

from repro.bilinear import (
    classical,
    laderman,
    strassen,
    strassen_x_classical,
    strassen_x_classical_su,
    winograd,
)
from repro.bounds import decoder_edge_expansion, expansion_technique_applicable
from repro.experiments.harness import ExperimentResult, register
from repro.routing import theorem2_certificate
from repro.utils.tables import TextTable

__all__ = ["run"]


@register("E12")
def run() -> ExperimentResult:
    table = TextTable(
        ["algorithm", "fast", "dec expansion h", "dec conn", "enc conn",
         "no multi-copy", "[6] applies", "single-use", "routing cert"],
        title="E12: edge-expansion technique vs path routing",
    )
    checks: dict[str, bool] = {}
    cases = [
        strassen(),
        winograd(),
        laderman(),
        classical(2),
        strassen_x_classical(),
        strassen_x_classical_su(),
    ]
    for alg in cases:
        applicability = expansion_technique_applicable(alg)
        try:
            h = decoder_edge_expansion(alg)
        except ValueError:
            h = float("nan")
        cert = theorem2_certificate(alg, 1)
        table.add_row(
            [alg.name, "yes" if alg.is_strassen_like else "no",
             round(h, 3) if h == h else "-",
             "yes" if applicability["decoder_connected"] else "no",
             "yes" if applicability["encoder_a_connected"]
             and applicability["encoder_b_connected"] else "no",
             "yes" if applicability["no_multiple_copying"] else "no",
             "yes" if applicability["applicable"] else "no",
             "yes" if cert.single_use else "no",
             "yes" if cert.report.within_bound else "no"]
        )
        checks[f"{alg.name}: verified 6a^k certificate"] = (
            cert.report.within_bound
        )

    checks["strassen: positive decoder expansion ([6] works)"] = (
        decoder_edge_expansion(strassen()) > 0
    )
    checks["classical: zero decoder expansion"] = (
        decoder_edge_expansion(classical(2)) == 0.0
    )
    headline = strassen_x_classical_su()
    head_app = expansion_technique_applicable(headline)
    head_cert = theorem2_certificate(headline, 1)
    checks["headline: fast + disconnected decoder + single-use"] = (
        headline.is_strassen_like
        and not head_app["decoder_connected"]
        and head_cert.single_use
    )
    checks["headline: [6] inapplicable, Theorem 2 certificate verified"] = (
        not head_app["applicable"] and head_cert.report.within_bound
    )
    checks["section-8 conjecture: raw (x)classical also routes within 6a^k"] = (
        theorem2_certificate(strassen_x_classical(), 1).report.within_bound
    )

    return ExperimentResult(
        experiment_id="E12",
        title="Beyond edge expansion: disconnected base graphs",
        tables=[table],
        checks=checks,
    )
