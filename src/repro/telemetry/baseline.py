"""Perf-baseline store: ``BENCH_<exp>.json`` snapshots and regression
comparison.

A *baseline* records, per experiment, the median-of-k wall time and the
experiment's key telemetry counters.  ``python -m repro perf`` writes
baselines (committed at the repo root, giving the project a perf
trajectory); ``python -m repro perf --compare`` re-measures and diffs
against the committed snapshot, exiting nonzero when the median time
regresses past a configurable threshold — counter drift is reported but
does not gate, since counters legitimately change when algorithms do
(such a change should come with a refreshed baseline).

Timings are machine-dependent; committed baselines are a *trajectory*
anchor, so CI compares with a generous threshold while local runs can
use a tight one against baselines recorded on the same machine.
"""

from __future__ import annotations

import json
import re
import statistics
import time
from pathlib import Path
from typing import Mapping, Sequence

from repro.telemetry import metrics as _metrics_mod
from repro.telemetry import spans as _spans_mod
from repro.telemetry.metrics import Counter
from repro.utils.tables import TextTable

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_PERF_IDS",
    "DEFAULT_PERF_PARAMS",
    "bench_filename",
    "bench_path",
    "measure_experiment",
    "write_baseline",
    "load_baseline",
    "compare_docs",
    "run_perf",
]

BENCH_SCHEMA = 1

#: The cheap structural experiments every perf run covers by default,
#: plus the routing-certificate check (E4) and the executor-bound I/O
#: sweep (E9) at reduced parameters.
DEFAULT_PERF_IDS = ("E1", "E2", "E3", "E4", "E9")

#: Reduced parameters used when measuring an experiment that would be
#: too slow at its defaults.  ``run_perf`` falls back to these when the
#: caller does not supply params for an id, so recorded baselines and
#: CI comparisons agree on the workload.
DEFAULT_PERF_PARAMS: dict[str, dict] = {
    "E4": {"k_max": 2},
    "E9": {"r_max": 4, "cache_sizes": (12, 48), "r_big": None},
}

_EID = re.compile(r"^E(\d+)$")


def bench_filename(experiment_id: str) -> str:
    """``"E1"`` → ``"BENCH_e01.json"`` (non-standard ids sanitise to
    lowercase alphanumerics)."""
    m = _EID.match(experiment_id)
    if m:
        return f"BENCH_e{int(m.group(1)):02d}.json"
    slug = re.sub(r"[^a-z0-9]+", "_", experiment_id.lower()).strip("_")
    return f"BENCH_{slug}.json"


def bench_path(experiment_id: str, root=".") -> Path:
    return Path(root) / bench_filename(experiment_id)


def _time_once(fn, kwargs) -> float:
    """One timed run (separated out so tests can inject slowdowns)."""
    t0 = time.perf_counter()
    fn(**kwargs)
    return time.perf_counter() - t0


def measure_experiment(
    experiment_id: str,
    repeats: int = 3,
    params: Mapping | None = None,
) -> dict:
    """Run an experiment ``repeats`` times under telemetry; return its
    baseline document (median wall time + counters of one run).

    Counters are captured from the final repeat with the metrics
    registry reset per repeat, so they describe *one* execution and are
    reproducible run-to-run for deterministic experiments.  Spans
    accumulate in the process collector (they feed ``--trace-out``);
    the caller owns resetting them.
    """
    from repro._version import __version__
    from repro.experiments import get_experiment

    fn = get_experiment(experiment_id)
    kwargs = dict(params or {})
    was_enabled = _spans_mod.enabled()
    _spans_mod.enable()
    times = []
    try:
        for _ in range(max(1, int(repeats))):
            _metrics_mod.reset_metrics()
            times.append(_time_once(fn, kwargs))
        counters = {
            name: _metrics_mod.metrics().get(name).value
            for name in _metrics_mod.metrics().names()
            if isinstance(_metrics_mod.metrics().get(name), Counter)
        }
    finally:
        if not was_enabled:
            _spans_mod.disable()
    return {
        "schema": BENCH_SCHEMA,
        "experiment": experiment_id,
        "params": {str(k): v for k, v in sorted(kwargs.items())},
        "repeats": len(times),
        "times_s": [round(t, 6) for t in times],
        "median_s": round(statistics.median(times), 6),
        "counters": counters,
        "version": __version__,
    }


def write_baseline(doc: Mapping, root=".") -> Path:
    path = bench_path(doc["experiment"], root)
    path.write_text(
        json.dumps(doc, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return path


def load_baseline(experiment_id: str, root=".") -> dict | None:
    """The committed baseline for ``experiment_id``, or None."""
    path = bench_path(experiment_id, root)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(doc, dict) or doc.get("schema") != BENCH_SCHEMA:
        return None
    return doc


def compare_docs(
    baseline: Mapping, current: Mapping, threshold: float
) -> dict:
    """Diff a fresh measurement against a baseline.

    ``ok`` is False only for a *time* regression: the current median
    exceeding ``threshold ×`` the baseline median.  Counter drift is
    listed in ``counter_drift`` (informational).
    """
    base_median = float(baseline["median_s"])
    cur_median = float(current["median_s"])
    ratio = cur_median / base_median if base_median > 0 else float("inf")
    drift = []
    base_counters = baseline.get("counters", {})
    cur_counters = current.get("counters", {})
    for name in sorted(set(base_counters) | set(cur_counters)):
        b, c = base_counters.get(name), cur_counters.get(name)
        if b != c:
            drift.append({"counter": name, "baseline": b, "current": c})
    return {
        "experiment": current.get("experiment", baseline.get("experiment")),
        "baseline_median_s": base_median,
        "current_median_s": cur_median,
        "ratio": ratio,
        "threshold": float(threshold),
        "regression": ratio > threshold,
        "ok": ratio <= threshold,
        "counter_drift": drift,
    }


def run_perf(
    ids: Sequence[str] | None = None,
    *,
    repeats: int = 3,
    root=".",
    compare: bool = False,
    threshold: float = 1.5,
    trace_out=None,
    json_out=None,
    params_by_id: Mapping[str, Mapping] | None = None,
    out=print,
) -> int:
    """Measure experiments and either record or compare baselines.

    Without ``--compare`` (``compare=False``): writes one
    ``BENCH_<exp>.json`` per experiment under ``root`` and returns 0.
    With ``compare=True``: loads the committed baselines, diffs, prints
    a verdict table, and returns nonzero when any experiment regresses
    past ``threshold`` (or has no baseline to compare against).
    """
    ids = list(ids) if ids else list(DEFAULT_PERF_IDS)
    params_by_id = dict(params_by_id or {})
    _spans_mod.reset_spans()

    currents = {}
    for eid in ids:
        params = params_by_id.get(eid, DEFAULT_PERF_PARAMS.get(eid))
        currents[eid] = measure_experiment(eid, repeats=repeats, params=params)

    exit_code = 0
    if compare:
        table = TextTable(
            ["experiment", "baseline (s)", "current (s)", "ratio",
             "threshold", "counters drifted", "verdict"],
            title="perf --compare: current run vs committed baselines",
        )
        for eid in ids:
            current = currents[eid]
            baseline = load_baseline(eid, root)
            if baseline is None:
                table.add_row(
                    [eid, "-", current["median_s"], "-", f"{threshold:g}x",
                     "-", "NO BASELINE"]
                )
                exit_code = 1
                continue
            report = compare_docs(baseline, current, threshold)
            table.add_row(
                [
                    eid,
                    f"{report['baseline_median_s']:.6f}",
                    f"{report['current_median_s']:.6f}",
                    f"{report['ratio']:.2f}x",
                    f"{threshold:g}x",
                    len(report["counter_drift"]),
                    "OK" if report["ok"] else "REGRESSION",
                ]
            )
            for d in report["counter_drift"]:
                out(
                    f"  [drift] {eid} {d['counter']}: "
                    f"{d['baseline']} -> {d['current']}"
                )
            if not report["ok"]:
                exit_code = 1
        out(table.render())
    else:
        table = TextTable(
            ["experiment", "median (s)", "repeats", "counters", "file"],
            title="perf: recorded baselines",
        )
        for eid in ids:
            path = write_baseline(currents[eid], root)
            table.add_row(
                [eid, currents[eid]["median_s"], currents[eid]["repeats"],
                 len(currents[eid]["counters"]), str(path)]
            )
        out(table.render())

    if trace_out is not None:
        from repro.telemetry.export import write_chrome_trace

        path = write_chrome_trace(
            trace_out,
            _spans_mod.collected_spans(),
            metadata={"command": "perf", "experiments": ids},
        )
        out(f"chrome trace: {path} ({len(_spans_mod.collected_spans())} spans)")
    if json_out is not None:
        from repro.telemetry.export import telemetry_to_json, write_json

        doc = telemetry_to_json(
            spans=_spans_mod.collected_spans(),
            registry=_metrics_mod.metrics(),
            metadata={"command": "perf", "experiments": ids},
        )
        doc["measurements"] = currents
        path = write_json(json_out, doc)
        out(f"telemetry json: {path}")
    return exit_code
