"""Tests for the Hall-matching step (Lemma 5 / Theorem 3 / Figure 8)."""

import pytest

from repro.bilinear import classical, laderman, strassen, winograd
from repro.bilinear.algorithm import BilinearAlgorithm
from repro.errors import HallConditionError
from repro.routing import (
    base_dependencies,
    base_matching,
    check_hall_condition,
    hall_graph,
)

ALGS = [strassen, winograd, lambda: classical(2), laderman, lambda: classical(3)]
IDS = ["strassen", "winograd", "classical2", "laderman", "classical3"]


class TestHallGraph:
    def test_dependency_count(self):
        deps = base_dependencies(strassen(), "A")
        assert len(deps) == 2**3

    def test_figure8_example(self):
        """Figure 8: the dependence (a12, c11) of Strassen's G'_1 admits
        chains through specific multiplications.

        a12 appears in M5 = (A11+A12)B22 and M7 = (A12-A22)(B21+B22);
        c11 = M1+M4-M5+M7 uses M1, M4, M5, M7.  Intersection: {M5, M7}
        (0-based {4, 6}).
        """
        from repro.utils.indexing import pair_index

        alg = strassen()
        deps, adjacency = hall_graph(alg, "A")
        x = deps.index((pair_index(0, 1, 2), pair_index(0, 0, 2)))
        assert adjacency[x] == [4, 6]

    def test_adjacency_subsets_of_mults(self):
        alg = laderman()
        _, adjacency = hall_graph(alg, "B")
        for row in adjacency:
            assert all(0 <= m < alg.b for m in row)

    def test_bad_side(self):
        with pytest.raises(ValueError):
            hall_graph(strassen(), "C")


class TestBaseMatching:
    @pytest.mark.parametrize("maker", ALGS, ids=IDS)
    @pytest.mark.parametrize("side", ["A", "B"])
    def test_matching_exists(self, maker, side):
        alg = maker()
        matching = base_matching(alg, side)
        assert len(matching) == alg.n0**3

    @pytest.mark.parametrize("maker", ALGS, ids=IDS)
    def test_capacity_respected(self, maker):
        alg = maker()
        matching = base_matching(alg, "A")
        loads: dict[int, int] = {}
        for m in matching.values():
            loads[m] = loads.get(m, 0) + 1
        assert max(loads.values()) <= alg.n0

    def test_matched_multiplication_is_adjacent(self):
        alg = strassen()
        matching = base_matching(alg, "A")
        for (e_in, e_out), m in matching.items():
            assert alg.U[m, e_in] != 0
            assert alg.W[e_out, m] != 0

    def test_broken_algorithm_fails_hall(self):
        """An 'algorithm' that never uses some input cannot satisfy the
        Hall condition (Lemma 5's contrapositive)."""
        import numpy as np

        alg = strassen()
        U = alg.U.copy()
        U[:, 1] = 0.0  # erase a12 from every product
        broken = BilinearAlgorithm(n0=2, U=U, V=alg.V, W=alg.W, name="no-a12")
        with pytest.raises(HallConditionError) as exc_info:
            base_matching(broken, "A")
        assert exc_info.value.violating_set is not None


class TestHallCondition:
    @pytest.mark.parametrize("maker", ALGS, ids=IDS)
    @pytest.mark.parametrize("side", ["A", "B"])
    def test_condition_holds(self, maker, side):
        """Lemma 5: |N(D)| >= |D| / n0 always (checked exhaustively per
        row class for small n0)."""
        report = check_hall_condition(maker(), side)
        assert report["holds"]
        if report["exhaustive"]:
            assert report["min_ratio"] >= 1.0

    def test_exhaustive_for_n0_2(self):
        assert check_hall_condition(strassen(), "A")["exhaustive"]

    def test_strassen_tightness(self):
        """For Strassen some dependency set achieves the Hall bound with
        equality (the matching is forced somewhere)."""
        report = check_hall_condition(strassen(), "A")
        assert report["min_ratio"] <= 2.0  # not vacuously loose
