"""Tests for the parallel machine, CAPS simulator, and baselines."""

import math

import numpy as np
import pytest

from repro.bilinear import strassen
from repro.bounds import (
    memory_independent_lower_bound,
    parallel_bandwidth_lower_bound,
)
from repro.cdag import build_cdag
from repro.errors import PartitionError
from repro.parallel import (
    CommunicationLog,
    DistributedMachine,
    cannon_2d_bandwidth,
    classical_25d_bandwidth,
    classical_3d_bandwidth,
    communication_volume,
    minimum_memory,
    partition_by_rank_balanced,
    per_processor_traffic,
    replication_for_memory,
    simulate_caps,
    summa_bandwidth,
    validate_rank_balanced,
)


class TestCommunicationLog:
    def test_bandwidth_is_max_per_superstep(self):
        log = CommunicationLog(4)
        log.superstep({0: (10, 0), 1: (0, 10), 2: (3, 3)})
        log.superstep({3: (5, 5)})
        assert log.bandwidth_cost() == 10 + 10

    def test_uniform_superstep(self):
        log = CommunicationLog(3)
        log.uniform_superstep(7)
        assert log.bandwidth_cost() == 14
        assert log.total_volume() == 21

    def test_rejects_bad_processor(self):
        log = CommunicationLog(2)
        with pytest.raises(PartitionError):
            log.superstep({5: (1, 1)})

    def test_rejects_negative(self):
        log = CommunicationLog(2)
        with pytest.raises(PartitionError):
            log.superstep({0: (-1, 0)})

    def test_empty_log(self):
        assert CommunicationLog(2).bandwidth_cost() == 0


class TestCapsSimulator:
    def test_single_processor_no_communication(self):
        run = simulate_caps(strassen(), 64, DistributedMachine(1, 10**6))
        assert run.bandwidth_cost == 0
        assert run.schedule_string == "L"

    def test_memory_floor_enforced(self):
        with pytest.raises(PartitionError):
            simulate_caps(strassen(), 1024, DistributedMachine(7, 100))

    def test_requires_power_of_b(self):
        with pytest.raises(ValueError):
            simulate_caps(strassen(), 64, DistributedMachine(6, 10**6))

    def test_too_many_processors(self):
        with pytest.raises(PartitionError):
            simulate_caps(strassen(), 4, DistributedMachine(7**3, 10**9))

    def test_unknown_strategy(self):
        with pytest.raises(PartitionError):
            simulate_caps(
                strassen(), 64, DistributedMachine(7, 10**6), strategy="x"
            )

    def test_bfs_when_memory_rich(self):
        run = simulate_caps(strassen(), 256, DistributedMachine(49, 10**9))
        assert run.schedule_string == "BBL"

    def test_dfs_appears_when_memory_poor(self):
        alg = strassen()
        n, P = 1024, 7**3
        tight = int(minimum_memory(alg, n, P) * 1.2)
        run = simulate_caps(alg, n, DistributedMachine(P, tight))
        assert "D" in run.schedule_string

    def test_peak_memory_within_limit_auto(self):
        alg = strassen()
        n, P = 1024, 7**3
        M = int(minimum_memory(alg, n, P) * 2)
        run = simulate_caps(alg, n, DistributedMachine(P, M))
        assert run.peak_memory_per_processor <= M

    def test_memory_rich_matches_memory_independent_shape(self):
        """BW / (n^2 / P^(2/w0)) must be bounded across P (constant
        factor of the memory-independent bound)."""
        alg = strassen()
        n, M = 2**10, 10**9
        ratios = []
        for t in (1, 2, 3, 4):
            run = simulate_caps(alg, n, DistributedMachine(7**t, M))
            ratios.append(
                run.bandwidth_cost
                / memory_independent_lower_bound(alg, n, 7**t)
            )
        assert max(ratios) < 20
        assert min(ratios) > 1

    def test_memory_poor_scaling_factor(self):
        """Halving memory past the threshold multiplies BW by b/a —
        the (n/sqrt(M))^w0 * M signature (d/dM slope)."""
        alg = strassen()
        n, P = 2**10, 7**3
        base = int(minimum_memory(alg, n, P))
        bw = {}
        for mult in (2, 8):
            run = simulate_caps(alg, n, DistributedMachine(P, base * mult))
            bw[mult] = run.bandwidth_cost
        # Two extra DFS levels between M and 4M: factor (b/a)^2.
        assert bw[2] / bw[8] == pytest.approx((7 / 4) ** 2, rel=0.05)

    def test_bfs_first_cheapest_when_it_fits(self):
        alg = strassen()
        n, P, M = 2**9, 49, 10**9
        auto = simulate_caps(alg, n, DistributedMachine(P, M), "auto")
        bfs = simulate_caps(alg, n, DistributedMachine(P, M), "bfs-first")
        dfs = simulate_caps(alg, n, DistributedMachine(P, M), "dfs-first")
        assert bfs.bandwidth_cost == auto.bandwidth_cost
        assert dfs.bandwidth_cost >= auto.bandwidth_cost

    def test_bfs_first_raises_without_memory(self):
        alg = strassen()
        n, P = 2**10, 7**3
        tight = int(minimum_memory(alg, n, P) * 1.2)
        with pytest.raises(PartitionError):
            simulate_caps(alg, n, DistributedMachine(P, tight), "bfs-first")

    def test_caps_above_lower_bound(self):
        """Measured cost respects Theorem 1's combined lower bound."""
        alg = strassen()
        n = 2**10
        for t in (1, 2, 3):
            P = 7**t
            for mult in (1.5, 4, 1000):
                M = int(minimum_memory(alg, n, P) * mult)
                run = simulate_caps(alg, n, DistributedMachine(P, M))
                lb = max(
                    parallel_bandwidth_lower_bound(alg, n, M, P),
                    memory_independent_lower_bound(alg, n, P),
                )
                assert run.bandwidth_cost >= lb


class TestBaselines:
    def test_cannon(self):
        assert cannon_2d_bandwidth(128, 16) == 2 * 128 * 128 / 4

    def test_cannon_needs_square(self):
        with pytest.raises(PartitionError):
            cannon_2d_bandwidth(128, 12)

    def test_summa_log_factor(self):
        assert summa_bandwidth(128, 16) == pytest.approx(
            2 * 128 * 128 / 4 * 2
        )

    def test_3d(self):
        assert classical_3d_bandwidth(128, 64) == pytest.approx(
            3 * 128 * 128 / 16
        )

    def test_25d_interpolates(self):
        n, P = 1024, 64
        assert classical_25d_bandwidth(n, P, 1) > classical_25d_bandwidth(
            n, P, 4
        )

    def test_25d_replication_cap(self):
        with pytest.raises(PartitionError):
            classical_25d_bandwidth(64, 8, 5)

    def test_replication_for_memory(self):
        n, P = 256, 64
        assert replication_for_memory(n, P, 3 * n * n // P) == 1
        assert replication_for_memory(n, P, 100 * n * n) == 4


class TestPartition:
    @pytest.fixture(scope="class")
    def g2(self):
        return build_cdag(strassen(), 2)

    def test_balanced(self, g2):
        owner = partition_by_rank_balanced(g2, 4)
        validate_rank_balanced(g2, owner, 4)

    def test_random_balanced(self, g2):
        owner = partition_by_rank_balanced(g2, 4, seed=5, contiguous=False)
        validate_rank_balanced(g2, owner, 4)

    def test_unbalanced_rejected(self, g2):
        owner = np.zeros(g2.n_vertices, dtype=np.int64)
        with pytest.raises(PartitionError):
            validate_rank_balanced(g2, owner, 4)

    def test_single_owner_no_communication(self, g2):
        owner = np.zeros(g2.n_vertices, dtype=np.int64)
        assert communication_volume(g2, owner) == 0

    def test_volume_counts_distinct_destinations(self, g2):
        owner = partition_by_rank_balanced(g2, 4)
        vol = communication_volume(g2, owner)
        traffic = per_processor_traffic(g2, owner)
        assert vol > 0
        # sent total == received total == volume.
        assert traffic.sum() == 2 * vol

    def test_contiguous_beats_random(self, g2):
        """The slab-aligned partition communicates less than a random
        balanced one — locality matters, as the bound's tightness
        argument requires."""
        good = communication_volume(g2, partition_by_rank_balanced(g2, 4))
        bad = communication_volume(
            g2, partition_by_rank_balanced(g2, 4, seed=1, contiguous=False)
        )
        assert good < bad
