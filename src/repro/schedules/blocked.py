"""Loop-nest schedules for the classical algorithm's CDAG.

The classical algorithm's products are indexed by triples
``(i, j, k)`` per recursion level; concatenating the per-level digits
gives the global loop indices ``(I, J, K)``.  Ordering products by a
chosen permutation of ``(I, J, K)`` reproduces the classical loop nests
(``ijk``, ``ikj``, ...), and ordering by block-major digits reproduces
*blocked* multiplication — the schedule achieving the Hong-Kung bound
``Θ(n^3 / sqrt(M))`` (experiment E10's baseline).
"""

from __future__ import annotations

import numpy as np

from repro.cdag.graph import CDAG
from repro.errors import ScheduleError
from repro.schedules.base import demand_driven_schedule
from repro.telemetry.spans import traced

__all__ = ["loop_order_schedule", "classical_product_digits"]


def classical_product_digits(cdag: CDAG) -> np.ndarray:
    """Global loop indices ``(I, J, K)`` of each product of a classical
    CDAG, shape ``(b^r, 3)``.

    Each multiplication digit of ``classical(n0)`` encodes a level triple
    ``(i, j, k)`` packed as ``(i * n0 + j) * n0 + k``; the global indices
    are the base-``n0`` numbers with those digits (most significant
    first).
    """
    alg = cdag.alg
    n0 = alg.n0
    if alg.b != n0**3 or not _is_classical(alg):
        raise ScheduleError(
            "classical_product_digits requires a classical(n0) CDAG"
        )
    r = cdag.r
    products = np.arange(len(cdag.products()), dtype=np.int64)
    I = np.zeros(len(products), dtype=np.int64)
    J = np.zeros(len(products), dtype=np.int64)
    K = np.zeros(len(products), dtype=np.int64)
    rest = products.copy()
    # Digits are most-significant-first in the packed index; peel from
    # the least significant side and build up with matching weights.
    for level in range(r):
        digit = rest % alg.b
        rest //= alg.b
        i = digit // (n0 * n0)
        j = (digit // n0) % n0
        k = digit % n0
        weight = n0**level
        I += i * weight
        J += j * weight
        K += k * weight
    return np.stack([I, J, K], axis=1)


@traced("schedules.loop_order")
def loop_order_schedule(cdag: CDAG, order: str = "ijk") -> np.ndarray:
    """Schedule of a classical CDAG with products in loop-nest order.

    ``order`` is a permutation of the letters ``i``, ``j``, ``k``; the
    leftmost letter is the outermost loop.  (``i`` indexes rows of A/C,
    ``j`` the contraction dimension, ``k`` columns of B/C.)
    """
    if sorted(order) != ["i", "j", "k"]:
        raise ScheduleError(f"order must permute 'ijk', got {order!r}")
    digits = classical_product_digits(cdag)
    cols = {"i": digits[:, 0], "j": digits[:, 1], "k": digits[:, 2]}
    # lexsort's last key is primary -> reverse the order string.
    keys = [cols[ch] for ch in reversed(order)]
    product_order = np.lexsort(keys)
    return demand_driven_schedule(cdag, product_order)


def _is_classical(alg) -> bool:
    """Heuristic identity check used to guard the digit decode."""
    import numpy as np

    n0 = alg.n0
    if alg.b != n0**3:
        return False
    for m in range(alg.b):
        i, rem = divmod(m, n0 * n0)
        j, k = divmod(rem, n0)
        u = np.zeros(alg.a)
        u[i * n0 + j] = 1
        v = np.zeros(alg.a)
        v[j * n0 + k] = 1
        if not (np.array_equal(alg.U[m], u) and np.array_equal(alg.V[m], v)):
            return False
    return True
