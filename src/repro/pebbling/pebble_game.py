"""The red-blue pebble game of Hong and Kung [10], strict form.

The paper's machine model "see [10] for the formalization of this model
as a pebble game played on the computation graph".  This module provides
that formalisation as an explicit state machine with legality checking:

- a *blue* pebble marks a value in slow memory, *red* in fast memory;
- **LOAD v**: place red on a blue-pebbled vertex (cost 1);
- **STORE v**: place blue on a red-pebbled vertex (cost 1);
- **COMPUTE v**: place red on ``v`` if all predecessors carry red — at
  most once per vertex (no recomputation);
- **DELETE v**: remove the red pebble from ``v`` (free);
- at most ``M`` red pebbles at any time;
- initially: blue on all inputs; goal: blue on all outputs.

:func:`trace_from_executor` replays a :class:`CacheExecutor` run as a
pebble-game move sequence, proving (per run) that the executor's
accounting corresponds to a *legal* pebbling of the same cost — the
integration tests rely on this equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.cdag.graph import CDAG
from repro.errors import CacheError, PebbleGameError, ScheduleError
from repro.simcore.plan import SchedulePlan
from repro.simcore.pyloops import simulate_py

__all__ = ["Move", "MoveKind", "PebbleGame", "trace_from_executor"]


class MoveKind(Enum):
    LOAD = "load"
    STORE = "store"
    COMPUTE = "compute"
    DELETE = "delete"


@dataclass(frozen=True)
class Move:
    kind: MoveKind
    vertex: int


class PebbleGame:
    """Strict red-blue pebble game state machine on a CDAG."""

    def __init__(self, cdag: CDAG, cache_size: int):
        if cache_size <= 0:
            raise PebbleGameError("cache_size must be positive")
        self.cdag = cdag
        self.cache_size = cache_size
        self.red: set[int] = set()
        self.blue: set[int] = set(np.nonzero(cdag.in_degree() == 0)[0].tolist())
        self.computed: set[int] = set(self.blue)  # inputs count as available
        self.io_count = 0
        self.moves: list[Move] = []

    # ------------------------------------------------------------------

    def load(self, v: int) -> None:
        """Slow -> fast (cost 1)."""
        if v not in self.blue:
            raise PebbleGameError(f"LOAD {v}: no blue pebble")
        if v in self.red:
            raise PebbleGameError(f"LOAD {v}: already red")
        self._need_room()
        self.red.add(v)
        self.io_count += 1
        self.moves.append(Move(MoveKind.LOAD, v))

    def store(self, v: int) -> None:
        """Fast -> slow (cost 1)."""
        if v not in self.red:
            raise PebbleGameError(f"STORE {v}: no red pebble")
        self.blue.add(v)
        self.io_count += 1
        self.moves.append(Move(MoveKind.STORE, v))

    def compute(self, v: int) -> None:
        """Place red on ``v``; all predecessors must be red."""
        if v in self.computed:
            raise PebbleGameError(f"COMPUTE {v}: already computed (recomputation forbidden)")
        preds = self.cdag.predecessors(v)
        missing = [int(p) for p in preds if int(p) not in self.red]
        if missing:
            raise PebbleGameError(f"COMPUTE {v}: predecessors {missing} not in fast memory")
        if v in self.red:
            raise PebbleGameError(f"COMPUTE {v}: already red")
        self._need_room()
        self.red.add(v)
        self.computed.add(v)
        self.moves.append(Move(MoveKind.COMPUTE, v))

    def delete(self, v: int) -> None:
        """Remove a red pebble (free)."""
        if v not in self.red:
            raise PebbleGameError(f"DELETE {v}: no red pebble")
        self.red.discard(v)
        self.moves.append(Move(MoveKind.DELETE, v))

    def _need_room(self) -> None:
        if len(self.red) >= self.cache_size:
            raise PebbleGameError(
                f"fast memory full ({self.cache_size} red pebbles); "
                "DELETE or STORE+DELETE first"
            )

    # ------------------------------------------------------------------

    def is_complete(self) -> bool:
        """All outputs carry blue pebbles."""
        return all(int(v) in self.blue for v in self.cdag.outputs())

    def assert_complete(self) -> None:
        if not self.is_complete():
            missing = [
                int(v) for v in self.cdag.outputs() if int(v) not in self.blue
            ]
            raise PebbleGameError(f"outputs without blue pebbles: {missing[:10]}")


def trace_from_executor(
    cdag: CDAG,
    schedule,
    cache_size: int,
    policy: str = "lru",
) -> PebbleGame:
    """Replay an executor run as pebble-game moves and return the game.

    The simulation core's pure-Python loops emit every implied machine
    move — load / store / delete / compute, in execution order — through
    their ``events`` hook; forwarding those events into a
    :class:`PebbleGame` replays the *same* simulation (same eviction
    decisions, no second policy implementation) under the game's
    legality checks, so ``game.io_count`` equals the executor's
    ``IOResult.total`` — asserted by the integration tests.  Raises
    :class:`PebbleGameError` if any implied move would be illegal.
    """
    codes = {"lru": 0, "fifo": 1, "belady": 2}
    if policy not in codes:
        raise CacheError(f"unknown eviction policy {policy!r}")
    schedule = np.ascontiguousarray(schedule, dtype=np.int64)
    game = PebbleGame(cdag, cache_size)
    is_input = cdag.in_degree() == 0
    is_output = np.zeros(cdag.n_vertices, dtype=bool)
    is_output[cdag.outputs()] = True
    plan = SchedulePlan(cdag, schedule, validated=False)

    moves = {
        "load": game.load,
        "store": game.store,
        "delete": game.delete,
        "compute": game.compute,
    }

    def forward(kind: str, v: int) -> None:
        moves[kind](v)

    try:
        simulate_py(
            plan, is_input, is_output, cache_size, codes[policy],
            events=forward,
        )
    except ScheduleError as exc:
        # The executor's "operand unavailable" is the game's illegal
        # LOAD (no blue pebble) — keep the game-side exception type.
        raise PebbleGameError(str(exc)) from exc
    game.assert_complete()
    return game
