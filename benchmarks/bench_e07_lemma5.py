"""Benchmark E7: Lemma 5 / Lemma 6 Hall condition via Winograd's bound (Figure 9).

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md)
and asserts every paper-claim check; pytest-benchmark tracks the
regeneration cost.
"""


def test_e7_lemma5(run_experiment):
    run_experiment("E7")
