"""Benchmark E9: Theorem 1 sequential: measured I/O vs bounds.

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md)
and asserts every paper-claim check; pytest-benchmark tracks the
regeneration cost.  The sweep variant fans the (r_max, cache-size) grid
out on the parallel runner and verifies the warm rerun is served from
the on-disk cache.
"""


def test_e9_io_sweep(run_experiment):
    run_experiment("E9")


def test_e9_sweep_via_runner(run_sweep_benchmark):
    from repro.runner import expand_grid

    specs = expand_grid(
        "E9",
        {
            "r_max": [3, 4],
            "cache_sizes": [[12, 24], [12, 24, 48]],
            "r_big": [None],
        },
    )
    run_sweep_benchmark(specs, workers=2)
