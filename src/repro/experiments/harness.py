"""Experiment harness: registry, result container, report rendering.

Each experiment module ``e01`` … ``e12`` exposes ``run(**params)``
returning an :class:`ExperimentResult`; the registry lets the benchmark
suite, the examples, and ``python -m repro.experiments`` drive them
uniformly.  Every result carries named boolean *checks* — the
paper-claim verdicts — plus the tables whose rows are recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.utils.tables import TextTable

__all__ = ["ExperimentResult", "register", "get_experiment", "list_experiments"]


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    experiment_id: str
    title: str
    tables: list[TextTable] = field(default_factory=list)
    #: named paper-claim verdicts; all must be True for the experiment
    #: to count as reproduced.
    checks: dict[str, bool] = field(default_factory=dict)
    #: free-form numeric payload for programmatic consumers.
    data: dict = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def render(self) -> str:
        lines = [f"=== {self.experiment_id}: {self.title} ==="]
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        for name, ok in self.checks.items():
            lines.append(f"[{'PASS' if ok else 'FAIL'}] {name}")
        return "\n".join(lines)


_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator: register an experiment's run function."""

    def wrap(fn: Callable[..., ExperimentResult]):
        _REGISTRY[experiment_id] = fn
        return fn

    return wrap


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Fetch a registered experiment by id (e.g. ``"E4"``)."""
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(_REGISTRY)}"
        ) from None


def list_experiments() -> list[str]:
    """All registered experiment ids."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def _ensure_loaded() -> None:
    # Import experiment modules lazily to avoid import cycles.
    from repro.experiments import (  # noqa: F401
        e01, e02, e03, e04, e05, e06, e07, e08, e09, e10, e11, e12, e13, e14,
        e15,
    )
