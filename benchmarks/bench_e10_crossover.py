"""Benchmark E10: Strassen vs classical crossovers.

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md)
and asserts every paper-claim check; pytest-benchmark tracks the
regeneration cost.
"""


def test_e10_crossover(run_experiment):
    run_experiment("E10")
