"""Resilient chaos sweeps: run, die, recover, resume, verify.

:func:`run_chaos_sweep` is the executable statement of the soak
invariant: under *any* fault plan, the sweep terminates with every job
in a terminal state, and a fault-free verification pass against the
same store heals whatever the faults corrupted, leaving artifacts
byte-identical to a fault-free run.

The loop mirrors what an operator (or ``--resume``) would do after a
real SIGKILL: recover the torn journal tail, garbage-collect orphaned
temp files, and re-launch the identical sweep — completed jobs are
served from the store, corrupted artifacts are detected by checksum,
quarantined, and recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.chaos.faults import SweepKilled
from repro.chaos.monkey import ChaosMonkey, monkey
from repro.chaos.plan import FaultPlan

__all__ = ["ChaosSweepReport", "run_chaos_sweep"]

#: Terminal job statuses the soak invariant admits.
TERMINAL_STATUSES = frozenset({"ok", "cached", "failed"})


@dataclass
class ChaosSweepReport:
    """Everything a soak assertion needs about one chaos run."""

    #: Outcomes of the final pass (fault-free verification pass when
    #: ``verify=True``, else the terminal chaos pass).
    outcomes: list = field(default_factory=list)
    #: Outcomes of the last chaos (faults-armed) pass.
    chaos_outcomes: list = field(default_factory=list)
    #: Sweep launches needed, including restarts after simulated kills.
    rounds: int = 0
    #: Journal recoveries performed ({"dropped_bytes", "bad_lines"} sums).
    recoveries: dict = field(default_factory=dict)
    #: The monkey's injection report (:meth:`ChaosMonkey.report`).
    chaos: dict = field(default_factory=dict)

    @property
    def all_terminal(self) -> bool:
        return all(o.status in TERMINAL_STATUSES for o in self.chaos_outcomes)


def run_chaos_sweep(
    specs: Sequence,
    store,
    plan: FaultPlan | ChaosMonkey,
    *,
    events_path: str | Path | None = None,
    max_restarts: int = 8,
    verify: bool = True,
    **run_kw,
) -> ChaosSweepReport:
    """Run ``specs`` under an armed chaos monkey until the sweep
    terminates, restarting after every simulated SIGKILL.

    ``run_kw`` is forwarded to :func:`repro.runner.pool.run_sweep`
    (workers, timeout, heartbeat, retries, ...).  With ``verify=True``
    a final fault-free pass re-runs the sweep against the same store,
    so checksum-quarantined artifacts are recomputed and
    ``report.outcomes`` reflects a healed cache.
    """
    from repro import telemetry
    from repro.runner.events import EventLog
    from repro.runner.pool import run_sweep

    mk = plan if isinstance(plan, ChaosMonkey) else ChaosMonkey(plan)
    report = ChaosSweepReport(chaos={}, recoveries={"dropped_bytes": 0, "bad_lines": 0})
    run_kw.setdefault("progress", False)

    def _one_pass() -> list:
        if events_path is not None:
            recovery = EventLog.recover(events_path)
            report.recoveries["dropped_bytes"] += recovery.get("dropped_bytes", 0)
            report.recoveries["bad_lines"] += recovery.get("bad_lines", 0)
        events = EventLog(events_path) if events_path is not None else EventLog()
        try:
            return run_sweep(specs, store, events=events, **run_kw)
        finally:
            events.close()

    with monkey(mk):
        while True:
            report.rounds += 1
            if report.rounds > max_restarts:
                raise RuntimeError(
                    f"chaos sweep did not terminate within {max_restarts} "
                    f"restarts (seed {mk.plan.seed})"
                )
            try:
                report.chaos_outcomes = _one_pass()
            except SweepKilled:
                telemetry.metrics().inc("chaos.recovered")
                telemetry.metrics().inc("chaos.recovered.resumed")
                continue
            break
        mk.disarm()
        report.outcomes = report.chaos_outcomes
        if verify:
            # Fault-free pass with the monkey disarmed: cache hits for
            # intact artifacts, checksum-quarantine + recompute for
            # corrupted ones.
            report.outcomes = _one_pass()
    report.chaos = mk.report()
    return report
