"""Tests for the strict red-blue pebble game and executor equivalence."""

import pytest

from repro.bilinear import strassen, winograd
from repro.cdag import build_base_graph, build_cdag
from repro.errors import PebbleGameError
from repro.pebbling import PebbleGame, simulate_io, trace_from_executor
from repro.schedules import rank_order_schedule, recursive_schedule


@pytest.fixture()
def base_game():
    return PebbleGame(build_base_graph(strassen()), cache_size=5)


class TestMoves:
    def test_initial_state(self, base_game):
        # All 8 inputs blue, nothing red.
        assert len(base_game.blue) == 8
        assert len(base_game.red) == 0
        assert base_game.io_count == 0

    def test_load_costs_one(self, base_game):
        v = next(iter(base_game.blue))
        base_game.load(v)
        assert base_game.io_count == 1
        assert v in base_game.red

    def test_load_requires_blue(self, base_game):
        g = base_game.cdag
        v = int(g.products()[0])
        with pytest.raises(PebbleGameError):
            base_game.load(v)

    def test_double_load_rejected(self, base_game):
        v = next(iter(base_game.blue))
        base_game.load(v)
        with pytest.raises(PebbleGameError):
            base_game.load(v)

    def test_store_requires_red(self, base_game):
        v = next(iter(base_game.blue))
        with pytest.raises(PebbleGameError):
            base_game.store(v)

    def test_compute_requires_preds_red(self, base_game):
        g = base_game.cdag
        v = int(g.products()[0])
        with pytest.raises(PebbleGameError):
            base_game.compute(v)

    def test_compute_sequence(self, base_game):
        g = base_game.cdag
        # Compute encoder vertex for product 2 (A11 alone on the A side).
        from repro.cdag import Region

        enc = g.vertex_id(Region.ENC_A, 1, (2,))
        pred = int(g.predecessors(enc)[0])
        base_game.load(pred)
        base_game.compute(enc)
        assert enc in base_game.red

    def test_no_recomputation(self, base_game):
        g = base_game.cdag
        from repro.cdag import Region

        enc = g.vertex_id(Region.ENC_A, 1, (2,))
        pred = int(g.predecessors(enc)[0])
        base_game.load(pred)
        base_game.compute(enc)
        base_game.delete(enc)
        with pytest.raises(PebbleGameError):
            base_game.compute(enc)

    def test_capacity_enforced(self, base_game):
        inputs = sorted(base_game.blue)
        for v in inputs[:5]:
            base_game.load(v)
        with pytest.raises(PebbleGameError):
            base_game.load(inputs[5])

    def test_delete_frees_room(self, base_game):
        inputs = sorted(base_game.blue)
        for v in inputs[:5]:
            base_game.load(v)
        base_game.delete(inputs[0])
        base_game.load(inputs[5])
        assert len(base_game.red) == 5

    def test_delete_requires_red(self, base_game):
        with pytest.raises(PebbleGameError):
            base_game.delete(next(iter(base_game.blue)))

    def test_bad_cache_size(self):
        with pytest.raises(PebbleGameError):
            PebbleGame(build_base_graph(strassen()), cache_size=0)


class TestCompletion:
    def test_incomplete_initially(self, base_game):
        assert not base_game.is_complete()
        with pytest.raises(PebbleGameError):
            base_game.assert_complete()


class TestExecutorEquivalence:
    @pytest.mark.parametrize("policy", ["lru", "fifo", "belady"])
    @pytest.mark.parametrize("M", [6, 12, 48])
    def test_io_counts_match(self, policy, M):
        """Every executor run corresponds to a legal pebbling of equal
        cost."""
        g = build_cdag(strassen(), 2)
        sched = recursive_schedule(g)
        res = simulate_io(g, sched, M, policy=policy)
        game = trace_from_executor(g, sched, M, policy=policy)
        assert game.io_count == res.total
        assert game.is_complete()

    def test_rank_order_equivalence(self):
        g = build_cdag(winograd(), 2)
        sched = rank_order_schedule(g)
        res = simulate_io(g, sched, 10)
        game = trace_from_executor(g, sched, 10)
        assert game.io_count == res.total

    def test_red_pebbles_never_exceed_capacity(self):
        g = build_cdag(strassen(), 2)
        sched = recursive_schedule(g)
        game = trace_from_executor(g, sched, 8)
        # Replay and track the running red count.
        replay = PebbleGame(g, 8)
        for move in game.moves:
            getattr(replay, move.kind.value)(move.vertex)
            assert len(replay.red) <= 8
