"""Checksummed search journal: exact resume after a kill.

The tuner's durable state is an append-only JSONL file.  Each line is
one record; the ``sha256`` field is the hex digest of the record's
canonical JSON *without* that field, so any torn tail or flipped bit is
detected line-locally — :func:`TuneJournal.load` keeps the longest
valid prefix and drops everything after the first damaged line (the
same discipline as the runner's event journal, see PR 4's crash
hardening).

Record kinds (the driver's contract, asserted by the resume tests):

- ``tune_start`` — canonical config + package version; a resume
  refuses to continue a journal whose config disagrees;
- ``generation`` — one per completed generation: strategy state, the
  post-generation RNG state (``numpy`` bit-generator state is
  JSON-native), new ledger entries, best-so-far, cumulative counts.
  A kill *between* two of these replays the interrupted generation
  from its recorded RNG state — identical proposals, answered from the
  result store — so the resumed trajectory is bit-for-bit the
  uninterrupted one;
- ``tune_resume`` — marks each resume (diagnostic only);
- ``tune_finish`` — terminal summary.

Writes are flushed and fsynced per record: a SIGKILL can lose at most
the line being written, never corrupt an earlier one.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

__all__ = ["JOURNAL_VERSION", "TuneJournal", "record_checksum"]

JOURNAL_VERSION = 1


def record_checksum(record: dict) -> str:
    """Hex sha256 of the canonical JSON of ``record`` (sans checksum)."""
    doc = {k: v for k, v in record.items() if k != "sha256"}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class TuneJournal:
    """Append-only, per-line-checksummed JSONL journal."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = None

    def append(self, record: dict) -> None:
        rec = dict(record)
        rec["sha256"] = record_checksum(rec)
        line = json.dumps(rec, sort_keys=True, separators=(",", ":"))
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def truncate(self) -> None:
        """Discard the journal (a fresh, non-resumed search starting
        over at the same path must not append to a previous run)."""
        self.close()
        if self.path.exists():
            self.path.unlink()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TuneJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @classmethod
    def load(cls, path: str | os.PathLike) -> list[dict]:
        """Valid records, in order, up to the first damaged line.

        Missing file → empty list.  A truncated tail (no newline, cut
        JSON) or a checksum mismatch ends the prefix; everything before
        it is trusted.
        """
        p = Path(path)
        if not p.exists():
            return []
        records: list[dict] = []
        with open(p, "r", encoding="utf-8") as fh:
            for raw in fh:
                line = raw.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    break
                if not isinstance(rec, dict):
                    break
                if rec.get("sha256") != record_checksum(rec):
                    break
                records.append(rec)
        return records
