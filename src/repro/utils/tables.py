"""Plain-text table rendering for experiment reports.

The benchmark harness prints the rows each experiment reproduces (paper
statement vs measured value); this module renders those rows in aligned
monospace tables so the output of ``pytest benchmarks/ --benchmark-only``
doubles as the experiment log recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["TextTable", "format_count", "format_ratio"]


class TextTable:
    """Accumulates rows and renders an aligned ASCII table.

    Examples
    --------
    >>> t = TextTable(["k", "bound", "measured"])
    >>> t.add_row([1, 77, 18])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    k | bound | measured
    --+-------+---------
    1 |    77 |       18
    """

    def __init__(self, headers: Sequence[str], title: str | None = None):
        self.headers = [str(h) for h in headers]
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        cells = [_fmt(cell) for cell in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(
            h.ljust(w) for h, w in zip(self.headers, widths)
        )
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * max(len(self.title), len(header)))
        lines.append(header)
        lines.append(sep)
        for row in self.rows:
            lines.append(
                " | ".join(
                    cell.rjust(w) if _is_numeric(cell) else cell.ljust(w)
                    for cell, w in zip(row, widths)
                )
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_count(value: int | float) -> str:
    """Human-friendly integer formatting with thousands separators."""
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.2f}"
    return f"{int(value):,}"


def format_ratio(numerator: float, denominator: float) -> str:
    """``numerator / denominator`` as a short decimal, '-' if undefined."""
    if denominator == 0:
        return "-"
    return f"{numerator / denominator:.3f}"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if abs(cell) >= 1e6 or (cell != 0 and abs(cell) < 1e-3):
            return f"{cell:.3e}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell.replace(",", ""))
        return True
    except ValueError:
        return False
