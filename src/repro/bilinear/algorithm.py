"""Bilinear matrix-multiplication algorithms as ``<U, V, W>`` triples.

A *Strassen-like* algorithm for multiplying ``n0 x n0`` matrices (paper,
Section 3) is determined by its base case: ``b`` multiplications, each of a
linear combination of entries of ``A`` with a linear combination of entries
of ``B``, followed by linear combinations of the products giving the
entries of ``C``.  Algebraically this is a rank-``b`` decomposition of the
matrix-multiplication tensor, written as three coefficient matrices:

- ``U`` of shape ``(b, a)``: row ``m`` gives the coefficients of the
  ``A``-side linear combination of multiplication ``m``;
- ``V`` of shape ``(b, a)``: same for the ``B`` side;
- ``W`` of shape ``(a, b)``: row ``e`` gives the coefficients with which
  the ``b`` products combine into output entry ``e``;

where ``a = n0**2`` and entries are indexed row-major
(:func:`repro.utils.indexing.pair_index`).

The exact correctness condition is the system of *Brent equations*:

    sum_m U[m, (i,j)] * V[m, (k,l)] * W[(p,q), m]
        = [j == k] * [i == p] * [l == q]

for all ``i, j, k, l, p, q`` in ``[0, n0)``.  :meth:`BilinearAlgorithm.validate`
checks all ``a^3`` of them exactly.

This module is substrate for the whole library: the CDAG builder
(:mod:`repro.cdag`), the routing construction (:mod:`repro.routing`), the
numeric executors (:mod:`repro.linalg`), and the bound formulas
(:mod:`repro.bounds`) all consume :class:`BilinearAlgorithm`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import AlgorithmError, BrentEquationError
from repro.utils.indexing import pair_index, pair_unindex

__all__ = [
    "BilinearAlgorithm",
    "matmul_tensor",
    "solve_decoder",
]


def matmul_tensor(n0: int) -> np.ndarray:
    """The ``n0 x n0`` matrix-multiplication tensor.

    Returns ``T`` of shape ``(a, a, a)`` with
    ``T[(i,j), (k,l), (p,q)] = [j==k][i==p][l==q]`` — the right-hand side
    of the Brent equations.
    """
    if n0 <= 0:
        raise ValueError("n0 must be positive")
    a = n0 * n0
    T = np.zeros((a, a, a), dtype=np.int64)
    for i in range(n0):
        for j in range(n0):
            for l in range(n0):
                T[
                    pair_index(i, j, n0),
                    pair_index(j, l, n0),
                    pair_index(i, l, n0),
                ] = 1
    return T


@dataclass(frozen=True)
class BilinearAlgorithm:
    """An exact bilinear algorithm for ``n0 x n0`` matrix multiplication.

    Instances are immutable; the coefficient arrays are set non-writeable.
    Construction validates shapes but not correctness — call
    :meth:`validate` (the catalog constructors do this for you).

    Attributes
    ----------
    n0:
        Base matrix dimension (paper's ``n_0``).
    U, V:
        Encoding matrices, shape ``(b, n0**2)``.
    W:
        Decoding matrix, shape ``(n0**2, b)``.
    name:
        Human-readable identifier used in reports.
    """

    n0: int
    U: np.ndarray
    V: np.ndarray
    W: np.ndarray
    name: str = "unnamed"
    #: Free-form notes (e.g. provenance of the coefficients).
    notes: str = field(default="", compare=False)

    def __post_init__(self):
        n0 = self.n0
        if n0 <= 0:
            raise AlgorithmError(f"n0 must be positive, got {n0}")
        a = n0 * n0
        U = np.ascontiguousarray(np.asarray(self.U, dtype=np.float64))
        V = np.ascontiguousarray(np.asarray(self.V, dtype=np.float64))
        W = np.ascontiguousarray(np.asarray(self.W, dtype=np.float64))
        if U.ndim != 2 or U.shape[1] != a:
            raise AlgorithmError(
                f"U must have shape (b, {a}), got {U.shape}"
            )
        if V.shape != U.shape:
            raise AlgorithmError(
                f"V must match U's shape {U.shape}, got {V.shape}"
            )
        if W.shape != (a, U.shape[0]):
            raise AlgorithmError(
                f"W must have shape ({a}, {U.shape[0]}), got {W.shape}"
            )
        if U.shape[0] == 0:
            raise AlgorithmError("algorithm must have at least one product")
        for arr in (U, V, W):
            arr.flags.writeable = False
        object.__setattr__(self, "U", U)
        object.__setattr__(self, "V", V)
        object.__setattr__(self, "W", W)

    # ------------------------------------------------------------------
    # Basic parameters (paper notation)
    # ------------------------------------------------------------------

    @property
    def a(self) -> int:
        """Number of entries per input matrix (paper's ``a = n0^2``)."""
        return self.n0 * self.n0

    @property
    def b(self) -> int:
        """Number of multiplications in the base case (paper's ``b``)."""
        return self.U.shape[0]

    @property
    def omega0(self) -> float:
        """Arithmetic exponent ``ω0 = 2 log_a b = log_{n0} b``.

        The recursive algorithm performs ``Θ(n^ω0)`` arithmetic operations
        on ``n x n`` inputs.
        """
        return math.log(self.b) / math.log(self.n0)

    @property
    def is_strassen_like(self) -> bool:
        """``True`` iff the arithmetic complexity is ``o(n^3)``.

        The paper's Theorem 1 concerns exactly these algorithms
        (``ω0 < 3``); the classical algorithm is the boundary case where
        the bound still evaluates but is superseded by Hong–Kung.
        """
        return self.b < self.n0 ** 3

    # ------------------------------------------------------------------
    # Correctness
    # ------------------------------------------------------------------

    def residual_tensor(self) -> np.ndarray:
        """``sum_m U_m ⊗ V_m ⊗ W_m`` minus the matmul tensor.

        All-zero iff the algorithm is correct.
        """
        realised = np.einsum("mx,my,zm->xyz", self.U, self.V, self.W)
        return realised - matmul_tensor(self.n0)

    def validate(self, atol: float = 1e-9) -> "BilinearAlgorithm":
        """Check the Brent equations; raise :class:`BrentEquationError`
        on failure.  Returns ``self`` for chaining."""
        residual = self.residual_tensor()
        bad = np.argwhere(np.abs(residual) > atol)
        if len(bad):
            x, y, z = (int(v) for v in bad[0])
            i, j = pair_unindex(x, self.n0)
            k, l = pair_unindex(y, self.n0)
            p, q = pair_unindex(z, self.n0)
            raise BrentEquationError(
                f"algorithm {self.name!r} violates the Brent equation at "
                f"a[{i}{j}], b[{k}{l}], c[{p}{q}]: residual "
                f"{residual[x, y, z]:+.3g} ({len(bad)} violations total)",
                index=(i, j, k, l, p, q),
            )
        return self

    def is_valid(self, atol: float = 1e-9) -> bool:
        """Boolean form of :meth:`validate`."""
        return bool(np.all(np.abs(self.residual_tensor()) <= atol))

    # ------------------------------------------------------------------
    # Structural predicates used by the paper's assumptions
    # ------------------------------------------------------------------

    def trivial_rows(self, side: str = "A") -> np.ndarray:
        """Boolean mask of *trivial* encoding rows on the given side.

        A row is trivial when its linear combination has a single nonzero
        coefficient — the resulting CDAG vertex is (up to scaling) a copy
        of an input, which the paper's single-use assumption exempts.
        """
        E = self._encoder(side)
        return np.count_nonzero(E, axis=1) == 1

    def single_use_violations(self, side: str = "A") -> list[tuple[int, int]]:
        """Pairs of multiplications that share a *nontrivial* combination.

        The paper assumes "every nontrivial linear combination of elements
        of the input matrices is used in only one multiplication"; in
        ``<U,V,W>`` form a violation is two identical nontrivial rows of
        the same encoder.  Returns all violating pairs (empty for every
        algorithm in the catalog).
        """
        E = self._encoder(side)
        nontrivial = ~self.trivial_rows(side)
        out: list[tuple[int, int]] = []
        rows = [tuple(row) for row in E]
        for m1 in range(self.b):
            if not nontrivial[m1]:
                continue
            for m2 in range(m1 + 1, self.b):
                if nontrivial[m2] and rows[m1] == rows[m2]:
                    out.append((m1, m2))
        return out

    def satisfies_single_use(self) -> bool:
        """Whether the paper's main assumption holds for this base graph."""
        return not (
            self.single_use_violations("A") or self.single_use_violations("B")
        )

    def has_multiple_copying(self) -> bool:
        """Whether some input entry is used *alone* in several products.

        This is exactly the situation producing multiple copying in the
        recursive CDAG (paper, Figure 2): a trivial combination replicated
        across multiplications yields a meta-vertex branching at an input.
        """
        for side in ("A", "B"):
            E = self._encoder(side)
            trivial = self.trivial_rows(side)
            seen: set[int] = set()
            for m in np.nonzero(trivial)[0]:
                entry = int(np.nonzero(E[m])[0][0])
                if entry in seen:
                    return True
                seen.add(entry)
        return False

    def encoder_components(self, side: str = "A") -> list[set[int]]:
        """Connected components of the encoding graph's bipartite support.

        Vertices are ``a`` input entries plus ``b`` combination vertices;
        an input entry and a combination are adjacent when the coefficient
        is nonzero.  Components are returned as sets of multiplication
        indices (isolated inputs — entries used by no product — are
        ignored; they cannot occur in a correct algorithm).

        The edge-expansion technique of [6] requires connected encoders
        and decoders; this census identifies where it fails (experiment
        E12 / E1).
        """
        E = self._encoder(side)
        return _bipartite_components(E != 0)

    def decoder_components(self) -> list[set[int]]:
        """Connected components of the decoding graph's bipartite support
        (products vs output entries), as sets of multiplication indices."""
        return _bipartite_components(self.W.T != 0)

    # ------------------------------------------------------------------
    # Execution on concrete matrices (base case only; recursion lives in
    # :mod:`repro.linalg.bilinear_apply`)
    # ------------------------------------------------------------------

    def apply_base(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Run one (non-recursive) step on ``n0 x n0`` numeric matrices.

        Exercises exactly the dataflow of the base graph: encode, multiply
        pointwise, decode.  Used by tests to cross-check the Brent
        validation against brute numeric evaluation.
        """
        A = np.asarray(A, dtype=np.float64)
        B = np.asarray(B, dtype=np.float64)
        if A.shape != (self.n0, self.n0) or B.shape != (self.n0, self.n0):
            raise AlgorithmError(
                f"apply_base expects {self.n0}x{self.n0} matrices"
            )
        products = (self.U @ A.reshape(-1)) * (self.V @ B.reshape(-1))
        return (self.W @ products).reshape(self.n0, self.n0)

    # ------------------------------------------------------------------

    def _encoder(self, side: str) -> np.ndarray:
        if side == "A":
            return self.U
        if side == "B":
            return self.V
        raise ValueError(f"side must be 'A' or 'B', got {side!r}")

    def __repr__(self) -> str:
        return (
            f"BilinearAlgorithm(name={self.name!r}, n0={self.n0}, "
            f"b={self.b}, omega0={self.omega0:.4f})"
        )


def solve_decoder(
    n0: int, U: np.ndarray, V: np.ndarray, atol: float = 1e-8
) -> np.ndarray:
    """Recover the unique decoder ``W`` from the products ``<U, V, ·>``.

    The Brent equations are *linear* in ``W`` once ``U`` and ``V`` are
    fixed: with ``K[(x,y), m] = U[m,x] V[m,y]`` every output entry ``z``
    must satisfy ``K @ W[z, :] = T[:, :, z].ravel()``.  Solving the
    least-squares system and checking the residual both recovers ``W``
    and certifies that the chosen products *can* compute matrix
    multiplication.

    Raises
    ------
    AlgorithmError
        If no exact decoder exists (the products do not span the matmul
        tensor) — with the offending output entry in the message.
    """
    U = np.asarray(U, dtype=np.float64)
    V = np.asarray(V, dtype=np.float64)
    a = n0 * n0
    if U.shape[1] != a or V.shape != U.shape:
        raise AlgorithmError("U and V must both have shape (b, n0**2)")
    T = matmul_tensor(n0).astype(np.float64)
    K = np.einsum("mx,my->xym", U, V).reshape(a * a, U.shape[0])
    W = np.zeros((a, U.shape[0]))
    for z in range(a):
        target = T[:, :, z].reshape(-1)
        sol, *_ = np.linalg.lstsq(K, target, rcond=None)
        if np.max(np.abs(K @ sol - target)) > atol:
            p, q = pair_unindex(z, n0)
            raise AlgorithmError(
                f"no exact decoder exists: output c[{p}{q}] is not in the "
                "span of the given products"
            )
        # Snap near-integers/near-halves produced by floating lstsq so the
        # catalog stays exact.
        snapped = np.round(sol * 2) / 2
        W[z] = snapped if np.max(np.abs(K @ snapped - target)) <= atol else sol
    return W


def _bipartite_components(support: np.ndarray) -> list[set[int]]:
    """Components of a (rows=combinations, cols=entries) support matrix,
    reported as sets of row indices, via union-find."""
    from repro.utils.unionfind import UnionFind

    n_rows, n_cols = support.shape
    uf = UnionFind(n_rows + n_cols)
    rows, cols = np.nonzero(support)
    for r, c in zip(rows.tolist(), cols.tolist()):
        uf.union(r, n_rows + c)
    groups: dict[int, set[int]] = {}
    for r in range(n_rows):
        groups.setdefault(uf.find(r), set()).add(r)
    return sorted(groups.values(), key=lambda s: min(s))
