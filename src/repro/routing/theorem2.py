"""Theorem 2 (Routing Theorem): the ``6 a^k``-routing between all inputs
and outputs of ``G_k``.

Assembly: Lemma 3's ``2 n0^k``-routing of guaranteed dependencies,
composed through Lemma 4's chain concatenations (each chain reused
``3 n0^k`` times), gives every vertex at most
``2 n0^k * 3 n0^k = 6 a^k`` hits; because every meta-vertex is an
upward tree whose non-root members are copies, the same bound holds per
meta-vertex.  All three claims are machine-verified by
:func:`theorem2_certificate`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bilinear.algorithm import BilinearAlgorithm
from repro.cdag.builder import build_cdag
from repro.cdag.graph import CDAG
from repro.cdag.metavertex import MetaVertexPartition, compute_metavertices
from repro.errors import RoutingError
from repro.routing.lemma3 import lemma3_routing
from repro.routing.lemma4 import lemma4_routing
from repro.routing.paths import Routing
from repro.routing.verify import RoutingReport, verify_routing
from repro.telemetry.spans import span

__all__ = ["theorem2_bound", "theorem2_routing", "theorem2_certificate"]


def theorem2_bound(alg: BilinearAlgorithm, k: int) -> int:
    """The claimed ``m``: ``6 a^k``."""
    return 6 * alg.a**k


def theorem2_routing(
    cdag_or_alg, k: int | None = None, allow_assumption_violation: bool = False
) -> Routing:
    """Construct the Theorem-2 routing between ``In`` and ``Out``.

    Accepts either a standalone ``G_k`` CDAG or ``(algorithm, k)``.
    Requires the single-use assumption (checked); for violating
    algorithms the Hall step may still succeed, but the theorem's
    *guarantee* does not apply — a :class:`RoutingError` is raised to
    keep certificates honest (the paper's Section 8 sketches the
    extension).  Pass ``allow_assumption_violation=True`` to build the
    routing anyway and rely on empirical verification.
    """
    if isinstance(cdag_or_alg, CDAG):
        cdag = cdag_or_alg
    else:
        if k is None:
            raise RoutingError("pass k when giving an algorithm")
        cdag = build_cdag(cdag_or_alg, k)
    if not cdag.alg.satisfies_single_use() and not allow_assumption_violation:
        raise RoutingError(
            f"{cdag.alg.name!r} violates the single-use assumption; "
            "Theorem 2's routing guarantee does not apply"
        )
    with span("routing.theorem2", alg=cdag.alg.name, k=cdag.r) as sp:
        chains = lemma3_routing(cdag)
        routing = lemma4_routing(cdag, chains)
        routing.label = f"theorem2 k={cdag.r} ({cdag.alg.name})"
        sp.add("chains", len(chains))
        sp.add("paths", len(routing))
        return routing


@dataclass(frozen=True)
class Theorem2Certificate:
    """Verified certificate: the routing exists and meets its bounds."""

    algorithm: str
    k: int
    claimed_m: int
    report: RoutingReport
    lemma3_max_hits: int
    chains_used_exactly_3n0k: bool
    #: whether the paper's single-use assumption holds for the base graph
    #: (when False, the verified certificate is *empirical* evidence
    #: beyond the theorem's stated scope — cf. the paper's Section 8).
    single_use: bool = True


def theorem2_certificate(
    alg: BilinearAlgorithm, k: int, meta: MetaVertexPartition | None = None
) -> Theorem2Certificate:
    """Build and fully verify the Theorem-2 routing for ``G_k``.

    Checks, in order: Lemma 3's ``2 n0^k`` vertex bound; Lemma 4's
    exact ``3 n0^k`` chain-usage counts; the composed routing's path
    validity, pair coverage (every input-output pair exactly once), and
    ``6 a^k`` vertex *and* meta-vertex bounds.
    """
    from repro.routing.lemma4 import chain_usage_counts

    with span("routing.certificate", alg=alg.name, k=k) as sp:
        cdag = build_cdag(alg, k)
        if meta is None:
            meta = compute_metavertices(cdag)

        chains = lemma3_routing(cdag)
        lemma3_bound = 2 * alg.n0**k
        lemma3_report = verify_routing(cdag, chains, lemma3_bound, meta=meta)

        usage = chain_usage_counts(cdag, chains)
        expected_usage = 3 * alg.n0**k
        usage_exact = all(count == expected_usage for count in usage.values())
        if not usage_exact:
            raise RoutingError(
                "Lemma 4 chain usage is not exactly 3 n0^k for some chain"
            )

        routing = lemma4_routing(cdag, chains)
        expected_pairs = {
            (int(v), int(w))
            for v in cdag.inputs()
            for w in cdag.outputs()
        }
        report = verify_routing(
            cdag,
            routing,
            theorem2_bound(alg, k),
            meta=meta,
            expected_pairs=expected_pairs,
        )
        # Max-hit ledgers: the measured extremes the 6a^k claim is
        # checked against, plus Lemma 4's per-chain reuse count.
        sp.add("paths", report.n_paths)
        sp.add("max_vertex_hits", report.max_vertex_hits)
        sp.add("max_meta_hits", report.max_meta_hits)
        sp.add("lemma3_max_hits", lemma3_report.max_vertex_hits)
        sp.add("chain_reuse", expected_usage)
    return Theorem2Certificate(
        algorithm=alg.name,
        k=k,
        claimed_m=theorem2_bound(alg, k),
        report=report,
        lemma3_max_hits=lemma3_report.max_vertex_hits,
        chains_used_exactly_3n0k=usage_exact,
        single_use=alg.satisfies_single_use(),
    )
