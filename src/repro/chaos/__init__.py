"""Deterministic fault injection for the sweep runner.

The runner (:mod:`repro.runner`) claims a fault model — retries,
timeouts, crash quarantine, atomic artifacts, resumable sweeps.  This
package *exercises* that claim: a seeded :class:`FaultPlan` maps every
injection point to a reproducible fault decision, a
:func:`monkey` context installs those decisions into hook points
threaded through the pool, store and event log (no-ops when no monkey
is installed), and :func:`run_chaos_sweep` drives a sweep through the
resulting failures — including simulated mid-sweep SIGKILLs — until it
terminates, then verifies the store healed.

Quick start::

    from repro.chaos import FaultPlan, monkey, run_chaos_sweep

    plan = FaultPlan(seed=7)
    report = run_chaos_sweep(specs, store, plan,
                             events_path="events.jsonl",
                             workers=2, retries=2, timeout=10.0,
                             heartbeat=0.5)
    assert report.all_terminal

or from the command line: ``python -m repro sweep E1 E2 --chaos 7``.

Telemetry counters: ``chaos.injected[.site]`` (what the monkey did),
``chaos.detected[.what]`` (corruption the hardened runner noticed —
checksum mismatches, torn journal tails, orphaned temps) and
``chaos.recovered[.what]`` (quarantines, journal truncations, orphan
GC, sweep resumes).  Detection counters fire on *real* corruption too,
not only injected faults.
"""

from repro.chaos.faults import (
    ChaosInjectedError,
    SweepKilled,
    apply_store_fault,
    apply_worker_fault,
)
from repro.chaos.monkey import ChaosMonkey, monkey
from repro.chaos.plan import EVENT_KINDS, STORE_KINDS, WORKER_KINDS, FaultPlan
from repro.chaos.soak import ChaosSweepReport, run_chaos_sweep

__all__ = [
    "FaultPlan",
    "WORKER_KINDS",
    "STORE_KINDS",
    "EVENT_KINDS",
    "ChaosMonkey",
    "monkey",
    "ChaosInjectedError",
    "SweepKilled",
    "apply_worker_fault",
    "apply_store_fault",
    "ChaosSweepReport",
    "run_chaos_sweep",
]
