"""The sweep daemon: asyncio front end, dispatcher, admission, drain.

``repro serve`` runs one :class:`SweepService` in the foreground.  The
service binds a unix socket, speaks the NDJSON protocol of
:mod:`repro.service.protocol`, and owns four pieces of state:

- the **result store** (:class:`~repro.runner.store.ResultStore`) —
  submissions whose artifact already exists are answered directly from
  disk, counted as ``service.hit_no_worker``, and never touch a worker;
- the **warm pool** (:class:`~repro.service.workers.WarmPool`) — misses
  are queued and dispatched to resident pre-warmed workers, preferring
  jobs whose graph-affinity group some live worker has already served;
- the **journal** — every scheduler decision is one JSONL record with a
  monotonically increasing ``seq``; the journal file doubles as the
  replay source, so a client that attaches mid-run receives the full
  history (healed via :meth:`EventLog.recover` across daemon restarts)
  followed by the live tail, gap-free and duplicate-free;
- the **shared-memory tier** (:class:`~repro.service.shm.ShmTier`) —
  garbage-collected at startup and unlinked at drain, so segments never
  outlive the daemon, even ones a crashed worker leaked.

Admission control is explicit: at most ``queue_limit`` jobs queued or
running overall and ``client_quota`` outstanding per client; past
either, ``submit`` is answered with ``rejected`` (reason
``queue_full`` / ``quota``) rather than queued — callers are expected
to back off and resubmit.  Identical in-flight submissions coalesce on
the cache key, so N clients asking for one job cost one dispatch.

Graceful drain (SIGTERM, SIGINT, or the ``drain`` op): stop admitting,
fail whatever is still queued with reason ``draining``, let in-flight
jobs finish (bounded by ``drain_grace``, after which the pool is torn
down and stragglers are failed), journal ``service_drain`` /
``service_stop``, unlink every shared-memory segment, close the socket,
remove the socket file, exit 0.

The service relies on chaos hooks only at the same three sites as the
batch scheduler (worker faults via the job doc, store faults after
``put``); arm log-kill faults against a *batch* sweep, not a daemon.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro import telemetry
from repro.chaos import hooks as _chaos_hooks
from repro.errors import ProtocolError, ServiceError
from repro.runner.events import EventLog, read_events
from repro.runner.jobs import JobSpec, graph_affinity
from repro.runner.pool import CHARGED_KINDS, _retry_delay
from repro.runner.store import ResultStore
from repro.service import protocol
from repro.service.shm import DEFAULT_MAX_BYTES, ShmTier
from repro.service.workers import WarmPool

__all__ = ["ServiceConfig", "SweepService", "ServiceThread", "serve"]

_TICK = 0.02  # dispatcher poll interval, seconds


@dataclass
class ServiceConfig:
    """Everything a daemon needs to come up."""

    socket_path: str
    cache_dir: str = ".repro-cache"
    workers: int = 2
    graph_cache: str | None = None
    #: shared-memory hot tier: None disables; "auto" roots the ledger
    #: under the graph cache (or the cache dir when no graph cache).
    shm_root: str | None = "auto"
    shm_bytes: int = DEFAULT_MAX_BYTES
    queue_limit: int = 64
    client_quota: int = 16
    retries: int = 1
    backoff: float = 0.25
    timeout: float | None = None
    drain_grace: float = 30.0
    events_path: str | None = None
    history_limit: int = 20000
    mp_context: object | None = field(default=None, repr=False)

    def resolved_events_path(self) -> str:
        return self.events_path or str(Path(self.cache_dir) / "service-events.jsonl")

    def resolved_shm_root(self) -> str | None:
        if self.shm_root is None:
            return None
        if self.shm_root != "auto":
            return str(self.shm_root)
        base = self.graph_cache if self.graph_cache is not None else self.cache_dir
        return str(Path(base) / "shm")


class _Journal(EventLog):
    """Event log with per-record ``seq`` and live fan-out.

    ``subscribe()`` atomically snapshots the replay history and
    registers a queue for everything emitted afterwards; because both
    happen on the event loop with no await in between, a subscriber can
    neither miss a record nor see one twice.
    """

    def __init__(self, path: str, history: list[dict], limit: int):
        super().__init__(path)
        self.history = list(history)
        self.first_seq = history[0].get("seq", 1) if history else 1
        self._seq = max((int(r.get("seq", 0)) for r in history), default=0)
        self._limit = max(1, int(limit))
        self._subscribers: list[asyncio.Queue] = []

    @property
    def seq(self) -> int:
        return self._seq

    def emit(self, event: str, **fields) -> dict:
        self._seq += 1
        record = super().emit(event, seq=self._seq, **fields)
        self.history.append(record)
        if len(self.history) > self._limit:
            del self.history[: len(self.history) - self._limit]
            self.first_seq = self.history[0].get("seq", self._seq)
        for q in list(self._subscribers):
            q.put_nowait(record)
        return record

    def subscribe(self, replay: bool) -> tuple[list[dict], asyncio.Queue]:
        q: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(q)
        return (list(self.history) if replay else [], q)

    def unsubscribe(self, q: asyncio.Queue) -> None:
        with contextlib.suppress(ValueError):
            self._subscribers.remove(q)


class _Entry:
    """One admitted job: queued, running, retried, then terminal."""

    __slots__ = (
        "spec", "key", "affinity", "client", "job_doc", "status",
        "attempts", "charged_failures", "ready_at", "started_at",
        "future", "waiters",
    )

    def __init__(self, spec: JobSpec, client: str):
        self.spec = spec
        self.key = spec.cache_key
        self.affinity = graph_affinity(spec)
        self.client = client
        self.job_doc = {
            "experiment_id": spec.experiment_id,
            "params": dict(spec.params),
            "seed": spec.seed,
            "entrypoint": spec.entrypoint,
            "affinity": self.affinity,
        }
        self.status = "queued"
        self.attempts: list[dict] = []
        self.charged_failures = 0
        self.ready_at = 0.0
        self.started_at: float | None = None
        self.future = None
        #: queues of waiting submit requests (first is the admitting one).
        self.waiters: list[asyncio.Queue] = []

    def label(self) -> str:
        return self.spec.label


class SweepService:
    """The daemon.  Create, then :meth:`run` (foreground) or drive it
    from :class:`ServiceThread` (tests, embedding)."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.store = ResultStore(config.cache_dir)
        shm_root = config.resolved_shm_root()
        self.shm = (
            ShmTier(shm_root, max_bytes=config.shm_bytes)
            if shm_root is not None
            else None
        )
        self.pool = WarmPool(
            config.workers,
            graph_cache=config.graph_cache,
            shm_root=shm_root,
            mp_context=config.mp_context,
        )
        self.journal: _Journal | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: list[_Entry] = []
        self._inflight: dict[str, _Entry] = {}
        self._entries: dict[str, _Entry] = {}  # every non-terminal entry
        self._client_outstanding: dict[str, int] = {}
        self._draining = False
        self._drain_started: float | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._closing: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self._started_at = 0.0
        self._jobs_done = 0
        self._next_client = 0
        self.exit_code = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._closing = asyncio.Event()
        self._stopped = asyncio.Event()
        self._started_at = time.monotonic()
        events_path = self.config.resolved_events_path()
        EventLog.recover(events_path)
        history: list[dict] = []
        if Path(events_path).exists():
            history, _bad = read_events(events_path, strict=False)
        self.journal = _Journal(events_path, history, self.config.history_limit)
        orphans = self.store.gc_orphans()
        if orphans:
            self.journal.emit("store_gc", orphans=len(orphans))
        if self.shm is not None:
            self.shm.gc()
        sock = Path(self.config.socket_path)
        sock.parent.mkdir(parents=True, exist_ok=True)
        if sock.exists():
            # A live daemon answers pings; a dead one left a stale file.
            if await self._socket_is_live(str(sock)):
                raise ServiceError(f"another daemon is serving on {sock}")
            sock.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(sock),
            limit=protocol.MAX_LINE_BYTES,
        )
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        self.journal.emit(
            "service_start",
            socket=str(sock),
            workers=self.pool.workers,
            pid=os.getpid(),
        )

    @staticmethod
    async def _socket_is_live(path: str) -> bool:
        try:
            reader, writer = await asyncio.open_unix_connection(path)
        except OSError:
            return False
        try:
            writer.write(protocol.encode({"op": "ping"}))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=1.0)
            return bool(line)
        except OSError:
            return False
        except asyncio.TimeoutError:
            return False
        finally:
            writer.close()

    async def run(self) -> int:
        """Serve until drained; returns the process exit code."""
        await self.start()
        await self._stopped.wait()
        return self.exit_code

    def request_drain(self) -> None:
        """Begin a graceful drain (threadsafe; signal handlers and
        :class:`ServiceThread` call this from outside the loop)."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._begin_drain)

    def _begin_drain(self) -> None:
        if self._draining:
            return
        self._draining = True
        self._drain_started = time.monotonic()
        self.journal.emit(
            "service_drain", queued=len(self._queue), inflight=len(self._inflight)
        )
        # Queued-but-not-started jobs are failed fast: drain means
        # "finish what is running", not "finish the backlog".
        for entry in self._queue:
            self._resolve(entry, {
                "op": "result", "key": entry.key, "job": entry.label(),
                "status": "failed", "source": "drain",
                "error": "service draining",
            })
            self.journal.emit(
                "job_failed", job=entry.label(),
                experiment=entry.spec.experiment_id, key=entry.key,
                attempts=len(entry.attempts), reason="service draining",
            )
        self._queue.clear()
        self._gauge_queue()

    async def _shutdown(self) -> None:
        duration = round(time.monotonic() - self._started_at, 6)
        self.journal.emit("service_stop", duration=duration)
        # _closing wakes event tailers (they flush their queues — the
        # service_stop record just emitted included — and return) and
        # unparks idle readers, so connections wind down on their own;
        # cancellation below is only the backstop for a stuck writer.
        self._closing.set()
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(OSError):
                await self._server.wait_closed()
        if self._conn_tasks:
            _done, pending = await asyncio.wait(
                set(self._conn_tasks), timeout=5.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self.pool.shutdown(wait=False)
        if self.shm is not None:
            self.shm.drain()
        self.journal.close()
        with contextlib.suppress(OSError):
            Path(self.config.socket_path).unlink()
        self._stopped.set()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------

    def _metrics(self):
        return telemetry.metrics()

    def _gauge_queue(self) -> None:
        self._metrics().gauge("service.queue_depth").set(len(self._queue))

    def _take_queued(self, now: float) -> _Entry | None:
        """Next ready queued entry, preferring warm graph affinity
        (the batch scheduler's ``_take_pending`` discipline)."""
        warm = self.pool.warm_affinities()
        fallback = None
        for idx, entry in enumerate(self._queue):
            if entry.ready_at > now:
                continue
            if warm and entry.affinity in warm:
                del self._queue[idx]
                self._metrics().inc("service.dispatch_warm")
                return entry
            if fallback is None:
                fallback = idx
        if fallback is None:
            return None
        entry = self._queue.pop(fallback)
        if warm:
            self._metrics().inc("service.dispatch_cold")
        return entry

    def _launch(self, entry: _Entry) -> None:
        from concurrent.futures.process import BrokenProcessPool

        mk = _chaos_hooks.active
        if mk is not None:
            mk.prepare_job(entry.job_doc, entry.key, entry.charged_failures + 1)
        try:
            entry.future = self.pool.submit(dict(entry.job_doc))
        except BrokenProcessPool:
            self.pool.rebuild()
            entry.ready_at = time.monotonic()
            self._queue.append(entry)
            return
        entry.status = "running"
        entry.started_at = time.monotonic()
        self._inflight[entry.key] = entry
        self.journal.emit(
            "job_start", job=entry.label(),
            experiment=entry.spec.experiment_id, key=entry.key,
            attempt=len(entry.attempts) + 1,
        )

    def _resolve(self, entry: _Entry, message: dict) -> None:
        """Deliver the terminal message to every waiter and release the
        entry's admission bookkeeping."""
        entry.status = "done"
        self._entries.pop(entry.key, None)
        outstanding = self._client_outstanding
        outstanding[entry.client] = max(0, outstanding.get(entry.client, 1) - 1)
        for q in entry.waiters:
            q.put_nowait(message)
        entry.waiters.clear()

    def _charge(self, entry: _Entry, kind: str, reason: str) -> None:
        entry.attempts.append({"index": len(entry.attempts) + 1, "kind": kind,
                               "error": reason})
        if kind in CHARGED_KINDS:
            entry.charged_failures += 1
        if entry.charged_failures > self.config.retries:
            self.journal.emit(
                "job_failed", job=entry.label(),
                experiment=entry.spec.experiment_id, key=entry.key,
                attempts=len(entry.attempts), reason=reason,
            )
            self._resolve(entry, {
                "op": "result", "key": entry.key, "job": entry.label(),
                "status": "failed", "source": "worker", "error": reason,
                "attempts": list(entry.attempts),
            })
            return
        delay = (
            _retry_delay(entry.key, entry.charged_failures,
                         self.config.backoff, jitter=True)
            if kind in CHARGED_KINDS
            else 0.0
        )
        entry.status = "queued"
        entry.ready_at = time.monotonic() + delay
        self._queue.append(entry)
        self.journal.emit(
            "job_retry", job=entry.label(),
            experiment=entry.spec.experiment_id, key=entry.key,
            attempt=len(entry.attempts), kind=kind, reason=reason,
            backoff=round(delay, 6),
        )
        self._gauge_queue()

    def _finish(self, entry: _Entry) -> None:
        from concurrent.futures.process import BrokenProcessPool

        self._inflight.pop(entry.key, None)
        try:
            res = entry.future.result(timeout=0)
        except BrokenProcessPool:
            self.pool.rebuild()
            # The stdlib cannot say which in-flight job crashed; the
            # daemon charges the one whose future broke and requeues the
            # rest uncharged (they were collateral).
            for other in list(self._inflight.values()):
                self._inflight.pop(other.key, None)
                self._charge(other, "pool-lost", "worker pool crashed")
            self._charge(entry, "crash", "worker process crashed")
            return
        except BaseException as exc:
            self._charge(entry, "error", f"{type(exc).__name__}: {exc}")
            return
        entry.attempts.append({
            "index": len(entry.attempts) + 1, "kind": "ok",
            "duration": res["duration"], "worker": res["worker"],
        })
        self.store.put(entry.spec, res["payload"])
        self.pool.note_served(res["worker"], entry.affinity)
        self._jobs_done += 1
        registry = self._metrics()
        registry.inc("service.dispatched")
        # Workers report per-job graph-cache deltas (incl. shm-tier
        # hits); fold them into the daemon's counters so `status` shows
        # machine-wide cache behaviour.
        for name, delta in (res.get("graphcache") or {}).items():
            registry.inc(f"graphcache.{name}", delta)
        self.journal.emit(
            "job_finish", job=entry.label(),
            experiment=entry.spec.experiment_id, key=entry.key,
            attempt=len(entry.attempts), duration=round(res["duration"], 6),
            worker=res["worker"],
        )
        self._resolve(entry, {
            "op": "result", "key": entry.key, "job": entry.label(),
            "status": "ok", "source": "worker", "payload": res["payload"],
            "duration": res["duration"], "worker": res["worker"],
        })

    def _enforce_timeout(self, now: float) -> None:
        timeout = self.config.timeout
        if timeout is None or not self._inflight:
            return
        overdue = [
            e for e in self._inflight.values()
            if e.started_at is not None and now - e.started_at > timeout
        ]
        if not overdue:
            return
        survivors = [
            e for e in self._inflight.values() if e not in overdue
        ]
        self._inflight.clear()
        self.pool.rebuild()
        for entry in overdue:
            self._charge(
                entry, "timeout", f"exceeded per-job timeout of {timeout:g}s"
            )
        for entry in survivors:
            self._charge(
                entry, "pool-lost",
                "worker pool recycled to enforce a timeout on another job",
            )

    async def _dispatch_loop(self) -> None:
        while True:
            now = time.monotonic()
            for entry in [e for e in self._inflight.values()
                          if e.future is not None and e.future.done()]:
                self._finish(entry)
            self._enforce_timeout(time.monotonic())
            if not self._draining:
                while self._queue and len(self._inflight) < self.pool.workers:
                    entry = self._take_queued(now)
                    if entry is None:
                        break
                    self._launch(entry)
                    self._gauge_queue()
            else:
                if not self._inflight:
                    await self._shutdown()
                    return
                if (
                    self._drain_started is not None
                    and time.monotonic() - self._drain_started
                    > self.config.drain_grace
                ):
                    # Grace exhausted: give up on stragglers so drain
                    # still terminates (they are failed, not lost).
                    stuck = list(self._inflight.values())
                    self._inflight.clear()
                    self.pool.rebuild()
                    for entry in stuck:
                        entry.charged_failures = self.config.retries + 1
                        self._charge(
                            entry, "timeout",
                            f"drain grace of {self.config.drain_grace:g}s "
                            f"exceeded",
                        )
            await asyncio.sleep(_TICK)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._next_client += 1
        client = f"client-{self._next_client}"
        try:
            while True:
                read = asyncio.ensure_future(reader.readuntil(b"\n"))
                closing = asyncio.ensure_future(self._closing.wait())
                await asyncio.wait(
                    {read, closing}, return_when=asyncio.FIRST_COMPLETED
                )
                closing.cancel()
                if not read.done():
                    # Shutdown while parked between requests: bow out.
                    read.cancel()
                    with contextlib.suppress(
                        asyncio.CancelledError, asyncio.IncompleteReadError
                    ):
                        await read
                    break
                try:
                    line = read.result()
                except asyncio.IncompleteReadError:
                    break
                except asyncio.LimitOverrunError:
                    await self._send(writer, {"op": "error",
                                              "error": "line too long"})
                    break
                if not line:
                    break
                try:
                    msg = protocol.decode_line(line)
                except ProtocolError as exc:
                    await self._send(writer, {"op": "error", "error": str(exc)})
                    continue
                self._metrics().inc("service.requests")
                with telemetry.span("service.request", op=msg["op"]):
                    stop = await self._handle_message(msg, writer, client)
                if isinstance(stop, str):
                    client = stop
                elif stop:
                    break
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        except asyncio.CancelledError:
            pass  # shutdown cancelled us; close and bow out
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            with contextlib.suppress(OSError, RuntimeError):
                writer.close()

    async def _handle_message(self, msg: dict, writer, client: str):
        op = msg["op"]
        if op == "hello":
            name = str(msg.get("client") or client)
            await self._send(writer, {
                "op": "welcome", "protocol": protocol.PROTOCOL_VERSION,
                "pid": os.getpid(), "client": name,
            })
            return name
        if op == "ping":
            await self._send(writer, {"op": "pong", "pid": os.getpid()})
            return False
        if op == "status":
            await self._send(writer, self._status_doc())
            return False
        if op == "drain":
            await self._send(writer, {"op": "draining"})
            self._begin_drain()
            return False
        if op == "events":
            await self._stream_events(
                writer,
                replay=bool(msg.get("replay", True)),
                follow=bool(msg.get("follow", True)),
            )
            return True
        if op == "submit":
            await self._handle_submit(msg, writer, client)
            return False
        await self._send(writer, {"op": "error", "error": f"unknown op {op!r}"})
        return False

    async def _send(self, writer, msg: Mapping) -> None:
        writer.write(protocol.encode(msg))
        await writer.drain()

    def _status_doc(self) -> dict:
        registry = self._metrics()
        counters = {}
        for name in registry.names():
            if name.startswith(("service.", "graphcache.")):
                metric = registry.get(name)
                value = getattr(metric, "value", None)
                if isinstance(value, int):
                    counters[name] = value
        return {
            "op": "status",
            "pid": os.getpid(),
            "draining": self._draining,
            "workers": self.pool.workers,
            "pool_generation": self.pool.generation,
            "queue_depth": len(self._queue),
            "inflight": len(self._inflight),
            "jobs_done": self._jobs_done,
            "hit_no_worker": counters.get("service.hit_no_worker", 0),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "seq": self.journal.seq,
            "counters": counters,
            "shm": self.shm.stats() if self.shm is not None else None,
        }

    async def _stream_events(self, writer, *, replay: bool, follow: bool) -> None:
        history, queue = self.journal.subscribe(replay)
        try:
            for record in history:
                await self._send(writer, {"op": "event", "record": record})
            if not follow:
                await self._send(writer, {"op": "done", "summary": {
                    "events": len(history), "seq": self.journal.seq,
                }})
                return
            while True:
                get = asyncio.ensure_future(queue.get())
                closing = asyncio.ensure_future(self._closing.wait())
                done, pending = await asyncio.wait(
                    {get, closing}, return_when=asyncio.FIRST_COMPLETED
                )
                for fut in pending:
                    fut.cancel()
                if get in done:
                    await self._send(writer, {"op": "event", "record": get.result()})
                if closing in done:
                    while not queue.empty():
                        await self._send(
                            writer, {"op": "event", "record": queue.get_nowait()}
                        )
                    return
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            self.journal.unsubscribe(queue)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    async def _handle_submit(self, msg: dict, writer, client: str) -> None:
        jobs = msg.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            await self._send(writer, {"op": "error",
                                      "error": "submit needs a 'jobs' list"})
            return
        try:
            specs = [protocol.doc_to_spec(doc) for doc in jobs]
        except ProtocolError as exc:
            await self._send(writer, {"op": "error", "error": str(exc)})
            return
        fresh = bool(msg.get("fresh", False))
        wait = bool(msg.get("wait", True))
        self.journal.emit("service_submit", client=client, jobs=len(specs))
        results: asyncio.Queue = asyncio.Queue()
        outstanding: set[str] = set()
        summary = {"jobs": len(specs), "hits": 0, "dispatched": 0,
                   "coalesced": 0, "rejected": 0, "ok": 0, "failed": 0}
        registry = self._metrics()
        for spec in specs:
            key = spec.cache_key
            if self._draining:
                summary["rejected"] += 1
                registry.inc("service.rejected")
                registry.inc("service.rejected.draining")
                self.journal.emit("service_reject", client=client,
                                  reason="draining", key=key)
                await self._send(writer, {
                    "op": "rejected", "key": key, "job": spec.label,
                    "reason": "draining",
                })
                continue
            if not fresh:
                artifact = self.store.get(spec)
                if artifact is not None:
                    summary["hits"] += 1
                    summary["ok"] += 1
                    registry.inc("service.hit_no_worker")
                    self.journal.emit(
                        "cache_hit", job=spec.label,
                        experiment=spec.experiment_id, key=key, client=client,
                    )
                    await self._send(writer, {
                        "op": "result", "key": key, "job": spec.label,
                        "status": "cached", "source": "store",
                        "payload": artifact["result"],
                    })
                    continue
            live = self._entries.get(key)
            if live is not None:
                # Identical submission already queued or running:
                # coalesce instead of dispatching twice.
                live.waiters.append(results)
                outstanding.add(key)
                summary["coalesced"] += 1
                registry.inc("service.coalesced")
                await self._send(writer, {
                    "op": "accepted", "key": key, "job": spec.label,
                    "coalesced": True,
                })
                continue
            if len(self._queue) + len(self._inflight) >= self.config.queue_limit:
                summary["rejected"] += 1
                registry.inc("service.rejected")
                registry.inc("service.rejected.queue_full")
                self.journal.emit("service_reject", client=client,
                                  reason="queue_full", key=key)
                await self._send(writer, {
                    "op": "rejected", "key": key, "job": spec.label,
                    "reason": "queue_full",
                })
                continue
            if (
                self._client_outstanding.get(client, 0)
                >= self.config.client_quota
            ):
                summary["rejected"] += 1
                registry.inc("service.rejected")
                registry.inc("service.rejected.quota")
                self.journal.emit("service_reject", client=client,
                                  reason="quota", key=key)
                await self._send(writer, {
                    "op": "rejected", "key": key, "job": spec.label,
                    "reason": "quota",
                })
                continue
            entry = _Entry(spec, client)
            if fresh:
                entry.job_doc["fresh"] = True
            entry.waiters.append(results)
            self._entries[key] = entry
            self._queue.append(entry)
            self._client_outstanding[client] = (
                self._client_outstanding.get(client, 0) + 1
            )
            outstanding.add(key)
            summary["dispatched"] += 1
            self._gauge_queue()
            await self._send(writer, {
                "op": "accepted", "key": key, "job": spec.label,
            })
        if wait:
            while outstanding:
                message = await results.get()
                key = message.get("key")
                if key in outstanding:
                    outstanding.discard(key)
                    if message.get("status") == "failed":
                        summary["failed"] += 1
                    else:
                        summary["ok"] += 1
                    await self._send(writer, message)
        await self._send(writer, {"op": "done", "summary": summary})


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def serve(config: ServiceConfig, *, handle_signals: bool = True) -> int:
    """Run a daemon in the foreground until drained; returns its exit
    code (0 on a clean drain).  SIGTERM and SIGINT trigger the drain."""
    loop = asyncio.new_event_loop()
    service = SweepService(config)
    if handle_signals:
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(sig, service.request_drain)
    try:
        return loop.run_until_complete(service.run())
    finally:
        with contextlib.suppress(Exception):
            loop.run_until_complete(loop.shutdown_asyncgens())
        loop.close()


class ServiceThread:
    """A daemon on a background thread (tests and embedded use).

    >>> with ServiceThread(config) as handle:      # doctest: +SKIP
    ...     client = ServiceClient(config.socket_path)
    ...     client.submit([JobSpec("E1")])

    Exiting the block drains the daemon and joins the thread.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.service = SweepService(config)
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def _main():
            try:
                await self.service.start()
            except BaseException as exc:  # surface bind errors to start()
                self._error = exc
                self._ready.set()
                return
            self._ready.set()
            await self.service._stopped.wait()

        try:
            loop.run_until_complete(_main())
        finally:
            with contextlib.suppress(Exception):
                loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._error is not None:
            raise self._error
        if not self._ready.is_set():
            raise ServiceError("service thread did not come up within 30s")
        return self

    def drain(self, join_timeout: float = 60.0) -> None:
        self.service.request_drain()
        if self._thread is not None:
            self._thread.join(timeout=join_timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.drain()
