"""Local search over schedules: probing the lower bound from above.

The I/O-complexity is a minimum over *all* schedules; any fixed family
(even the recursive one) only brackets it from above.  This module is
now a thin wrapper over the autotuner subsystem
(:mod:`repro.autotune`): the budgeted hill-climb it used to implement
inline survives as the autotuner's ``hillclimb`` strategy,
draw-for-draw identical (same neighbourhood — swap two contiguous
blocks of the product sequence — same RNG draws, same attempts cap), so
fixed-seed search trajectories are unchanged.  Its empirical finding
(used as a check in the E13 ablations and the test suite) is that the
search never improves on the recursive order by more than a few
percent, while random orders are far worse: evidence the recursive
schedule is a near-optimal representative, which is what makes the E9
sandwich meaningful.

Candidate evaluations run through one shared
:class:`~repro.pebbling.executor.CacheExecutor`, so re-visited
candidates come from its content-keyed plan cache (and an exact-repeat
memo) instead of recompiling a plan per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdag.graph import CDAG
from repro.utils.validation import check_positive_int

__all__ = ["SearchResult", "search_schedule"]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a schedule search."""

    best_io: int
    start_io: int
    evaluations: int
    improved: bool
    best_product_order: np.ndarray

    @property
    def improvement(self) -> float:
        """Relative I/O reduction found (0 when none)."""
        return 1.0 - self.best_io / self.start_io if self.start_io else 0.0


def search_schedule(
    cdag: CDAG,
    cache_size: int,
    start_order: np.ndarray | None = None,
    budget: int = 50,
    policy: str = "belady",
    seed=None,
) -> SearchResult:
    """Hill-climb over product orders to minimise measured I/O.

    Parameters
    ----------
    start_order:
        Initial product permutation (default: the recursive order
        ``0..b^r-1``).
    budget:
        Number of candidate evaluations (each one full simulation).
    policy:
        Eviction policy used for the objective (``belady`` evaluates the
        order itself, independent of online-policy noise).
    """
    check_positive_int(budget, "budget")
    from repro.autotune import AutoTuner, LocalEvaluator, TuneConfig

    config = TuneConfig(
        alg=cdag.alg.name,
        r=cdag.r,
        cache_size=int(cache_size),
        policy=policy,
        strategy="hillclimb",
        budget=budget,
        generation=1,
        seed=seed,
    )
    tuner = AutoTuner(
        config,
        LocalEvaluator(cdag, cache_size, policy),
        start_order=start_order,
        algorithm=cdag.alg,
    )
    result = tuner.run()
    return SearchResult(
        best_io=result.best_io,
        start_io=result.start_io,
        evaluations=result.evaluations,
        improved=result.improved,
        best_product_order=result.best_order,
    )
