"""Content-addressed serialisation of compiled graph state.

A *bundle* is a directory of raw ``.npy`` files plus a ``meta.json``
carrying the format version, content key, dtypes/shapes and a per-file
sha256 — the on-disk unit of :mod:`repro.runner.graphcache`.  Three
bundle kinds share the format:

- **graph bundles** — the CDAG's flat arrays (predecessor + successor
  CSR and copy flags); slab/region tables are *not* stored because the
  layout is a pure function of ``(a, b, r)``
  (:func:`repro.cdag.graph.slab_layout`);
- **schedule bundles** — one compiled schedule array for a named
  schedule family on one graph;
- **plan bundles** — the executor's :class:`_SchedulePlan` occurrence
  arrays for one ``(graph, schedule, executor version)`` triple.

Design properties:

- *content keys*: a graph bundle is keyed by the sha256 of the base
  algorithm's matrices plus ``r`` (:func:`graph_key`); derived bundles
  fold the graph key, the schedule identity and the executor version
  into their own digests — a change to any input re-keys everything
  downstream, so stale bundles are simply never looked up;
- *zero-copy loads*: arrays are opened with ``np.load(mmap_mode="r")``,
  so a bundle mapped by many worker processes occupies one copy of
  physical memory via the page cache (the practical effect of
  ``multiprocessing.shared_memory`` without its lifetime bookkeeping);
- *corruption is a miss*: every load verifies the per-file sha256 and
  the declared dtype/shape; any disagreement raises
  :class:`~repro.errors.GraphCacheError`, which the cache layer turns
  into quarantine-and-rebuild (the PR-4 store discipline applied to
  graphs);
- *atomic publication*: bundles are staged in a same-directory
  ``.tmp-*`` dir and ``os.replace``-d into place; losing the publish
  race keeps the winner's bundle.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.errors import GraphCacheError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (builder -> here)
    from repro.bilinear.algorithm import BilinearAlgorithm
    from repro.cdag.graph import CDAG

__all__ = [
    "FORMAT_VERSION",
    "GRAPH_ARRAY_NAMES",
    "PLAN_ARRAY_NAMES",
    "SCHEDULE_ARRAY_NAMES",
    "plan_kernel_arrays",
    "alg_digest",
    "graph_key",
    "graph_to_arrays",
    "graph_from_arrays",
    "write_bundle",
    "read_bundle",
    "active_cache",
    "set_active_cache",
    "reset_active_cache",
]

#: Bump when the bundle layout changes; old bundles then re-key (never
#: mis-decode).
FORMAT_VERSION = 1

#: Environment variable naming a graph-cache directory to activate
#: lazily on first :func:`active_cache` call (how pool workers inherit
#: the sweep's ``--graph-cache`` setting).
ENV_VAR = "REPRO_GRAPH_CACHE"

GRAPH_ARRAY_NAMES = (
    "pred_indptr",
    "pred_indices",
    "succ_indptr",
    "succ_indices",
    "is_copy",
)
SCHEDULE_ARRAY_NAMES = ("schedule",)
PLAN_ARRAY_NAMES = (
    "schedule",
    "step_indptr",
    "step_ops",
    "occ_next",
    "first_use",
    "uses_left0",
)


def plan_kernel_arrays(arrays: Mapping[str, np.ndarray]) -> tuple[np.ndarray, ...]:
    """A plan's arrays in the layout the compiled pebbling kernels
    consume: C-contiguous int64, ordered as :data:`PLAN_ARRAY_NAMES`.

    Bundle arrays already satisfy the layout (``write_bundle`` stores
    contiguous int64), so for a memmapped plan bundle this is zero-copy
    — the kernels read the page-cache-backed maps directly, with no
    ``ensure_lists`` materialisation.
    """
    return tuple(
        np.ascontiguousarray(arrays[name], dtype=np.int64)
        for name in PLAN_ARRAY_NAMES
    )


# ----------------------------------------------------------------------
# Content keys
# ----------------------------------------------------------------------


def alg_digest(alg: "BilinearAlgorithm") -> str:
    """sha256 identity of a base algorithm: name, dimensions and the
    exact bytes of its encoding/decoding matrices."""
    h = hashlib.sha256()
    h.update(f"alg:{alg.name}:{alg.n0}:{alg.a}:{alg.b}:".encode())
    for M in (alg.U, alg.V, alg.W):
        h.update(np.ascontiguousarray(M, dtype=np.float64).tobytes())
    return h.hexdigest()


def graph_key(alg: "BilinearAlgorithm", r: int) -> str:
    """Content key of the bundle for ``G_r`` of ``alg`` (hex, 32 chars —
    collision-safe at any realistic catalog size)."""
    h = hashlib.sha256()
    h.update(f"graph:v{FORMAT_VERSION}:{alg_digest(alg)}:r={int(r)}".encode())
    return h.hexdigest()[:32]


def cdag_graph_key(cdag: "CDAG") -> str:
    """:func:`graph_key` of a built CDAG, cached on the instance."""
    key = cdag._graph_key
    if key is None:
        key = cdag._graph_key = graph_key(cdag.alg, cdag.r)
    return key


def schedule_key(gkey: str, name: str, version: str) -> str:
    """Content key of a named schedule bundle on graph ``gkey``."""
    blob = f"schedule:v{FORMAT_VERSION}:{gkey}:{name}:{version}"
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


def plan_key(gkey: str, schedule_digest: str, executor_version: str) -> str:
    """Content key of a compiled-plan bundle: graph, schedule bytes and
    executor version (the ISSUE's ``(alg digest, r, schedule key,
    executor version)`` tuple — the first two live inside ``gkey``)."""
    blob = f"plan:v{FORMAT_VERSION}:{gkey}:{schedule_digest}:{executor_version}"
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


# ----------------------------------------------------------------------
# Graph <-> flat arrays
# ----------------------------------------------------------------------


def graph_to_arrays(cdag: "CDAG") -> dict[str, np.ndarray]:
    """The CDAG's serialisable flat arrays (see GRAPH_ARRAY_NAMES)."""
    return {
        "pred_indptr": np.ascontiguousarray(cdag.pred_indptr, dtype=np.int64),
        "pred_indices": np.ascontiguousarray(cdag.pred_indices, dtype=np.int64),
        "succ_indptr": np.ascontiguousarray(cdag.succ_indptr, dtype=np.int64),
        "succ_indices": np.ascontiguousarray(cdag.succ_indices, dtype=np.int64),
        "is_copy": np.ascontiguousarray(cdag.is_copy, dtype=bool),
    }


def graph_from_arrays(
    alg: "BilinearAlgorithm", r: int, arrays: Mapping[str, np.ndarray]
) -> "CDAG":
    """Rebuild a CDAG from bundle arrays (slab tables recomputed from
    the deterministic layout; arrays are used as-is, so memmapped
    bundles stay file-backed)."""
    from repro.cdag.graph import CDAG, slab_layout

    slabs, n_vertices = slab_layout(alg.a, alg.b, int(r))
    pred_indptr = arrays["pred_indptr"]
    if len(pred_indptr) != n_vertices + 1:
        raise GraphCacheError(
            f"bundle vertex count {len(pred_indptr) - 1} disagrees with "
            f"G_{r} layout ({n_vertices} vertices)"
        )
    return CDAG(
        alg=alg,
        r=int(r),
        slabs=slabs,
        pred_indptr=pred_indptr,
        pred_indices=arrays["pred_indices"],
        is_copy=arrays["is_copy"],
        succ_indptr=arrays["succ_indptr"],
        succ_indices=arrays["succ_indices"],
    )


# ----------------------------------------------------------------------
# Bundle I/O
# ----------------------------------------------------------------------


def _file_sha256(path: Path) -> str:
    h = hashlib.sha256()
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def write_bundle(
    final_dir: Path, arrays: Mapping[str, np.ndarray], meta: Mapping
) -> Path:
    """Atomically publish a bundle directory.

    Arrays are staged in a sibling ``.tmp-*`` directory with checksums
    recorded in ``meta.json``, then renamed into place.  If another
    process published the same content-keyed bundle first, theirs is
    kept and the staging directory is discarded.
    """
    final_dir = Path(final_dir)
    final_dir.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(tempfile.mkdtemp(prefix=".tmp-", dir=final_dir.parent))
    try:
        entries: dict[str, dict] = {}
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            path = tmp / f"{name}.npy"
            np.save(path, arr)
            entries[name] = {
                "sha256": _file_sha256(path),
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
            }
        doc = dict(meta)
        doc["format"] = FORMAT_VERSION
        doc["arrays"] = entries
        (tmp / "meta.json").write_text(
            json.dumps(doc, sort_keys=True, indent=2) + "\n", encoding="utf-8"
        )
        try:
            os.replace(tmp, final_dir)
        except OSError:
            # Lost the publish race (the destination exists and is
            # non-empty): the other writer's content-identical bundle
            # wins.
            shutil.rmtree(tmp, ignore_errors=True)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return final_dir


def read_bundle(
    path: Path,
    expected_names: tuple[str, ...],
    mmap: bool = True,
    verify: bool = True,
) -> tuple[dict[str, np.ndarray], dict]:
    """Open a bundle directory; returns ``(arrays, meta)``.

    Raises :class:`~repro.errors.GraphCacheError` on *any* defect —
    missing/undecodable meta, unknown format, missing arrays, checksum
    mismatch, or dtype/shape disagreement — so callers have a single
    quarantine trigger.
    """
    path = Path(path)
    try:
        meta = json.loads((path / "meta.json").read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise GraphCacheError(f"bundle {path.name}: unreadable meta ({exc})") from exc
    if not isinstance(meta, dict) or meta.get("format") != FORMAT_VERSION:
        raise GraphCacheError(
            f"bundle {path.name}: format {meta.get('format')!r} "
            f"!= {FORMAT_VERSION}"
        )
    entries = meta.get("arrays")
    if not isinstance(entries, dict) or set(entries) != set(expected_names):
        raise GraphCacheError(
            f"bundle {path.name}: arrays {sorted(entries or ())} != "
            f"{sorted(expected_names)}"
        )
    arrays: dict[str, np.ndarray] = {}
    for name in expected_names:
        entry = entries[name]
        file = path / f"{name}.npy"
        try:
            if verify and _file_sha256(file) != entry.get("sha256"):
                raise GraphCacheError(f"bundle {path.name}: {name} checksum mismatch")
            arr = np.load(file, mmap_mode="r" if mmap else None)
        except GraphCacheError:
            raise
        except Exception as exc:  # OSError, ValueError (bad .npy header) ...
            raise GraphCacheError(
                f"bundle {path.name}: cannot load {name} ({exc})"
            ) from exc
        if str(arr.dtype) != entry.get("dtype") or list(arr.shape) != entry.get(
            "shape"
        ):
            raise GraphCacheError(
                f"bundle {path.name}: {name} is {arr.dtype}{arr.shape}, "
                f"meta says {entry.get('dtype')}{tuple(entry.get('shape', ()))}"
            )
        arrays[name] = arr
    return arrays, meta


# ----------------------------------------------------------------------
# Active cache (process-global hook consulted by build_cdag, the
# schedule generators and the executor's plan compiler)
# ----------------------------------------------------------------------

_active_cache = None
_env_checked = False


def active_cache():
    """The process's active :class:`~repro.runner.graphcache.GraphCache`
    or None.  On first call, bootstraps from ``REPRO_GRAPH_CACHE`` if
    set — this is how sweep workers (fresh processes) inherit the
    parent's cache without threading a handle through every call."""
    global _env_checked
    if _active_cache is None and not _env_checked:
        _env_checked = True
        root = os.environ.get(ENV_VAR)
        if root:
            try:
                from repro.runner.graphcache import activate

                activate(root, shm_root=os.environ.get("REPRO_SHM_LEDGER"))
            except Exception:
                # A bad env var must never break graph building.
                pass
    return _active_cache


def set_active_cache(cache):
    """Install ``cache`` as the process-global graph cache; returns the
    previous one (for save/restore in tests and benchmarks)."""
    global _active_cache
    previous = _active_cache
    _active_cache = cache
    return previous


def reset_active_cache() -> None:
    """Clear the active cache *and* the env-bootstrap memo (tests)."""
    global _active_cache, _env_checked
    _active_cache = None
    _env_checked = False
