"""Parallel machine model, CAPS bandwidth simulator, classical baselines,
and CDAG-partition traffic accounting (Theorem 1's parallel clauses)."""

from repro.parallel.machine import DistributedMachine, CommunicationLog
from repro.parallel.caps import CapsRun, simulate_caps, minimum_memory
from repro.parallel.baselines import (
    cannon_2d_bandwidth,
    summa_bandwidth,
    classical_3d_bandwidth,
    classical_25d_bandwidth,
    replication_for_memory,
)
from repro.parallel.partition import (
    partition_by_rank_balanced,
    validate_rank_balanced,
    communication_volume,
    per_processor_traffic,
)

__all__ = [
    "DistributedMachine",
    "CommunicationLog",
    "CapsRun",
    "simulate_caps",
    "minimum_memory",
    "cannon_2d_bandwidth",
    "summa_bandwidth",
    "classical_3d_bandwidth",
    "classical_25d_bandwidth",
    "replication_for_memory",
    "partition_by_rank_balanced",
    "validate_rank_balanced",
    "communication_volume",
    "per_processor_traffic",
]
