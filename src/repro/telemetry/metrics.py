"""Named counters, gauges, and histograms with a merge algebra.

Mirrors the :class:`repro.tracesim.cache.CacheStats` contract: every
metric's canonical state (:meth:`as_dict`) forms a **commutative
monoid** under :meth:`merge` — identity is the fresh metric — so
per-worker registries collected from the sweep pool aggregate
losslessly and order-independently:

- **counter** — a sum; merge adds values;
- **gauge** — a summary of observations (count / sum / min / max);
  merge combines summaries.  The most recent ``set`` value is kept
  locally for convenient reading but is *not* part of the canonical
  state (last-write-wins cannot be commutative);
- **histogram** — power-of-two buckets plus count / sum / min / max;
  merge adds bucket counts.

Registries serialise to JSON-native dicts (:meth:`MetricsRegistry.as_dict`
/ :meth:`from_dict`) so they can cross the process-pool boundary and be
embedded in perf-baseline snapshots.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "reset_metrics",
]

#: Histogram bucket for non-positive observations.
_NEG_BUCKET = -(10**6)


def _bucket_exponent(value) -> int:
    """The power-of-two bucket (``value <= 2**e``) an observation
    falls in; non-positive values share one underflow bucket."""
    if value <= 0:
        return _NEG_BUCKET
    return max(_NEG_BUCKET + 1, math.ceil(math.log2(value)))


class Counter:
    """Monotonically accumulating sum."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, value=0):
        self.value = value

    def inc(self, value=1) -> None:
        self.value += value

    def merge(self, other: "Counter") -> "Counter":
        return Counter(self.value + other.value)

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}

    @classmethod
    def from_dict(cls, doc: Mapping) -> "Counter":
        return cls(doc.get("value", 0))


class Gauge:
    """Point-in-time observations, summarised mergeably."""

    __slots__ = ("count", "sum", "min", "max", "last")
    kind = "gauge"

    def __init__(self, count=0, sum=0, min=None, max=None, last=None):
        self.count = count
        self.sum = sum
        self.min = min
        self.max = max
        self.last = last

    def set(self, value) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.last = value

    @property
    def mean(self):
        return self.sum / self.count if self.count else None

    def merge(self, other: "Gauge") -> "Gauge":
        mins = [m for m in (self.min, other.min) if m is not None]
        maxs = [m for m in (self.max, other.max) if m is not None]
        return Gauge(
            count=self.count + other.count,
            sum=self.sum + other.sum,
            min=min(mins) if mins else None,
            max=max(maxs) if maxs else None,
            last=None,  # not mergeable commutatively
        )

    def as_dict(self) -> dict:
        return {
            "type": "gauge",
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "Gauge":
        return cls(
            count=doc.get("count", 0),
            sum=doc.get("sum", 0),
            min=doc.get("min"),
            max=doc.get("max"),
        )


class Histogram:
    """Power-of-two-bucketed distribution of observations."""

    __slots__ = ("buckets", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, buckets=None, count=0, sum=0, min=None, max=None):
        self.buckets: dict[int, int] = dict(buckets or {})
        self.count = count
        self.sum = sum
        self.min = min
        self.max = max

    def observe(self, value) -> None:
        e = _bucket_exponent(value)
        self.buckets[e] = self.buckets.get(e, 0) + 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self):
        return self.sum / self.count if self.count else None

    def bucket_bounds(self) -> list[tuple[float, int]]:
        """Sorted ``(upper_bound, count)`` pairs (bound in value units)."""
        out = []
        for e in sorted(self.buckets):
            bound = 0.0 if e == _NEG_BUCKET else float(2.0**e)
            out.append((bound, self.buckets[e]))
        return out

    def merge(self, other: "Histogram") -> "Histogram":
        buckets = dict(self.buckets)
        for e, n in other.buckets.items():
            buckets[e] = buckets.get(e, 0) + n
        mins = [m for m in (self.min, other.min) if m is not None]
        maxs = [m for m in (self.max, other.max) if m is not None]
        return Histogram(
            buckets=buckets,
            count=self.count + other.count,
            sum=self.sum + other.sum,
            min=min(mins) if mins else None,
            max=max(maxs) if maxs else None,
        )

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "buckets": {str(e): n for e, n in sorted(self.buckets.items())},
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "Histogram":
        return cls(
            buckets={int(e): int(n) for e, n in doc.get("buckets", {}).items()},
            count=doc.get("count", 0),
            sum=doc.get("sum", 0),
            min=doc.get("min"),
            max=doc.get("max"),
        )


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Name → metric mapping with get-or-create accessors.

    Thread-safe for creation; individual metric updates are plain
    attribute arithmetic (the GIL makes them atomic enough for
    telemetry purposes, and each worker process owns its registry).
    """

    def __init__(self):
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(name, cls())
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def inc(self, name: str, value=1) -> None:
        """Shortcut: bump a counter."""
        self.counter(name).inc(value)

    # ------------------------------------------------------------------
    # Introspection / serialisation
    # ------------------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str):
        """The metric object registered under ``name`` (or None)."""
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def as_dict(self) -> dict:
        """Canonical JSON-native state, sorted by name."""
        return {name: self._metrics[name].as_dict() for name in self.names()}

    @classmethod
    def from_dict(cls, doc: Mapping) -> "MetricsRegistry":
        reg = cls()
        for name, metric_doc in doc.items():
            kind = metric_doc.get("type")
            if kind not in _KINDS:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")
            reg._metrics[name] = _KINDS[kind].from_dict(metric_doc)
        return reg

    # ------------------------------------------------------------------
    # Merge algebra
    # ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Combine two registries into a new one (commutative,
        associative on canonical states; identity is the empty
        registry).  Same-named metrics must share a kind."""
        out = MetricsRegistry()
        for name in set(self._metrics) | set(other._metrics):
            a = self._metrics.get(name)
            b = other._metrics.get(name)
            if a is not None and b is not None:
                if type(a) is not type(b):
                    raise TypeError(
                        f"cannot merge metric {name!r}: "
                        f"{type(a).kind} vs {type(b).kind}"
                    )
                out._metrics[name] = a.merge(b)
            else:
                survivor = a if a is not None else b
                out._metrics[name] = type(survivor).from_dict(survivor.as_dict())
        return out

    def __add__(self, other):
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self.merge(other)

    def __radd__(self, other):
        if other == 0:  # supports sum(registries)
            return self.merge(MetricsRegistry())
        return self.__add__(other)

    @classmethod
    def merge_all(cls, shards: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        total = cls()
        for shard in shards:
            total = total.merge(shard)
        return total

    def ingest(self, doc: Mapping) -> None:
        """Merge a serialised registry (e.g. shipped from a worker
        process) into this one, in place."""
        merged = self.merge(MetricsRegistry.from_dict(doc))
        self._metrics = merged._metrics

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()


_GLOBAL = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-global registry spans fold into."""
    return _GLOBAL


def reset_metrics() -> None:
    """Clear the process-global registry."""
    _GLOBAL.clear()
