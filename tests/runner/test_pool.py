"""Scheduler: caching, resume, retries, crash isolation, timeouts.

These tests exercise real worker processes (fork-started) but keep every
job body trivial, so the whole module runs in a few seconds.
"""

import pytest

from repro.runner.events import EventLog, validate_event
from repro.runner.jobs import JobSpec
from repro.runner.pool import run_sweep
from repro.runner.store import ResultStore

HELPERS = "tests.runner.helpers"


def spec(name, params=None, seed=None, fn=None):
    return JobSpec(
        name, params or {}, seed=seed,
        entrypoint=f"{HELPERS}:{fn or 'ok_job'}",
    )


def sweep(specs, store=None, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("backoff", 0.01)
    kw.setdefault("progress", False)
    return run_sweep(specs, store, **kw)


class TestHappyPath:
    def test_all_jobs_complete(self, tmp_path):
        specs = [spec("T-OK", {"x": x}) for x in range(4)]
        outcomes = sweep(specs, ResultStore(tmp_path))
        assert [o.status for o in outcomes] == ["ok"] * 4
        assert [o.payload["data"]["squared"] for o in outcomes] == [0, 1, 4, 9]
        assert all(o.worker is not None for o in outcomes)

    def test_outcomes_preserve_input_order(self, tmp_path):
        specs = [spec("T-OK", {"x": x}) for x in (5, 3, 8, 1)]
        outcomes = sweep(specs, ResultStore(tmp_path), workers=4)
        assert [o.payload["data"]["x"] for o in outcomes] == [5, 3, 8, 1]

    def test_dict_returning_jobs_are_wrapped(self):
        (o,) = sweep([spec("T-DICT", {"value": 9}, fn="dict_job")])
        assert o.ok and o.payload["data"]["value"] == 9

    def test_store_is_optional(self):
        (o,) = sweep([spec("T-OK")])
        assert o.status == "ok"


class TestCaching:
    def test_second_run_is_at_least_90pct_cache_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [spec("T-OK", {"x": x}) for x in range(10)]
        first = EventLog()
        sweep(specs, store, events=first)
        assert first.counts["cache_hit"] == 0
        second = EventLog()
        outcomes = sweep(specs, store, events=second)
        # acceptance criterion: >= 90% of the rerun served from cache,
        # measured from the event log
        assert second.counts["cache_hit"] >= 0.9 * len(specs)
        assert all(o.cached for o in outcomes)

    def test_identical_sweeps_yield_byte_identical_artifacts(self, tmp_path):
        store = ResultStore(tmp_path / "a")
        specs = [spec("T-OK", {"x": x}) for x in range(3)]
        sweep(specs, store)
        bytes_first = {
            p.name: p.read_bytes() for p in (tmp_path / "a").rglob("*.json")
        }
        store2 = ResultStore(tmp_path / "b")
        sweep(specs, store2)
        bytes_second = {
            p.name: p.read_bytes() for p in (tmp_path / "b").rglob("*.json")
        }
        assert bytes_first == bytes_second
        assert len(bytes_first) == 3

    def test_fresh_recomputes(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [spec("T-OK", {"x": 1})]
        sweep(specs, store)
        events = EventLog()
        (o,) = sweep(specs, store, fresh=True, events=events)
        assert o.status == "ok" and events.counts["cache_hit"] == 0

    def test_changed_param_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep([spec("T-OK", {"x": 1})], store)
        events = EventLog()
        (o,) = sweep([spec("T-OK", {"x": 2})], store, events=events)
        assert o.status == "ok" and events.counts["cache_hit"] == 0

    def test_resume_after_interruption(self, tmp_path):
        """Simulate an interrupted sweep by deleting one artifact."""
        store = ResultStore(tmp_path)
        specs = [spec("T-OK", {"x": x}) for x in range(3)]
        sweep(specs, store)
        store.discard(specs[1])  # "lost" mid-sweep
        events = EventLog()
        outcomes = sweep(specs, store, events=events)
        assert [o.status for o in outcomes] == ["cached", "ok", "cached"]
        assert events.counts["cache_hit"] == 2
        assert events.counts["job_finish"] == 1


class TestSeeds:
    def test_same_seed_hits_new_seed_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        (o,) = sweep([spec("T-SEEDED", seed=1, fn="seeded_job")], store)
        assert o.status == "ok" and o.payload["data"]["seed"] == 1
        (again,) = sweep([spec("T-SEEDED", seed=1, fn="seeded_job")], store)
        assert again.cached
        (other,) = sweep([spec("T-SEEDED", seed=2, fn="seeded_job")], store)
        assert other.status == "ok" and other.payload["data"]["seed"] == 2

    def test_seed_on_seedless_job_fails_cleanly(self):
        (o,) = sweep(
            [spec("T-SEEDLESS", seed=3, fn="seedless_job")], retries=0
        )
        assert o.status == "failed"
        assert "seed" in o.error


class TestRetries:
    def test_retry_then_succeed(self, tmp_path):
        s = spec("T-FLAKY", {"marker_dir": str(tmp_path / "m"),
                             "fail_times": 1}, fn="flaky_job")
        events = EventLog()
        (o,) = sweep([s], retries=2, events=events)
        assert o.status == "ok"
        assert [a.kind for a in o.attempts] == ["error", "ok"]
        assert events.counts["job_retry"] == 1
        assert o.payload["data"]["attempts_needed"] == 2

    def test_retry_then_fail_accounting(self, tmp_path):
        events = EventLog()
        (o,) = sweep(
            [spec("T-ERR", {"message": "kaput"}, fn="error_job")],
            retries=1, events=events,
        )
        assert o.status == "failed"
        assert "kaput" in o.error
        # one original attempt + one retry, both charged
        assert [a.kind for a in o.attempts] == ["error", "error"]
        assert all(a.charged for a in o.attempts)
        assert events.counts["job_retry"] == 1
        assert events.counts["job_failed"] == 1
        failed = [r for r in events.records if r["event"] == "job_failed"]
        assert failed[0]["attempts"] == 2
        assert len(failed[0]["retry_history"]) == 2

    def test_failure_does_not_poison_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        (o,) = sweep([spec("T-ERR", fn="error_job")], store, retries=0)
        assert o.status == "failed"
        assert len(store) == 0

    def test_zero_retries_means_one_attempt(self):
        (o,) = sweep([spec("T-ERR", fn="error_job")], retries=0)
        assert len(o.attempts) == 1


class TestCrashes:
    def test_sweep_survives_a_crashing_job(self, tmp_path):
        """Acceptance: one injected hard crash (os._exit in the worker)
        fails only its own job; every other job completes; the failure
        carries its retry history."""
        store = ResultStore(tmp_path)
        specs = [spec("T-OK", {"x": x}) for x in range(4)]
        specs.insert(2, spec("T-CRASH", fn="crash_job"))
        events = EventLog()
        outcomes = sweep(specs, store, retries=1, events=events)
        by_label = {o.spec.label: o for o in outcomes}
        crash = by_label["T-CRASH"]
        assert crash.status == "failed"
        assert any(a.kind == "crash" for a in crash.attempts)
        # charged exactly retries+1 at-fault attempts
        assert sum(1 for a in crash.attempts if a.charged) == 2
        others = [o for o in outcomes if o.spec.label != "T-CRASH"]
        assert all(o.status == "ok" for o in others)
        failed_events = [r for r in events.records if r["event"] == "job_failed"]
        assert len(failed_events) == 1
        assert failed_events[0]["retry_history"]

    def test_crash_then_recover(self, tmp_path):
        """A job that crashes once and then succeeds is retried through
        quarantine and completes."""
        s = spec("T-FLAKYCRASH", {"marker_dir": str(tmp_path / "m"),
                                  "crash_times": 1}, fn="flaky_crash_job")
        (o,) = sweep([s], retries=2)
        assert o.status == "ok"
        assert any(a.kind in ("crash", "pool-lost") for a in o.attempts)
        assert o.attempts[-1].kind == "ok"

    def test_innocent_bystanders_are_never_charged(self, tmp_path):
        """Jobs that merely shared the pool with a crasher must not
        burn their retry budget (kind 'pool-lost' is uncharged)."""
        specs = [spec("T-OK", {"x": x}) for x in range(3)]
        specs.append(spec("T-CRASH", fn="crash_job"))
        outcomes = sweep(specs, retries=0, workers=2)
        by_label = {o.spec.label: o for o in outcomes}
        assert by_label["T-CRASH"].status == "failed"
        for o in outcomes:
            if o.spec.label == "T-CRASH":
                continue
            assert o.status == "ok"
            assert all(not a.charged for a in o.attempts[:-1])


class TestTimeouts:
    def test_overdue_job_is_killed_and_failed(self):
        import time

        t0 = time.monotonic()
        (o,) = sweep(
            [spec("T-SLEEPY", {"duration": 30.0}, fn="sleepy_job")],
            timeout=0.4, retries=0, workers=1,
        )
        elapsed = time.monotonic() - t0
        assert o.status == "failed"
        assert [a.kind for a in o.attempts] == ["timeout"]
        assert "timeout" in o.error
        assert elapsed < 15  # nowhere near the 30 s sleep

    def test_fast_jobs_unaffected_by_timeout(self, tmp_path):
        outcomes = sweep(
            [spec("T-OK", {"x": x}) for x in range(3)],
            ResultStore(tmp_path), timeout=30.0,
        )
        assert all(o.status == "ok" for o in outcomes)


class TestEventStream:
    def test_every_emitted_record_is_schema_valid(self, tmp_path):
        path = tmp_path / "events.jsonl"
        store = ResultStore(tmp_path / "cache")
        specs = [spec("T-OK", {"x": 1}), spec("T-ERR", fn="error_job")]
        with EventLog(path) as events:
            sweep(specs, store, retries=1, events=events)
        with EventLog(path) as events:
            sweep(specs, store, retries=0, events=events)
        from repro.runner.events import read_events

        records = read_events(path)
        for record in records:
            assert validate_event(record) == [], record
        kinds = {r["event"] for r in records}
        assert {"sweep_start", "sweep_finish", "job_start", "job_finish",
                "job_retry", "job_failed", "cache_hit"} <= kinds

    def test_sweep_finish_totals(self):
        events = EventLog()
        sweep([spec("T-OK"), spec("T-ERR", fn="error_job")],
              retries=0, events=events)
        (fin,) = [r for r in events.records if r["event"] == "sweep_finish"]
        assert fin["ok"] == 1 and fin["failed"] == 1 and fin["cached"] == 0


class TestExperimentIntegration:
    """End-to-end through the real registry (small experiments only)."""

    def test_registry_jobs_run_and_cache(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [JobSpec("E1"), JobSpec("E2", {"r": 2})]
        outcomes = sweep(specs, store)
        assert all(o.status == "ok" for o in outcomes)
        assert all(o.payload["checks"] for o in outcomes)
        again = sweep(specs, store)
        assert all(o.cached for o in again)

    def test_seeded_registry_job_is_cache_correct(self, tmp_path):
        store = ResultStore(tmp_path)
        (o,) = sweep([JobSpec("E8", {"r": 2}, seed=5)], store)
        assert o.status == "ok"
        (hit,) = sweep([JobSpec("E8", {"r": 2}, seed=5)], store)
        assert hit.cached
        (miss,) = sweep([JobSpec("E8", {"r": 2}, seed=6)], store)
        assert miss.status == "ok" and not miss.cached


@pytest.mark.parametrize("workers", [1, 3])
def test_worker_count_does_not_change_results(tmp_path, workers):
    specs = [spec("T-OK", {"x": x}) for x in range(5)]
    outcomes = sweep(specs, ResultStore(tmp_path / str(workers)),
                     workers=workers)
    assert [o.payload["data"]["squared"] for o in outcomes] == [
        0, 1, 4, 9, 16
    ]
