"""Operation counters shared by the numeric kernels.

The kernels in this package take an optional :class:`OpCounter` so tests
and benchmarks can verify arithmetic-complexity claims (Θ(n^ω0) for the
recursive algorithms, 2n³-n² for classical) against actual executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OpCounter"]


@dataclass
class OpCounter:
    """Mutable counter of scalar multiplications and additions."""

    multiplications: int = 0
    additions: int = 0

    @property
    def total(self) -> int:
        return self.multiplications + self.additions

    def add_mults(self, n: int) -> None:
        self.multiplications += int(n)

    def add_adds(self, n: int) -> None:
        self.additions += int(n)

    def reset(self) -> None:
        self.multiplications = 0
        self.additions = 0
