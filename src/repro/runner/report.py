"""Aggregation of sweep outcomes back into experiment-harness tables.

The runner's outcomes carry serialised :class:`ExperimentResult`
payloads; this module rebuilds them, renders a per-job summary table in
the harness's :class:`TextTable` format, merges per-shard
:class:`~repro.tracesim.cache.CacheStats` counters emitted by parallel
workers (lossless, via ``CacheStats.__add__``), and decides the sweep's
overall verdict (every job completed *and* every paper-claim check
passed).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.harness import ExperimentResult
from repro.runner.pool import JobOutcome
from repro.runner.store import payload_to_result
from repro.tracesim.cache import CacheStats
from repro.utils.tables import TextTable

__all__ = [
    "results_of",
    "sweep_summary",
    "sweep_ok",
    "fault_summary",
    "merged_cache_stats",
    "cache_stats_table",
    "render_sweep",
]


def results_of(outcomes: Iterable[JobOutcome]) -> list[ExperimentResult]:
    """Rebuilt :class:`ExperimentResult` for every completed outcome."""
    return [
        payload_to_result(o.payload) for o in outcomes if o.payload is not None
    ]


def sweep_summary(outcomes: Sequence[JobOutcome]) -> TextTable:
    """One row per job: status, cache/attempt accounting, checks."""
    table = TextTable(
        ["job", "status", "attempts", "duration (s)", "checks", "error"],
        title="Sweep summary",
    )
    for o in outcomes:
        checks = "-"
        if o.payload is not None:
            verdicts = o.payload.get("checks", {})
            checks = f"{sum(1 for v in verdicts.values() if v)}/{len(verdicts)}"
        table.add_row(
            [
                o.spec.label,
                o.status,
                len(o.attempts) if o.attempts else (0 if o.cached else 1),
                "-" if o.duration is None else round(o.duration, 3),
                checks,
                (o.error or "")[:60],
            ]
        )
    return table


def sweep_ok(outcomes: Sequence[JobOutcome]) -> bool:
    """True when every job completed and every paper-claim check
    passed."""
    for o in outcomes:
        if not o.ok:
            return False
        verdicts = (o.payload or {}).get("checks", {})
        if not all(verdicts.values()):
            return False
    return True


def fault_summary(outcomes: Sequence[JobOutcome]) -> TextTable | None:
    """Attempt-kind accounting for sweeps that saw failures.

    One row per job that needed more than a single clean attempt:
    how many error / crash / timeout / pool-lost / deadline attempts it
    absorbed and how it ended.  Returns None for a fault-free sweep so
    reports stay quiet on the happy path.
    """
    kinds = ["error", "crash", "timeout", "pool-lost", "deadline"]
    rows = []
    for o in outcomes:
        tallies = {k: 0 for k in kinds}
        for a in o.attempts:
            if a.kind in tallies:
                tallies[a.kind] += 1
        if any(tallies.values()):
            rows.append([o.spec.label] + [tallies[k] for k in kinds] + [o.status])
    if not rows:
        return None
    table = TextTable(
        ["job"] + kinds + ["final"], title="Fault summary (non-clean attempts)"
    )
    for row in rows:
        table.add_row(row)
    return table


def merged_cache_stats(outcomes: Iterable[JobOutcome]) -> dict[str, CacheStats]:
    """Losslessly merge per-shard cache-simulator counters.

    Experiments that trace-simulate caches publish their counters under
    ``data["cache_stats"]`` as ``{shard_name: {accesses, hits, misses,
    writebacks}}``.  Workers run shards in separate processes, so the
    per-job counters are partial; summing them through
    :meth:`CacheStats.__add__` reconstructs the whole-sweep totals
    (including write-back counts, which a naive hit/miss merge would
    drop).
    """
    merged: dict[str, CacheStats] = {}
    for o in outcomes:
        if o.payload is None:
            continue
        shards = o.payload.get("data", {}).get("cache_stats", {})
        if not isinstance(shards, dict):
            continue
        for name, counters in shards.items():
            try:
                stats = CacheStats.from_dict(counters)
            except (TypeError, KeyError, ValueError):
                continue
            merged[name] = merged[name] + stats if name in merged else stats
    return merged


def cache_stats_table(merged: dict[str, CacheStats]) -> TextTable:
    """Render merged cache counters (plus a grand total row)."""
    table = TextTable(
        ["shard", "accesses", "hits", "misses", "writebacks", "I/O"],
        title="Merged trace-cache counters (all workers)",
    )
    for name in sorted(merged):
        s = merged[name]
        table.add_row([name, s.accesses, s.hits, s.misses, s.writebacks, s.io])
    if len(merged) > 1:
        total = CacheStats.merge(merged.values())
        table.add_row(
            ["TOTAL", total.accesses, total.hits, total.misses,
             total.writebacks, total.io]
        )
    return table


def render_sweep(
    outcomes: Sequence[JobOutcome], show_results: bool = True
) -> str:
    """Full human-readable sweep report."""
    lines: list[str] = []
    if show_results:
        for o in outcomes:
            if o.payload is None:
                continue
            lines.append(payload_to_result(o.payload).render())
            lines.append("")
    lines.append(sweep_summary(outcomes).render())
    faults = fault_summary(outcomes)
    if faults is not None:
        lines.append("")
        lines.append(faults.render())
    merged = merged_cache_stats(outcomes)
    if merged:
        lines.append("")
        lines.append(cache_stats_table(merged).render())
    failures = [o for o in outcomes if not o.ok]
    if failures:
        lines.append("")
        lines.append(f"FAILED jobs: {[o.spec.label for o in failures]}")
        for o in failures:
            lines.append(f"  {o.spec.label}: {o.error}")
            for a in o.attempts:
                lines.append(
                    f"    attempt {a.index}: {a.kind}"
                    + (f" — {a.error}" if a.error else "")
                )
    unchecked = [
        o.spec.label
        for o in outcomes
        if o.ok and not all((o.payload or {}).get("checks", {}).values())
    ]
    if unchecked:
        lines.append("")
        lines.append(f"FAILED paper-claim checks in: {unchecked}")
    n_cached = sum(1 for o in outcomes if o.cached)
    lines.append("")
    lines.append(
        f"{len(outcomes)} jobs: "
        f"{sum(1 for o in outcomes if o.status == 'ok')} computed, "
        f"{n_cached} from cache, {len(failures)} failed."
    )
    return "\n".join(lines)
