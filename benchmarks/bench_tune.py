"""Benchmark E15: schedule autotuning against the fixed families.

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md
and BENCH_tune.json) and asserts every check — including that the tuned
schedule beats the best fixed family at the committed grid point;
pytest-benchmark tracks the search cost.
"""


def test_e15_autotune(run_experiment):
    result = run_experiment("E15")
    assert result.checks["tuned schedule beats the best fixed family"]
