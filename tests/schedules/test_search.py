"""Tests for the schedule local search."""

import numpy as np
import pytest

from repro.bilinear import strassen
from repro.cdag import build_cdag
from repro.schedules import search_schedule, validate_schedule, demand_driven_schedule


@pytest.fixture(scope="module")
def g2():
    return build_cdag(strassen(), 2)


class TestSearchSchedule:
    def test_never_worse_than_start(self, g2):
        res = search_schedule(g2, cache_size=16, budget=15, seed=1)
        assert res.best_io <= res.start_io

    def test_improves_random_start(self, g2):
        rng = np.random.default_rng(3)
        res = search_schedule(
            g2, cache_size=16, start_order=rng.permutation(49),
            budget=40, seed=4,
        )
        assert res.best_io <= res.start_io
        # Random starts are bad enough that the climb finds something.
        assert res.improvement >= 0.0

    def test_recursive_is_local_optimum_ish(self, g2):
        """The recursive order resists a small search budget — the
        near-optimality evidence the E9 sandwich relies on."""
        res = search_schedule(g2, cache_size=16, budget=30, seed=7)
        assert res.improvement < 0.05

    def test_best_order_is_valid(self, g2):
        rng = np.random.default_rng(9)
        res = search_schedule(
            g2, cache_size=16, start_order=rng.permutation(49),
            budget=10, seed=2,
        )
        sched = demand_driven_schedule(g2, res.best_product_order)
        validate_schedule(g2, sched)

    def test_budget_respected(self, g2):
        res = search_schedule(g2, cache_size=16, budget=5, seed=1)
        assert res.evaluations <= 5

    def test_bad_budget(self, g2):
        with pytest.raises(ValueError):
            search_schedule(g2, cache_size=16, budget=0)

    def test_improvement_property(self, g2):
        res = search_schedule(g2, cache_size=16, budget=3, seed=1)
        assert 0.0 <= res.improvement < 1.0
