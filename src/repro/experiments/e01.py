"""E1 — Base graphs (paper Figure 1 + Section 3 structure).

For every catalog algorithm (and key compositions), build ``G_1`` and
verify the counts the paper states: ``2a`` inputs, ``b`` multiplication
vertices (each with one predecessor per encoder), ``a`` outputs; census
the encoder/decoder connectivity and the copying structure that decides
which earlier technique (if any) applies.
"""

from __future__ import annotations

from repro.bilinear import list_catalog
from repro.bilinear.compose import named_compositions
from repro.bilinear.verify import algorithm_stats
from repro.cdag import Region, build_base_graph, summarize
from repro.experiments.harness import ExperimentResult, register
from repro.utils.tables import TextTable

__all__ = ["run"]


@register("E1")
def run() -> ExperimentResult:
    algs = list_catalog() + named_compositions()

    table = TextTable(
        [
            "algorithm", "n0", "b", "omega0", "fast", "adds",
            "encA comps", "encB comps", "dec comps", "single-use",
            "multi-copy",
        ],
        title="E1: base-graph census (Figure 1 / Section 3)",
    )
    structure = TextTable(
        ["algorithm", "|V|", "|E|", "inputs", "products", "outputs",
         "connected"],
        title="E1: G_1 structure counts",
    )

    checks: dict[str, bool] = {}
    for alg in algs:
        stats = algorithm_stats(alg)
        table.add_row(stats.row())
        g = build_base_graph(alg)
        s = summarize(g)
        structure.add_row(
            [s.name, s.n_vertices, s.n_edges, s.n_inputs, s.n_products,
             s.n_outputs, "yes" if s.connected else "no"]
        )
        checks[f"{alg.name}: 2a inputs"] = s.n_inputs == 2 * alg.a
        checks[f"{alg.name}: b products"] = s.n_products == alg.b
        checks[f"{alg.name}: a outputs"] = s.n_outputs == alg.a
        checks[f"{alg.name}: G_1 connected"] = s.connected
        checks[f"{alg.name}: products have 2 preds"] = all(
            len(g.predecessors(int(v))) == 2 for v in g.products()
        )

    # The paper-motivating contrasts.
    from repro.bilinear import strassen, strassen_x_classical

    checks["strassen decoder connected (handled by [6])"] = (
        len(strassen().decoder_components()) == 1
    )
    sxc = strassen_x_classical()
    checks["strassen(x)classical fast but decoder disconnected (needs this paper)"] = (
        sxc.is_strassen_like and len(sxc.decoder_components()) > 1
    )

    return ExperimentResult(
        experiment_id="E1",
        title="Base-graph structure census",
        tables=[table, structure],
        checks=checks,
        data={"n_algorithms": len(algs)},
    )
