"""Hong-Kung bounds for the classical algorithm, and matching uppers.

The 1981 red-blue pebble game paper [10] proved the classical Θ(n^3)
algorithm requires ``Ω(n^3 / sqrt(M))`` I/Os, attained by blocked
multiplication with ``sqrt(M/3)``-sized blocks.  These are the baselines
for the Strassen-vs-classical comparisons (experiment E10) and for
showing where the paper's bound improves on the generic one.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_positive_int

__all__ = [
    "classical_io_lower_bound",
    "blocked_io_upper_bound",
    "classical_parallel_bandwidth_lower_bound",
    "classical_memory_independent_lower_bound",
]


def classical_io_lower_bound(n: int, M: int) -> float:
    """Ω-form Hong-Kung bound: ``n^3 / sqrt(M)`` (plus the trivial
    ``n^2`` for touching the data, folded in as a max)."""
    n = check_positive_int(n, "n")
    M = check_positive_int(M, "M")
    return max(n**3 / math.sqrt(M), 2.0 * n * n)


def blocked_io_upper_bound(n: int, M: int) -> float:
    """I/O of square-blocked classical multiplication with block size
    ``t = sqrt(M/3)``: about ``2 n^3 / t + n^2`` reads+writes.

    The 3 accounts for holding one block of each of A, B, C.
    """
    n = check_positive_int(n, "n")
    M = check_positive_int(M, "M")
    t = max(1.0, math.sqrt(M / 3.0))
    return 2.0 * n**3 / t + n * n


def classical_parallel_bandwidth_lower_bound(n: int, M: int, P: int) -> float:
    """Parallel Hong-Kung (Irony-Toledo-Tiskin [12]):
    ``n^3 / (P sqrt(M))``."""
    P = check_positive_int(P, "P")
    return classical_io_lower_bound(n, M) / P


def classical_memory_independent_lower_bound(n: int, P: int) -> float:
    """Memory-independent classical bound: ``n^2 / P^(2/3)`` (matched by
    3D algorithms)."""
    n = check_positive_int(n, "n")
    P = check_positive_int(P, "P")
    return n**2 / P ** (2.0 / 3.0)
