"""Classical parallel baselines: 2D, 3D, and 2.5D cost models.

Closed-form bandwidth costs of the standard classical parallel matrix
multiplication algorithms, used by experiment E11 to contrast the
Strassen-like CAPS costs with the classical landscape:

- **2D (Cannon / SUMMA)**: processors in a ``√P x √P`` grid, minimal
  memory (``~3n²/P``); bandwidth ``Θ(n²/√P)``.
- **3D**: ``P^(1/3)`` replication; memory ``Θ(n²/P^(2/3))``; bandwidth
  ``Θ(n²/P^(2/3))`` — matches the classical memory-independent bound.
- **2.5D (Solomonik-Demmel)**: ``c``-fold replication interpolating the
  two: bandwidth ``Θ(n²/√(cP))`` with memory ``Θ(c n²/P)``.

Constants follow the standard algorithm descriptions (each block of A
and B traverses the grid once); they are cost *models*, not packet
traces — the same substitution rationale as the CAPS simulator.
"""

from __future__ import annotations

import math

from repro.errors import PartitionError
from repro.utils.validation import check_positive_int

__all__ = [
    "cannon_2d_bandwidth",
    "summa_bandwidth",
    "classical_3d_bandwidth",
    "classical_25d_bandwidth",
    "replication_for_memory",
]


def cannon_2d_bandwidth(n: int, P: int) -> float:
    """Cannon's algorithm on a ``√P x √P`` grid: each processor passes
    its A and B blocks through ``√P`` shifts: ``2 n²/√P`` words."""
    check_positive_int(n, "n")
    check_positive_int(P, "P")
    root = math.isqrt(P)
    if root * root != P:
        raise PartitionError(f"Cannon needs a square grid; P={P}")
    return 2.0 * n * n / root


def summa_bandwidth(n: int, P: int) -> float:
    """SUMMA's broadcast variant: ``Θ(n²/√P)`` with a log factor from
    broadcasts; we charge ``2 (n²/√P) log2(√P)``."""
    check_positive_int(n, "n")
    check_positive_int(P, "P")
    root = math.isqrt(P)
    if root * root != P:
        raise PartitionError(f"SUMMA (square grid) needs square P; got {P}")
    return 2.0 * n * n / root * max(1.0, math.log2(root))


def classical_3d_bandwidth(n: int, P: int) -> float:
    """3D algorithm on a ``P^(1/3)`` cube: ``3 n²/P^(2/3)`` words."""
    check_positive_int(n, "n")
    check_positive_int(P, "P")
    return 3.0 * n * n / P ** (2.0 / 3.0)


def classical_25d_bandwidth(n: int, P: int, c: int) -> float:
    """2.5D with ``c``-fold replication (``1 <= c <= P^(1/3)``):
    ``2 n²/√(cP)`` words."""
    check_positive_int(c, "c")
    if c > round(P ** (1.0 / 3.0)) + 1e-9:
        raise PartitionError(
            f"2.5D replication c={c} exceeds P^(1/3)={P ** (1/3):.2f}"
        )
    return 2.0 * n * n / math.sqrt(c * P)


def replication_for_memory(n: int, P: int, M: int) -> int:
    """Largest 2.5D replication factor ``c`` fitting local memory ``M``
    (memory ``~3 c n²/P``), clamped to ``[1, P^(1/3)]``."""
    check_positive_int(M, "M")
    c = int(M * P / (3.0 * n * n))
    c_max = max(1, int(round(P ** (1.0 / 3.0))))
    return max(1, min(c, c_max))
