"""Result store: atomicity, determinism, serialisation round-trips."""

import json

from repro.experiments.harness import ExperimentResult
from repro.runner.jobs import JobSpec
from repro.runner.store import (
    ResultStore,
    payload_to_result,
    result_to_payload,
)
from repro.utils.tables import TextTable


def _sample_result() -> ExperimentResult:
    table = TextTable(["k", "bound", "measured"], title="sample")
    table.add_row([1, 77, 18])
    table.add_row([2, 539, 3.25])
    return ExperimentResult(
        experiment_id="T-RT",
        title="round trip",
        tables=[table],
        checks={"a": True, "b": False},
        data={"pair": (3, 4), "nested": {"x": 1.5}},
    )


class TestSerialisation:
    def test_render_survives_round_trip(self):
        original = _sample_result()
        rebuilt = payload_to_result(result_to_payload(original))
        assert rebuilt.render() == original.render()
        assert rebuilt.checks == original.checks
        assert rebuilt.all_checks_pass == original.all_checks_pass

    def test_payload_is_json_native(self):
        payload = result_to_payload(_sample_result())
        blob = json.dumps(payload, sort_keys=True)
        assert json.loads(blob) == payload
        # tuples canonicalise to lists
        assert payload["data"]["pair"] == [3, 4]

    def test_numpy_payloads_jsonify(self):
        import numpy as np

        result = ExperimentResult(
            "T-NP", "numpy", data={"a": np.int64(3), "b": np.float64(0.5),
                                   "v": np.arange(3)}
        )
        payload = result_to_payload(result)
        assert payload["data"] == {"a": 3, "b": 0.5, "v": [0, 1, 2]}


class TestStore:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = JobSpec("T-RT", {"p": 1})
        assert store.get(spec) is None
        store.put(spec, result_to_payload(_sample_result()))
        artifact = store.get(spec)
        assert artifact is not None
        assert artifact["key"] == spec.cache_key
        assert payload_to_result(artifact["result"]).experiment_id == "T-RT"

    def test_changed_params_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(JobSpec("T-RT", {"p": 1}), result_to_payload(_sample_result()))
        assert store.get(JobSpec("T-RT", {"p": 2})) is None

    def test_writes_are_byte_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = JobSpec("T-RT", {"p": 1})
        path = store.put(spec, result_to_payload(_sample_result()))
        first = path.read_bytes()
        store.put(spec, result_to_payload(_sample_result()))
        assert path.read_bytes() == first

    def test_corrupt_artifact_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = JobSpec("T-RT")
        path = store.put(spec, result_to_payload(_sample_result()))
        path.write_text("{ truncated", encoding="utf-8")
        assert store.get(spec) is None

    def test_key_mismatch_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = JobSpec("T-RT")
        path = store.put(spec, result_to_payload(_sample_result()))
        artifact = json.loads(path.read_text())
        artifact["key"] = "0" * 64
        path.write_text(json.dumps(artifact), encoding="utf-8")
        assert store.get(spec) is None

    def test_no_temp_droppings(self, tmp_path):
        store = ResultStore(tmp_path)
        for p in range(3):
            store.put(JobSpec("T-RT", {"p": p}),
                      result_to_payload(_sample_result()))
        leftovers = [f for f in tmp_path.rglob("*") if f.name.startswith(".tmp")]
        assert leftovers == []
        assert len(store) == 3

    def test_discard_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = JobSpec("T-RT", {"p": 1})
        store.put(spec, result_to_payload(_sample_result()))
        assert store.discard(spec)
        assert not store.discard(spec)
        store.put(spec, result_to_payload(_sample_result()))
        assert store.clear() == 1
        assert len(store) == 0

    def test_iter_artifacts(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(JobSpec("T-A"), result_to_payload(_sample_result()))
        store.put(JobSpec("T-B"), result_to_payload(_sample_result()))
        ids = sorted(a["experiment_id"] for a in store.iter_artifacts())
        assert ids == ["T-A", "T-B"]
