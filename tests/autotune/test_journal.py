"""The checksummed tune journal: valid-prefix loading, crash safety."""

import json

from repro.autotune.journal import TuneJournal, record_checksum


def _write(path, records):
    with TuneJournal(path) as j:
        for rec in records:
            j.append(rec)


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write(path, [{"kind": "tune_start", "x": 1}, {"kind": "generation"}])
        records = TuneJournal.load(path)
        assert [r["kind"] for r in records] == ["tune_start", "generation"]
        for rec in records:
            assert rec["sha256"] == record_checksum(rec)

    def test_missing_file_is_empty(self, tmp_path):
        assert TuneJournal.load(tmp_path / "absent.jsonl") == []

    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write(path, [{"kind": "tune_start"}, {"kind": "generation"}])
        with open(path, "a") as fh:
            fh.write('{"kind": "generation", "tr')  # SIGKILL mid-write
        records = TuneJournal.load(path)
        assert [r["kind"] for r in records] == ["tune_start", "generation"]

    def test_flipped_bit_ends_prefix(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write(path, [{"kind": "tune_start"}, {"kind": "generation", "gen": 0},
                      {"kind": "generation", "gen": 1}])
        lines = path.read_text().splitlines()
        doc = json.loads(lines[1])
        doc["gen"] = 7  # checksum no longer matches
        lines[1] = json.dumps(doc)
        path.write_text("\n".join(lines) + "\n")
        records = TuneJournal.load(path)
        # Damage is detected line-locally; everything after is dropped.
        assert [r.get("gen") for r in records] == [None]

    def test_truncate_starts_over(self, tmp_path):
        path = tmp_path / "t.jsonl"
        journal = TuneJournal(path)
        journal.append({"kind": "tune_start"})
        journal.truncate()
        assert not path.exists()
        journal.append({"kind": "tune_start", "fresh": True})
        journal.close()
        records = TuneJournal.load(path)
        assert len(records) == 1 and records[0]["fresh"] is True

    def test_checksum_ignores_itself(self):
        rec = {"kind": "x", "sha256": "bogus"}
        assert record_checksum(rec) == record_checksum({"kind": "x"})
