"""Content-addressed on-disk result store.

Artifacts live at ``<root>/<experiment_id>/<cache_key>.json`` and hold
the full serialised :class:`ExperimentResult` plus the job description
that produced it.  Properties the sweep machinery relies on:

- **deterministic bytes** — artifacts are canonical JSON
  (``sort_keys``, fixed separators, trailing newline) containing no
  wall-clock or host metadata, so re-running an identical sweep yields
  byte-identical files;
- **atomic writes** — written to a temp file in the same directory and
  ``os.replace``-d into place, so an interrupted sweep never leaves a
  truncated artifact and ``--resume`` can trust whatever it finds;
- **self-describing** — each artifact embeds its key, params, seed and
  package version; a corrupt or mismatched file reads as a cache miss,
  never an error;
- **checksummed** — the artifact carries the SHA-256 of its canonical
  result payload; :meth:`ResultStore.get` verifies it and treats any
  mismatch (bit rot, torn writes that survived ``os.replace``, manual
  edits) as a miss, moving the bad file to ``<root>/corrupt/`` for
  post-mortem instead of silently re-serving it;
- **strict JSON** — serialised with ``allow_nan=False``; non-finite
  floats are reduced to the sentinel strings ``"NaN"`` /
  ``"Infinity"`` / ``"-Infinity"`` first, so artifacts stay valid for
  strict parsers instead of round-tripping only within Python.

``<root>/corrupt/`` is reserved for quarantined files and dot-prefixed
``.tmp-*`` files are in-flight writes; neither is counted or yielded by
the artifact iteration API, and :meth:`gc_orphans` removes temp files a
killed process left behind.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import math
import os
import tempfile
from pathlib import Path
from typing import Iterator, Mapping

try:  # advisory cross-process locking; absent off-POSIX (lock is a no-op)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

from repro.chaos import hooks as _chaos_hooks
from repro.experiments.harness import ExperimentResult
from repro.runner.jobs import JobSpec, canonical_params
from repro.utils.tables import TextTable

__all__ = [
    "SCHEMA_VERSION",
    "ResultStore",
    "payload_checksum",
    "result_to_payload",
    "payload_to_result",
]

#: Bump when the artifact layout changes; old artifacts then read as
#: cache misses rather than decoding errors.  2: added the ``sha256``
#: payload checksum and non-finite float sentinels.
SCHEMA_VERSION = 2

#: Directory (under the store root) holding quarantined artifacts.
QUARANTINE_DIR = "corrupt"

#: Root-level advisory lock file serialising mutations (publication,
#: quarantine, temp-file GC) across processes — a daemon and an ad-hoc
#: ``repro sweep`` can share one cache directory without racing.
LOCK_FILE = ".lock"


def _jsonify(value):
    """Best-effort reduction of result payloads to JSON-native types
    (numpy scalars -> Python scalars, tuples -> lists, keys -> str,
    non-finite floats -> sentinel strings)."""
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        if math.isnan(value):
            return "NaN"
        return "Infinity" if value > 0 else "-Infinity"
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [_jsonify(v) for v in items]
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return _jsonify(value.item())
    if hasattr(value, "tolist"):
        return _jsonify(value.tolist())
    return repr(value)


def payload_checksum(result_payload) -> str:
    """SHA-256 over the canonical JSON form of a result payload.

    Computed over the same bytes regardless of how the artifact is
    formatted on disk, so it survives re-indenting but catches any
    change to the payload's *content*.
    """
    blob = json.dumps(
        result_payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def result_to_payload(result: ExperimentResult) -> dict:
    """Serialise an :class:`ExperimentResult` to a JSON-native dict."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "tables": [
            {"title": t.title, "headers": list(t.headers), "rows": [list(r) for r in t.rows]}
            for t in result.tables
        ],
        "checks": {str(k): bool(v) for k, v in result.checks.items()},
        "data": _jsonify(result.data),
    }


def payload_to_result(payload: Mapping) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from a stored payload.

    Table rows were rendered to aligned strings at serialisation time,
    so ``render()`` of the rebuilt result matches the original exactly.
    """
    tables = []
    for doc in payload.get("tables", ()):
        table = TextTable(doc["headers"], title=doc.get("title"))
        table.rows = [list(row) for row in doc["rows"]]
        tables.append(table)
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload.get("title", payload["experiment_id"]),
        tables=tables,
        checks=dict(payload.get("checks", {})),
        data=dict(payload.get("data", {})),
    )


def _count_detection(what: str) -> None:
    """Bump the corruption-detection / recovery telemetry counters."""
    from repro import telemetry

    registry = telemetry.metrics()
    registry.inc("chaos.detected")
    registry.inc(f"chaos.detected.{what}")


def _count_recovery(what: str) -> None:
    from repro import telemetry

    registry = telemetry.metrics()
    registry.inc("chaos.recovered")
    registry.inc(f"chaos.recovered.{what}")


class ResultStore:
    """Content-addressed JSON artifact store rooted at ``root``."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, spec: JobSpec) -> Path:
        return self.root / spec.experiment_id / f"{spec.cache_key}.json"

    @contextlib.contextmanager
    def _lock(self):
        """Hold the store's advisory ``flock`` (exclusive).

        ``flock`` is released by the kernel when the holder dies, so a
        SIGKILL mid-mutation can never deadlock the store — the next
        writer just sees whatever atomic state the victim left behind.
        No-op where ``fcntl`` is unavailable.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX
            yield
            return
        fd = os.open(self.root / LOCK_FILE, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing the fd drops the lock

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    def has(self, spec: JobSpec) -> bool:
        return self.path_for(spec).is_file()

    def get(self, spec: JobSpec) -> dict | None:
        """The stored artifact for ``spec``, or None (a miss) when the
        artifact is absent, unreadable, keyed differently, or fails
        checksum verification (the corrupt file is quarantined)."""
        path = self.path_for(spec)
        try:
            with path.open("r", encoding="utf-8") as fh:
                raw = fh.read()
        except OSError:
            return None
        try:
            artifact = json.loads(raw)
        except json.JSONDecodeError:
            # A *complete-but-undecodable* file is corruption, not a
            # plain miss: quarantine it so it is never re-read and the
            # evidence survives for post-mortem.
            self.quarantine(path, "undecodable", spec=spec)
            return None
        if (
            not isinstance(artifact, dict)
            or artifact.get("schema") != SCHEMA_VERSION
            or artifact.get("key") != spec.cache_key
        ):
            return None
        if artifact.get("sha256") != payload_checksum(artifact.get("result")):
            self.quarantine(path, "checksum", spec=spec)
            return None
        return artifact

    def _verifies(self, path: Path, spec: JobSpec) -> bool:
        """True when the file at ``path`` is a well-formed, checksummed
        artifact for ``spec`` (used under the lock to re-check before
        quarantining)."""
        try:
            with path.open("r", encoding="utf-8") as fh:
                artifact = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return False
        return (
            isinstance(artifact, dict)
            and artifact.get("schema") == SCHEMA_VERSION
            and artifact.get("key") == spec.cache_key
            and artifact.get("sha256") == payload_checksum(artifact.get("result"))
        )

    def quarantine(
        self, path: Path, reason: str, spec: JobSpec | None = None
    ) -> Path | None:
        """Move a corrupt artifact under ``<root>/corrupt/`` (never
        raises; falls back to deletion, then to leaving it in place).
        Returns the quarantined path, or None if the move failed.

        When ``spec`` is given the file is re-verified *under the store
        lock* first: between the caller's bad read and this call a
        concurrent writer may have replaced the file with a good
        artifact, and quarantining that would throw away fresh work.
        """
        with self._lock():
            if spec is not None and self._verifies(path, spec):
                return None  # healed by a concurrent publisher
            dest = None
            try:
                self.quarantine_root.mkdir(parents=True, exist_ok=True)
                dest = self.quarantine_root / path.name
                n = 0
                while dest.exists():
                    n += 1
                    dest = self.quarantine_root / f"{path.stem}.{n}{path.suffix}"
                os.replace(path, dest)
            except OSError:
                dest = None
                try:
                    path.unlink()
                except OSError:
                    pass
        _count_detection(reason)
        _count_recovery("quarantined")
        return dest

    def put(self, spec: JobSpec, result_payload: Mapping) -> Path:
        """Atomically write the artifact for ``spec``; returns its path."""
        from repro._version import __version__

        result = _jsonify(result_payload)
        artifact = {
            "schema": SCHEMA_VERSION,
            "key": spec.cache_key,
            "experiment_id": spec.experiment_id,
            "params": _jsonify(canonical_params(spec.params)),
            "seed": spec.seed,
            "entrypoint": spec.entrypoint,
            "version": __version__,
            "sha256": payload_checksum(result),
            "result": result,
        }
        blob = json.dumps(artifact, sort_keys=True, indent=2, allow_nan=False) + "\n"
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        # The lock covers mkstemp through replace: a concurrent
        # ``gc_orphans`` can never mistake this in-flight temp file for
        # an orphan, and concurrent publishers of one key serialise
        # (last replace wins; both wrote identical canonical bytes).
        with self._lock():
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        mk = _chaos_hooks.active
        if mk is not None:
            mk.corrupt_artifact(path, spec.cache_key)
        return path

    def discard(self, spec: JobSpec) -> bool:
        """Remove the artifact for ``spec``; True when one existed."""
        try:
            self.path_for(spec).unlink()
            return True
        except OSError:
            return False

    def _artifact_paths(self) -> Iterator[Path]:
        """Paths of real artifacts: skips in-flight/orphaned ``.tmp-*``
        files and the quarantine directory."""
        for path in sorted(self.root.glob("*/*.json")):
            if path.parent.name == QUARANTINE_DIR or path.name.startswith("."):
                continue
            yield path

    def iter_artifacts(self) -> Iterator[dict]:
        """Yield every decodable artifact under the root."""
        for path in self._artifact_paths():
            try:
                with path.open("r", encoding="utf-8") as fh:
                    artifact = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(artifact, dict) and artifact.get("schema") == SCHEMA_VERSION:
                yield artifact

    def __len__(self) -> int:
        return sum(1 for _ in self._artifact_paths())

    def gc_orphans(self) -> list[Path]:
        """Remove ``.tmp-*.json`` files a killed process left behind.

        Atomic writes go through a same-directory temp file; a SIGKILL
        between ``mkstemp`` and ``os.replace`` orphans it.  Runs under
        the store lock, so a *live* writer's in-flight temp file (the
        daemon publishing while an ad-hoc sweep starts up) is never
        collected — only files whose writer is past ``os.replace`` or
        dead remain visible once the lock is held.  Returns the removed
        paths.
        """
        removed = []
        with self._lock():
            for path in sorted(self.root.glob("*/.tmp-*.json")):
                try:
                    path.unlink()
                except OSError:
                    continue
                removed.append(path)
        if removed:
            _count_detection("orphan_tmp")
            _count_recovery("orphans_removed")
        return removed

    def clear(self) -> int:
        """Delete all artifacts; returns how many were removed."""
        n = 0
        for path in list(self._artifact_paths()):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n
