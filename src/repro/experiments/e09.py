"""E9 — Theorem 1, sequential: measured I/O vs the bound sandwich.

Sweep ``r`` and ``M`` for Strassen's algorithm; measure pebble-game I/O
of the recursive schedule (Belady and LRU) and of the naive schedules;
compare against the Ω-form lower bound and the recurrence upper bound.
Shape checks: (a) no measurement falls below the Ω-form with constant 1
in the scaling regime; (b) the recursive schedule's log-log slope in
``n`` approaches ``ω0 = log2 7``; (c) naive schedules are asymptotically
worse.

The sweep is batched through :meth:`CacheExecutor.run_many` (one
schedule validation and use-list precompute per schedule, shared across
every ``(M, policy)`` cell).  On top of the ``r <= r_max`` grid, a
single larger instance ``r = r_big`` (n = 64 by default) is measured at
``big_cache_sizes`` for the recursive schedule only — the rank-order
schedule is skipped there (its I/O grows like the cubic term and
dominates the runtime without adding a check) — which extends the slope
series by one more doubling.  Pass ``r_big=None`` to skip it (the quick
test configurations do).

With the compiled kernels active (numba installed, ``REPRO_NO_JIT``
unset) each schedule's ``(M, policy)`` grid advances through the
simulation core's *lockstep* kernel — one time-major pass over the
schedule steps every configuration row together
(:mod:`repro.simcore.grid`), chunked across threads — which is what
makes the extended grid — ``r_big=7`` (n = 128), the crossover regime
against the tight classical bound of Smith et al. and the
memory-independent parallel bounds of Demmel et al. — complete in
seconds instead of minutes.  ``workers`` partitions each ``run_many``
grid across a process pool on top of that (``workers=None`` defers to
``REPRO_RUN_MANY_WORKERS``).
"""

from __future__ import annotations

import math

from repro.bilinear import strassen
from repro.bounds import io_lower_bound, recursive_io_recurrence
from repro.cdag import build_cdag
from repro.experiments.harness import ExperimentResult, register
from repro.pebbling import CacheExecutor
from repro.schedules import rank_order_schedule, recursive_schedule
from repro.utils.tables import TextTable

__all__ = ["run"]


@register("E9")
def run(
    r_max: int = 5,
    cache_sizes=(12, 24, 48, 96),
    r_big: int | None = 6,
    big_cache_sizes=(12, 96),
    workers: int | None = None,
) -> ExperimentResult:
    alg = strassen()
    table = TextTable(
        ["n", "M", "lower Ω-form", "recursive (belady)", "recursive (lru)",
         "rank-order (lru)", "upper recurrence"],
        title="E9: sequential I/O — measurements vs Theorem 1 bounds",
    )
    checks: dict[str, bool] = {}
    measurements: dict[tuple[int, int], dict[str, float]] = {}

    def measure(r: int, Ms, with_rank: bool) -> None:
        g = build_cdag(alg, r)
        executor = CacheExecutor(g)
        rec = executor.run_many(
            recursive_schedule(g), Ms, ("belady", "lru"), workers=workers
        )
        rank = (
            executor.run_many(
                rank_order_schedule(g), Ms, ("lru",), workers=workers
            )
            if with_rank
            else {}
        )
        n = alg.n0**r
        for M in Ms:
            lower = io_lower_bound(alg, n, M)
            upper = recursive_io_recurrence(alg, n, M)
            rank_lru = rank[(M, "lru")].total if with_rank else None
            table.add_row(
                [n, M, round(lower), rec[(M, "belady")].total,
                 rec[(M, "lru")].total,
                 rank_lru if rank_lru is not None else "—", upper]
            )
            cell = {
                "lower": lower,
                "rec_belady": rec[(M, "belady")].total,
                "rec_lru": rec[(M, "lru")].total,
                "upper": upper,
            }
            if rank_lru is not None:
                cell["rank_lru"] = rank_lru
            measurements[(n, M)] = cell

    for r in range(2, r_max + 1):
        measure(r, cache_sizes, with_rank=True)
    if r_big is not None and r_big > r_max:
        big_Ms = [M for M in big_cache_sizes if M >= cache_sizes[0]]
        measure(r_big, big_Ms, with_rank=False)

    # (a) soundness: measured >= Ω-form (constant 1) wherever the bound
    # is in its regime (M = o(n^2): use M <= n^2 / 4).
    sound = all(
        m["rec_belady"] >= m["lower"]
        and m.get("rank_lru", math.inf) >= m["lower"]
        for (n, M), m in measurements.items()
        if M <= n * n / 4
    )
    checks["no measurement beats the Ω-form lower bound"] = sound

    # (b) slope of recursive-schedule I/O in n at fixed M.
    M0 = cache_sizes[0]
    ns = sorted(n for (n, M) in measurements if M == M0)
    slopes = [
        math.log(
            measurements[(n2, M0)]["rec_belady"]
            / measurements[(n1, M0)]["rec_belady"],
            2,
        )
        / math.log(n2 / n1, 2)
        for n1, n2 in zip(ns, ns[1:])
    ]
    slope_table = TextTable(
        ["n1 -> n2", "measured slope", "omega0 = log2 7"],
        title="E9: log-log slope of recursive-schedule I/O in n (M fixed)",
    )
    for (n1, n2), s in zip(zip(ns, ns[1:]), slopes):
        slope_table.add_row([f"{n1}->{n2}", round(s, 3), round(alg.omega0, 3)])
    # Finite-size effects shrink with r; at the default sweep depth the
    # last doubling's slope is within 0.35 of omega0 (looser for the
    # truncated sweeps used in quick test runs).
    deepest = max(r_max, r_big or 0)
    tolerance = 0.35 if deepest >= 4 else 0.6  # finite-size window
    checks["recursive slope approaches omega0"] = (
        abs(slopes[-1] - alg.omega0) < tolerance
    )

    # (c) the naive schedule does not enjoy the M-scaling: its I/O
    # decreases much more slowly with M than the recursive schedule's.
    # (rank-order is only run up to r_max, so compare there.)
    n_big = alg.n0**r_max
    rec_gain = (
        measurements[(n_big, cache_sizes[0])]["rec_belady"]
        / measurements[(n_big, cache_sizes[-1])]["rec_belady"]
    )
    rank_gain = (
        measurements[(n_big, cache_sizes[0])]["rank_lru"]
        / measurements[(n_big, cache_sizes[-1])]["rank_lru"]
    )
    checks["blocking pays: recursive gains more from M than rank-order"] = (
        rec_gain > rank_gain
    )
    checks["recursive beats rank-order at the largest size"] = (
        measurements[(n_big, cache_sizes[0])]["rec_belady"]
        < measurements[(n_big, cache_sizes[0])]["rank_lru"]
    )
    # The recurrence models the leaf working set as 3 m^2; the real
    # executor also keeps encoded intermediates live near the cache
    # boundary, so agreement is up to a constant factor, not pointwise.
    checks["measured recursive within 4x of recurrence model"] = all(
        m["rec_belady"] <= 4 * m["upper"] for m in measurements.values()
    )

    return ExperimentResult(
        experiment_id="E9",
        title="Theorem 1 sequential: I/O sweep",
        tables=[table, slope_table],
        checks=checks,
        data={"measurements": {f"{k}": v for k, v in measurements.items()}},
    )
