"""Address-trace generators for matrix-multiplication loop nests.

Address space layout: ``A`` at offset 0, ``B`` at ``n²``, ``C`` at
``2n²``; all row-major.  Traces are generated lazily (one tuple per
memory reference) so memory use stays flat regardless of ``n``.

Three kernels:

- :func:`trace_ijk` — the naive triple loop (poor reuse: for large n,
  I/O ~ n³);
- :func:`trace_blocked` — square-blocked classical (Hong-Kung-optimal
  at ``block ~ sqrt(M/3)``: I/O ~ n³/block);
- :func:`trace_strassen_recursive` — the Strassen-like recursion's
  access pattern: operand reads for encodings, product read/writes,
  decode writes, with scratch blocks allocated per recursion level (the
  real-memory analogue of the recursive schedule).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.bilinear.algorithm import BilinearAlgorithm
from repro.utils.validation import check_positive_int, check_power

__all__ = ["trace_ijk", "trace_blocked", "trace_strassen_recursive"]

Trace = Iterator[tuple[int, bool]]


def trace_ijk(n: int) -> Trace:
    """Naive ``for i, for j, for k: C[i,k] += A[i,j] * B[j,k]``.

    Per inner iteration: read A[i,j], read B[j,k], read+write C[i,k].
    """
    n = check_positive_int(n, "n")
    base_b = n * n
    base_c = 2 * n * n
    for i in range(n):
        row_a = i * n
        row_c = base_c + i * n
        for j in range(n):
            a_addr = row_a + j
            row_b = base_b + j * n
            for k in range(n):
                yield a_addr, False
                yield row_b + k, False
                yield row_c + k, False
                yield row_c + k, True


def trace_blocked(n: int, block: int) -> Trace:
    """Square-blocked classical multiplication, block-row-major inner
    loops.  Same references as :func:`trace_ijk`, reordered."""
    n = check_positive_int(n, "n")
    block = check_positive_int(block, "block")
    base_b = n * n
    base_c = 2 * n * n
    for i0 in range(0, n, block):
        for k0 in range(0, n, block):
            for j0 in range(0, n, block):
                for i in range(i0, min(i0 + block, n)):
                    row_a = i * n
                    row_c = base_c + i * n
                    for j in range(j0, min(j0 + block, n)):
                        a_addr = row_a + j
                        row_b = base_b + j * n
                        for k in range(k0, min(k0 + block, n)):
                            yield a_addr, False
                            yield row_b + k, False
                            yield row_c + k, False
                            yield row_c + k, True


def trace_strassen_recursive(
    alg: BilinearAlgorithm, n: int, cutoff: int = 1
) -> Trace:
    """Memory references of the recursive bilinear algorithm.

    Scratch buffers for the encoded operands and products are allocated
    per recursion level past ``3n²`` (a bump allocator mirrors how a real
    implementation reuses per-level workspace).  At or below ``cutoff``
    the kernel switches to the ijk loop on the current buffers.
    """
    n = check_positive_int(n, "n")
    check_power(n, alg.n0, "n")
    base_a, base_b, base_c = 0, n * n, 2 * n * n
    scratch_top = 3 * n * n

    def matrix_addrs(base: int, stride: int, size: int):
        """Row-major addresses of a size x size block at ``base`` with
        row stride ``stride``."""
        return base, stride, size

    def ijk_leaf(a, b, c) -> Trace:
        a_base, a_stride, size = a
        b_base, b_stride, _ = b
        c_base, c_stride, _ = c
        for i in range(size):
            for j in range(size):
                a_addr = a_base + i * a_stride + j
                for k in range(size):
                    yield a_addr, False
                    yield b_base + j * b_stride + k, False
                    yield c_base + i * c_stride + k, False
                    yield c_base + i * c_stride + k, True

    def rec(a, b, c, scratch: int) -> Trace:
        size = a[2]
        if size <= cutoff:
            yield from ijk_leaf(a, b, c)
            return
        n0 = alg.n0
        blk = size // n0
        # Scratch layout per level: 2 operand buffers + 1 product buffer.
        buf_l = scratch
        buf_r = scratch + blk * blk
        buf_p = scratch + 2 * blk * blk
        next_scratch = scratch + 3 * blk * blk

        def block_view(parent, r, cidx):
            base, stride, _ = parent
            return (base + (r * blk) * stride + cidx * blk, stride, blk)

        a_blocks = [block_view(a, r, cc) for r in range(n0) for cc in range(n0)]
        b_blocks = [block_view(b, r, cc) for r in range(n0) for cc in range(n0)]
        c_blocks = [block_view(c, r, cc) for r in range(n0) for cc in range(n0)]

        def emit_combine(coeffs, blocks, dest) -> Trace:
            """Read participating source blocks, write the destination."""
            dest_base, dest_stride, _ = dest
            sources = [blk_ for coeff, blk_ in zip(coeffs, blocks) if coeff]
            for i in range(blk):
                for j in range(blk):
                    for s_base, s_stride, _ in sources:
                        yield s_base + i * s_stride + j, False
                    yield dest_base + i * dest_stride + j, True

        for m in range(alg.b):
            left = (buf_l, blk, blk)
            right = (buf_r, blk, blk)
            prod = (buf_p, blk, blk)
            yield from emit_combine(alg.U[m], a_blocks, left)
            yield from emit_combine(alg.V[m], b_blocks, right)
            yield from rec(left, right, prod, next_scratch)
            # Accumulate the product into every output block using it.
            for e in range(alg.a):
                if alg.W[e, m]:
                    dest_base, dest_stride, _ = c_blocks[e]
                    for i in range(blk):
                        for j in range(blk):
                            yield buf_p + i * blk + j, False
                            yield dest_base + i * dest_stride + j, False
                            yield dest_base + i * dest_stride + j, True

    yield from rec(
        (base_a, n, n), (base_b, n, n), (base_c, n, n), scratch_top
    )
