"""Process-pool sweep scheduler: timeouts, retries, crash isolation.

:func:`run_sweep` drives a set of :class:`JobSpec` through a
``ProcessPoolExecutor`` and returns one :class:`JobOutcome` per spec.
Fault model:

- **cache hits** — specs whose artifact is already in the store are
  answered without touching the pool (skipped with ``fresh=True``);
  orphaned ``.tmp-*`` files from a killed writer are garbage-collected
  before the cache pass;
- **ordinary exceptions** raised by a job are charged as failed
  attempts and retried with exponentially-growing, fully-jittered
  backoff up to ``retries`` times; the final failure keeps the full
  retry history.  Jitter is drawn from a PRF over the job key, so a
  re-run of the same sweep replays the same delays;
- **per-job timeouts** — a job running past ``timeout`` seconds has
  its worker killed and is charged a ``timeout`` attempt; innocent
  jobs sharing the pool are resubmitted without charge.  With
  ``heartbeat`` set, workers touch a per-job heartbeat file from a
  daemon thread and the watchdog kills only *hung* workers (stale
  heartbeat past the timeout) — a slow-but-alive job keeps running;
- **worker crashes** (segfault, ``os._exit``, OOM-kill) break the
  whole executor, and the stdlib cannot say *which* in-flight job
  crashed.  The scheduler rebuilds the pool and re-runs every suspect
  in **quarantine** (solo, one at a time), where a repeat crash is
  attributable with certainty.  Deterministic crashers therefore
  exhaust their retries and are recorded as failed, while innocent
  bystanders complete — the sweep always runs to the end;
- **sweep deadline** — past ``deadline`` seconds the scheduler stops
  the pool, fails every unfinished job with a ``deadline`` attempt,
  and still emits a complete report: every job reaches a terminal
  state no matter how the sweep was cut short.

Workers execute :func:`_execute_job` — a module-level function so it
pickles by reference — which resolves the experiment registry (or an
explicit entrypoint), threads explicit seeds, and serialises the
result before it crosses the process boundary.  When a chaos monkey is
installed (:mod:`repro.chaos`), the scheduler embeds the fault decision
for each submission in the job doc and the worker applies it; with no
monkey installed every hook point is a single ``None`` check.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro import telemetry
from repro.chaos import hooks as _chaos_hooks
from repro.runner.events import EventLog, ProgressLine
from repro.runner.jobs import JobSpec, accepts_seed, graph_affinity, resolve_entrypoint
from repro.runner.store import ResultStore, result_to_payload
from repro.utils.prf import prf01

__all__ = ["Attempt", "JobOutcome", "run_sweep"]

#: Attempt kinds that are *charged* against the retry budget (the
#: job itself was at fault).  ``pool-lost`` marks collateral damage —
#: the job was in flight when another job killed the pool — and is
#: recorded but never charged; ``deadline`` marks jobs cut off by the
#: sweep-level deadline (terminal, uncharged).
CHARGED_KINDS = frozenset({"error", "crash", "timeout"})

_WAIT_TICK = 0.05  # scheduler poll interval, seconds
_MAX_BACKOFF = 30.0
#: A heartbeat is "stale" after this many missed intervals (with a
#: floor covering filesystem mtime granularity and thread jitter).
_STALE_INTERVALS = 3.0
_STALE_FLOOR = 0.25


def _retry_delay(key: str, charged_failures: int, backoff: float, jitter: bool) -> float:
    """Backoff before re-submitting a failed job: exponential cap with
    *full jitter* (uniform in ``[0, cap)``), drawn deterministically
    from the job key and attempt number so identical sweeps replay
    identical delays."""
    cap = min(backoff * (2 ** (charged_failures - 1)), _MAX_BACKOFF)
    if not jitter:
        return cap
    return cap * prf01("backoff", key, charged_failures)


@dataclass
class Attempt:
    """One execution attempt of a job."""

    index: int
    kind: str  # "ok" | "error" | "crash" | "timeout" | "pool-lost" | "deadline"
    error: str | None = None
    duration: float | None = None
    worker: int | None = None

    @property
    def charged(self) -> bool:
        return self.kind in CHARGED_KINDS

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "error": self.error,
            "duration": self.duration,
            "worker": self.worker,
        }


@dataclass
class JobOutcome:
    """Terminal state of one sweep job."""

    spec: JobSpec
    key: str
    status: str  # "ok" | "cached" | "failed"
    attempts: list[Attempt] = field(default_factory=list)
    payload: dict | None = None
    error: str | None = None
    duration: float | None = None
    worker: int | None = None
    #: worker-side telemetry snapshot (``profile=True`` runs only):
    #: ``{"spans": [...], "metrics": {...}, "span_id": ...}``.
    telemetry: dict | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")

    @property
    def cached(self) -> bool:
        return self.status == "cached"

    @property
    def retry_history(self) -> list[dict]:
        return [a.as_dict() for a in self.attempts]


class _JobState:
    """Scheduler-internal mutable companion of a spec."""

    __slots__ = (
        "spec", "key", "attempts", "charged_failures", "ready_at",
        "started_at", "quarantined", "job_doc",
    )

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.key = spec.cache_key
        self.attempts: list[Attempt] = []
        self.charged_failures = 0
        self.ready_at = 0.0
        self.started_at: float | None = None
        self.quarantined = False
        self.job_doc = {
            "experiment_id": spec.experiment_id,
            "params": dict(spec.params),
            "seed": spec.seed,
            "entrypoint": spec.entrypoint,
        }


def _beat(path: str, interval: float, stop: threading.Event) -> None:
    """Worker-side heartbeat: touch ``path`` every ``interval`` seconds
    until the job body finishes (daemon thread; dies with the worker,
    which is exactly the signal the watchdog wants)."""
    target = Path(path)
    while not stop.wait(interval):
        try:
            target.touch()
        except OSError:
            return


def _execute_job(job_doc: dict) -> dict:
    """Worker-side job body (module-level: pickled by reference)."""
    t0 = time.perf_counter()
    spec = JobSpec(
        job_doc["experiment_id"],
        job_doc["params"],
        seed=job_doc.get("seed"),
        entrypoint=job_doc.get("entrypoint"),
    )
    chaos_doc = job_doc.get("chaos")
    hb_stop = None
    hb_path = job_doc.get("heartbeat")
    if hb_path is not None and not (chaos_doc and chaos_doc.get("kind") == "hang"):
        # A chaos "hang" must look like a *true* hang — no heartbeat —
        # so the watchdog, not luck, is what reaps it.
        hb_stop = threading.Event()
        threading.Thread(
            target=_beat,
            args=(hb_path, float(job_doc.get("heartbeat_interval", 1.0)), hb_stop),
            daemon=True,
        ).start()
    graph_cache_root = job_doc.get("graph_cache")
    if graph_cache_root is not None:
        from repro.runner import graphcache as _graphcache

        _graphcache.activate(graph_cache_root, shm_root=job_doc.get("shm"))
    profile = bool(job_doc.get("telemetry"))
    job_span = None
    if profile:
        # Worker-side root span: explicit cross-process parentage so the
        # merged Chrome trace nests this job under the sweep span.
        from repro import telemetry

        telemetry.enable()
        telemetry.reset()
        job_span = telemetry.span(
            "runner.job",
            parent=job_doc.get("parent_span"),
            job=spec.label,
            experiment=spec.experiment_id,
        )
        job_span.__enter__()
    # Snapshot the graph-cache counters *after* any profiling reset so
    # the per-job delta reported back to the scheduler is exact.  The
    # metrics registry is always live, so this works without profiling.
    gc_before = None
    if graph_cache_root is not None:
        from repro.runner.graphcache import counter_snapshot

        gc_before = counter_snapshot()
    try:
        if chaos_doc:
            from repro.chaos.faults import apply_worker_fault

            apply_worker_fault(chaos_doc)  # only "slow" returns
        fn = resolve_entrypoint(spec)
        kwargs = dict(spec.params)
        if spec.seed is not None:
            if not accepts_seed(fn):
                raise TypeError(
                    f"job {spec.label!r} carries an explicit seed but "
                    f"{getattr(fn, '__name__', fn)!r} takes no 'seed' argument"
                )
            kwargs["seed"] = spec.seed
        result = fn(**kwargs)
    finally:
        if job_span is not None:
            job_span.__exit__(None, None, None)
        if hb_stop is not None:
            hb_stop.set()
    # Local import keeps worker startup lazy on the common path.
    from repro.experiments.harness import ExperimentResult

    if isinstance(result, ExperimentResult):
        payload = result_to_payload(result)
    elif isinstance(result, dict):
        payload = {
            "experiment_id": spec.experiment_id,
            "title": spec.label,
            "tables": [],
            "checks": {},
            "data": result,
        }
    else:
        raise TypeError(
            f"job {spec.label!r} returned {type(result).__name__}; expected "
            f"ExperimentResult or dict"
        )
    res = {
        "payload": payload,
        "worker": os.getpid(),
        "duration": time.perf_counter() - t0,
    }
    if gc_before is not None:
        from repro.runner.graphcache import counter_snapshot

        gc_after = counter_snapshot()
        res["graphcache"] = {
            name[len("graphcache."):]: gc_after[name] - gc_before.get(name, 0)
            for name in gc_after
            if gc_after[name] - gc_before.get(name, 0)
        }
    if profile:
        from repro import telemetry

        # Telemetry rides next to the payload, never inside it: stored
        # artifacts stay byte-deterministic, timings stay in the log.
        res["telemetry"] = {
            "spans": telemetry.drain_spans(),
            "metrics": telemetry.metrics().as_dict(),
            "span_id": job_span.span_id,
        }
        telemetry.reset_metrics()
    return res


def run_sweep(
    specs: Sequence[JobSpec],
    store: ResultStore | None = None,
    *,
    workers: int = 2,
    timeout: float | None = None,
    heartbeat: float | None = None,
    deadline: float | None = None,
    retries: int = 1,
    backoff: float = 0.25,
    jitter: bool = True,
    fresh: bool = False,
    events: EventLog | None = None,
    progress: ProgressLine | bool | None = None,
    mp_context=None,
    profile: bool = False,
    graph_cache: str | os.PathLike | None = None,
    shm_root: str | os.PathLike | None = None,
) -> list[JobOutcome]:
    """Run ``specs`` through a worker pool; one outcome per spec, in
    input order.

    Parameters
    ----------
    store:
        Result cache.  ``None`` disables caching entirely.
    workers:
        Pool size (at least 1).
    timeout:
        Per-job wall-clock limit in seconds; ``None`` disables.
    heartbeat:
        Worker heartbeat interval in seconds; ``None`` disables.  When
        set together with ``timeout``, the watchdog kills an overdue
        job only if its heartbeat file is also stale (a true hang) —
        slow-but-alive jobs keep running until the sweep ``deadline``.
    deadline:
        Sweep-level wall-clock limit.  When exceeded, unfinished jobs
        are failed with a ``deadline`` attempt and the sweep returns a
        complete report (every job terminal).
    retries:
        How many *charged* failures (error / crash / timeout) each job
        may absorb beyond its first; ``retries=2`` allows 3 attempts.
    backoff:
        Base delay before a retried job is resubmitted; the cap doubles
        per charged failure (max 30 s) and the actual delay is drawn
        uniformly from ``[0, cap)`` (full jitter), deterministically
        per job key.  ``jitter=False`` sleeps the full cap.
    fresh:
        Recompute every job, overwriting cached artifacts.
    events:
        Structured log sink; an in-memory :class:`EventLog` is created
        when omitted (counters still work).
    progress:
        ``None`` auto-enables a live line on a tty; ``False`` disables;
        a :class:`ProgressLine` instance is used as-is.
    profile:
        Collect telemetry: the sweep runs under a ``runner.sweep`` span,
        each worker opens a ``runner.job`` span parented to it, and
        worker spans/metrics are merged back into this process (see
        :mod:`repro.telemetry`).  Events carry the owning span ids.
    graph_cache:
        Directory of the shared compiled-graph bundle store
        (:mod:`repro.runner.graphcache`).  Workers activate it before
        running the job body, so graphs/schedules/plans are built once
        per machine; jobs are grouped by graph affinity and
        preferentially dispatched to workers that already have the
        group's bundles mapped (best effort — the stdlib pool cannot
        target a specific worker, but grouped submission plus the
        workers' process-local bundle maps make the just-freed warm
        worker the likely consumer).  Per-job hit/miss deltas are
        aggregated into this process's ``graphcache.*`` counters and
        the ``sweep_finish`` event.
    shm_root:
        Ledger directory of a shared-memory hot tier
        (:class:`repro.service.shm.ShmTier`) layered in front of the
        graph cache; only meaningful with ``graph_cache``.  The caller
        owns the tier's lifecycle (the sweep service drains it; a batch
        sweep caller that passes one should drain it afterwards).
    """
    workers = max(1, int(workers))
    retries = max(0, int(retries))
    if events is None:
        events = EventLog()
    states = [_JobState(spec) for spec in specs]
    outcomes: dict[int, JobOutcome] = {}

    if graph_cache is not None:
        graph_cache = str(graph_cache)
        for st in states:
            st.job_doc["graph_cache"] = graph_cache
            st.job_doc["affinity"] = graph_affinity(st.spec)
            if shm_root is not None:
                st.job_doc["shm"] = str(shm_root)
    #: graph-affinity groups each live worker pid has already served
    #: (its process-local bundle maps are warm for those groups).
    worker_groups: dict[int, set[str]] = {}
    gc_totals: dict[str, int] = {}
    warm_dispatch = {"warm": 0, "cold": 0}

    sweep_span = None
    was_enabled = telemetry.enabled()
    if profile:
        telemetry.enable()
        sweep_span = telemetry.span(
            "runner.sweep", jobs=len(states), workers=workers
        )
        sweep_span.__enter__()
        events.bind(span=sweep_span.span_id)
        for st in states:
            st.job_doc["telemetry"] = True
            st.job_doc["parent_span"] = sweep_span.span_id

    hb_dir: Path | None = None
    if heartbeat is not None:
        hb_dir = Path(tempfile.mkdtemp(prefix="repro-hb-"))
    stale_after = (
        max(_STALE_INTERVALS * heartbeat, _STALE_FLOOR)
        if heartbeat is not None
        else None
    )

    t_sweep = time.monotonic()
    if store is not None:
        orphans = store.gc_orphans()
        if orphans:
            events.emit("store_gc", orphans=len(orphans))
    if graph_cache is not None:
        # Same hygiene as the artifact store: staging dirs left behind
        # by a killed bundle writer are dead weight, never valid data.
        from repro.runner.graphcache import GraphCache

        stale = GraphCache(graph_cache).gc()
        if stale:
            events.emit("graphcache_gc", orphans=len(stale))
    events.emit("sweep_start", jobs=len(states), workers=workers)

    if progress is False:
        progress = ProgressLine(len(states), enabled=False)
    elif progress is None or progress is True:
        progress = ProgressLine(len(states), enabled=True if progress else None)

    # ---- cache pass -------------------------------------------------
    pending: deque[_JobState] = deque()
    for i, st in enumerate(states):
        artifact = None if (store is None or fresh) else store.get(st.spec)
        if artifact is not None:
            outcomes[i] = JobOutcome(
                st.spec, st.key, "cached", payload=artifact["result"]
            )
            events.emit(
                "cache_hit",
                job=st.spec.label,
                experiment=st.spec.experiment_id,
                key=st.key,
            )
        else:
            pending.append(st)

    if graph_cache is not None and pending:
        # Affinity grouping: jobs that compile the same graphs run
        # back-to-back, so by the time a group's second job is
        # dispatched some worker already has the bundles mapped.
        # Groups keep first-appearance order (dict insertion order), and
        # jobs keep input order within a group.
        groups: dict[str, list[_JobState]] = {}
        for st in pending:
            groups.setdefault(st.job_doc["affinity"], []).append(st)
        pending = deque(st for grp in groups.values() for st in grp)

    index_of = {id(st): i for i, st in enumerate(states)}
    quarantine: deque[_JobState] = deque()
    in_flight: dict = {}
    executor = ProcessPoolExecutor(max_workers=workers, mp_context=mp_context)

    def _progress():
        done = len(outcomes)
        cached = sum(1 for o in outcomes.values() if o.cached)
        failed = sum(1 for o in outcomes.values() if not o.ok)
        progress.update(done, cached, failed, len(in_flight))

    def _rebuild_pool():
        nonlocal executor
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.terminate()
            except (OSError, AttributeError):
                pass
        executor.shutdown(wait=False, cancel_futures=True)
        executor = ProcessPoolExecutor(max_workers=workers, mp_context=mp_context)
        worker_groups.clear()  # every warm worker just died

    def _hb_path(st: _JobState) -> Path:
        return hb_dir / f"{st.key}.hb"

    def _submit(st: _JobState):
        st.started_at = time.monotonic()
        if hb_dir is not None:
            hb_file = _hb_path(st)
            hb_file.touch()  # covers the spawn gap before the first beat
            st.job_doc["heartbeat"] = str(hb_file)
            st.job_doc["heartbeat_interval"] = heartbeat
        mk = _chaos_hooks.active
        if mk is not None:
            mk.prepare_job(st.job_doc, st.key, st.charged_failures + 1)
        try:
            fut = executor.submit(_execute_job, st.job_doc)
        except BrokenProcessPool:
            # The pool died between completions; this job never started
            # (no attempt recorded) — requeue it and heal the pool.
            if st.quarantined:
                quarantine.appendleft(st)
            else:
                pending.appendleft(st)
            _handle_broken_pool(None)
            return
        in_flight[fut] = st
        events.emit(
            "job_start",
            job=st.spec.label,
            experiment=st.spec.experiment_id,
            key=st.key,
            attempt=len(st.attempts) + 1,
        )

    def _finish_ok(st: _JobState, res: dict):
        st.attempts.append(
            Attempt(
                len(st.attempts) + 1, "ok",
                duration=res["duration"], worker=res["worker"],
            )
        )
        payload = res["payload"]
        if store is not None:
            store.put(st.spec, payload)
        if graph_cache is not None:
            for name, delta in (res.get("graphcache") or {}).items():
                gc_totals[name] = gc_totals.get(name, 0) + delta
            affinity = st.job_doc.get("affinity")
            if affinity is not None:
                worker_groups.setdefault(res["worker"], set()).add(affinity)
        tele = res.get("telemetry")
        if tele is not None:
            # Merge the worker's snapshot into this process so exporters
            # see the whole sweep; the artifact store never sees it.
            telemetry.ingest_spans(tele.get("spans", ()))
            telemetry.metrics().ingest(tele.get("metrics", {}))
        outcomes[index_of[id(st)]] = JobOutcome(
            st.spec, st.key, "ok",
            attempts=st.attempts, payload=payload,
            duration=res["duration"], worker=res["worker"],
            telemetry=tele,
        )
        extra = {}
        if tele is not None and tele.get("span_id") is not None:
            extra["job_span"] = tele["span_id"]
        events.emit(
            "job_finish",
            job=st.spec.label,
            experiment=st.spec.experiment_id,
            key=st.key,
            attempt=len(st.attempts),
            duration=round(res["duration"], 6),
            worker=res["worker"],
            **extra,
        )

    def _fail(st: _JobState, reason: str):
        outcomes[index_of[id(st)]] = JobOutcome(
            st.spec, st.key, "failed", attempts=st.attempts, error=reason
        )
        events.emit(
            "job_failed",
            job=st.spec.label,
            experiment=st.spec.experiment_id,
            key=st.key,
            attempts=len(st.attempts),
            reason=reason,
            retry_history=[a.as_dict() for a in st.attempts],
        )

    def _charge(st: _JobState, kind: str, reason: str):
        """Record an at-fault attempt; retry with backoff or fail."""
        st.attempts.append(Attempt(len(st.attempts) + 1, kind, error=reason))
        st.charged_failures += 1
        if st.charged_failures > retries:
            _fail(st, reason)
            return
        delay = _retry_delay(st.key, st.charged_failures, backoff, jitter)
        st.ready_at = time.monotonic() + delay
        if kind == "crash":
            st.quarantined = True
            quarantine.append(st)
        else:
            pending.append(st)
        events.emit(
            "job_retry",
            job=st.spec.label,
            experiment=st.spec.experiment_id,
            key=st.key,
            attempt=len(st.attempts),
            kind=kind,
            reason=reason,
            backoff=round(delay, 6),
        )

    def _mark_pool_lost(st: _JobState, reason: str, to_quarantine: bool):
        """Record a not-at-fault interruption and requeue (uncharged)."""
        st.attempts.append(
            Attempt(len(st.attempts) + 1, "pool-lost", error=reason)
        )
        st.ready_at = time.monotonic()
        if to_quarantine:
            st.quarantined = True
            quarantine.append(st)
        else:
            pending.append(st)
        events.emit(
            "job_retry",
            job=st.spec.label,
            experiment=st.spec.experiment_id,
            key=st.key,
            attempt=len(st.attempts),
            kind="pool-lost",
            reason=reason,
            backoff=0.0,
        )

    def _handle_broken_pool(culprit: _JobState | None):
        """The executor died.  Attribute the crash when possible,
        quarantine every ambiguous suspect, and rebuild the pool."""
        suspects = [culprit] if culprit is not None else []
        suspects.extend(in_flight.values())
        in_flight.clear()
        _rebuild_pool()
        if len(suspects) == 1:
            _charge(suspects[0], "crash", "worker process crashed")
            return
        for st in suspects:
            _mark_pool_lost(
                st,
                "worker pool crashed with several jobs in flight; "
                "re-running solo to attribute the crash",
                to_quarantine=True,
            )

    def _take_pending(now: float) -> _JobState | None:
        """Pop the next ready pending job.  With a graph cache active,
        prefer a job whose affinity group some live worker has already
        served — that worker's bundle maps are warm, and with grouped
        submission it is the likely consumer of the next slot.  Falls
        back to the first ready job; keeps relative order otherwise."""
        if graph_cache is not None and worker_groups:
            warm = set().union(*worker_groups.values())
            fallback = None
            for idx, st in enumerate(pending):
                if st.ready_at > now:
                    continue
                if st.job_doc["affinity"] in warm:
                    del pending[idx]
                    warm_dispatch["warm"] += 1
                    return st
                if fallback is None:
                    fallback = idx
            if fallback is None:
                return None
            st = pending[fallback]
            del pending[fallback]
            warm_dispatch["cold"] += 1
            return st
        for idx, st in enumerate(pending):
            if st.ready_at <= now:
                del pending[idx]
                return st
        return None

    def _enforce_deadline() -> bool:
        """Past the sweep deadline: stop the pool, fail everything
        unfinished with a terminal ``deadline`` attempt."""
        cancelled = len(in_flight) + len(pending) + len(quarantine)
        events.emit("sweep_deadline", cancelled=cancelled)
        cut = list(in_flight.values()) + list(pending) + list(quarantine)
        in_flight.clear()
        pending.clear()
        quarantine.clear()
        _rebuild_pool()  # terminates any still-running workers
        for st in cut:
            st.attempts.append(
                Attempt(
                    len(st.attempts) + 1, "deadline",
                    error=f"sweep deadline of {deadline:g}s exceeded",
                )
            )
            _fail(st, f"sweep deadline of {deadline:g}s exceeded")
        return True

    _progress()
    try:
        while pending or quarantine or in_flight:
            now = time.monotonic()
            if deadline is not None and now - t_sweep > deadline:
                _enforce_deadline()
                break

            # Quarantined suspects run strictly solo so a repeat crash
            # is attributable; normal submission resumes afterwards.
            if quarantine:
                if not in_flight and quarantine[0].ready_at <= now:
                    _submit(quarantine.popleft())
            else:
                while pending and len(in_flight) < workers:
                    st = _take_pending(now)
                    if st is None:
                        break
                    _submit(st)

            if not in_flight:
                nxt = min(
                    (st.ready_at for st in list(pending) + list(quarantine)),
                    default=now,
                )
                time.sleep(min(max(nxt - now, 0.0), _WAIT_TICK) or 0.001)
                continue

            done, _ = wait(
                list(in_flight), timeout=_WAIT_TICK, return_when=FIRST_COMPLETED
            )
            broken = False
            for fut in done:
                st = in_flight.pop(fut, None)
                if st is None:
                    continue
                try:
                    res = fut.result(timeout=0)
                except BrokenProcessPool:
                    _handle_broken_pool(st)
                    broken = True
                    break
                except BaseException as exc:  # job raised inside worker
                    _charge(
                        st, "error", f"{type(exc).__name__}: {exc}"
                    )
                else:
                    _finish_ok(st, res)
            if broken:
                _progress()
                continue

            # Per-job watchdog: kill the pool (only way to stop a
            # running worker), charge the overdue job, respawn the rest.
            # With heartbeats on, only *stale* workers count as hung.
            if timeout is not None:
                now = time.monotonic()
                overdue: list[tuple] = []
                for fut, st in in_flight.items():
                    if st.started_at is None or now - st.started_at <= timeout:
                        continue
                    if stale_after is not None:
                        try:
                            age = time.time() - _hb_path(st).stat().st_mtime
                        except OSError:
                            age = float("inf")
                        if age <= stale_after:
                            continue  # slow but alive: spare it
                        reason = (
                            f"heartbeat stale for {age:.2f}s past the "
                            f"{timeout:g}s timeout (presumed hung)"
                        )
                    else:
                        reason = f"exceeded per-job timeout of {timeout:g}s"
                    overdue.append((fut, st, reason))
                if overdue:
                    overdue_futs = {f for f, _, _ in overdue}
                    survivors = [
                        st for fut, st in in_flight.items()
                        if fut not in overdue_futs
                    ]
                    in_flight.clear()
                    _rebuild_pool()
                    for _, st, reason in overdue:
                        _charge(st, "timeout", reason)
                    for st in survivors:
                        _mark_pool_lost(
                            st,
                            "worker pool recycled to enforce a timeout "
                            "on another job",
                            to_quarantine=False,
                        )
            _progress()
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
        progress.finish()
        if hb_dir is not None:
            shutil.rmtree(hb_dir, ignore_errors=True)

    ordered = [outcomes[i] for i in range(len(states))]
    n_ok = sum(1 for o in ordered if o.status == "ok")
    n_cached = sum(1 for o in ordered if o.cached)
    n_failed = sum(1 for o in ordered if not o.ok)
    extra = {}
    if graph_cache is not None:
        if not profile:
            # Without profiling the workers' metric registries never get
            # merged back, so surface the per-job deltas here.  (With
            # profiling they already arrived via telemetry ingestion —
            # adding them again would double-count.)
            reg = telemetry.metrics()
            for name, delta in gc_totals.items():
                reg.inc(f"graphcache.{name}", delta)
        extra["graphcache"] = {
            **{k: v for k, v in gc_totals.items() if "." not in k},
            "affinity_warm": warm_dispatch["warm"],
            "affinity_cold": warm_dispatch["cold"],
        }
    events.emit(
        "sweep_finish",
        ok=n_ok,
        failed=n_failed,
        cached=n_cached,
        duration=round(time.monotonic() - t_sweep, 6),
        **extra,
    )
    if sweep_span is not None:
        sweep_span.add("ok", n_ok)
        sweep_span.add("cached", n_cached)
        sweep_span.add("failed", n_failed)
        sweep_span.__exit__(None, None, None)
        events.bind(span=None)
        if not was_enabled:
            telemetry.disable()
    return ordered
