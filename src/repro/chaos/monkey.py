"""The chaos monkey: plan decisions wired into the runner's hook points.

``with chaos.monkey(plan):`` installs a :class:`ChaosMonkey` into
:mod:`repro.chaos.hooks`; the runner's pool, store and event log then
consult it at their injection sites.  The monkey is the only stateful
part of the subsystem — it counts what it injected (mirrored into the
``chaos.injected*`` telemetry counters) and enforces the one-shot
bookkeeping for kill faults so a resumed sweep does not die at the
same event forever.
"""

from __future__ import annotations

import json
from collections import Counter
from contextlib import contextmanager
from pathlib import Path

from repro.chaos import hooks
from repro.chaos.faults import SweepKilled, apply_store_fault
from repro.chaos.plan import FaultPlan

__all__ = ["ChaosMonkey", "monkey"]


class ChaosMonkey:
    """Applies a :class:`FaultPlan` at the runner's injection sites."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.injected: Counter = Counter()  # "site:kind" -> count
        self.kills = 0
        self._fired_event_keys: set[str] = set()
        self._armed = True

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    @property
    def armed(self) -> bool:
        return self._armed

    def disarm(self) -> None:
        """Stop injecting (hooks become no-ops); counters survive."""
        self._armed = False

    def rearm(self) -> None:
        self._armed = True

    def _record(self, site: str, kind: str) -> None:
        self.injected[f"{site}:{kind}"] += 1
        from repro import telemetry

        registry = telemetry.metrics()
        registry.inc("chaos.injected")
        registry.inc(f"chaos.injected.{site}")

    # ------------------------------------------------------------------
    # Hook points (called by the runner; must stay cheap and safe)
    # ------------------------------------------------------------------

    def prepare_job(self, job_doc: dict, key: str, attempt: int) -> None:
        """Pool hook: decide a worker fault for this submission and, if
        one fires, ship its description inside the job doc."""
        job_doc.pop("chaos", None)
        if not self._armed:
            return
        kind = self.plan.decide("worker", key, attempt)
        if kind is None:
            return
        fault = self.plan.worker_fault_doc(kind)
        if "shm" in job_doc:
            # The shm_leak fault needs the tier's ledger root so the
            # leaked segment is recorded where drain/gc will look.
            fault.setdefault("shm", job_doc["shm"])
        job_doc["chaos"] = fault
        self._record("worker", kind)

    def corrupt_artifact(self, path, key: str) -> None:
        """Store hook: corrupt a just-written artifact."""
        if not self._armed:
            return
        kind = self.plan.decide("store", key)
        if kind is None:
            return
        apply_store_fault(kind, Path(path))
        self._record("store", kind)

    def on_event(self, log, record: dict) -> None:
        """Event-log hook: simulate the driver dying mid-write.

        Fires only at ``job_finish`` records, at most
        ``plan.max_kills`` times, and never twice for the same event
        key — a resumed sweep replays the same finishes, and a chaos
        run must converge.
        """
        if not self._armed or record.get("event") != "job_finish":
            return
        if self.kills >= self.plan.max_kills:
            return
        event_key = f"job_finish:{record.get('key')}"
        if event_key in self._fired_event_keys:
            return
        kind = self.plan.decide("events", event_key)
        if kind is None:
            return
        self._fired_event_keys.add(event_key)
        self.kills += 1
        self._record("events", kind)
        if kind == "torn_tail" and getattr(log, "_stream", None) is not None:
            blob = json.dumps(record, sort_keys=True)
            log._stream.write(blob[: max(1, len(blob) // 2)])
            log._stream.flush()
        raise SweepKilled(f"chaos: simulated SIGKILL at {event_key} ({kind})")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self) -> dict:
        """JSON-native summary of everything this monkey injected."""
        by_site: Counter = Counter()
        for site_kind, n in self.injected.items():
            by_site[site_kind.split(":", 1)[0]] += n
        return {
            "seed": self.plan.seed,
            "injected": dict(sorted(self.injected.items())),
            "injected_by_site": dict(sorted(by_site.items())),
            "injected_total": sum(self.injected.values()),
            "kills": self.kills,
        }


@contextmanager
def monkey(plan_or_monkey: FaultPlan | ChaosMonkey):
    """Install a chaos monkey for the duration of the block.

    Accepts a :class:`FaultPlan` (a fresh monkey is created) or an
    existing :class:`ChaosMonkey` (so a soak loop can keep one-shot
    state across sweep restarts).  The previously installed monkey, if
    any, is restored on exit.
    """
    mk = (
        plan_or_monkey
        if isinstance(plan_or_monkey, ChaosMonkey)
        else ChaosMonkey(plan_or_monkey)
    )
    previous = hooks.active
    hooks.install(mk)
    try:
        yield mk
    finally:
        if previous is None:
            hooks.uninstall()
        else:
            hooks.install(previous)
