"""Tests for the trace-driven cache simulators."""

import numpy as np
import pytest

from repro.bilinear import strassen
from repro.tracesim import (
    FullyAssociativeLRU,
    SetAssociativeLRU,
    trace_blocked,
    trace_ijk,
    trace_strassen_recursive,
)


class TestFullyAssociativeLRU:
    def test_hit_after_miss(self):
        cache = FullyAssociativeLRU(2)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = FullyAssociativeLRU(2)
        cache.access(0)
        cache.access(1)
        cache.access(0)  # refresh 0
        cache.access(2)  # evicts 1
        assert cache.access(0)
        assert not cache.access(1)

    def test_writeback_only_dirty(self):
        cache = FullyAssociativeLRU(1)
        cache.access(0, is_write=True)
        cache.access(1)  # evicts dirty 0 -> writeback
        cache.access(2)  # evicts clean 1 -> free
        assert cache.stats.writebacks == 1

    def test_flush_writes_dirty(self):
        cache = FullyAssociativeLRU(4)
        cache.access(0, is_write=True)
        cache.access(1)
        cache.flush()
        assert cache.stats.writebacks == 1

    def test_line_granularity(self):
        cache = FullyAssociativeLRU(1, line_size=4)
        cache.access(0)
        assert cache.access(3)  # same line
        assert not cache.access(4)  # next line

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            FullyAssociativeLRU(0)


class TestSetAssociativeLRU:
    def test_conflict_misses(self):
        # 2 sets, 1 way: addresses 0 and 2 conflict (same set).
        cache = SetAssociativeLRU(n_sets=2, ways=1)
        cache.access(0)
        cache.access(2)
        assert not cache.access(0)  # was evicted by the conflict

    def test_fully_associative_equivalence(self):
        """1 set with W ways == fully associative with capacity W."""
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 50, size=500).tolist()
        fa = FullyAssociativeLRU(8)
        sa = SetAssociativeLRU(1, 8)
        for addr in addrs:
            fa.access(addr)
            sa.access(addr)
        assert fa.stats.misses == sa.stats.misses

    def test_capacity_lines(self):
        assert SetAssociativeLRU(4, 2).capacity_lines == 8


class TestTraces:
    def test_ijk_access_count(self):
        n = 6
        assert sum(1 for _ in trace_ijk(n)) == 4 * n**3

    def test_blocked_same_reference_multiset(self):
        """Blocking reorders but does not change the reference multiset
        (up to order)."""
        n, block = 6, 2
        ref_ijk = sorted(trace_ijk(n))
        ref_blk = sorted(trace_blocked(n, block))
        assert ref_ijk == ref_blk

    def test_blocked_beats_ijk(self):
        n, M = 32, 96
        io_ijk = FullyAssociativeLRU(M).run(trace_ijk(n)).io
        io_blk = FullyAssociativeLRU(M).run(trace_blocked(n, 5)).io
        assert io_blk < io_ijk

    def test_blocking_shape_hong_kung(self):
        """Doubling the block (with cache to hold it) roughly halves the
        I/O — the n^3/sqrt(M) law."""
        n = 32
        io4 = FullyAssociativeLRU(3 * 16 + 8).run(trace_blocked(n, 4)).io
        io8 = FullyAssociativeLRU(3 * 64 + 16).run(trace_blocked(n, 8)).io
        ratio = io4 / io8
        assert 1.5 < ratio < 3.0

    def test_huge_cache_compulsory_only(self):
        n = 8
        stats = FullyAssociativeLRU(10**6).run(trace_ijk(n))
        # Compulsory misses: 3 n^2 distinct words; writebacks: n^2 C words.
        assert stats.misses == 3 * n * n
        assert stats.writebacks == n * n

    def test_strassen_trace_runs(self):
        stats = FullyAssociativeLRU(256).run(
            trace_strassen_recursive(strassen(), 16, cutoff=4)
        )
        assert stats.io > 0

    def test_strassen_trace_io_decreases_with_cache(self):
        t = lambda: trace_strassen_recursive(strassen(), 32, cutoff=4)
        small = FullyAssociativeLRU(64).run(t()).io
        large = FullyAssociativeLRU(2048).run(t()).io
        assert large < small

    def test_strassen_trace_requires_power(self):
        with pytest.raises(ValueError):
            list(trace_strassen_recursive(strassen(), 6))
