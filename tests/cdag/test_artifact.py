"""Bundle serialisation: round-trip determinism, content keys, and
defect detection.

The graph cache is only safe if a reloaded bundle is *indistinguishable*
from an in-process build — same arrays, same simulation results, same
eviction traces — and if every corruption is detected rather than
decoded.  These tests pin both properties at the artifact layer (no
:class:`~repro.runner.graphcache.GraphCache` involved; that layer has
its own tests under ``tests/runner``).
"""

import numpy as np
import pytest

from repro.bilinear import strassen
from repro.bilinear.compose import strassen_x_classical
from repro.cdag import artifact, build_cdag
from repro.errors import GraphCacheError
from repro.pebbling.executor import EXECUTOR_VERSION, CacheExecutor, _SchedulePlan
from repro.schedules import rank_order_schedule, recursive_schedule


@pytest.fixture(autouse=True)
def _no_active_cache():
    """These tests drive the serialisation API directly; a cache
    activated by the environment would double-handle the bundles."""
    prev = artifact.set_active_cache(None)
    yield
    artifact.set_active_cache(prev)


def _graph_round_trip(tmp_path, alg, r):
    g = build_cdag(alg, r)
    path = tmp_path / artifact.graph_key(alg, r)
    artifact.write_bundle(path, artifact.graph_to_arrays(g), {"kind": "graph"})
    arrays, meta = artifact.read_bundle(path, artifact.GRAPH_ARRAY_NAMES)
    return g, artifact.graph_from_arrays(alg, r, arrays), arrays, meta


class TestGraphRoundTrip:
    def test_arrays_and_layout_survive(self, tmp_path):
        g, loaded, arrays, meta = _graph_round_trip(tmp_path, strassen(), 3)
        assert loaded.n_vertices == g.n_vertices
        assert loaded.n_edges == g.n_edges
        np.testing.assert_array_equal(loaded.pred_indptr, g.pred_indptr)
        np.testing.assert_array_equal(loaded.pred_indices, g.pred_indices)
        np.testing.assert_array_equal(loaded.succ_indptr, g.succ_indptr)
        np.testing.assert_array_equal(loaded.succ_indices, g.succ_indices)
        np.testing.assert_array_equal(loaded.is_copy, g.is_copy)
        np.testing.assert_array_equal(loaded.rank, g.rank)
        assert set(loaded.slabs) == set(g.slabs)

    def test_loaded_arrays_are_memory_mapped(self, tmp_path):
        _, loaded, arrays, _ = _graph_round_trip(tmp_path, strassen(), 2)
        assert isinstance(arrays["pred_indptr"], np.memmap)
        assert isinstance(loaded.pred_indices, np.memmap)

    def test_meta_records_checksums_and_shapes(self, tmp_path):
        _, _, _, meta = _graph_round_trip(tmp_path, strassen(), 2)
        assert meta["format"] == artifact.FORMAT_VERSION
        for name in artifact.GRAPH_ARRAY_NAMES:
            entry = meta["arrays"][name]
            assert len(entry["sha256"]) == 64
            assert entry["dtype"] in ("int64", "bool")

    @pytest.mark.parametrize("schedule_fn", [recursive_schedule, rank_order_schedule])
    @pytest.mark.parametrize("policy", ["lru", "belady"])
    def test_simulation_bit_identical(self, tmp_path, schedule_fn, policy):
        """A memmapped reload must reproduce every IOResult *and* the
        full per-step I/O trace, across schedules, policies and cache
        sizes — the byte-identical-artifacts acceptance bar."""
        g, loaded, _, _ = _graph_round_trip(tmp_path, strassen(), 3)
        for M in (12, 48):
            trace_a: list = []
            trace_b: list = []
            res_a = CacheExecutor(g).run(
                schedule_fn(g), M, policy, io_trace=trace_a
            )
            res_b = CacheExecutor(loaded).run(
                schedule_fn(loaded), M, policy, io_trace=trace_b
            )
            assert res_a == res_b
            assert trace_a == trace_b


class TestPlanRoundTrip:
    def test_plan_arrays_survive(self, tmp_path):
        g = build_cdag(strassen(), 3)
        ex = CacheExecutor(g)
        plan = ex.compile(recursive_schedule(g))
        path = tmp_path / "plan"
        artifact.write_bundle(path, plan.to_arrays(), {"kind": "plan"})
        arrays, _ = artifact.read_bundle(path, artifact.PLAN_ARRAY_NAMES)
        loaded = _SchedulePlan.from_arrays(arrays, validated=True)
        assert loaded.n_steps == plan.n_steps
        for name, arr in plan.to_arrays().items():
            np.testing.assert_array_equal(arrays[name], arr)
        # Simulating from the loaded plan matches the compiled one.
        res_a = ex.run(recursive_schedule(g), 48, "belady")
        ex2 = CacheExecutor(g)
        ex2._plans[b"x"] = loaded  # force use of the loaded plan object
        res_b = ex2.run(plan.schedule, 48, "belady", validate=False)
        assert res_a == res_b


class TestContentKeys:
    def test_graph_key_separates_depth_and_algorithm(self):
        s = strassen()
        assert artifact.graph_key(s, 2) != artifact.graph_key(s, 3)
        assert artifact.graph_key(s, 2) != artifact.graph_key(
            strassen_x_classical(), 2
        )
        assert artifact.graph_key(s, 2) == artifact.graph_key(strassen(), 2)

    def test_schedule_key_separates_family_and_version(self):
        gkey = artifact.graph_key(strassen(), 2)
        a = artifact.schedule_key(gkey, "recursive", "1")
        assert a != artifact.schedule_key(gkey, "rank_order", "1")
        assert a != artifact.schedule_key(gkey, "recursive", "2")

    def test_plan_key_separates_schedule_and_executor_version(self):
        gkey = artifact.graph_key(strassen(), 2)
        a = artifact.plan_key(gkey, "d" * 32, EXECUTOR_VERSION)
        assert a != artifact.plan_key(gkey, "e" * 32, EXECUTOR_VERSION)
        assert a != artifact.plan_key(gkey, "d" * 32, EXECUTOR_VERSION + "x")


class TestDefectDetection:
    def _bundle(self, tmp_path):
        g = build_cdag(strassen(), 2)
        path = tmp_path / "bundle"
        artifact.write_bundle(path, artifact.graph_to_arrays(g), {"kind": "graph"})
        return path

    def test_bitflip_is_detected(self, tmp_path):
        path = self._bundle(tmp_path)
        target = path / "pred_indices.npy"
        blob = bytearray(target.read_bytes())
        blob[-1] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(GraphCacheError, match="checksum"):
            artifact.read_bundle(path, artifact.GRAPH_ARRAY_NAMES)

    def test_truncation_is_detected(self, tmp_path):
        path = self._bundle(tmp_path)
        target = path / "is_copy.npy"
        target.write_bytes(target.read_bytes()[:40])
        with pytest.raises(GraphCacheError):
            artifact.read_bundle(path, artifact.GRAPH_ARRAY_NAMES)

    def test_missing_meta_and_wrong_format(self, tmp_path):
        path = self._bundle(tmp_path)
        meta = path / "meta.json"
        original = meta.read_text(encoding="utf-8")
        meta.unlink()
        with pytest.raises(GraphCacheError, match="meta"):
            artifact.read_bundle(path, artifact.GRAPH_ARRAY_NAMES)
        meta.write_text(original.replace('"format": 1', '"format": 99'))
        with pytest.raises(GraphCacheError, match="format"):
            artifact.read_bundle(path, artifact.GRAPH_ARRAY_NAMES)

    def test_unexpected_array_set_is_detected(self, tmp_path):
        path = self._bundle(tmp_path)
        with pytest.raises(GraphCacheError, match="arrays"):
            artifact.read_bundle(path, artifact.PLAN_ARRAY_NAMES)

    def test_vertex_count_mismatch_is_detected(self, tmp_path):
        path = self._bundle(tmp_path)
        arrays, _ = artifact.read_bundle(path, artifact.GRAPH_ARRAY_NAMES)
        with pytest.raises(GraphCacheError, match="vertex count"):
            artifact.graph_from_arrays(strassen(), 3, arrays)

    def test_lost_publish_race_keeps_winner(self, tmp_path):
        path = self._bundle(tmp_path)
        before = (path / "meta.json").stat().st_mtime_ns
        g = build_cdag(strassen(), 2)
        artifact.write_bundle(path, artifact.graph_to_arrays(g), {"kind": "graph"})
        assert (path / "meta.json").stat().st_mtime_ns == before
        assert not list(tmp_path.glob(".tmp-*"))
