"""Rendering of small CDAGs: Graphviz DOT and rank-by-rank ASCII.

Reproduces the *structural* content of the paper's Figures 1-3 (base
graphs, meta-vertices, encoder zig-zag paths) in machine-checkable form;
the outputs are used by examples and by `bench_e01_base_graphs`.
"""

from __future__ import annotations

import numpy as np

from repro.cdag.graph import CDAG, Region

__all__ = ["to_dot", "ascii_ranks", "describe_vertex"]

_REGION_COLORS = {
    Region.ENC_A: "lightblue",
    Region.ENC_B: "lightgreen",
    Region.DEC: "lightsalmon",
}


def describe_vertex(cdag: CDAG, v: int) -> str:
    """Human-readable vertex label, e.g. ``enc_A[r1](m=3|e=2)``."""
    region, local_rank, digits = cdag.vertex_digits(v)
    if region == Region.DEC:
        n_m = cdag.r - local_rank
    else:
        n_m = local_rank
    m_digits = digits[:n_m]
    e_digits = digits[n_m:]
    m_str = ",".join(str(d) for d in m_digits) or "-"
    e_str = ",".join(str(d) for d in e_digits) or "-"
    return f"{Region.NAMES[region]}[r{local_rank}](m={m_str}|e={e_str})"


def to_dot(cdag: CDAG, max_vertices: int = 2000) -> str:
    """Graphviz DOT source for the CDAG (bottom-to-top, paper style).

    Raises ``ValueError`` for graphs above ``max_vertices`` — render base
    graphs and small ``G_r`` only.
    """
    if cdag.n_vertices > max_vertices:
        raise ValueError(
            f"graph has {cdag.n_vertices} vertices; refusing to render "
            f"more than {max_vertices}"
        )
    lines = [
        "digraph cdag {",
        "  rankdir=BT;",
        "  node [style=filled, shape=circle, fontsize=9];",
    ]
    for v in range(cdag.n_vertices):
        region = int(cdag.region[v])
        color = _REGION_COLORS[region]
        shape = "doublecircle" if cdag.is_copy[v] else "circle"
        lines.append(
            f'  v{v} [label="{describe_vertex(cdag, v)}", '
            f'fillcolor={color}, shape={shape}];'
        )
    # Same-rank grouping so Graphviz draws paper-style layers.
    for rank in range(2 * cdag.r + 2):
        members = np.nonzero(cdag.rank == rank)[0]
        if len(members):
            ids = "; ".join(f"v{int(v)}" for v in members)
            lines.append(f"  {{ rank=same; {ids} }}")
    for child, parent in cdag.iter_edges():
        lines.append(f"  v{child} -> v{parent};")
    lines.append("}")
    return "\n".join(lines)


def ascii_ranks(cdag: CDAG, max_width: int = 100) -> str:
    """Rank-by-rank ASCII summary (top rank first, paper orientation).

    Each line lists the rank, the region(s), the vertex count, and — for
    narrow ranks — the vertex labels themselves.
    """
    lines = []
    for rank in range(2 * cdag.r + 1, -1, -1):
        members = np.nonzero(cdag.rank == rank)[0]
        regions = sorted(
            {Region.NAMES[int(cdag.region[v])] for v in members}
        )
        head = f"rank {rank:>2} [{'+'.join(regions):<12}] n={len(members):<6}"
        labels = " ".join(describe_vertex(cdag, int(v)) for v in members)
        if len(labels) <= max_width - len(head):
            lines.append(head + labels)
        else:
            lines.append(head + f"({labels[:max_width - len(head) - 4]}...)")
    return "\n".join(lines)
