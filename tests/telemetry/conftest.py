"""Telemetry state is process-global; isolate every test."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()
