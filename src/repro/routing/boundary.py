"""Boundary-crossing analysis (paper Definition 3 and the counting core
of Sections 5-6).

Given a routing and a vertex set ``S``, a path is *boundary-crossing*
when it touches both ``S`` and its complement; each such path contains a
crossing edge whose outside endpoint lies in ``δ(S)``.  The proofs count
boundary-crossing paths from below (at least ``a^k/2 * |S̄_i|`` per
subcomputation) and divide by the routing's ``m`` to bound ``|δ'(S')|``.

This module measures both sides on concrete routings and segments, so
experiments E3/E4/E8 can confirm the chain of inequalities numerically:

    #crossing paths >= (1/2) a^k |S̄_i|          (the case analysis)
    |δ(S_i)| >= #crossing paths / m             (pigeonhole over hits)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdag.graph import CDAG
from repro.routing.paths import Routing

__all__ = ["BoundaryCount", "count_boundary_crossings", "crossing_delta_vertices"]


@dataclass(frozen=True)
class BoundaryCount:
    """Measured boundary-crossing statistics for one (routing, S) pair."""

    n_paths: int
    n_crossing: int
    #: paths from a source in S to a target outside S or vice versa
    n_endpoint_split: int
    #: distinct boundary vertices hit by crossing edges (outside side)
    n_delta_from_crossings: int


def _delta_member(routing: Routing, u: int, v: int, in_s: np.ndarray) -> int:
    """The δ(S) member contributed by a crossing edge between ``u`` and
    ``v`` (one inside S, one outside).

    Per Definition 1: if the CDAG edge points *into* S, its outside
    endpoint is in ``R(S)``; if it points *out of* S, its inside
    endpoint is in ``W(S)``.  (The paper's "the vertex of this edge that
    is not in S lies in δ(S)" is shorthand for the same accounting.)
    """
    cdag = routing.cdag
    inside, outside = (u, v) if in_s[u] else (v, u)
    # Does the dependence edge point into S (outside -> inside)?
    if outside in cdag.predecessors(inside):
        return int(outside)  # R(S)
    return int(inside)  # W(S)


def count_boundary_crossings(
    routing: Routing, in_s: np.ndarray
) -> BoundaryCount:
    """Count boundary-crossing paths of the routing w.r.t. mask ``in_s``.

    ``in_s`` is a boolean mask over the CDAG's vertices.
    """
    n_crossing = 0
    n_split = 0
    delta: set[int] = set()
    for path, (src, dst) in zip(routing.paths, routing.endpoints):
        flags = in_s[path]
        if flags.any() and not flags.all():
            n_crossing += 1
            # Associate one crossing edge to the path, as the proof does.
            switch = int(np.nonzero(np.diff(flags.astype(np.int8)))[0][0])
            delta.add(
                _delta_member(
                    routing, int(path[switch]), int(path[switch + 1]), in_s
                )
            )
        if bool(in_s[src]) != bool(in_s[dst]):
            n_split += 1
    return BoundaryCount(
        n_paths=len(routing),
        n_crossing=n_crossing,
        n_endpoint_split=n_split,
        n_delta_from_crossings=len(delta),
    )


def crossing_delta_vertices(routing: Routing, in_s: np.ndarray) -> np.ndarray:
    """δ(S) members witnessed by *all* crossing edges of all paths —
    a lower-bound witness set for ``δ(S)``."""
    delta: set[int] = set()
    for path in routing.paths:
        flags = in_s[path]
        if flags.any() and not flags.all():
            switches = np.nonzero(np.diff(flags.astype(np.int8)))[0]
            for switch in switches.tolist():
                delta.add(
                    _delta_member(
                        routing, int(path[switch]), int(path[switch + 1]), in_s
                    )
                )
    return np.array(sorted(delta), dtype=np.int64)
