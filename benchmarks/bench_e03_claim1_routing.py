"""Benchmark E3: Claim 1 decoder routing (Section 5, Figures 3-4).

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md)
and asserts every paper-claim check; pytest-benchmark tracks the
regeneration cost.
"""


def test_e3_claim1_routing(run_experiment):
    run_experiment("E3")
