"""Job bodies for runner tests.

These must live in an importable module (not a test function) so the
pool workers can resolve them: specs reference them by entrypoint
string, and the scheduler pickles only the job description.

Stateful behaviours (fail-N-times-then-succeed) coordinate through
marker files in a directory passed as a job parameter, because each
attempt may run in a different worker process.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.experiments.harness import ExperimentResult


def _result(experiment_id: str, **data) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"helper {experiment_id}",
        checks={"always": True},
        data=data,
    )


def ok_job(x: int = 1) -> ExperimentResult:
    return _result("T-OK", x=x, squared=x * x)


def failing_check_job() -> ExperimentResult:
    result = _result("T-BADCHECK")
    result.checks["paper claim holds"] = False
    return result


def error_job(message: str = "boom") -> ExperimentResult:
    raise RuntimeError(message)


def flaky_job(marker_dir: str, fail_times: int = 1) -> ExperimentResult:
    """Raise on the first ``fail_times`` attempts, then succeed."""
    root = Path(marker_dir)
    root.mkdir(parents=True, exist_ok=True)
    attempt = len(list(root.glob("attempt-*"))) + 1
    (root / f"attempt-{attempt}-{os.getpid()}").touch()
    if attempt <= fail_times:
        raise RuntimeError(f"flaky attempt {attempt}/{fail_times}")
    return _result("T-FLAKY", attempts_needed=attempt)


def crash_job(exit_code: int = 17) -> ExperimentResult:
    """Kill the worker process outright (no Python exception)."""
    os._exit(exit_code)


def flaky_crash_job(marker_dir: str, crash_times: int = 1) -> ExperimentResult:
    """Crash the worker on the first ``crash_times`` attempts."""
    root = Path(marker_dir)
    root.mkdir(parents=True, exist_ok=True)
    attempt = len(list(root.glob("attempt-*"))) + 1
    (root / f"attempt-{attempt}-{os.getpid()}").touch()
    if attempt <= crash_times:
        os._exit(23)
    return _result("T-FLAKYCRASH", attempts_needed=attempt)


def sleepy_job(duration: float = 30.0) -> ExperimentResult:
    time.sleep(duration)
    return _result("T-SLEEPY", slept=duration)


def seeded_job(seed: int | None = None) -> ExperimentResult:
    return _result("T-SEEDED", seed=seed)


def seedless_job() -> ExperimentResult:
    return _result("T-SEEDLESS")


def dict_job(value: int = 7) -> dict:
    return {"value": value}


def graph_job(r: int = 2, M: int = 32) -> ExperimentResult:
    """Build a CDAG, compile a schedule and simulate once — touches
    every graph-cache bundle kind (graph, schedule, plan) so sweep
    tests can observe worker-side hits and misses."""
    from repro.bilinear import strassen
    from repro.cdag import build_cdag
    from repro.pebbling import CacheExecutor
    from repro.schedules import recursive_schedule

    g = build_cdag(strassen(), r)
    res = CacheExecutor(g).run(recursive_schedule(g), M, "lru")
    return _result("T-GRAPH", r=r, M=M, total=int(res.total))


def store_hammer(root: str, tag: int, rounds: int = 30) -> None:
    """Hammer one :class:`ResultStore` from this process: republish a
    shared set of keys with churning payloads, read them back, and run
    ``gc_orphans`` in between.  Run from several processes at once, the
    advisory publication lock is what keeps every read a verified
    artifact and every in-flight temp file out of the collector's
    hands; any torn read or lost write raises and fails the process.
    """
    from repro.runner.jobs import JobSpec
    from repro.runner.store import ResultStore

    store = ResultStore(root)
    specs = [JobSpec("T-LOCK", {"slot": slot}) for slot in range(3)]
    for r in range(rounds):
        for spec in specs:
            store.put(spec, {"experiment_id": "T-LOCK",
                             "data": {"tag": tag, "round": r}})
            artifact = store.get(spec)
            assert artifact is not None, f"lost write for {spec.label}"
            assert artifact["result"]["experiment_id"] == "T-LOCK"
        if r % 5 == 0:
            store.gc_orphans()


def cache_shard_job(shard: int = 0) -> ExperimentResult:
    """Emit per-shard trace-cache counters for merge testing."""
    from repro.tracesim import SetAssociativeLRU, trace_blocked

    cache = SetAssociativeLRU(n_sets=4, ways=2)
    stats = cache.run(trace_blocked(8 + 4 * shard, 4))
    result = _result("T-SHARD", shard=shard)
    result.data["cache_stats"] = {"shard": stats.as_dict()}
    return result
