"""Miscellaneous coverage: error hierarchy, RNG helpers, doctests, and
package-level API surface."""

import doctest

import numpy as np
import pytest

import repro
from repro import errors
from repro.utils.rngs import DEFAULT_SEED, make_rng


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_brent_is_algorithm_error(self):
        assert issubclass(errors.BrentEquationError, errors.AlgorithmError)

    def test_hall_is_routing_error(self):
        assert issubclass(errors.HallConditionError, errors.RoutingError)

    def test_brent_carries_index(self):
        exc = errors.BrentEquationError("boom", index=(0, 1, 0, 1, 0, 1))
        assert exc.index == (0, 1, 0, 1, 0, 1)

    def test_hall_carries_certificate(self):
        exc = errors.HallConditionError("boom", violating_set=[1], neighborhood=[2])
        assert exc.violating_set == [1]
        assert exc.neighborhood == [2]


class TestMakeRng:
    def test_none_uses_default_seed(self):
        a = make_rng(None).integers(0, 1000, size=5)
        b = np.random.default_rng(DEFAULT_SEED).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_int_seed(self):
        np.testing.assert_array_equal(
            make_rng(5).integers(0, 100, 3), make_rng(5).integers(0, 100, 3)
        )

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen


class TestDoctests:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.utils.indexing",
            "repro.utils.unionfind",
            "repro.utils.tables",
            "repro.utils.flow",
        ],
    )
    def test_module_doctests(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        failures, _ = doctest.testmod(module)
        assert failures == 0


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackage_all_exports(self):
        import importlib

        for pkg in (
            "repro.bilinear", "repro.cdag", "repro.pebbling",
            "repro.schedules", "repro.routing", "repro.bounds",
            "repro.parallel", "repro.linalg", "repro.tracesim",
            "repro.utils",
        ):
            module = importlib.import_module(pkg)
            for name in module.__all__:
                assert hasattr(module, name), f"{pkg}.{name}"
