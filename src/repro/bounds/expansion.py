"""Edge-expansion baseline: the technique of [6] and where it fails.

Ballard-Demmel-Holtz-Schwartz [6] bound I/O through the *edge expansion*
of the decoding graph,

    h(G) = min_{S: |S| <= |V|/2}  |E(S, V-S)| / |S|,

which requires the decoding (and encoding) graphs of the base case to be
connected: a disconnected graph has ``h = 0`` and the technique certifies
nothing.  This module computes exact edge expansion for small base graphs
(exhaustive over subsets) and reports applicability — experiment E12
contrasts it with the path-routing technique on
``strassen (x) classical`` where ``h(decoder) = 0`` yet Theorem 1 still
holds.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.bilinear.algorithm import BilinearAlgorithm
from repro.cdag.builder import build_base_graph
from repro.cdag.graph import CDAG, Region

__all__ = [
    "edge_expansion",
    "decoder_edge_expansion",
    "expansion_technique_applicable",
]


def edge_expansion(
    adjacency: list[set[int]], max_vertices: int = 24
) -> float:
    """Exact edge expansion of an undirected graph by subset enumeration.

    ``adjacency[v]`` is the neighbour set of vertex ``v``.  Exponential in
    the vertex count — guarded by ``max_vertices``.
    """
    n = len(adjacency)
    if n > max_vertices:
        raise ValueError(
            f"exact edge expansion is exponential; {n} > {max_vertices}"
        )
    if n <= 1:
        return 0.0
    best = float("inf")
    vertices = list(range(n))
    for size in range(1, n // 2 + 1):
        for subset in combinations(vertices, size):
            sset = set(subset)
            cut = sum(
                1 for v in subset for u in adjacency[v] if u not in sset
            )
            best = min(best, cut / size)
            if best == 0.0:
                return 0.0
    return best


def decoder_edge_expansion(alg: BilinearAlgorithm, max_vertices: int = 24) -> float:
    """Edge expansion of the base graph's decoding graph (products +
    outputs, undirected support of W)."""
    g = build_base_graph(alg)
    dec = np.nonzero(g.region == Region.DEC)[0]
    index = {int(v): i for i, v in enumerate(dec)}
    adjacency: list[set[int]] = [set() for _ in dec]
    for v in dec.tolist():
        for u in g.predecessors(v).tolist():
            if u in index:
                adjacency[index[v]].add(index[u])
                adjacency[index[u]].add(index[v])
    return edge_expansion(adjacency, max_vertices=max_vertices)


def expansion_technique_applicable(alg: BilinearAlgorithm) -> dict:
    """Whether the edge-expansion technique of [6] applies to this base
    graph, and why not when it doesn't.

    Conditions per the paper's discussion: connected decoding graph,
    connected encoding graphs, and no multiple copying.  Returns a report
    dict with per-condition booleans and the overall verdict.
    """
    dec_connected = len(alg.decoder_components()) == 1
    enc_a_connected = len(alg.encoder_components("A")) == 1
    enc_b_connected = len(alg.encoder_components("B")) == 1
    no_multi_copy = not alg.has_multiple_copying()
    return {
        "decoder_connected": dec_connected,
        "encoder_a_connected": enc_a_connected,
        "encoder_b_connected": enc_b_connected,
        "no_multiple_copying": no_multi_copy,
        "applicable": dec_connected
        and enc_a_connected
        and enc_b_connected
        and no_multi_copy,
    }
