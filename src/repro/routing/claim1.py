"""Claim 1 (Section 5): the ``(11 * 7^k)``-routing inside Strassen's
decoding graph — generalised to any base with a *connected* decoder.

Between every product (input of ``D_k``) and every output there is a
path obtained from the "ideal chain" — the one that would exist were
``D_1`` complete bipartite — by replacing each missing edge with a
zig-zag *inside the same ``D_1`` copy* (Figure 3): an alternating
bottom/top walk in the bipartite support of ``W``.

The resulting routing hits every vertex at most ``(a + b) * b^k`` times
(for Strassen: ``11 * 7^k``); the measured maximum is far smaller and is
reported by experiment E3.

For base graphs with a *disconnected* decoder the construction is
impossible (no path within some ``D_1`` copy); :func:`claim1_routing`
raises :class:`~repro.errors.RoutingError`, which is precisely the
failure mode motivating Section 6 — and experiment E12's contrast.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.bilinear.algorithm import BilinearAlgorithm
from repro.cdag.graph import CDAG, Region
from repro.errors import RoutingError
from repro.routing.paths import Routing
from repro.utils.indexing import MixedRadix

__all__ = ["claim1_routing", "claim1_bound", "decoder_local_paths"]


def claim1_bound(alg: BilinearAlgorithm, k: int) -> int:
    """The claimed hit bound ``|V(D_1)| * b^k = (a + b) * b^k``."""
    return (alg.a + alg.b) * alg.b**k


def decoder_local_paths(alg: BilinearAlgorithm) -> dict[tuple[int, int], list[int]]:
    """Shortest alternating walks in ``D_1`` from each product ``m`` to
    each output ``e``.

    Vertices of the walk alternate bottom (products, encoded ``("m", x)``)
    and top (outputs, ``("e", x)``); returned as flat lists
    ``[("m", m0), ("e", e0), ("m", m1), ...]`` encoded as signed ints:
    products as ``m`` (0-based), outputs as ``-(e + 1)``.

    Raises
    ------
    RoutingError
        If ``D_1`` is disconnected (some pair unreachable).
    """
    a, b = alg.a, alg.b
    support = alg.W != 0  # (e, m)
    # BFS over the bipartite graph from every product.
    paths: dict[tuple[int, int], list[int]] = {}
    for m0 in range(b):
        # parent pointers; nodes: ('m', m) and ('e', e)
        parent: dict[tuple[str, int], tuple[str, int] | None] = {("m", m0): None}
        queue: deque[tuple[str, int]] = deque([("m", m0)])
        while queue:
            kind, x = queue.popleft()
            if kind == "m":
                for e in np.nonzero(support[:, x])[0].tolist():
                    if ("e", e) not in parent:
                        parent[("e", e)] = (kind, x)
                        queue.append(("e", e))
            else:
                for m in np.nonzero(support[x, :])[0].tolist():
                    if ("m", m) not in parent:
                        parent[("m", m)] = (kind, x)
                        queue.append(("m", m))
        for e in range(a):
            if ("e", e) not in parent:
                raise RoutingError(
                    f"decoder of {alg.name!r} is disconnected: no path "
                    f"from product {m0} to output {e} within D_1 — "
                    "Claim 1 does not apply (use the Theorem 2 routing)"
                )
            walk: list[int] = []
            node: tuple[str, int] | None = ("e", e)
            while node is not None:
                kind, x = node
                walk.append(x if kind == "m" else -(x + 1))
                node = parent[node]
            walk.reverse()
            paths[(m0, e)] = walk
    return paths


def claim1_routing(cdag: CDAG, k: int | None = None) -> Routing:
    """The Section-5 routing between products and outputs of ``D_k``.

    Operates on the decoder of ``cdag`` (which must have ``r == k``; pass
    a standalone ``G_k``).  Path for (product ``(m_1..m_k)``, output
    ``(e_1..e_k)``): descend decoding ranks; the step into rank ``j``
    should move to entry digit ``e_{k-j+1}`` — when ``W`` lacks the
    direct edge, splice the precomputed ``D_1`` zig-zag, whose
    intermediate vertices alternate between rank ``j-1`` (varying the
    multiplication digit) and rank ``j`` (varying the entry digit) inside
    the same copy.
    """
    alg = cdag.alg
    k = cdag.r if k is None else k
    if k != cdag.r:
        raise RoutingError("pass a standalone G_k (cdag.r == k)")
    local = decoder_local_paths(alg)
    a, b = alg.a, alg.b

    routing = Routing(cdag, label=f"claim1 k={k}")

    products = cdag.products()
    outputs = cdag.outputs()
    prod_radix = MixedRadix([b] * k)
    out_radix = MixedRadix([a] * k)

    for p_idx in range(len(products)):
        m_digits = prod_radix.unpack(p_idx)
        for o_idx in range(len(outputs)):
            e_digits = out_radix.unpack(o_idx)
            path: list[int] = [int(products[p_idx])]
            for j in range(1, k + 1):
                # Move from rank j-1 vertex (m_1..m_{k-j+1}, e_{k-j+2}..)
                # to rank j vertex (m_1..m_{k-j}, e_{k-j+1}, ...).
                head = m_digits[: k - j]
                tail = e_digits[k - j + 1 :]
                m_cur = m_digits[k - j]
                e_target = e_digits[k - j]
                walk = local[(m_cur, e_target)]
                # walk starts at product m_cur (== current vertex's digit)
                # and ends at output e_target; intermediate hops embed at
                # ranks j-1 (bottom nodes) / j (top nodes) of this copy.
                for node in walk[1:]:
                    if node >= 0:  # bottom: multiplication digit
                        digits = head + (node,) + tail
                        path.append(
                            cdag.vertex_id(Region.DEC, j - 1, digits)
                        )
                    else:  # top: entry digit
                        e_val = -node - 1
                        digits = head + (e_val,) + tail
                        path.append(cdag.vertex_id(Region.DEC, j, digits))
            routing.add(
                path, source=int(products[p_idx]), target=int(outputs[o_idx])
            )
    return routing
