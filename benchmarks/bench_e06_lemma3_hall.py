"""Benchmark E6: Lemma 3 / Claim 2 Hall matching and lifting (Figures 7-8).

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md)
and asserts every paper-claim check; pytest-benchmark tracks the
regeneration cost.
"""


def test_e6_lemma3_hall(run_experiment):
    run_experiment("E6")
