"""Benchmark E13: ablations and the Section-8 extension.

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md)
and asserts every check; pytest-benchmark tracks the regeneration cost.
"""


def test_e13_ablations(run_experiment):
    run_experiment("E13")
