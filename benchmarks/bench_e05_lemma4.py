"""Benchmark E5: Lemma 4 chain concatenation (Figure 6).

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md)
and asserts every paper-claim check; pytest-benchmark tracks the
regeneration cost.
"""


def test_e5_lemma4(run_experiment):
    run_experiment("E5")
