"""Schedule executor: counts I/Os of a compute order under the paper's
two-level machine model.

Given a CDAG, a *schedule* (the computed vertices in execution order) and
a cache size ``M``, the executor simulates the machine:

- computing vertex ``v`` first loads any predecessor not in cache (one
  read I/O each — values already stored to slow memory are re-read, input
  values are read for the first time);
- evictions happen on demand, chosen by an
  :class:`~repro.pebbling.cache.EvictionPolicy`; evicting a *dirty* value
  (computed but never stored) that is still live — it has remaining uses
  or is an unfinished output — costs one write I/O; evicting a clean or
  dead value is free;
- at the end every output must reside in slow memory (final writes).

The predecessors of the current computation plus its result are pinned
and never evicted mid-step (hence ``M >= max_indegree + 1``).

The I/O-complexity of the *algorithm* is the minimum over schedules and
I/O placements; the executor provides the measurable upper side: the
paper's Theorem 1 lower bound must sit below every
``(schedule, policy)`` measurement, and the recursive schedule's
measurement should track the matching upper bound (experiment E9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdag.graph import CDAG
from repro.errors import CacheError, ScheduleError
from repro.pebbling.cache import make_policy
from repro.pebbling.machine import MachineModel
from repro.telemetry.spans import span

__all__ = ["IOResult", "CacheExecutor", "simulate_io"]


@dataclass(frozen=True)
class IOResult:
    """Outcome of one simulated execution.

    Attributes
    ----------
    reads / writes:
        Load and store I/O counts (``total = reads + writes``).
    input_reads:
        Subset of ``reads`` that loaded original inputs.
    spill_writes / spill_reads:
        Writes of intermediate values forced out of cache, and the reads
        that brought them back — the communication the blocking structure
        of a schedule controls.
    output_writes:
        Final stores of output values.
    peak_cache:
        Maximum number of cached values observed.
    """

    cache_size: int
    policy: str
    reads: int
    writes: int
    input_reads: int
    spill_reads: int
    spill_writes: int
    output_writes: int
    peak_cache: int

    @property
    def total(self) -> int:
        """Total I/O (reads + writes) — the paper's cost measure."""
        return self.reads + self.writes


class CacheExecutor:
    """Reusable executor for one CDAG (precomputes use lists once)."""

    def __init__(self, cdag: CDAG):
        self.cdag = cdag
        self.is_output = np.zeros(cdag.n_vertices, dtype=bool)
        self.is_output[cdag.outputs()] = True
        self.is_input = cdag.in_degree() == 0

    # ------------------------------------------------------------------

    def validate_schedule(self, schedule: np.ndarray) -> np.ndarray:
        """Check the schedule is a topological permutation of the
        non-input vertices; returns it as an int64 array."""
        schedule = np.asarray(schedule, dtype=np.int64)
        computed_expected = np.nonzero(~self.is_input)[0]
        if len(schedule) != len(computed_expected):
            raise ScheduleError(
                f"schedule has {len(schedule)} entries; CDAG has "
                f"{len(computed_expected)} computable vertices"
            )
        seen = np.zeros(self.cdag.n_vertices, dtype=bool)
        seen[np.nonzero(self.is_input)[0]] = True
        for v in schedule.tolist():
            if not 0 <= v < self.cdag.n_vertices:
                raise ScheduleError(f"vertex {v} out of range")
            if seen[v]:
                raise ScheduleError(f"vertex {v} scheduled twice (or is an input)")
            for p in self.cdag.predecessors(v):
                if not seen[p]:
                    raise ScheduleError(
                        f"vertex {v} scheduled before its predecessor {int(p)}"
                    )
            seen[v] = True
        return schedule

    # ------------------------------------------------------------------

    def run(
        self,
        schedule,
        cache_size: int,
        policy: str = "lru",
        validate: bool = True,
        machine: MachineModel | None = None,
        io_trace: list[int] | None = None,
    ) -> IOResult:
        """Execute ``schedule`` with the given cache size and policy.

        When ``io_trace`` is a list, the cumulative I/O count after each
        scheduled computation is appended to it (one entry per schedule
        step) — used by the Hong-Kung partition machinery to cut
        executions every ``2M`` I/Os.
        """
        with span(
            "pebbling.run", policy=policy, cache_size=cache_size
        ) as sp:
            result, evictions = self._run(
                schedule, cache_size, policy, validate, machine, io_trace
            )
            sp.add("scheduled", self.cdag.n_vertices - int(self.is_input.sum()))
            sp.add("reads", result.reads)
            sp.add("writes", result.writes)
            sp.add("evictions", evictions)
            sp.add("spill_reads", result.spill_reads)
            sp.add("spill_writes", result.spill_writes)
            sp.set("peak_cache", result.peak_cache)
            return result

    def _run(
        self, schedule, cache_size, policy, validate, machine, io_trace
    ) -> tuple[IOResult, int]:
        cdag = self.cdag
        machine = machine or MachineModel(cache_size=cache_size)
        machine.check_executable(cdag)
        if machine.cache_size != cache_size:
            raise CacheError("machine.cache_size disagrees with cache_size")
        schedule = (
            self.validate_schedule(schedule)
            if validate
            else np.asarray(schedule, dtype=np.int64)
        )

        # Remaining-use counts: how many scheduled computations still
        # need each value as an operand.
        uses_left = np.zeros(cdag.n_vertices, dtype=np.int64)
        use_times: dict[int, list[int]] = {}
        for t, v in enumerate(schedule.tolist()):
            for p in cdag.predecessors(v).tolist():
                uses_left[p] += 1
                use_times.setdefault(p, []).append(t)

        pol = make_policy(policy, use_times=use_times)

        cached: set[int] = set()
        dirty: set[int] = set()      # computed, not yet in slow memory
        in_slow: set[int] = set(np.nonzero(self.is_input)[0].tolist())
        output_written: set[int] = set()

        reads = writes = input_reads = spill_reads = spill_writes = 0
        output_writes = 0
        peak = 0
        evictions = 0

        def evict(candidates: set[int]) -> None:
            nonlocal writes, spill_writes, output_writes, evictions
            evictions += 1
            victim = pol.choose_victim(candidates)
            cached.discard(victim)
            pol.on_evict(victim)
            if victim in dirty:
                live = uses_left[victim] > 0
                is_out = bool(self.is_output[victim])
                if live or (is_out and victim not in output_written):
                    writes += 1
                    in_slow.add(victim)
                    if is_out:
                        output_writes += 1
                        output_written.add(victim)
                    else:
                        spill_writes += 1
                dirty.discard(victim)

        for t, v in enumerate(schedule.tolist()):
            preds = cdag.predecessors(v).tolist()
            pinned = set(preds) | {v}
            # Load missing operands.
            for p in preds:
                if p not in cached:
                    if p not in in_slow:  # pragma: no cover - guarded by validate
                        raise ScheduleError(
                            f"operand {p} of {v} is neither cached nor in "
                            "slow memory"
                        )
                    while len(cached) >= cache_size:
                        evict(cached - pinned)
                    cached.add(p)
                    pol.on_insert(p, t)
                    reads += 1
                    if self.is_input[p]:
                        input_reads += 1
                    else:
                        spill_reads += 1
                else:
                    pol.on_use(p, t)
            # Make room for the result and compute.
            while len(cached) >= cache_size:
                evict(cached - pinned)
            cached.add(v)
            dirty.add(v)
            pol.on_insert(v, t)
            peak = max(peak, len(cached))
            # Operands were "used" at time t — refresh recency.
            for p in preds:
                pol.on_use(p, t)
            for p in preds:
                uses_left[p] -= 1
            if io_trace is not None:
                io_trace.append(reads + writes)

        # Drain: outputs still dirty must reach slow memory.
        for v in sorted(dirty):
            if self.is_output[v] and v not in output_written:
                writes += 1
                output_writes += 1
                output_written.add(v)

        if not machine.count_input_reads:
            reads -= input_reads
        if not machine.count_output_writes:
            writes -= output_writes

        result = IOResult(
            cache_size=cache_size,
            policy=policy,
            reads=reads,
            writes=writes,
            input_reads=input_reads if machine.count_input_reads else 0,
            spill_reads=spill_reads,
            spill_writes=spill_writes,
            output_writes=output_writes if machine.count_output_writes else 0,
            peak_cache=peak,
        )
        return result, evictions


def simulate_io(
    cdag: CDAG,
    schedule,
    cache_size: int,
    policy: str = "lru",
    validate: bool = True,
) -> IOResult:
    """One-shot convenience wrapper around :class:`CacheExecutor`."""
    return CacheExecutor(cdag).run(
        schedule, cache_size=cache_size, policy=policy, validate=validate
    )
