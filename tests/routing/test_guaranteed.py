"""Tests for guaranteed dependencies (Section 7 definitions)."""

import pytest

from repro.bilinear import laderman, strassen
from repro.cdag import build_cdag
from repro.routing import (
    count_guaranteed_dependencies,
    guaranteed_dependencies,
    input_row_col,
    is_guaranteed_dependence,
    output_row_col,
)


@pytest.fixture(scope="module")
def g2():
    return build_cdag(strassen(), 2)


class TestRowCol:
    def test_input_roundtrip(self, g2):
        n = 4
        seen = set()
        for v in g2.inputs("A").tolist():
            side, row, col = input_row_col(g2, v)
            assert side == "A"
            seen.add((row, col))
        assert seen == {(r, c) for r in range(n) for c in range(n)}

    def test_output_roundtrip(self, g2):
        n = 4
        seen = {output_row_col(g2, w) for w in g2.outputs().tolist()}
        assert seen == {(r, c) for r in range(n) for c in range(n)}

    def test_non_input_raises(self, g2):
        with pytest.raises(ValueError):
            input_row_col(g2, int(g2.products()[0]))

    def test_non_output_raises(self, g2):
        with pytest.raises(ValueError):
            output_row_col(g2, int(g2.inputs()[0]))

    def test_msd_first_digit_order(self, g2):
        """The first tuple digit is the most significant block index."""
        from repro.cdag import Region
        from repro.utils.indexing import pair_index

        # Input with digits (e1, e2) = (idx(1,0), idx(0,1)) should be
        # row 1*2+0=2, col 0*2+1=1.
        v = g2.vertex_id(
            Region.ENC_A, 0, (pair_index(1, 0, 2), pair_index(0, 1, 2))
        )
        _, row, col = input_row_col(g2, v)
        assert (row, col) == (2, 1)


class TestGuaranteedDependencies:
    def test_count_formula(self, g2):
        deps = list(guaranteed_dependencies(g2))
        assert len(deps) == count_guaranteed_dependencies(g2) == 2 * 2 ** (3 * 2)

    def test_a_side_rows_match(self, g2):
        for v, w in guaranteed_dependencies(g2, side="A"):
            _, row, _ = input_row_col(g2, v)
            out_row, _ = output_row_col(g2, w)
            assert row == out_row

    def test_b_side_cols_match(self, g2):
        for v, w in guaranteed_dependencies(g2, side="B"):
            _, _, col = input_row_col(g2, v)
            _, out_col = output_row_col(g2, w)
            assert col == out_col

    def test_pairs_unique(self, g2):
        deps = list(guaranteed_dependencies(g2))
        assert len(set(deps)) == len(deps)

    def test_is_guaranteed_consistent(self, g2):
        dep_set = set(guaranteed_dependencies(g2))
        for v in g2.inputs().tolist()[:8]:
            for w in g2.outputs().tolist():
                assert ((v, w) in dep_set) == is_guaranteed_dependence(g2, v, w)

    def test_laderman_count(self):
        g = build_cdag(laderman(), 1)
        assert count_guaranteed_dependencies(g) == 2 * 27

    def test_semantic_dependence(self, g2):
        """Every guaranteed dependence is a true dataflow dependence:
        perturbing the input changes the output."""
        import numpy as np

        rng = np.random.default_rng(0)
        A = rng.standard_normal((4, 4))
        B = rng.standard_normal((4, 4))
        for v, w in list(guaranteed_dependencies(g2, side="A"))[:16]:
            side, row, col = input_row_col(g2, v)
            orow, ocol = output_row_col(g2, w)
            A2 = A.copy()
            A2[row, col] += 1.0
            delta = (A2 @ B) - (A @ B)
            assert abs(delta[orow, ocol]) > 1e-12
