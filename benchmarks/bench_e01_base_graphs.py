"""Benchmark E1: Base-graph census (paper Figure 1 / Section 3).

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md)
and asserts every paper-claim check; pytest-benchmark tracks the
regeneration cost.
"""


def test_e1_base_graphs(run_experiment):
    run_experiment("E1")
