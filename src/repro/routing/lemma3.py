"""Lemma 3: a ``2 n0^k``-routing of all guaranteed dependencies in G_k.

Construction (paper Section 7.2 + Claim 2):

1. For each side, compute the base matching (one multiplication per
   base-level dependency, load <= n0 — :mod:`repro.routing.hall`).
2. Lift recursively (Claim 2 / Figure 7): a dependence between input
   tuple ``(ea_1 .. ea_k)`` and output tuple ``(ec_1 .. ec_k)`` (rows
   matching digit-wise) is routed through the multiplication tuple
   ``m_i = matching[(ea_i, ec_i)]``; its *chain* climbs the encoder

       (ea_1..ea_k) -> (m_1, ea_2..) -> ... -> (m_1..m_k)

   crosses the product vertex, and descends the decoder

       (m_1..m_k) -> (m_1..m_{k-1}, ec_k) -> ... -> (ec_1..ec_k).

   Every encoder edge exists because ``E[m_i, ea_i] != 0`` and every
   decoder edge because ``W[ec_i, m_i] != 0`` — exactly the Hall-graph
   adjacency.

The per-side routing uses each vertex at most ``n0^k`` times; decoder
vertices are shared by both sides, giving the ``2 n0^k`` bound.  All of
this is *verified* (not assumed) by the tests and experiment E6.
"""

from __future__ import annotations

import numpy as np

from repro.cdag.graph import CDAG, Region
from repro.errors import RoutingError
from repro.routing.guaranteed import guaranteed_dependencies
from repro.routing.hall import base_matching
from repro.routing.paths import Routing
from repro.telemetry.spans import span
from repro.utils.indexing import MixedRadix

__all__ = ["dependency_chain", "lemma3_routing"]


def dependency_chain(
    cdag: CDAG,
    v: int,
    w: int,
    matching: dict[tuple[int, int], int],
) -> np.ndarray:
    """The Claim-2 chain for one guaranteed dependence ``(v, w)``.

    ``matching`` is the base matching for ``v``'s side.
    """
    region_in, rank_in, in_digits = cdag.vertex_digits(v)
    region_out, rank_out, out_digits = cdag.vertex_digits(w)
    if rank_in != 0 or region_in == Region.DEC:
        raise RoutingError(f"{v} is not an input vertex")
    if region_out != Region.DEC or rank_out != cdag.r:
        raise RoutingError(f"{w} is not an output vertex")

    r, a, b = cdag.r, cdag.a, cdag.b
    try:
        mults = tuple(
            matching[(in_digits[i], out_digits[i])] for i in range(r)
        )
    except KeyError as exc:
        raise RoutingError(
            f"({v}, {w}) is not a guaranteed dependence on this side: "
            f"no matching entry for level pair {exc}"
        ) from None

    chain: list[int] = [v]
    # Encoder ascent.
    for i in range(1, r + 1):
        digits = mults[:i] + in_digits[i:]
        chain.append(cdag.vertex_id(region_in, i, digits))
    # Product vertex.
    chain.append(cdag.vertex_id(Region.DEC, 0, mults))
    # Decoder descent (decoding rank j fixes the last j entry digits).
    for j in range(1, r + 1):
        digits = mults[: r - j] + out_digits[r - j :]
        chain.append(cdag.vertex_id(Region.DEC, j, digits))
    return np.asarray(chain, dtype=np.int64)


def lemma3_routing(
    cdag: CDAG,
    side: str | None = None,
    matchings: dict[str, dict[tuple[int, int], int]] | None = None,
) -> Routing:
    """The ``2 n0^k``-routing for all guaranteed dependencies of ``G_k``
    (``n0^k`` per side when ``side`` is restricted).

    ``matchings`` may carry precomputed base matchings (keys "A"/"B").
    """
    alg = cdag.alg
    with span("routing.lemma3", alg=alg.name, k=cdag.r) as sp:
        sides = ("A", "B") if side is None else (side,)
        matchings = matchings or {}
        for s in sides:
            if s not in matchings:
                matchings[s] = base_matching(alg, s)

        routing = Routing(cdag, label=f"lemma3[{'+'.join(sides)}] r={cdag.r}")
        for s in sides:
            match = matchings[s]
            for v, w in guaranteed_dependencies(cdag, side=s):
                routing.add(
                    dependency_chain(cdag, v, w, match), source=v, target=w
                )
        sp.add("chains", len(routing))
        return routing
