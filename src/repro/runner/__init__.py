"""Parallel experiment runner: job specs, result cache, process pool.

The experiment suite (E1–E14) regenerates every quantitative statement
of the paper, but sweeps over parameter grids (E9 I/O sweeps, E10
crossovers, E13 ablations) grow multiplicatively with every new
algorithm and parameter point.  This subsystem turns a sweep into a set
of *hashable job descriptions* that are

- **expanded** from an experiment id plus a parameter grid
  (:mod:`repro.runner.jobs`),
- **cached** in a content-addressed on-disk store keyed by experiment
  id, canonical parameters, explicit seed and package version, so
  identical jobs are served from disk and interrupted sweeps resume
  (:mod:`repro.runner.store`),
- **executed** by a ``ProcessPoolExecutor`` scheduler with per-job
  timeouts, bounded retries with exponential backoff, and graceful
  degradation — a crashing worker is quarantined and recorded as
  failed while the rest of the sweep completes
  (:mod:`repro.runner.pool`),
- **logged** to a structured JSONL event stream plus a live progress
  line (:mod:`repro.runner.events`), and
- **aggregated** back into the harness's :class:`ExperimentResult`
  tables (:mod:`repro.runner.report`).

Quick start::

    from repro.runner import JobSpec, ResultStore, run_sweep, render_sweep

    specs = [JobSpec("E1"), JobSpec("E9", {"r_max": 4})]
    store = ResultStore(".repro-cache")
    outcomes = run_sweep(specs, store, workers=4, retries=2)
    print(render_sweep(outcomes))

or from the command line: ``python -m repro sweep --jobs 4``.
"""

from repro.runner.events import (
    EventLog,
    ProgressLine,
    read_events,
    replay_journal,
    validate_event,
)
from repro.runner.graphcache import GraphCache
from repro.runner.jobs import (
    JobSpec,
    expand_grid,
    experiment_accepts_seed,
    graph_affinity,
    job_key,
    jobs_for_ids,
)
from repro.runner.pool import Attempt, JobOutcome, run_sweep
from repro.runner.report import (
    fault_summary,
    merged_cache_stats,
    render_sweep,
    sweep_ok,
    sweep_summary,
)
from repro.runner.store import (
    ResultStore,
    payload_checksum,
    payload_to_result,
    result_to_payload,
)

__all__ = [
    "JobSpec",
    "job_key",
    "graph_affinity",
    "GraphCache",
    "expand_grid",
    "jobs_for_ids",
    "experiment_accepts_seed",
    "ResultStore",
    "result_to_payload",
    "payload_to_result",
    "payload_checksum",
    "EventLog",
    "ProgressLine",
    "read_events",
    "replay_journal",
    "validate_event",
    "Attempt",
    "JobOutcome",
    "run_sweep",
    "sweep_summary",
    "sweep_ok",
    "fault_summary",
    "render_sweep",
    "merged_cache_stats",
]
