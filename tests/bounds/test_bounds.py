"""Tests for the bound formulas (Theorem 1, Hong-Kung, uppers)."""

import math

import pytest

from repro.bilinear import classical, laderman, strassen, strassen_x_classical
from repro.bounds import (
    blocked_io_upper_bound,
    classical_io_lower_bound,
    classical_memory_independent_lower_bound,
    classical_parallel_bandwidth_lower_bound,
    combined_parallel_lower_bound,
    io_lower_bound,
    io_lower_bound_paper_constants,
    memory_independent_lower_bound,
    parallel_bandwidth_lower_bound,
    paper_k_section5,
    paper_k_section6,
    recursive_io_recurrence,
    recursive_io_upper_bound,
)
from repro.errors import BoundError


class TestTheorem1Form:
    def test_strassen_exponent(self):
        """(n/sqrt(M))^(log2 7) * M exactly."""
        n, M = 1024, 64
        expected = (n / math.sqrt(M)) ** math.log2(7) * M
        assert io_lower_bound(strassen(), n, M) == pytest.approx(expected)

    def test_scaling_in_n(self):
        """Doubling n multiplies the bound by 2^omega0."""
        alg = strassen()
        ratio = io_lower_bound(alg, 2048, 64) / io_lower_bound(alg, 1024, 64)
        assert ratio == pytest.approx(2**alg.omega0)

    def test_decreasing_in_m(self):
        """For omega0 > 2 the bound falls as M grows."""
        alg = strassen()
        assert io_lower_bound(alg, 1024, 256) < io_lower_bound(alg, 1024, 64)

    def test_laderman_exponent(self):
        n, M = 3**6, 27
        alg = laderman()
        expected = (n / math.sqrt(M)) ** alg.omega0 * M
        assert io_lower_bound(alg, n, M) == pytest.approx(expected)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            io_lower_bound(strassen(), 0, 16)
        with pytest.raises(ValueError):
            io_lower_bound(strassen(), 16, 0)


class TestPaperConstants:
    def test_k_choices(self):
        # a=4: k = ceil(log_4 72M); M=1 -> ceil(3.085) = 4.
        assert paper_k_section6(4, 1) == 4
        # Section 5: ceil(log_4 132) = 4.
        assert paper_k_section5(1) == 4

    def test_explicit_bound_positive_in_regime(self):
        alg = strassen()
        # Need k=4 <= r-2: r=6, n=64, M=1.
        bound = io_lower_bound_paper_constants(alg, 64, 1)
        assert bound >= 0

    def test_out_of_regime_raises(self):
        with pytest.raises(BoundError):
            io_lower_bound_paper_constants(strassen(), 8, 64)

    def test_clamp_returns_zero(self):
        assert io_lower_bound_paper_constants(strassen(), 8, 64, clamp=True) == 0

    def test_explicit_below_omega_form(self):
        """The explicit-constant bound never exceeds the Ω-form scaled by
        its hidden constant 1 (the constants are < 1)."""
        alg = strassen()
        for n, M in [(4**4, 1), (4**5, 2)]:
            explicit = io_lower_bound_paper_constants(alg, n, M, clamp=True)
            assert explicit <= io_lower_bound(alg, n, M)

    def test_requires_power_of_n0(self):
        with pytest.raises(ValueError):
            io_lower_bound_paper_constants(strassen(), 100, 1)


class TestParallelBounds:
    def test_perfect_strong_scaling_factor(self):
        alg = strassen()
        assert parallel_bandwidth_lower_bound(alg, 256, 16, 8) == pytest.approx(
            io_lower_bound(alg, 256, 16) / 8
        )

    def test_memory_independent(self):
        alg = strassen()
        expected = 256**2 / 64 ** (2 / alg.omega0)
        assert memory_independent_lower_bound(alg, 256, 64) == pytest.approx(expected)

    def test_combined_is_max(self):
        alg = strassen()
        n, M, P = 256, 16, 4
        assert combined_parallel_lower_bound(alg, n, M, P) == max(
            parallel_bandwidth_lower_bound(alg, n, M, P),
            memory_independent_lower_bound(alg, n, P),
        )

    def test_crossover_between_regimes(self):
        """Small P: memory-bound term dominates; large P: memory-
        independent term dominates (the [2] picture)."""
        alg = strassen()
        n, M = 2**10, 2**8
        small_p = combined_parallel_lower_bound(alg, n, M, 2)
        assert small_p == parallel_bandwidth_lower_bound(alg, n, M, 2)
        big_p = combined_parallel_lower_bound(alg, n, M, 2**20)
        assert big_p == memory_independent_lower_bound(alg, n, 2**20)


class TestClassicalBounds:
    def test_hong_kung_form(self):
        assert classical_io_lower_bound(512, 64) == pytest.approx(512**3 / 8)

    def test_trivial_floor(self):
        # Tiny n, huge M: the n^2 term dominates.
        assert classical_io_lower_bound(4, 4096) == 32

    def test_blocked_upper_above_lower(self):
        for n in (64, 256, 1024):
            for M in (48, 192, 768):
                assert blocked_io_upper_bound(n, M) >= classical_io_lower_bound(
                    n, M
                ) / math.sqrt(3) - 1

    def test_parallel_classical(self):
        assert classical_parallel_bandwidth_lower_bound(
            512, 64, 8
        ) == pytest.approx(classical_io_lower_bound(512, 64) / 8)
        assert classical_memory_independent_lower_bound(512, 8) == pytest.approx(
            512**2 / 4
        )


class TestUpperBounds:
    def test_recurrence_base_case(self):
        alg = strassen()
        # Problem fits in cache: 3 n^2 I/Os.
        assert recursive_io_recurrence(alg, 4, 1000) == 48

    def test_recurrence_scaling(self):
        """IO(n) ~ b * IO(n/2) once out of cache."""
        alg = strassen()
        M = 12
        io1 = recursive_io_recurrence(alg, 32, M)
        io2 = recursive_io_recurrence(alg, 64, M)
        assert io2 < 7.5 * io1
        assert io2 > 6.0 * io1

    def test_upper_dominates_lower(self):
        """Sanity: the O-form upper bound exceeds the Ω-form lower bound
        everywhere in the modelled regime."""
        alg = strassen()
        for n in (64, 256, 1024):
            for M in (16, 64, 256):
                assert recursive_io_upper_bound(alg, n, M) >= io_lower_bound(
                    alg, n, M
                )

    def test_measured_io_between_bounds(self):
        """The measured recursive-schedule I/O sits between the Ω lower
        bound (with the paper's small constants) and the recurrence
        upper model."""
        from repro.cdag import build_cdag
        from repro.pebbling import simulate_io
        from repro.schedules import recursive_schedule

        alg = strassen()
        g = build_cdag(alg, 4)
        sched = recursive_schedule(g)
        n = 16
        for M in (12, 48):
            measured = simulate_io(g, sched, M, policy="belady").total
            upper = recursive_io_recurrence(alg, n, M)
            assert measured <= upper


class TestCrossover:
    def test_flops(self):
        from repro.bounds import flops

        # Strassen on 2x2: 7 mults + 18 adds = 25 operations.
        assert flops(strassen(), 2) == 25

    def test_flops_classical(self):
        from repro.bounds import flops

        # classical(2) on 2x2: 8 mults + 4 adds.
        assert flops(classical(2), 2) == 12

    def test_flop_crossover_finite_for_fast(self):
        from repro.bounds import flop_crossover_n

        assert math.isfinite(flop_crossover_n(strassen()))
        assert flop_crossover_n(classical(2)) == math.inf

    def test_io_ratio_grows_with_n(self):
        from repro.bounds import io_ratio

        alg = strassen()
        assert io_ratio(alg, 2**12, 256) > io_ratio(alg, 2**8, 256)

    def test_io_crossover(self):
        from repro.bounds import io_crossover_n

        n_star = io_crossover_n(strassen(), 256)
        assert math.isfinite(n_star)
        # Past the crossover the fast bound is smaller.
        assert io_lower_bound(strassen(), int(n_star) * 4, 256) < (
            classical_io_lower_bound(int(n_star) * 4, 256)
        )


class TestExpansion:
    def test_strassen_decoder_expansion_positive(self):
        from repro.bounds import decoder_edge_expansion

        assert decoder_edge_expansion(strassen()) > 0

    def test_classical_decoder_expansion_zero(self):
        from repro.bounds import decoder_edge_expansion

        assert decoder_edge_expansion(classical(2)) == 0.0

    def test_applicability_verdicts(self):
        from repro.bounds import expansion_technique_applicable

        assert expansion_technique_applicable(strassen())["applicable"]
        report = expansion_technique_applicable(strassen_x_classical())
        assert not report["applicable"]
        assert not report["decoder_connected"]

    def test_exact_expansion_small_graph(self):
        from repro.bounds import edge_expansion

        # A 4-cycle: expansion = 1 (cut any single vertex: 2 edges / 1;
        # cut opposite pair: 4/2; adjacent pair: 2/2 = 1).
        adjacency = [{1, 3}, {0, 2}, {1, 3}, {0, 2}]
        assert edge_expansion(adjacency) == 1.0

    def test_size_guard(self):
        from repro.bounds import edge_expansion

        with pytest.raises(ValueError):
            edge_expansion([set()] * 30)
