"""Experiment harness regenerating every quantitative statement of the
paper (see DESIGN.md section 3 for the experiment <-> paper map).

Run one experiment::

    from repro.experiments import get_experiment
    result = get_experiment("E4")()
    print(result.render())

or all of them::

    python -m repro.experiments
"""

from repro.experiments.harness import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    register,
)

__all__ = [
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "register",
]
