"""Vertex-partition bandwidth accounting on explicit CDAGs.

The memory-independent clause of Theorem 1 assumes computation is *load
balanced per rank*: every processor computes an equal share of each rank
of ``G_r``.  This module builds such partitions, measures the
communication any concrete partition forces (a value computed by one
processor and consumed by another must cross the network — once per
(value, destination) pair), and so lets experiment E11 check the
``Ω(n²/P^(2/ω0))`` bound against real assignments rather than only the
closed-form CAPS model.
"""

from __future__ import annotations

import numpy as np

from repro.cdag.graph import CDAG
from repro.errors import PartitionError
from repro.simcore.parallel import cut_pairs, cut_traffic
from repro.utils.rngs import make_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "partition_by_rank_balanced",
    "validate_rank_balanced",
    "communication_volume",
    "per_processor_traffic",
]


def partition_by_rank_balanced(
    cdag: CDAG, P: int, seed=None, contiguous: bool = True
) -> np.ndarray:
    """Assign every vertex an owner in ``[0, P)``, balanced per rank.

    ``contiguous=True`` slices each rank into ``P`` equal runs of
    consecutive vertex ids (which, by the slab layout, keeps
    subcomputations together — the communication-friendly choice);
    ``contiguous=False`` permutes the rank randomly first (an adversarial
    but still balanced choice).
    """
    check_positive_int(P, "P")
    rng = make_rng(seed)
    owner = np.empty(cdag.n_vertices, dtype=np.int64)
    for rank in range(int(cdag.rank.max()) + 1):
        members = np.nonzero(cdag.rank == rank)[0]
        if not contiguous:
            members = rng.permutation(members)
        # Round-robin blocks: sizes differ by at most one.
        shares = np.array_split(members, P)
        for p, share in enumerate(shares):
            owner[share] = p
    return owner


def validate_rank_balanced(cdag: CDAG, owner: np.ndarray, P: int) -> None:
    """Raise :class:`PartitionError` unless every processor owns an
    equal share (±1) of every rank."""
    owner = np.asarray(owner)
    if owner.shape != (cdag.n_vertices,):
        raise PartitionError("owner array has wrong shape")
    if owner.min() < 0 or owner.max() >= P:
        raise PartitionError("owner ids out of range")
    for rank in range(int(cdag.rank.max()) + 1):
        members = np.nonzero(cdag.rank == rank)[0]
        counts = np.bincount(owner[members], minlength=P)
        if counts.max() - counts.min() > 1:
            raise PartitionError(
                f"rank {rank} is not load balanced: counts {counts}"
            )


def communication_volume(cdag: CDAG, owner: np.ndarray) -> int:
    """Total words crossing processor boundaries.

    A value owned by ``p`` and consumed by vertices owned by processors
    ``q1, q2, ...`` costs one word per *distinct* destination (the value
    is sent once per receiving processor, the standard counting).

    Computed columnar over the successor CSR
    (:func:`repro.simcore.parallel.cut_pairs`), so partitions with
    thousands of processors cost the same handful of vectorised passes
    as ``P = 8``.
    """
    src_vertex, _ = cut_pairs(cdag.succ_indptr, cdag.succ_indices, owner)
    return int(src_vertex.shape[0])


def per_processor_traffic(cdag: CDAG, owner: np.ndarray) -> np.ndarray:
    """Words sent+received per processor; the maximum entry is the
    single-superstep critical-path cost of this assignment."""
    owner = np.asarray(owner)
    P = int(owner.max()) + 1
    sent, recv = cut_traffic(cdag.succ_indptr, cdag.succ_indices, owner, P)
    return sent + recv
