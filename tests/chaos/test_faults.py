"""Fault bodies: worker-side failures and on-disk artifact corruption."""

import json

import pytest

from repro.chaos import ChaosInjectedError, apply_store_fault, apply_worker_fault
from repro.runner.jobs import JobSpec
from repro.runner.store import ResultStore

PAYLOAD = {
    "experiment_id": "T-OK",
    "title": "t",
    "tables": [],
    "checks": {"always": True},
    "data": {"x": 123, "name": "value"},
}


def _artifact(tmp_path):
    store = ResultStore(tmp_path)
    spec = JobSpec("T-OK", {"x": 1}, entrypoint="tests.runner.helpers:ok_job")
    path = store.put(spec, PAYLOAD)
    return store, spec, path


class TestWorkerFaults:
    def test_exception(self):
        with pytest.raises(ChaosInjectedError):
            apply_worker_fault({"kind": "exception"})

    def test_oom_allocates_then_raises(self):
        with pytest.raises(MemoryError, match="1024 bytes"):
            apply_worker_fault({"kind": "oom", "oom_bytes": 1024})

    def test_slow_returns_normally(self):
        assert apply_worker_fault({"kind": "slow", "slow_seconds": 0.0}) is None

    def test_hang_raises_when_unwatched(self):
        with pytest.raises(ChaosInjectedError, match="hang"):
            apply_worker_fault({"kind": "hang", "hang_seconds": 0.0})

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown worker fault"):
            apply_worker_fault({"kind": "frob"})

    # "exit" calls os._exit and cannot be asserted in-process; the pool
    # tests and the soak suite cover it end to end.


class TestStoreFaults:
    def test_truncate_halves_the_file(self, tmp_path):
        _, _, path = _artifact(tmp_path)
        size = path.stat().st_size
        apply_store_fault("truncate", path)
        assert path.stat().st_size == size // 2
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())

    def test_bitflip_keeps_json_valid_but_breaks_checksum(self, tmp_path):
        store, spec, path = _artifact(tmp_path)
        original = json.loads(path.read_text())
        apply_store_fault("bitflip", path)
        flipped = json.loads(path.read_text())  # still valid JSON
        assert flipped["result"] != original["result"]
        assert flipped["sha256"] == original["sha256"]
        # The hardened store must treat it as a miss, never a hit.
        assert store.get(spec) is None

    def test_orphan_drops_a_stray_tmp_file(self, tmp_path):
        store, _, path = _artifact(tmp_path)
        apply_store_fault("orphan", path)
        strays = list(path.parent.glob(".tmp-*.json"))
        assert len(strays) == 1
        assert len(store) == 1  # stray is not counted as an artifact

    def test_perm_clears_the_mode_bits(self, tmp_path):
        _, _, path = _artifact(tmp_path)
        apply_store_fault("perm", path)
        assert path.stat().st_mode & 0o777 == 0

    def test_unknown_kind_raises(self, tmp_path):
        _, _, path = _artifact(tmp_path)
        with pytest.raises(ValueError, match="unknown store fault"):
            apply_store_fault("gamma-ray", path)
