"""Hong-Kung S-partitions and dominator sets — the 1981 technique [10].

The paper's "Previous Work" section traces three proof techniques:
S-partitions/dominators (Hong-Kung), edge expansion (BDHS), and this
paper's path routings.  This module implements the first so all three
can be compared on the same CDAGs.

Definitions (Hong-Kung 1981):

- a *dominator* of a vertex set ``S`` is a vertex set ``D`` such that
  every path from an input to a vertex of ``S`` meets ``D``;
- the *minimum set* of ``S`` is the set of vertices of ``S`` with no
  successor inside ``S`` (values that must survive the phase);
- a ``2M``-partition splits the computed vertices into parts, each with
  a dominator of size ``<= 2M`` and a minimum set of size ``<= 2M``;
- **HK Lemma**: any execution with ``q`` I/Os induces a 2M-partition
  with ``h = ceil(q / M)`` parts; hence ``q >= M * (P(2M) - 1)`` where
  ``P(2M)`` is the minimal part count.

:func:`minimum_dominator_size` computes exact dominator sizes via a
minimum vertex cut (Dinic max-flow with vertex splitting);
:func:`verify_hk_partition` checks the induced-partition side of the
lemma on real executions — experiment E14.
"""

from __future__ import annotations

import numpy as np

from repro.cdag.graph import CDAG
from repro.utils.flow import Dinic

__all__ = [
    "minimum_dominator_size",
    "minimum_set",
    "segments_to_partition",
    "partition_by_io",
    "verify_hk_partition",
    "hong_kung_bound_from_partition",
]


def minimum_dominator_size(cdag: CDAG, targets) -> int:
    """Size of a minimum dominator of ``targets``.

    Model: a vertex set ``D`` dominates ``targets`` iff removing ``D``
    disconnects every input-to-target path (a target may dominate
    itself).  Computed as a minimum vertex cut between a super-source
    attached to all inputs and a super-sink attached to all targets,
    with every ordinary vertex split into (in, out) joined by a
    unit-capacity arc.

    Inputs themselves are cuttable (they are vertices of the CDAG and may
    appear in a dominator), so their split arcs also have capacity 1.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if len(targets) == 0:
        return 0
    n = cdag.n_vertices
    # Node ids: in(v) = 2v, out(v) = 2v + 1; source = 2n; sink = 2n + 1.
    dinic = Dinic(2 * n + 2)
    source, sink = 2 * n, 2 * n + 1
    for v in range(n):
        dinic.add_edge(2 * v, 2 * v + 1, 1)
    for child, parent in zip(
        cdag.pred_indices.tolist(),
        np.repeat(np.arange(n), np.diff(cdag.pred_indptr)).tolist(),
    ):
        dinic.add_edge(2 * child + 1, 2 * parent, Dinic.INF)
    inputs = np.nonzero(cdag.in_degree() == 0)[0]
    for v in inputs.tolist():
        dinic.add_edge(source, 2 * v, Dinic.INF)
    for v in targets.tolist():
        dinic.add_edge(2 * v + 1, sink, Dinic.INF)
    return dinic.max_flow(source, sink)


def minimum_set(cdag: CDAG, part) -> np.ndarray:
    """Hong-Kung's *minimum set*: vertices of ``part`` with no successor
    inside ``part`` (their values must outlive the phase)."""
    part = np.asarray(part, dtype=np.int64)
    inside = np.zeros(cdag.n_vertices, dtype=bool)
    inside[part] = True
    out = [
        int(v)
        for v in part.tolist()
        if not any(inside[s] for s in cdag.successors(v))
    ]
    return np.array(sorted(out), dtype=np.int64)


def segments_to_partition(segments) -> list[np.ndarray]:
    """Identity adapter: executor segments (consecutive schedule slices)
    are already a vertex partition of the computed vertices."""
    return [np.asarray(seg, dtype=np.int64) for seg in segments]


def partition_by_io(
    cdag: CDAG,
    schedule,
    M: int,
    policy: str = "lru",
) -> list[np.ndarray]:
    """Hong-Kung's induced partition: cut the execution every ``2M``
    I/Os.

    Runs the executor with a per-step I/O trace and splits the schedule
    whenever the cumulative I/O crosses another multiple of ``2M`` —
    exactly the phases of the HK proof.
    """
    from repro.pebbling.executor import CacheExecutor

    schedule = np.asarray(schedule, dtype=np.int64)
    executor = CacheExecutor(cdag)
    trace: list[int] = []
    executor.run(schedule, M, policy=policy, io_trace=trace)
    parts: list[np.ndarray] = []
    start = 0
    boundary = 2 * M
    for t, cumulative in enumerate(trace):
        if cumulative >= boundary:
            parts.append(schedule[start : t + 1])
            start = t + 1
            boundary += 2 * M
    if start < len(schedule):
        parts.append(schedule[start:])
    return parts


def verify_hk_partition(
    cdag: CDAG, segments, M: int
) -> dict:
    """Check Hong-Kung's induced-partition property on execution
    segments.

    For segments obtained by cutting an execution every ``2M`` I/Os, the
    HK lemma promises dominator and minimum-set sizes ``<= 2M + M``
    (dominator: values in cache at segment start plus values read during
    it; minimum set: values surviving to slow memory or cache).  We
    measure both quantities exactly and report the maxima.
    """
    max_dom = 0
    max_min = 0
    for seg in segments:
        max_dom = max(max_dom, minimum_dominator_size(cdag, seg))
        max_min = max(max_min, len(minimum_set(cdag, seg)))
    return {
        "n_parts": len(segments),
        "max_dominator": max_dom,
        "max_minimum_set": max_min,
        "dominator_ok": max_dom <= 3 * M,
        "minimum_set_ok": max_min <= 3 * M,
    }


def hong_kung_bound_from_partition(n_parts: int, M: int) -> int:
    """The HK lower bound ``M * (P(2M) - 1)`` given a part count
    (a valid 2M-partition witnesses ``P(2M) <= n_parts``, so this is the
    bound the *witnessed* partition certifies)."""
    return max(0, M * (n_parts - 1))
