"""E2 — Meta-vertices (paper Figure 2, Lemma 2 premise).

Census the meta-vertex partition of ``G_r`` for representative
algorithms: sizes, chain-vs-tree shape, the single-use consequence
(branching metas rooted at inputs) and Lemma 2's "the decoding graph
contains no copying".
"""

from __future__ import annotations

from repro.bilinear import classical, laderman, strassen, strassen_x_classical, winograd
from repro.cdag import build_cdag, compute_metavertices
from repro.experiments.harness import ExperimentResult, register
from repro.utils.tables import TextTable

__all__ = ["run"]


@register("E2")
def run(r: int = 3) -> ExperimentResult:
    cases = [
        (strassen(), r),
        (winograd(), r),
        (laderman(), min(r, 2)),
        (classical(2), r),
        (strassen_x_classical(), min(r, 2)),
    ]
    table = TextTable(
        ["algorithm", "r", "|V|", "#meta", "max size", "#branching",
         "dec copy-free", "base roots@inputs", "tree ok"],
        title="E2: meta-vertex census (Figure 2)",
    )
    checks: dict[str, bool] = {}
    for alg, depth in cases:
        g = build_cdag(alg, depth)
        meta = compute_metavertices(g)
        hist = meta.size_histogram()
        branching = meta.multi_copy_roots()
        tree_ok = meta.verify_tree_structure()
        dec_free = meta.decoder_has_no_copying()
        # The paper's "rooted at an input" clause is a statement about
        # the *base graph* (in G_r, a nontrivial value formed at level i
        # may legitimately be multi-copied at level i+1); check it on G_1.
        base_meta = compute_metavertices(build_cdag(alg, 1))
        roots_ok = base_meta.nontrivial_roots_at_inputs()
        table.add_row(
            [alg.name, depth, g.n_vertices, meta.n_meta, max(hist),
             len(branching), "yes" if dec_free else "no",
             "yes" if roots_ok else "no", "yes" if tree_ok else "no"]
        )
        checks[f"{alg.name}: metas are chains/upward trees"] = tree_ok
        checks[f"{alg.name}: decoder has no copying (Lemma 2)"] = dec_free
        checks[f"{alg.name}: base-graph branching metas rooted at inputs"] = roots_ok

    checks["strassen has no multiple copying"] = (
        len(
            compute_metavertices(build_cdag(strassen(), r)).multi_copy_roots()
        )
        == 0
    )
    checks["strassen(x)classical exhibits multiple copying"] = (
        len(
            compute_metavertices(
                build_cdag(strassen_x_classical(), min(r, 2))
            ).multi_copy_roots()
        )
        > 0
    )
    return ExperimentResult(
        experiment_id="E2",
        title="Meta-vertex structure",
        tables=[table],
        checks=checks,
    )
