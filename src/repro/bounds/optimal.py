"""Matching upper bounds: the I/O cost of the recursive blocked schedule.

The paper's bounds are optimal because [3] gives algorithms attaining
them.  In the sequential model the attaining schedule is the recursive
depth-first order with the recursion truncated once a subproblem fits in
cache; its I/O recurrence

    IO(n) = b * IO(n / n0) + O(a * (n / n0)^2),   IO(m) = O(m^2) once
                                                  3 m^2 <= M

solves to ``O((n / sqrt(M))^(2 log_a b) * M)``.  This module evaluates
both the closed Ω/O-form and the exact recurrence (with explicit
constants) so experiment E9 can sandwich measurements between lower and
upper bounds.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.bilinear.algorithm import BilinearAlgorithm
from repro.utils.validation import check_positive_int, check_power

__all__ = ["recursive_io_upper_bound", "recursive_io_recurrence"]


def recursive_io_upper_bound(alg: BilinearAlgorithm, n: int, M: int) -> float:
    """O-form of the recursive schedule's I/O:
    ``(n / sqrt(M))^(2 log_a b) * M + n^2`` (the ``n^2`` covers the
    mandatory touches when the problem already fits in cache)."""
    n = check_positive_int(n, "n")
    M = check_positive_int(M, "M")
    omega0 = 2 * math.log(alg.b, alg.a)
    return (n / math.sqrt(M)) ** omega0 * M + 3.0 * n * n


def recursive_io_recurrence(alg: BilinearAlgorithm, n: int, M: int) -> int:
    """Exact recurrence for the recursive schedule's I/O, with the
    constants of this library's executor model.

    Each recursion level reads ``2 (n/n0)^2`` words per linear
    combination formed (nnz-dependent in reality; we charge the standard
    ``O(a (n/n0)^2)`` with the explicit constant
    ``(nnz(U) + nnz(V) + nnz(W) + b + a)`` words moved per level) and
    recurses ``b`` times; the base case (problem fits: ``3 m^2 <= M``)
    costs ``2 m^2 + m^2`` I/Os (read inputs, write outputs).

    This is an upper-bound *model* (the executor may do better by keeping
    values across siblings); tests assert measured I/O <= this recurrence
    within the modelled regime.
    """
    n = check_positive_int(n, "n")
    M = check_positive_int(M, "M")
    check_power(n, alg.n0, "n")
    import numpy as np

    words_per_level = (
        int(np.count_nonzero(alg.U))
        + int(np.count_nonzero(alg.V))
        + int(np.count_nonzero(alg.W))
        + alg.b
        + alg.a
    )

    @lru_cache(maxsize=None)
    def rec(m: int) -> int:
        if 3 * m * m <= M or m == 1:
            return 3 * m * m
        block = m // alg.n0
        return alg.b * rec(block) + words_per_level * block * block

    return rec(n)
