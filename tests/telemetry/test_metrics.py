"""Metrics merge algebra: the canonical states form a commutative
monoid (mirroring ``CacheStats``), checked by hypothesis property tests
over integer observations (exact equality; floats would only satisfy
the laws approximately)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
    reset_metrics,
)

_NAMES = ("alpha", "beta", "gamma")
_INTS = st.integers(min_value=-(10**6), max_value=10**6)

# One registry = a short random program of metric updates.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("counter"), st.sampled_from(_NAMES), _INTS),
        st.tuples(st.just("gauge"), st.sampled_from(_NAMES), _INTS),
        st.tuples(st.just("histogram"), st.sampled_from(_NAMES), _INTS),
    ),
    max_size=12,
)


def _build(ops) -> MetricsRegistry:
    reg = MetricsRegistry()
    for kind, name, value in ops:
        full = f"{kind[0]}.{name}"  # kind-prefixed: no cross-kind clashes
        if kind == "counter":
            reg.counter(full).inc(value)
        elif kind == "gauge":
            reg.gauge(full).set(value)
        else:
            reg.histogram(full).observe(value)
    return reg


registries = st.builds(_build, _OPS)


@settings(max_examples=200, deadline=None)
@given(a=registries, b=registries)
def test_merge_is_commutative(a, b):
    assert a.merge(b).as_dict() == b.merge(a).as_dict()


@settings(max_examples=200, deadline=None)
@given(a=registries, b=registries, c=registries)
def test_merge_is_associative(a, b, c):
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left.as_dict() == right.as_dict()


@settings(max_examples=100, deadline=None)
@given(a=registries)
def test_empty_registry_is_identity(a):
    empty = MetricsRegistry()
    assert a.merge(empty).as_dict() == a.as_dict()
    assert empty.merge(a).as_dict() == a.as_dict()


@settings(max_examples=100, deadline=None)
@given(a=registries)
def test_serialisation_round_trip(a):
    assert MetricsRegistry.from_dict(a.as_dict()).as_dict() == a.as_dict()


@settings(max_examples=100, deadline=None)
@given(shards=st.lists(registries, max_size=4))
def test_sum_and_merge_all_agree(shards):
    total = MetricsRegistry.merge_all(shards).as_dict()
    if shards:
        assert sum(shards, 0).as_dict() == total
    assert MetricsRegistry.merge_all(reversed(shards)).as_dict() == total


def test_counter_semantics():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert c.merge(Counter(10)).value == 15


def test_gauge_summary_and_last_excluded_from_canonical_state():
    g = Gauge()
    g.set(5)
    g.set(2)
    assert (g.count, g.sum, g.min, g.max, g.last) == (2, 7, 2, 5, 2)
    assert g.mean == 3.5
    assert "last" not in g.as_dict()
    other = Gauge()
    other.set(9)
    merged = g.merge(other)
    assert (merged.count, merged.min, merged.max) == (3, 2, 9)
    assert merged.last is None


def test_histogram_buckets_and_bounds():
    h = Histogram()
    for v in (0, 1, 3, 100):
        h.observe(v)
    assert h.count == 4 and h.min == 0 and h.max == 100
    bounds = h.bucket_bounds()
    assert bounds[0][0] == 0.0  # underflow bucket for the 0 observation
    assert sum(n for _, n in bounds) == 4


def test_registry_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    other = MetricsRegistry()
    other.histogram("x").observe(1)
    with pytest.raises(TypeError):
        reg.merge(other)


def test_ingest_merges_in_place():
    reg = MetricsRegistry()
    reg.counter("hits").inc(2)
    shard = MetricsRegistry()
    shard.counter("hits").inc(3)
    shard.gauge("depth").set(4)
    reg.ingest(shard.as_dict())
    assert reg.counter("hits").value == 5
    assert reg.gauge("depth").count == 1


def test_global_registry_reset():
    metrics().inc("global.thing")
    assert "global.thing" in metrics()
    reset_metrics()
    assert len(metrics()) == 0
