"""The two-level machine model of the paper's Section 1.

- Slow memory: unlimited; initially holds all inputs.
- Fast memory (cache): capacity ``M`` values.
- A value may be loaded (slow -> cache) or stored (cache -> slow) at a
  cost of one I/O each.
- A vertex may be computed only when *all* its predecessors are in cache;
  the result lands in cache.
- No value is ever computed twice (the no-recomputation assumption both
  the paper and [10]'s pebble-game formalisation use).
- The run ends when every output resides in slow memory.

:class:`MachineModel` bundles the parameters and the legality conditions
shared by the strict pebble game (:mod:`repro.pebbling.pebble_game`) and
the policy-driven executor (:mod:`repro.pebbling.executor`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdag.graph import CDAG
from repro.errors import CacheError
from repro.utils.validation import check_positive_int

__all__ = ["MachineModel", "min_cache_size"]


def min_cache_size(cdag: CDAG) -> int:
    """Smallest cache for which any schedule of this CDAG is executable:
    max in-degree plus one (all predecessors plus the result)."""
    return int(cdag.in_degree().max(initial=0)) + 1


@dataclass(frozen=True)
class MachineModel:
    """Two-level machine with cache capacity ``M``.

    Attributes
    ----------
    cache_size:
        Fast-memory capacity in values (paper's ``M``).
    count_input_reads:
        Whether loads of input values count as I/O (the paper's model:
        yes — all data starts in slow memory).
    count_output_writes:
        Whether the final stores of outputs count as I/O (paper: yes).
    """

    cache_size: int
    count_input_reads: bool = True
    count_output_writes: bool = True

    def __post_init__(self):
        check_positive_int(self.cache_size, "cache_size")

    def check_executable(self, cdag: CDAG) -> None:
        """Raise :class:`CacheError` if some vertex cannot be computed
        with this cache size (too many predecessors)."""
        needed = min_cache_size(cdag)
        if self.cache_size < needed:
            raise CacheError(
                f"cache of size {self.cache_size} cannot execute "
                f"{cdag!r}: computing the widest vertex needs "
                f"{needed} slots"
            )
