"""Integration tests: every experiment reproduces its paper claims.

These are the end-to-end checks — each experiment's ``checks`` dict is
the machine-verdict on the corresponding paper statement (see DESIGN.md
section 3 for the experiment <-> paper map).
"""

import pytest

from repro.experiments import ExperimentResult, get_experiment, list_experiments

ALL_IDS = [f"E{i}" for i in range(1, 16)]


class TestRegistry:
    def test_all_registered(self):
        assert list_experiments() == sorted(ALL_IDS)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("E99")


@pytest.mark.parametrize("experiment_id", ALL_IDS)
class TestReproduction:
    def test_all_checks_pass(self, experiment_id):
        result = get_experiment(experiment_id)()
        failed = [name for name, ok in result.checks.items() if not ok]
        assert not failed, f"{experiment_id} failed checks: {failed}"

    def test_result_structure(self, experiment_id):
        result = get_experiment(experiment_id)()
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == experiment_id
        assert result.tables, "every experiment reports at least one table"
        assert result.checks, "every experiment verifies at least one claim"
        rendered = result.render()
        assert experiment_id in rendered
        assert "FAIL" not in rendered


class TestParameterisation:
    def test_e2_custom_depth(self):
        assert get_experiment("E2")(r=2).all_checks_pass

    def test_e3_small_k(self):
        assert get_experiment("E3")(k_max=2).all_checks_pass

    def test_e4_k1_only(self):
        assert get_experiment("E4")(k_max=1).all_checks_pass

    def test_e9_small(self):
        assert get_experiment("E9")(
            r_max=3, cache_sizes=(12, 48), r_big=None
        ).all_checks_pass

    def test_e11_small_n(self):
        assert get_experiment("E11")(n=2**8).all_checks_pass

    def test_e15_tiny_budget(self):
        # Even a tiny budget must not regress the start; the
        # beats-fixed-family check needs the default budget, so only the
        # structural checks are asserted here.
        result = get_experiment("E15")(budget=8, generation=4, seed=3)
        assert result.checks["search never regresses the start order"]
        assert result.checks["measured I/O stays above the Theorem-1 bound"]
        assert result.data["trajectory"]
