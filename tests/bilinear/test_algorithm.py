"""Tests for the BilinearAlgorithm representation and Brent validation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bilinear import (
    BilinearAlgorithm,
    classical,
    matmul_tensor,
    solve_decoder,
    strassen,
    winograd,
)
from repro.errors import AlgorithmError, BrentEquationError
from repro.utils.rngs import make_rng


class TestMatmulTensor:
    def test_shape(self):
        assert matmul_tensor(2).shape == (4, 4, 4)

    def test_entry_count(self):
        # The matmul tensor for n0 has exactly n0^3 ones.
        for n0 in (1, 2, 3):
            assert matmul_tensor(n0).sum() == n0**3

    def test_specific_entries_n2(self):
        T = matmul_tensor(2)
        # c[0,0] += a[0,0] * b[0,0]: indices (0, 0, 0)
        assert T[0, 0, 0] == 1
        # c[0,0] += a[0,1] * b[1,0]: a index 1, b index 2, c index 0
        assert T[1, 2, 0] == 1
        # a[0,0] * b[1,0] contributes nowhere
        assert not T[0, 2, :].any()

    def test_invalid_n0(self):
        with pytest.raises(ValueError):
            matmul_tensor(0)


class TestConstruction:
    def test_shape_validation_u(self):
        with pytest.raises(AlgorithmError):
            BilinearAlgorithm(n0=2, U=np.zeros((7, 3)), V=np.zeros((7, 4)),
                              W=np.zeros((4, 7)))

    def test_shape_validation_v(self):
        with pytest.raises(AlgorithmError):
            BilinearAlgorithm(n0=2, U=np.zeros((7, 4)), V=np.zeros((6, 4)),
                              W=np.zeros((4, 7)))

    def test_shape_validation_w(self):
        with pytest.raises(AlgorithmError):
            BilinearAlgorithm(n0=2, U=np.zeros((7, 4)), V=np.zeros((7, 4)),
                              W=np.zeros((4, 6)))

    def test_empty_products_rejected(self):
        with pytest.raises(AlgorithmError):
            BilinearAlgorithm(n0=2, U=np.zeros((0, 4)), V=np.zeros((0, 4)),
                              W=np.zeros((4, 0)))

    def test_bad_n0_rejected(self):
        with pytest.raises(AlgorithmError):
            BilinearAlgorithm(n0=0, U=np.zeros((1, 0)), V=np.zeros((1, 0)),
                              W=np.zeros((0, 1)))

    def test_arrays_readonly(self):
        alg = strassen()
        with pytest.raises(ValueError):
            alg.U[0, 0] = 5.0

    def test_repr_contains_name(self):
        assert "strassen" in repr(strassen())


class TestParameters:
    def test_strassen_parameters(self):
        alg = strassen()
        assert (alg.n0, alg.a, alg.b) == (2, 4, 7)
        assert alg.omega0 == pytest.approx(np.log2(7))
        assert alg.is_strassen_like

    def test_classical_parameters(self):
        alg = classical(3)
        assert (alg.n0, alg.a, alg.b) == (3, 9, 27)
        assert alg.omega0 == pytest.approx(3.0)
        assert not alg.is_strassen_like


class TestValidation:
    def test_strassen_valid(self):
        assert strassen().is_valid()

    def test_corrupted_fails_with_location(self):
        alg = strassen()
        W = alg.W.copy()
        W[0, 0] += 1
        bad = BilinearAlgorithm(n0=2, U=alg.U, V=alg.V, W=W, name="bad")
        assert not bad.is_valid()
        with pytest.raises(BrentEquationError) as exc_info:
            bad.validate()
        assert exc_info.value.index is not None

    def test_residual_zero_for_valid(self):
        assert np.allclose(winograd().residual_tensor(), 0)


class TestApplyBase:
    @pytest.mark.parametrize("maker", [strassen, winograd, lambda: classical(2)])
    def test_matches_numpy(self, maker):
        alg = maker()
        rng = make_rng(1)
        A = rng.standard_normal((2, 2))
        B = rng.standard_normal((2, 2))
        np.testing.assert_allclose(alg.apply_base(A, B), A @ B, atol=1e-12)

    def test_wrong_shape_raises(self):
        with pytest.raises(AlgorithmError):
            strassen().apply_base(np.eye(3), np.eye(3))

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_brent_implies_numeric_property(self, seed):
        """Any algorithm passing Brent validation computes A @ B."""
        alg = strassen()
        rng = make_rng(seed)
        A = rng.standard_normal((2, 2)) * 10
        B = rng.standard_normal((2, 2)) * 10
        np.testing.assert_allclose(alg.apply_base(A, B), A @ B, atol=1e-9)


class TestStructuralPredicates:
    def test_strassen_trivial_rows(self):
        alg = strassen()
        # A-side: M3 uses A11 alone, M4 uses A22 alone.
        assert list(np.nonzero(alg.trivial_rows("A"))[0]) == [2, 3]

    def test_strassen_single_use(self):
        assert strassen().satisfies_single_use()
        assert strassen().single_use_violations("A") == []

    def test_classical_single_use(self):
        # Classical rows are all trivial, so no nontrivial duplicates.
        assert classical(2).satisfies_single_use()

    def test_classical_multiple_copying(self):
        # Each a_ij is used alone in n0 products.
        assert classical(2).has_multiple_copying()

    def test_strassen_no_multiple_copying(self):
        assert not strassen().has_multiple_copying()

    def test_bad_side_raises(self):
        with pytest.raises(ValueError):
            strassen().trivial_rows("C")

    def test_strassen_encoder_connected(self):
        assert len(strassen().encoder_components("A")) == 1
        assert len(strassen().encoder_components("B")) == 1

    def test_strassen_decoder_connected(self):
        assert len(strassen().decoder_components()) == 1

    def test_classical_decoder_disconnected(self):
        # One star per output entry.
        assert len(classical(2).decoder_components()) == 4


class TestSolveDecoder:
    def test_recovers_strassen_decoder(self):
        alg = strassen()
        W = solve_decoder(2, alg.U, alg.V)
        rebuilt = BilinearAlgorithm(n0=2, U=alg.U, V=alg.V, W=W)
        assert rebuilt.is_valid()

    def test_rejects_insufficient_products(self):
        alg = strassen()
        with pytest.raises(AlgorithmError):
            solve_decoder(2, alg.U[:6], alg.V[:6])

    def test_shape_mismatch_raises(self):
        with pytest.raises(AlgorithmError):
            solve_decoder(2, np.zeros((7, 3)), np.zeros((7, 3)))
