"""Back-compat surface over the unified simulation core.

The compiled pebbling kernels now live in :mod:`repro.simcore` — the
policy step bodies in :mod:`repro.simcore.policies`, the per-config and
lockstep grid kernels in :mod:`repro.simcore.grid`, and the mode gating
in :mod:`repro.simcore.dispatch`.  This module re-exports the names the
pre-unification consumers bound to (``repro.pebbling.kernels.run_grid``
and friends, the scalar-layout constants, the mode controls), sharing
the *same* dispatch state: ``kernels.forced_mode`` and
``simcore.dispatch.forced_mode`` flip one switch.

See the simcore modules for the design notes (int64-encoded lazy
min-heaps, bit-identity with the golden reference, the lockstep
``(config, slot)`` layout).
"""

from __future__ import annotations

from repro.simcore.dispatch import (
    HAVE_NUMBA,
    active_mode,
    available,
    forced_mode,
    njit,
    set_mode,
)
from repro.simcore.grid import run_grid, simulate_plan
from repro.simcore.policies import (
    ERR_A,
    ERR_B,
    EVICTIONS,
    HEAPN,
    INPUT_READS,
    NCACHED,
    OUTPUT_WRITES,
    PEAK,
    READS,
    SC_LEN,
    SPILL_READS,
    SPILL_WRITES,
    STATUS,
    STATUS_NO_VICTIM,
    STATUS_OK,
    STATUS_OPERAND_MISSING,
    WRITES,
)

__all__ = [
    "HAVE_NUMBA",
    "njit",
    "active_mode",
    "available",
    "set_mode",
    "forced_mode",
    "simulate_plan",
    "run_grid",
    "READS",
    "WRITES",
    "INPUT_READS",
    "SPILL_READS",
    "SPILL_WRITES",
    "OUTPUT_WRITES",
    "PEAK",
    "EVICTIONS",
    "NCACHED",
    "HEAPN",
    "STATUS",
    "ERR_A",
    "ERR_B",
    "SC_LEN",
    "STATUS_OK",
    "STATUS_OPERAND_MISSING",
    "STATUS_NO_VICTIM",
]
