"""Golden reference trace-cache simulators.

Verbatim copies of the pre-unification ``OrderedDict`` implementations
from ``repro.tracesim.cache`` (spans and shared-core plumbing removed).
They are deliberately *not* imported from the package under test: the
equivalence suite checks the production thin views and the columnar
lockstep kernel against these frozen loops, so a regression in the
shared :mod:`repro.simcore.trace` engine cannot silently re-define
"correct".
"""

from __future__ import annotations

from collections import OrderedDict

from repro.simcore.trace import CacheStats

__all__ = ["ReferenceFullyAssociativeLRU", "ReferenceSetAssociativeLRU"]


class ReferenceFullyAssociativeLRU:
    """Fully associative, write-back, write-allocate LRU cache."""

    def __init__(self, capacity_lines: int, line_size: int = 1):
        self.capacity = capacity_lines
        self.line_size = line_size
        self._lines: OrderedDict[int, bool] = OrderedDict()  # line -> dirty
        self.stats = CacheStats()

    def access(self, address: int, is_write: bool = False) -> bool:
        line = address // self.line_size
        stats = self.stats
        stats.accesses += 1
        if line in self._lines:
            stats.hits += 1
            self._lines.move_to_end(line)
            if is_write:
                self._lines[line] = True
            return True
        stats.misses += 1
        if len(self._lines) >= self.capacity:
            _, dirty = self._lines.popitem(last=False)
            if dirty:
                stats.writebacks += 1
        self._lines[line] = is_write
        return False

    def flush(self) -> None:
        for _, dirty in self._lines.items():
            if dirty:
                self.stats.writebacks += 1
        self._lines.clear()

    def run(self, trace) -> CacheStats:
        for address, is_write in trace:
            self.access(address, is_write)
        self.flush()
        return self.stats


class ReferenceSetAssociativeLRU:
    """Set-associative, write-back, write-allocate LRU cache."""

    def __init__(self, n_sets: int, ways: int, line_size: int = 1):
        self.n_sets = n_sets
        self.ways = ways
        self.line_size = line_size
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(n_sets)
        ]
        self.stats = CacheStats()

    @property
    def capacity_lines(self) -> int:
        return self.n_sets * self.ways

    def access(self, address: int, is_write: bool = False) -> bool:
        line = address // self.line_size
        bucket = self._sets[line % self.n_sets]
        stats = self.stats
        stats.accesses += 1
        if line in bucket:
            stats.hits += 1
            bucket.move_to_end(line)
            if is_write:
                bucket[line] = True
            return True
        stats.misses += 1
        if len(bucket) >= self.ways:
            _, dirty = bucket.popitem(last=False)
            if dirty:
                stats.writebacks += 1
        bucket[line] = is_write
        return False

    def flush(self) -> None:
        for bucket in self._sets:
            for _, dirty in bucket.items():
                if dirty:
                    self.stats.writebacks += 1
            bucket.clear()

    def run(self, trace) -> CacheStats:
        for address, is_write in trace:
            self.access(address, is_write)
        self.flush()
        return self.stats
