"""Shared-memory tier tests: round-trips, eviction, crash hygiene.

Every test must leave ``/dev/shm`` exactly as it found it — the
``clean_shm`` fixture asserts it.  That assertion *is* the resource
hygiene satellite: a leaked segment here is precisely the bug the
ledger discipline exists to prevent.
"""

from __future__ import annotations

import multiprocessing
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.chaos.faults import apply_worker_fault
from repro.service.shm import ShmTier, segment_name


@pytest.fixture
def clean_shm(tmp_path):
    root = tmp_path / "shm"
    yield root
    leftovers = ShmTier(root).drain()
    # drain() returns what it had to clean; a non-empty list here means
    # the test leaked segments it should have drained itself.
    assert leftovers == [], f"test leaked segments: {leftovers}"


def _arrays():
    return {
        "a": np.arange(100, dtype=np.int64),
        "b": np.linspace(0.0, 1.0, 17, dtype=np.float64).reshape(1, 17),
        "flags": np.array([1, 0, 1], dtype=np.int8),
    }


class TestRoundTrip:
    def test_put_then_get(self, clean_shm):
        tier = ShmTier(clean_shm)
        assert tier.put("graph", "k1", _arrays())
        out = tier.get("graph", "k1")
        assert out is not None
        for name, arr in _arrays().items():
            np.testing.assert_array_equal(out[name], arr)
            assert not out[name].flags.writeable
        tier.drain()

    def test_get_missing_is_none(self, clean_shm):
        assert ShmTier(clean_shm).get("graph", "nope") is None

    def test_second_tier_attaches_same_segment(self, clean_shm):
        a, b = ShmTier(clean_shm), ShmTier(clean_shm)
        a.put("plan", "k", _arrays())
        out = b.get("plan", "k")
        assert out is not None
        np.testing.assert_array_equal(out["a"], _arrays()["a"])
        a.drain()

    def test_kind_mismatch_is_a_miss(self, clean_shm):
        tier = ShmTier(clean_shm)
        tier.put("graph", "k", _arrays())
        assert tier.get("schedule", "k") is None
        tier.drain()

    def test_oversized_payload_declined(self, clean_shm):
        tier = ShmTier(clean_shm, max_bytes=1024)
        assert not tier.put("graph", "big",
                            {"x": np.zeros(4096, dtype=np.float64)})
        assert tier.get("graph", "big") is None

    def test_names_differ_across_roots(self, tmp_path):
        n1 = segment_name(tmp_path / "a", "graph", "k")
        n2 = segment_name(tmp_path / "b", "graph", "k")
        assert n1 != n2
        assert n1.startswith("repro-")


class TestEviction:
    def test_lru_eviction_under_budget(self, clean_shm):
        one = np.zeros(1 << 12, dtype=np.uint8)  # 4 KiB payload
        tier = ShmTier(clean_shm, max_bytes=3 * (8 << 10))
        for i in range(6):
            assert tier.put("graph", f"k{i}", {"x": one})
        stats = tier.stats()
        assert stats["created_bytes"] <= tier.max_bytes
        assert stats["created"] < 6  # something was evicted
        # Most recent key survives; evicted keys read as misses.
        assert tier.get("graph", "k5") is not None
        assert tier.get("graph", "k0") is None
        tier.drain()


class TestCorruption:
    def test_torn_segment_reads_as_miss_and_retires(self, clean_shm):
        tier = ShmTier(clean_shm)
        tier.put("graph", "k", _arrays())
        name = segment_name(clean_shm, "graph", "k")
        # Stomp the header: a foreign/torn segment must read as a miss.
        seg = tier._segments[name]
        seg.shm.buf[:16] = b"\xff" * 16
        assert tier.get("graph", "k") is None
        # The bad segment was retired: ledger entry gone, next get misses.
        assert tier.get("graph", "k") is None
        assert not (clean_shm / f"{name}.seg").exists()


class TestDrainAndGc:
    def test_drain_unlinks_everything(self, clean_shm):
        tier = ShmTier(clean_shm)
        for i in range(3):
            tier.put("graph", f"k{i}", _arrays())
        assert len(tier.ledger()) == 3
        removed = tier.drain()
        assert len(removed) == 3
        assert tier.ledger() == []
        assert tier.get("graph", "k0") is None
        assert tier.stats()["ledger"] == 0

    def test_gc_heals_a_dead_peers_segments(self, clean_shm):
        # Peer (simulated crashed process) publishes and never cleans up.
        def _peer(root):
            t = ShmTier(root)
            t.put("graph", "leaked", {"x": np.zeros(64, dtype=np.uint8)})
            os._exit(0)  # no drain — the "crash"

        ctx = multiprocessing.get_context("fork")
        p = ctx.Process(target=_peer, args=(clean_shm,))
        p.start()
        p.join(timeout=30)
        assert p.exitcode == 0
        fresh = ShmTier(clean_shm)
        assert len(fresh.ledger()) == 1
        removed = fresh.gc()
        assert removed, "gc must unlink the dead peer's segment"
        assert fresh.get("graph", "leaked") is None
        assert fresh.ledger() == []

    def test_drain_removes_stale_ledger_without_segment(self, clean_shm):
        tier = ShmTier(clean_shm)
        # Ledger-then-create discipline: simulate dying in between.
        tier._ledger_write("repro-deadbeefdeadbeefdeadbeef", "graph", "k", 64)
        assert len(tier.ledger()) == 1
        tier.drain()
        assert tier.ledger() == []


class TestChaosShmLeak:
    def test_shm_leak_fault_leaks_then_gc_heals(self, clean_shm):
        def _victim(root):
            apply_worker_fault({"kind": "shm_leak", "shm": str(root)})

        ctx = multiprocessing.get_context("fork")
        p = ctx.Process(target=_victim, args=(clean_shm,))
        p.start()
        p.join(timeout=30)
        assert p.exitcode == 23  # died segfault-style
        tier = ShmTier(clean_shm)
        assert len(tier.ledger()) == 1  # the leak is visible...
        assert tier.gc()  # ...and the ledger-driven gc heals it
        assert tier.ledger() == []

    def test_shm_leak_without_root_still_exits(self, clean_shm):
        ctx = multiprocessing.get_context("fork")
        p = ctx.Process(
            target=apply_worker_fault, args=({"kind": "shm_leak"},)
        )
        p.start()
        p.join(timeout=30)
        assert p.exitcode == 23


class TestResourceTrackerHygiene:
    def test_no_leak_warnings_from_full_lifecycle(self, tmp_path):
        """A subprocess that creates, attaches, and drains segments must
        exit with a silent resource tracker — no 'leaked shared_memory
        objects' warning on stderr."""
        script = (
            "import numpy as np\n"
            "from repro.service.shm import ShmTier\n"
            f"root = {str(tmp_path / 'shm')!r}\n"
            "a = ShmTier(root); b = ShmTier(root)\n"
            "a.put('graph', 'k', {'x': np.arange(32)})\n"
            "out = b.get('graph', 'k')\n"
            "assert out is not None\n"
            "del out\n"
            "a.drain(); b.drain()\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        )
        assert proc.returncode == 0, proc.stderr
        assert "leaked shared_memory" not in proc.stderr
        assert "resource_tracker" not in proc.stderr
