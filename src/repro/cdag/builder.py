"""Construction of ``G_r`` from a base bilinear algorithm.

The builder materialises the recursive CDAG described in
:mod:`repro.cdag.graph` as flat CSR arrays, fully vectorised: one numpy
block of edges per (rank transition, nonzero coefficient) pair, so the
cost is ``O(|E|)`` numpy work regardless of ``r``.
"""

from __future__ import annotations

import numpy as np

from repro.bilinear.algorithm import BilinearAlgorithm
from repro.cdag import artifact as _artifact
from repro.cdag.graph import CDAG, Region, Slab, slab_layout
from repro.errors import CDAGError
from repro.telemetry.spans import span
from repro.utils.validation import check_nonnegative_int

__all__ = ["build_cdag", "build_cdag_uncached", "build_base_graph", "MAX_VERTICES"]

#: Safety valve: refuse to build graphs that would not fit in memory.
MAX_VERTICES = 20_000_000


def build_base_graph(alg: BilinearAlgorithm) -> CDAG:
    """The base graph ``G_1`` (paper, Figure 1)."""
    return build_cdag(alg, 1)


def build_cdag(alg: BilinearAlgorithm, r: int) -> CDAG:
    """Build the CDAG ``G_r`` for ``n0^r x n0^r`` matrix multiplication.

    Parameters
    ----------
    alg:
        Base algorithm (defines ``a``, ``b``, and the edge supports).
    r:
        Recursion depth, ``>= 0``.  ``G_0`` is the degenerate scalar
        multiplication (two inputs feeding one product/output); it exists
        so the Fact 1 decomposition is total over ``0 <= k <= r``.

    Raises
    ------
    CDAGError
        If the graph would exceed :data:`MAX_VERTICES`.

    When a graph cache is active (``--graph-cache`` /
    ``REPRO_GRAPH_CACHE``), the build is served from the
    content-addressed bundle store instead of being recomputed —
    byte-identical arrays, built once per machine.
    """
    cache = _artifact.active_cache()
    if cache is not None:
        g = cache.get_graph(alg, r)
        if g is not None:
            return g
    return build_cdag_uncached(alg, r)


def build_cdag_uncached(alg: BilinearAlgorithm, r: int) -> CDAG:
    """:func:`build_cdag` minus the graph-cache lookup (the cache itself
    calls this on a miss)."""
    with span("cdag.build", alg=alg.name) as sp:
        g = _build_cdag(alg, r)
        sp.add("vertices", g.n_vertices)
        sp.add("edges", g.n_edges)
        sp.set("recursion_depth", r)
        return g


def _build_cdag(alg: BilinearAlgorithm, r: int) -> CDAG:
    r = check_nonnegative_int(r, "r")
    a, b = alg.a, alg.b

    n_vertices = _total_vertices(a, b, r)
    if n_vertices > MAX_VERTICES:
        raise CDAGError(
            f"G_{r} for {alg.name} would have {n_vertices:,} vertices "
            f"(limit {MAX_VERTICES:,}); reduce r"
        )

    # ------------------------------------------------------------------
    # Slab layout: ENC_A ranks 0..r, ENC_B ranks 0..r, DEC ranks 0..r.
    # ------------------------------------------------------------------
    slabs, total = slab_layout(a, b, r)
    assert total == n_vertices

    # ------------------------------------------------------------------
    # Edges, as (child, parent) arrays per transition.  Each rank
    # transition fills one preallocated (nnz, n_m, n_e) buffer per side:
    # the heads ``(M*b + m_i) * n_e + offset`` are built on the small
    # (nnz, n_m, 1) prefix and broadcast-added against the entry tail
    # directly into the buffer, so peak memory per transition is the two
    # output blocks themselves — no per-nonzero broadcast_to().copy()
    # temporaries.  Ravel order (nonzero-major, then M, then E) matches
    # the per-nonzero emission order exactly, so the stable argsort
    # below produces byte-identical CSR arrays.
    # ------------------------------------------------------------------
    child_blocks: list[np.ndarray] = []
    parent_blocks: list[np.ndarray] = []

    def emit(children: np.ndarray, parents: np.ndarray) -> None:
        child_blocks.append(children.ravel())
        parent_blocks.append(parents.ravel())

    def emit_transition(
        child_slab: Slab,
        parent_slab: Slab,
        n_m: int,
        n_e: int,
        child_digits: np.ndarray,
        parent_digits: np.ndarray,
        child_base: int,
        parent_base: int,
    ) -> None:
        nnz = len(child_digits)
        if nnz == 0:
            return
        m_head = np.arange(n_m, dtype=np.int64).reshape(1, n_m, 1)
        e_tail = np.arange(n_e, dtype=np.int64).reshape(1, 1, n_e)
        c_col = child_digits.astype(np.int64).reshape(nnz, 1, 1)
        p_col = parent_digits.astype(np.int64).reshape(nnz, 1, 1)
        # parent (M, p, E): index (M*parent_base + p)*n_e + E
        p_head = (m_head * parent_base + p_col) * n_e + parent_slab.offset
        # child (M, c, E): index (M*child_base + c)*n_e + E
        c_head = (m_head * child_base + c_col) * n_e + child_slab.offset
        parents = np.empty((nnz, n_m, n_e), dtype=np.int64)
        children = np.empty((nnz, n_m, n_e), dtype=np.int64)
        np.add(p_head, e_tail, out=parents)
        np.add(c_head, e_tail, out=children)
        emit(children, parents)

    for region, E in ((Region.ENC_A, alg.U), (Region.ENC_B, alg.V)):
        nz_m, nz_e = np.nonzero(E)
        for i in range(1, r + 1):
            emit_transition(
                child_slab=slabs[(region, i - 1)],
                parent_slab=slabs[(region, i)],
                n_m=b ** (i - 1),  # leading multiplication digits
                n_e=a ** (r - i),  # trailing entry digits
                child_digits=nz_e,
                parent_digits=nz_m,
                child_base=a,
                parent_base=b,
            )

    # Multiplication layer: product (m_1..m_r) depends on the two encoder
    # tops with the same tuple.
    prod_slab = slabs[(Region.DEC, 0)]
    prod_ids = np.arange(prod_slab.size, dtype=np.int64)
    for region in (Region.ENC_A, Region.ENC_B):
        top = slabs[(region, r)]
        emit(top.offset + prod_ids, prod_slab.offset + prod_ids)

    # Decoding: rank j-1 -> rank j.
    nz_e, nz_m = np.nonzero(alg.W)
    for j in range(1, r + 1):
        emit_transition(
            child_slab=slabs[(Region.DEC, j - 1)],
            parent_slab=slabs[(Region.DEC, j)],
            n_m=b ** (r - j),  # leading multiplication digits
            n_e=a ** (j - 1),  # trailing entry digits
            child_digits=nz_m,
            parent_digits=nz_e,
            child_base=b,
            parent_base=a,
        )

    children = np.concatenate(child_blocks) if child_blocks else np.empty(0, np.int64)
    parents = np.concatenate(parent_blocks) if parent_blocks else np.empty(0, np.int64)

    # Predecessor CSR: sort edges by parent (stable keeps deterministic
    # child order within a parent).
    order = np.argsort(parents, kind="stable")
    sorted_parents = parents[order]
    pred_indices = children[order]
    counts = np.bincount(sorted_parents, minlength=n_vertices)
    pred_indptr = np.zeros(n_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=pred_indptr[1:])

    is_copy = _copy_flags(alg, r, slabs, n_vertices)

    return CDAG(
        alg=alg,
        r=r,
        slabs=slabs,
        pred_indptr=pred_indptr,
        pred_indices=pred_indices,
        is_copy=is_copy,
    )


def _total_vertices(a: int, b: int, r: int) -> int:
    enc_rank_sizes = [b**i * a ** (r - i) for i in range(r + 1)]
    dec_rank_sizes = [b ** (r - j) * a**j for j in range(r + 1)]
    return 2 * sum(enc_rank_sizes) + sum(dec_rank_sizes)


def _copy_flags(
    alg: BilinearAlgorithm,
    r: int,
    slabs: dict[tuple[int, int], Slab],
    n_vertices: int,
) -> np.ndarray:
    """Copy flags per vertex.

    An encoder vertex at rank ``i >= 1`` is a copy iff row ``m_i`` of its
    encoder matrix has a single nonzero equal to 1 (the vertex then holds
    the same value as its unique predecessor).  A decoding vertex at rank
    ``j >= 1`` is a copy iff row ``e_{r-j+1}`` of ``W`` is such a row.
    """
    is_copy = np.zeros(n_vertices, dtype=bool)

    def unit_singleton_rows(E: np.ndarray) -> np.ndarray:
        single = np.count_nonzero(E, axis=1) == 1
        sums = E.sum(axis=1)
        return single & (sums == 1.0)

    copy_u = unit_singleton_rows(alg.U)
    copy_v = unit_singleton_rows(alg.V)
    copy_w = unit_singleton_rows(alg.W)
    a, b = alg.a, alg.b

    for region, copy_rows in ((Region.ENC_A, copy_u), (Region.ENC_B, copy_v)):
        for i in range(1, r + 1):
            slab = slabs[(region, i)]
            # The copy predicate depends only on digit m_i, which cycles
            # with period a^(r-i) and repeats every b * a^(r-i).
            n_e = a ** (r - i)
            flags = np.repeat(copy_rows, n_e)  # one period over m_i
            reps = b ** (i - 1)
            is_copy[slab.offset : slab.offset + slab.size] = np.tile(flags, reps)

    for j in range(1, r + 1):
        slab = slabs[(Region.DEC, j)]
        n_e = a ** (j - 1)
        flags = np.repeat(copy_w, n_e)
        reps = b ** (r - j)
        is_copy[slab.offset : slab.offset + slab.size] = np.tile(flags, reps)

    return is_copy
